//! Execution-plan explorer — walks the paper's Fig. 3 pipeline on the
//! running-example pattern: raw plan, Optimization 1 (CSE), Optimization 2
//! (reordering), Optimization 3 (triangle caching), and VCBC compression,
//! printing each stage in the paper's notation together with its modeled
//! costs.
//!
//! ```text
//! cargo run --release --example plan_explorer [pattern]
//! ```
//! where `pattern` is `demo` (default), `q1` … `q9`, `triangle`,
//! `clique4`, `clique5`.

use benu::pattern::{queries, SymmetryBreaking};
use benu::plan::cost::{estimate_communication_cost, estimate_computation_cost};
use benu::plan::optimize::OptimizeOptions;
use benu::plan::vcbc;
use benu::plan::{GraphStatsEstimator, PlanBuilder};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "demo".into());
    let pattern = match name.as_str() {
        "demo" => queries::demo_pattern(),
        "triangle" => queries::triangle(),
        "clique4" => queries::clique(4),
        "clique5" => queries::clique(5),
        other => queries::by_name(other).unwrap_or_else(|| panic!("unknown pattern {other:?}")),
    };
    let est = GraphStatsEstimator::new(1_000_000, 10_000_000);
    let sb = SymmetryBreaking::compute(&pattern);
    println!(
        "pattern {name}: {} vertices, {} edges; symmetry-breaking constraints: {:?}",
        pattern.num_vertices(),
        pattern.num_edges(),
        sb.constraints()
            .iter()
            .map(|&(a, b)| format!("u{} < u{}", a + 1, b + 1))
            .collect::<Vec<_>>()
    );

    // The demo pattern uses the paper's running matching order; others use
    // the best order found by Algorithm 3.
    let order = if name == "demo" {
        vec![0, 2, 4, 1, 5, 3]
    } else {
        PlanBuilder::new(&pattern).best_plan().matching_order
    };
    println!(
        "matching order: {:?}\n",
        order.iter().map(|v| v + 1).collect::<Vec<_>>()
    );

    let stages: [(&str, OptimizeOptions); 4] = [
        ("raw plan (Fig. 3b)", OptimizeOptions::none()),
        (
            "+ Opt1: common subexpression elimination (Fig. 3c)",
            OptimizeOptions {
                cse: true,
                reorder: false,
                triangle_cache: false,
                clique_cache: false,
            },
        ),
        (
            "+ Opt2: instruction reordering (Fig. 3d)",
            OptimizeOptions {
                cse: true,
                reorder: true,
                triangle_cache: false,
                clique_cache: false,
            },
        ),
        ("+ Opt3: triangle caching (Fig. 3e)", OptimizeOptions::all()),
    ];
    for (label, opts) in stages {
        let plan = PlanBuilder::new(&pattern)
            .matching_order(order.clone())
            .optimizations(opts)
            .build();
        println!("=== {label}");
        println!("{plan}");
        println!(
            "modeled costs: communication {:.3e}, computation {:.3e}\n",
            estimate_communication_cost(&plan, &est),
            estimate_computation_cost(&plan, &est)
        );
    }

    let mut compressed = PlanBuilder::new(&pattern)
        .matching_order(order.clone())
        .build();
    let k = vcbc::compress(&mut compressed);
    println!("=== + VCBC compression (Fig. 3f), vertex-cover prefix = {k}");
    println!("{compressed}");

    let result = PlanBuilder::new(&pattern).best_plan_result();
    println!("=== best-plan search (Algorithm 3)");
    println!(
        "alpha = {} (bound {:.0}), beta = {} (bound {:.0}), search time {:.2?}",
        result.stats.alpha,
        benu::plan::SearchStats::alpha_upper_bound(pattern.num_vertices()),
        result.stats.beta,
        benu::plan::SearchStats::beta_upper_bound(pattern.num_vertices()),
        result.stats.elapsed
    );
}
