//! Quickstart: enumerate a pattern in a data graph on a simulated BENU
//! cluster.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use benu::prelude::*;
use benu::{graph::gen, pattern::queries};

fn main() {
    // 1. A data graph. Real deployments read a SNAP edge list via
    //    `benu::graph::io`; here we generate a clustered power-law graph.
    let g = gen::chung_lu_power_law(gen::PowerLawConfig {
        n: 2_000,
        m: 12_000,
        gamma: 2.4,
        clustering: 0.3,
        seed: 42,
    });
    println!(
        "data graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // 2. A pattern graph: q4 from the paper (4-clique plus a vertex
    //    adjacent to two clique vertices).
    let pattern = queries::q4();

    // 3. Compile the best execution plan (Algorithm 3) calibrated with
    //    the data graph's statistics, with VCBC-compressed output.
    let plan = PlanBuilder::new(&pattern)
        .graph_stats(g.num_vertices(), g.num_edges())
        .compressed(true)
        .best_plan();
    println!(
        "\nbest execution plan (matching order {:?}):",
        plan.matching_order
    );
    println!("{plan}");

    // 4. Run it on a simulated 4-machine cluster, 2 threads each.
    let config = ClusterConfig::builder()
        .workers(4)
        .threads_per_worker(2)
        .cache_capacity_bytes(16 << 20)
        .tau(500)
        .build();
    let cluster = Cluster::new(&g, config);
    let outcome = cluster.run(&plan).expect("cluster run failed");

    println!("matches     : {}", outcome.total_matches);
    println!("VCBC codes  : {}", outcome.total_codes);
    println!("tasks       : {}", outcome.total_tasks);
    println!("elapsed     : {:.2?}", outcome.elapsed);
    println!(
        "communication: {} bytes over {} store requests",
        outcome.communication_bytes(),
        outcome.kv.requests
    );
    println!("cache hit rate: {:.1}%", 100.0 * outcome.cache_hit_rate());
}
