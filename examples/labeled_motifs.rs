//! Label-constrained motif search — the property-graph extension the
//! paper lists as future work (§VIII).
//!
//! Models a two-sided network (users and communities): vertices get
//! labels, and the pattern asks for a "co-membership wedge": two users
//! both linked to the same community, themselves connected.
//!
//! ```text
//! cargo run --release --example labeled_motifs
//! ```

use benu::engine;
use benu::graph::gen;
use benu::pattern::Pattern;
use benu::plan::PlanBuilder;
use rand::{Rng, SeedableRng};

const USER: u32 = 0;
const COMMUNITY: u32 = 1;

fn main() {
    // A power-law graph; every 10th vertex acts as a community hub.
    let g = gen::barabasi_albert(3_000, 4, 2024);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let labels: Vec<u32> = g
        .vertices()
        .map(|v| {
            if g.degree(v) > 20 || rng.gen_bool(0.05) {
                COMMUNITY
            } else {
                USER
            }
        })
        .collect();
    let communities = labels.iter().filter(|&&l| l == COMMUNITY).count();
    println!(
        "graph: {} vertices ({} communities), {} edges",
        g.num_vertices(),
        communities,
        g.num_edges()
    );

    // Pattern: user(0) — user(1) edge, both adjacent to community(2).
    let friends_in_community =
        Pattern::from_edges(3, &[(0, 1), (0, 2), (1, 2)]).with_labels(vec![USER, USER, COMMUNITY]);
    // Same shape, unlabeled, for comparison.
    let any_triangle = Pattern::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);

    let labeled_plan = PlanBuilder::new(&friends_in_community)
        .compressed(true)
        .best_plan();
    let unlabeled_plan = PlanBuilder::new(&any_triangle).compressed(true).best_plan();

    let labeled = engine::count_labeled_embeddings(&labeled_plan, &g, &labels);
    let total = engine::count_embeddings(&unlabeled_plan, &g);
    println!("triangles (any labels)        : {total}");
    println!("user-user-community triangles : {labeled}");
    println!(
        "label selectivity              : {:.1}%",
        100.0 * labeled as f64 / total.max(1) as f64
    );

    // A 4-vertex labeled pattern: two users sharing two communities.
    let shared_pair = Pattern::from_edges(4, &[(0, 2), (0, 3), (1, 2), (1, 3)])
        .with_labels(vec![USER, USER, COMMUNITY, COMMUNITY]);
    let plan = PlanBuilder::new(&shared_pair).compressed(true).best_plan();
    let count = engine::count_labeled_embeddings(&plan, &g, &labels);
    println!("user pairs sharing two communities: {count}");
}
