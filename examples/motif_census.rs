//! Network-motif census — the paper's motivating application
//! (network motif mining, graphlet-based comparison).
//!
//! Counts the core motifs of Table I (triangle, 4-clique, chordal square)
//! plus squares and 5-cliques across the five mini datasets, printing a
//! motif-frequency table that characterises each network.
//!
//! ```text
//! cargo run --release --example motif_census [scale]
//! ```

use benu::engine;
use benu::graph::datasets::Dataset;
use benu::graph::stats;
use benu::pattern::queries;
use benu::plan::PlanBuilder;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);

    let motifs = [
        ("triangle", queries::triangle()),
        ("square", queries::square()),
        ("chordal-sq", queries::chordal_square()),
        ("clique4", queries::clique(4)),
        ("clique5", queries::clique(5)),
    ];

    println!(
        "{:<6} {:>9} {:>10} | {:>12} {:>12} {:>12} {:>12} {:>12}",
        "graph", "|V|", "|E|", "triangle", "square", "chordal-sq", "clique4", "clique5"
    );
    for dataset in Dataset::ALL {
        let g = dataset.build(scale);
        let s = stats::graph_stats(&g);
        let mut counts = Vec::new();
        for (_, motif) in &motifs {
            let plan = PlanBuilder::new(motif)
                .graph_stats(g.num_vertices(), g.num_edges())
                .compressed(true)
                .best_plan();
            counts.push(engine::count_embeddings(&plan, &g));
        }
        // Cross-check the triangle count against the independent
        // node-iterator counter.
        assert_eq!(counts[0], s.triangles, "triangle counters disagree");
        println!(
            "{:<6} {:>9} {:>10} | {:>12} {:>12} {:>12} {:>12} {:>12}",
            dataset.abbrev(),
            s.num_vertices,
            s.num_edges,
            counts[0],
            counts[1],
            counts[2],
            counts[3],
            counts[4]
        );
    }
    println!("\n(scale = {scale}; pass a larger scale for bigger graphs)");
}
