//! Head-to-head comparison of BENU against the two baseline families on
//! one query — a miniature of the paper's Table V / Table VI experiments.
//!
//! ```text
//! cargo run --release --example compare_systems [pattern] [scale]
//! ```

use benu::baselines::{starjoin, wcoj};
use benu::graph::datasets::Dataset;
use benu::pattern::queries;
use benu::plan::PlanBuilder;
use benu::prelude::*;
use std::time::Instant;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "q1".into());
    let scale: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let pattern = queries::by_name(&name).unwrap_or_else(|| panic!("unknown query {name:?}"));
    let g = Dataset::Orkut.build(scale);
    println!(
        "query {name} on ok-mini (scale {scale}): {} vertices, {} edges\n",
        g.num_vertices(),
        g.num_edges()
    );

    // --- BENU on a simulated cluster ---
    let plan = PlanBuilder::new(&pattern)
        .graph_stats(g.num_vertices(), g.num_edges())
        .compressed(true)
        .best_plan();
    let cluster = Cluster::new(
        &g,
        ClusterConfig::builder()
            .workers(4)
            .threads_per_worker(2)
            .cache_capacity_bytes(32 << 20)
            .build(),
    );
    let benu_outcome = cluster.run(&plan).expect("cluster run failed");
    println!(
        "BENU        : {:>12} matches  {:>9.2?}  comm {:>12} B  (cache hit {:.0}%)",
        benu_outcome.total_matches,
        benu_outcome.elapsed,
        benu_outcome.communication_bytes(),
        100.0 * benu_outcome.cache_hit_rate()
    );

    // --- join-based baseline (CBF-style BFS join) ---
    let t0 = Instant::now();
    let join = starjoin::run(&g, &pattern, &starjoin::StarJoinConfig::default());
    println!(
        "StarJoin    : {:>12} matches  {:>9.2?}  shuffle {:>10} B  {}",
        join.matches,
        t0.elapsed(),
        join.shuffled_bytes,
        if join.completed {
            ""
        } else {
            "(CRASH: memory cap)"
        }
    );

    // --- worst-case optimal join (BiGJoin-style), both modes ---
    for (label, mode) in [
        ("WCOJ shared", wcoj::WcojMode::SharedMemory),
        ("WCOJ dist.  ", wcoj::WcojMode::Distributed),
    ] {
        let cfg = wcoj::WcojConfig {
            mode,
            ..Default::default()
        };
        let outcome = wcoj::run(&g, &pattern, &cfg);
        println!(
            "{label}: {:>12} matches  {:>9.2?}  shuffle {:>10} B  {}",
            outcome.matches,
            outcome.elapsed,
            outcome.shuffled_bytes,
            if outcome.completed { "" } else { "(OOM)" }
        );
    }

    println!(
        "\ndata graph adjacency size: {} B — compare against the baselines'\n\
         shuffle volumes to see the paper's core observation: join-based\n\
         methods move partial results far larger than the graph, BENU only\n\
         moves adjacency sets on demand.",
        g.adjacency_bytes()
    );
}
