#!/usr/bin/env bash
# Regenerates every table and figure of the paper's evaluation and appends
# the outputs to experiment_logs.txt. Pass a scale override as $1
# (default: each binary's own default, tuned for a laptop-class host).
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE_ARG=()
if [[ $# -ge 1 ]]; then
  SCALE_ARG=(--scale "$1")
fi

mkdir -p bench_results
: > experiment_logs.txt

run() {
  local bin="$1"; shift
  echo "=== $bin $* ===" | tee -a experiment_logs.txt
  cargo run --release -p benu-bench --bin "$bin" -- "$@" 2>&1 | tee -a experiment_logs.txt
  echo | tee -a experiment_logs.txt
}

run table1       "${SCALE_ARG[@]}" --json bench_results/table1.json
run table4_exp1  --json bench_results/table4.json
run fig7_exp2    "${SCALE_ARG[@]}" --json bench_results/fig7.json
run fig8_exp3    "${SCALE_ARG[@]}" --json bench_results/fig8.json
run fig9_exp4    "${SCALE_ARG[@]}" --json bench_results/fig9.json
run table5_exp5  "${SCALE_ARG[@]}" --json bench_results/table5.json
run table6_exp6  "${SCALE_ARG[@]}" --json bench_results/table6.json
run fig10_scal   "${SCALE_ARG[@]}" --json bench_results/fig10.json

echo "All experiments written to experiment_logs.txt and bench_results/*.json"
