//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the *exact* API subset it consumes: [`RngCore`], [`SeedableRng`], the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`) and
//! [`distributions::Uniform`]/[`distributions::Standard`]. Integer
//! sampling uses Lemire's widening-multiply reduction, which is unbiased
//! to within 2⁻⁶⁴ per draw and — more importantly for this repository —
//! fully deterministic across platforms, so seeded graph generators stay
//! reproducible.
//!
//! The streams produced are NOT bit-compatible with upstream `rand 0.8`;
//! no test in this workspace depends on upstream streams (they assert
//! structural properties and self-consistency of seeded generators).

/// A source of random `u32`/`u64` words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same
    /// expansion upstream `rand` uses) and builds the generator.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    //! Value distributions (`Uniform`, `Standard`).

    use crate::Rng;

    /// Types that can produce values of `T` from a random source.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution of a type: full range for integers,
    /// `[0, 1)` for floats, fair coin for `bool`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl Distribution<u32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    /// Integer types [`Uniform`] can sample (the upstream trait of the
    /// same name, reduced to the arithmetic the sampler needs).
    pub trait SampleUniform: Copy + PartialOrd {
        /// `high - low` widened to `u64`.
        fn span_to(self, high: Self) -> u64;

        /// `self + offset` narrowed back from `u64`.
        fn offset_by(self, offset: u64) -> Self;
    }

    macro_rules! impl_sample_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn span_to(self, high: $t) -> u64 {
                    (high - self) as u64
                }

                fn offset_by(self, offset: u64) -> $t {
                    self + offset as $t
                }
            }
        )*};
    }

    impl_sample_uniform!(u32, u64, usize, u16, u8);

    /// Uniform distribution over a half-open integer range `[low, high)`.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        low: T,
        span: u64,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over `[low, high)`.
        ///
        /// # Panics
        ///
        /// Panics if `low >= high`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new called with empty range");
            Uniform {
                low,
                span: low.span_to(high),
            }
        }

        /// Uniform over `[low, high]`.
        ///
        /// # Panics
        ///
        /// Panics if `low > high`.
        pub fn new_inclusive(low: T, high: T) -> Self {
            assert!(low <= high, "Uniform::new_inclusive with empty range");
            Uniform {
                low,
                span: low.span_to(high) + 1,
            }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
            self.low.offset_by(crate::lemire(rng.next_u64(), self.span))
        }
    }
}

/// Maps a uniform `u64` onto `[0, span)` by widening multiply (Lemire).
pub(crate) fn lemire(word: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((word as u128 * span as u128) >> 64) as u64
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end - self.start) as u64;
                self.start + lemire(rng.next_u64(), span) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi - lo) as u64 + 1;
                lo + lemire(rng.next_u64(), span) as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize, u16, u8, i32);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A value from the type's [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// A uniform value from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    //! The usual glob-import surface.
    pub use crate::distributions::Distribution;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::*;

    /// A counter "generator" making distribution arithmetic inspectable.
    struct Step(u64);

    impl RngCore for Step {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Step(12345);
        for _ in 0..1000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..7);
            assert!(y < 7);
        }
    }

    #[test]
    fn uniform_covers_the_range() {
        let mut rng = Step(7);
        let dist = Uniform::new(0u32, 4);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[dist.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = Step(99);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut rng = Step(1);
        let _ = rng.gen_range(5u32..5);
    }
}
