//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std locks behind `parking_lot`'s poison-free API (`lock()`
//! returns the guard directly). A poisoned std lock is recovered rather
//! than propagated: the workspace treats a panic while holding a cache
//! shard lock as a worker-level error, not as data corruption — cache
//! entries are immutable `Arc`s, so the structure stays valid.

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
