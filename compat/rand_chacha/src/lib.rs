//! Offline stand-in for `rand_chacha`: [`ChaCha8Rng`].
//!
//! This is a genuine ChaCha keystream generator (8 rounds, 64-bit block
//! counter, zero nonce), not a toy LCG — seeded graph generation keeps
//! full 256-bit state and platform-independent streams. The word stream
//! is the ChaCha8 keystream read in block order; it is not guaranteed to
//! be bit-identical to upstream `rand_chacha` (which nothing in this
//! workspace relies on).

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A ChaCha8-based deterministic random number generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// 64-bit block counter of the *next* block to generate.
    counter: u64,
    /// The current keystream block.
    block: [u32; BLOCK_WORDS],
    /// Next unread word in `block`; `BLOCK_WORDS` means exhausted.
    cursor: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k" constants.
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646E,
            0x7962_2D32,
            0x6B20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        // ChaCha8 = 4 double rounds.
        for _ in 0..4 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    /// The current 64-bit block position (for diagnostics).
    pub fn get_word_pos(&self) -> u128 {
        (self.counter as u128) * BLOCK_WORDS as u128 + self.cursor as u128
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; BLOCK_WORDS],
            cursor: BLOCK_WORDS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should be unrelated, {same} collisions");
    }

    #[test]
    fn words_look_uniform() {
        // Crude monobit check over 4096 words.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..4096).map(|_| rng.next_u32().count_ones()).sum();
        let expected = 4096 * 16;
        let deviation = (ones as i64 - expected as i64).abs();
        assert!(deviation < 4096, "bit bias too large: {deviation}");
    }

    #[test]
    fn gen_range_is_seed_stable() {
        // Pin a few values so accidental algorithm changes are caught:
        // every seeded generator in the workspace depends on stability.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let first: Vec<u32> = (0..4).map(|_| rng.gen_range(0u32..1000)).collect();
        let mut rng2 = ChaCha8Rng::seed_from_u64(0);
        let second: Vec<u32> = (0..4).map(|_| rng2.gen_range(0u32..1000)).collect();
        assert_eq!(first, second);
    }
}
