//! Offline stand-in for `criterion`.
//!
//! Implements the macro/API surface the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`black_box`], `criterion_group!`,
//! `criterion_main!` — backed by a simple calibrated timing loop instead
//! of criterion's statistical machinery. Results print as
//! `group/name  median  mean  (iters)` lines. No plots, no statistics
//! files; good enough to compare alternatives on the same machine in the
//! same run, which is how every bench in this repository is used.

use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(400);
/// Samples per benchmark (the median of sample means is reported).
const SAMPLES: usize = 7;

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (accepted, not currently reported).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        eprintln!("\n== {name} ==");
        BenchmarkGroup { name }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), f);
        self
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the stand-in sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Times one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id.into()), f);
        self
    }

    /// Ends the group (printing already happened per benchmark).
    pub fn finish(self) {}
}

/// Measures closures via [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, running it enough times for a stable estimate.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: find an iteration count that fills one sample slot.
        let per_sample = TARGET / SAMPLES as u32;
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= per_sample / 4 || iters >= (1 << 30) {
                // Scale to the per-sample budget.
                let scale = per_sample.as_secs_f64() / dt.as_secs_f64().max(1e-9);
                iters = ((iters as f64 * scale).ceil() as u64).max(1);
                break;
            }
            iters *= 8;
        }
        self.iters_per_sample = iters;
        for _ in 0..SAMPLES {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t0.elapsed() / iters as u32);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    if bencher.samples.is_empty() {
        eprintln!("{label:<40} (no measurement)");
        return;
    }
    bencher.samples.sort_unstable();
    let median = bencher.samples[bencher.samples.len() / 2];
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    eprintln!(
        "{label:<40} median {:>12}  mean {:>12}  ({} iters/sample)",
        format_duration(median),
        format_duration(mean),
        bencher.iters_per_sample
    );
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Defines a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3).bench_function("add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                black_box(x)
            })
        });
        group.finish();
    }

    #[test]
    fn format_is_humane() {
        assert_eq!(format_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(format_duration(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(format_duration(Duration::from_millis(3)), "3.00 ms");
    }
}
