//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset the key-value store's codec uses: an immutable,
//! cheaply-cloneable [`Bytes`] value, a growable [`BytesMut`] builder and
//! the [`BufMut`] little-endian append methods. Clones share one
//! allocation via `Arc`, preserving the property the store relies on
//! (returning a value does not copy the payload).

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte string.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty value.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Wraps a static slice (copied once; the real crate borrows, but no
    /// caller here distinguishes the two).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::from(bytes))
    }

    /// Copies a slice into a new value.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes(Arc::from(bytes))
    }

    /// Length in bytes (inherent, like upstream, so `Bytes::len` works
    /// as a function path).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut(Vec::with_capacity(capacity))
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes(Arc::from(self.0))
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Append-side write methods (little-endian integer puts).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u32_le(1);
        b.put_u32_le(0xDEAD_BEEF);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 8);
        assert_eq!(&frozen[..4], &[1, 0, 0, 0]);
        assert_eq!(
            u32::from_le_bytes(frozen[4..8].try_into().unwrap()),
            0xDEAD_BEEF
        );
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(&*b, &[1, 2, 3]);
    }

    #[test]
    fn static_and_empty() {
        assert!(Bytes::new().is_empty());
        assert_eq!(&*Bytes::from_static(&[9, 8]), &[9, 8]);
    }
}
