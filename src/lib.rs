//! # BENU — Distributed Subgraph Enumeration with a Backtracking-Based Framework
//!
//! This crate is the facade of a from-scratch Rust reproduction of
//! *BENU: Distributed Subgraph Enumeration with Backtracking-based
//! Framework* (Wang et al., ICDE 2019). It re-exports the workspace crates
//! so downstream users need a single dependency:
//!
//! * [`graph`] — data graphs, sorted adjacency sets, set kernels, the
//!   degree-based total order `≺`, generators and IO.
//! * [`pattern`] — pattern graphs, automorphisms, symmetry breaking, and
//!   the q1–q9 query catalogue.
//! * [`plan`] — the BENU execution-plan compiler: raw generation,
//!   Optimizations 1–3, VCBC compression, cost estimation, and the
//!   best-plan search (Algorithm 3).
//! * [`kvstore`] — the sharded key-value store holding the data graph
//!   (the paper's HBase role).
//! * [`cache`] — the per-machine LRU database cache and per-thread
//!   triangle cache.
//! * [`engine`] — the backtracking interpreter executing compiled plans.
//! * [`fault`] — deterministic fault injection: seeded fault plans
//!   (transient store errors, timeouts, slow shards, worker crashes) and
//!   the retry policy the cluster recovers with.
//! * [`cluster`] — the simulated shared-nothing cluster: task generation,
//!   task splitting, workers, fault recovery and metrics.
//! * [`service`] — the concurrent multi-query serving layer: one resident
//!   store shared by many queries, with a canonical-pattern plan cache,
//!   weighted fair scheduling, and deterministic per-query budgets.
//! * [`obs`] — structured observability: the lock-light metrics registry,
//!   virtual-time span tracing, and the unified [`obs::Report`] tree
//!   every run serialises to.
//! * [`baselines`] — join-based (CBF-style) and worst-case-optimal
//!   (BiGJoin-style) competitors.
//!
//! ## Quickstart
//!
//! ```
//! use benu::prelude::*;
//!
//! // A small data graph and the triangle pattern.
//! let g = benu::graph::gen::complete(5);
//! let pattern = benu::pattern::queries::triangle();
//!
//! // Compile the best execution plan and run it on a simulated cluster.
//! let plan = PlanBuilder::new(&pattern).best_plan();
//! let config = ClusterConfig::builder().workers(2).threads_per_worker(2).build();
//! let outcome = Cluster::new(&g, config).run(&plan).expect("run failed");
//! assert_eq!(outcome.total_matches, 10); // C(5,3) triangles in K5
//! ```
//!
//! ## Serving many queries at once
//!
//! Where [`cluster`] answers one query per run, [`service`] keeps the
//! store resident and admits concurrent queries, each with its own
//! result mode and budgets:
//!
//! ```
//! use benu::prelude::*;
//!
//! let g = benu::graph::gen::complete(6);
//! let service = QueryService::new(&g, ServiceConfig::default());
//!
//! // Two queries in flight at once: an exhaustive count and a
//! // budget-capped collection. The second triangle submission reuses
//! // the first's compiled plan via the canonical-pattern plan cache.
//! let count = service.submit(&benu::pattern::queries::triangle(), QueryOptions::new());
//! let capped = service.submit(
//!     &benu::pattern::queries::triangle(),
//!     QueryOptions::new().mode(ResultMode::TopK(5)),
//! );
//! assert_eq!(service.wait(count).matches_found, 20); // C(6,3) in K6
//! assert_eq!(service.wait(capped).matches.len(), 5);
//! assert_eq!(service.plan_cache_stats().hits, 1);
//! ```

pub use benu_baselines as baselines;
pub use benu_cache as cache;
pub use benu_cluster as cluster;
pub use benu_engine as engine;
pub use benu_fault as fault;
pub use benu_graph as graph;
pub use benu_kvstore as kvstore;
pub use benu_obs as obs;
pub use benu_pattern as pattern;
pub use benu_plan as plan;
pub use benu_service as service;

/// Convenience re-exports covering the common end-to-end workflow.
pub mod prelude {
    pub use benu_cluster::{Cluster, ClusterConfig, RunOutcome};
    pub use benu_engine::LocalEngine;
    pub use benu_fault::{FaultPlan, RetryPolicy};
    pub use benu_graph::{AdjSet, AdjView, Graph, GraphBuilder, TotalOrder, VertexId};
    pub use benu_kvstore::{CodecKind, KvStore};
    pub use benu_obs::{ObsHub, Report, ReportMode};
    pub use benu_pattern::{Pattern, PatternVertex};
    pub use benu_plan::{ExecutionPlan, PlanBuilder};
    pub use benu_service::{
        QueryOptions, QueryResult, QueryService, ResultMode, ServiceConfig, Terminal,
    };
}
