//! VCBC output compression (paper §IV-B, "Support VCBC Compression").
//!
//! VCBC (vertex-cover based compression, Qiao et al. \[6\]) represents the
//! matches of `P` by the matches of its vertex-cover core (*helves*) plus a
//! *conditional image set* per non-cover vertex. A BENU plan is compressed
//! by: finding the shortest matching-order prefix that covers every pattern
//! edge, deleting the ENU instructions of all non-cover vertices, dropping
//! filter conditions that reference them, and reporting their candidate
//! sets in the RES tuple instead of single vertices.
//!
//! Constraints *between two non-cover vertices* (injectivity and symmetry
//! breaking) cannot be applied inside the plan once their ENUs are gone;
//! they are enforced at expansion time by the engine (see
//! `benu_engine::expand`), which is also how the compressed-code count is
//! converted into an embedding count.

use crate::ir::{ExecutionPlan, Instruction, ResultItem, SetVar};
use benu_pattern::cover::cover_prefix_len;
use benu_pattern::PatternVertex;

/// Rewrites `plan` in place to emit VCBC-compressed results. Returns the
/// helve length `k` (the number of cover vertices, i.e. enumeration levels
/// kept; the `Init` vertex counts as level 1).
pub fn compress(plan: &mut ExecutionPlan) -> usize {
    assert!(!plan.compressed, "plan is already compressed");
    let k = cover_prefix_len(&plan.pattern, &plan.matching_order);
    let non_cover: Vec<PatternVertex> = plan.matching_order[k..].to_vec();
    if non_cover.is_empty() {
        plan.compressed = true;
        return k;
    }

    // 1) Delete the ENU instructions of non-cover vertices and remember
    //    which set each one looped over (its conditional image set).
    let mut image_set: Vec<Option<SetVar>> = vec![None; plan.pattern.num_vertices()];
    plan.instructions.retain(|instr| match instr {
        Instruction::Foreach { vertex, source } if non_cover.contains(vertex) => {
            image_set[*vertex] = Some(*source);
            false
        }
        _ => true,
    });

    // 2) Remove filter conditions referencing non-cover vertices (their
    //    `f_j` no longer exists).
    for instr in plan.instructions.iter_mut() {
        match instr {
            Instruction::Intersect { filters, .. } | Instruction::TCache { filters, .. } => {
                filters.retain(|fc| !non_cover.contains(&fc.vertex));
            }
            _ => {}
        }
    }

    // 3) Replace each non-cover `f_j` in RES with its image set `C_j`.
    if let Some(Instruction::ReportMatch { items }) = plan.instructions.last_mut() {
        for item in items.iter_mut() {
            if let ResultItem::Vertex(v) = *item {
                if non_cover.contains(&v) {
                    let set = image_set[v]
                        .expect("non-cover vertex had an ENU instruction with a source set");
                    *item = ResultItem::ImageSet(set);
                }
            }
        }
    }

    plan.compressed = true;
    debug_assert_eq!(plan.validate(), Ok(()));
    k
}

/// The constraints the engine must enforce when expanding compressed codes
/// into embeddings: for each unordered pair of non-cover vertices, whether
/// a symmetry-breaking order applies (the injectivity requirement always
/// applies). Returned as `(a, b, ordered)` with `ordered = true` meaning
/// `f_a ≺ f_b` is required.
pub fn expansion_constraints(plan: &ExecutionPlan) -> Vec<(PatternVertex, PatternVertex, bool)> {
    let k = cover_prefix_len(&plan.pattern, &plan.matching_order);
    let non_cover = &plan.matching_order[k..];
    let mut out = Vec::new();
    for (i, &a) in non_cover.iter().enumerate() {
        for &b in &non_cover[i + 1..] {
            match plan.symmetry.between(a, b) {
                Some(true) => out.push((a, b, true)),
                Some(false) => out.push((b, a, true)),
                None => out.push((a.min(b), a.max(b), false)),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::raw_plan;
    use crate::ir::InstrKind;
    use crate::optimize::{optimize, OptimizeOptions};
    use benu_pattern::{queries, SymmetryBreaking};

    fn demo_compressed() -> (ExecutionPlan, usize) {
        let p = queries::demo_pattern();
        let sb = SymmetryBreaking::compute(&p);
        let mut plan = raw_plan(&p, &[0, 2, 4, 1, 5, 3], &sb);
        optimize(&mut plan, OptimizeOptions::all());
        let k = compress(&mut plan);
        (plan, k)
    }

    #[test]
    fn demo_cover_prefix_is_three() {
        // Paper: {u1, u3, u5} is the vertex cover of the demo pattern
        // under the running matching order.
        let (plan, k) = demo_compressed();
        assert_eq!(k, 3);
        assert!(plan.compressed);
        // Only the cover vertices u3, u5 keep ENU instructions (u1 is
        // Init).
        let enus: Vec<_> = plan
            .instructions
            .iter()
            .filter_map(|i| match i {
                Instruction::Foreach { vertex, .. } => Some(*vertex),
                _ => None,
            })
            .collect();
        assert_eq!(enus, vec![2, 4]);
    }

    #[test]
    fn res_reports_image_sets_for_non_cover_vertices() {
        let (plan, _) = demo_compressed();
        let Some(Instruction::ReportMatch { items }) = plan.instructions.last() else {
            panic!("no RES")
        };
        // u1(0), u3(2), u5(4) are vertices; u2(1), u4(3), u6(5) image sets.
        assert!(matches!(items[0], ResultItem::Vertex(0)));
        assert!(matches!(items[2], ResultItem::Vertex(2)));
        assert!(matches!(items[4], ResultItem::Vertex(4)));
        assert!(matches!(items[1], ResultItem::ImageSet(_)));
        assert!(matches!(items[3], ResultItem::ImageSet(_)));
        assert!(matches!(items[5], ResultItem::ImageSet(_)));
    }

    #[test]
    fn filters_referencing_non_cover_vertices_are_dropped() {
        let (plan, _) = demo_compressed();
        for instr in &plan.instructions {
            let filters = match instr {
                Instruction::Intersect { filters, .. } => filters,
                Instruction::TCache { filters, .. } => filters,
                _ => continue,
            };
            for fc in filters {
                assert!(
                    [0usize, 2, 4].contains(&fc.vertex),
                    "filter references non-cover f_{}",
                    fc.vertex
                );
            }
        }
    }

    #[test]
    fn clique_compression_drops_only_last_level() {
        // A k-clique's minimum cover prefix is the first k-1 vertices.
        let p = queries::clique(4);
        let sb = SymmetryBreaking::compute(&p);
        let mut plan = raw_plan(&p, &[0, 1, 2, 3], &sb);
        let k = compress(&mut plan);
        assert_eq!(k, 3);
        assert_eq!(plan.count_kind(InstrKind::Enu), 2);
    }

    #[test]
    fn expansion_constraints_cover_non_cover_pairs() {
        let (plan, _) = demo_compressed();
        let cons = expansion_constraints(&plan);
        // Non-cover vertices: 1, 5, 3 — three unordered pairs; the demo
        // pattern has no symmetry constraints among them.
        assert_eq!(cons.len(), 3);
        assert!(cons.iter().all(|&(_, _, ordered)| !ordered));
    }

    #[test]
    fn square_expansion_keeps_symmetry_between_non_cover_corners() {
        // Square with order [0, 2, 1, 3]: cover prefix {0, 2}; the
        // opposite corners 1 and 3 are both non-cover and are related by
        // symmetry breaking.
        let p = queries::square();
        let sb = SymmetryBreaking::compute(&p);
        let mut plan = raw_plan(&p, &[0, 2, 1, 3], &sb);
        let k = compress(&mut plan);
        assert_eq!(k, 2);
        let cons = expansion_constraints(&plan);
        assert_eq!(cons.len(), 1);
        let (a, b, ordered) = cons[0];
        assert!(ordered, "corners {a},{b} must be order-constrained");
    }

    #[test]
    #[should_panic(expected = "already compressed")]
    fn double_compression_rejected() {
        let (mut plan, _) = demo_compressed();
        compress(&mut plan);
    }
}
