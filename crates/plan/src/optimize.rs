//! Execution-plan optimizations (paper §IV-B).
//!
//! Three semantics-preserving rewrites are applied to a raw plan:
//!
//! * **Optimization 1 — common-subexpression elimination** (`cse`):
//!   operand combinations shared by several INT instructions are hoisted
//!   into fresh temporaries (largest first, then most frequent, then first
//!   appearing), Apriori-style.
//! * **Optimization 2 — instruction reordering** (`reorder`): INT
//!   instructions are flattened to at most two operands, a dependency
//!   graph is built, and a ranked topological sort
//!   (`INI < INT < TRC < DBQ < ENU < RES`, ties by original position)
//!   hoists cheap instructions out of as many enumeration loops as
//!   dependencies allow.
//! * **Optimization 3 — triangle caching** (`triangle_cache`): a
//!   two-operand intersection `Intersect(A_i, A_j)` where one endpoint is
//!   the start vertex and the other is its pattern neighbour enumerates
//!   triangles around the start vertex; it is rewritten into a TRC
//!   instruction backed by the per-thread triangle cache.

use crate::generate::uni_operand_elimination;
use crate::ir::{ExecutionPlan, InstrKind, Instruction, SetVar};
use std::collections::HashMap;

/// Which optimizations to apply; the paper's evaluation (Exp-2) ablates
/// them cumulatively.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptimizeOptions {
    /// Optimization 1: common-subexpression elimination.
    pub cse: bool,
    /// Optimization 2: flatten + dependency-ranked reordering.
    pub reorder: bool,
    /// Optimization 3: triangle-cache rewriting.
    pub triangle_cache: bool,
    /// Extension (paper §IV-B future work): generalize the cache to
    /// k-cliques — intersections whose operands compose adjacency sets of
    /// a pattern clique are served from a per-thread clique cache.
    /// Off by default (the paper's configuration).
    pub clique_cache: bool,
}

impl OptimizeOptions {
    /// All of the paper's optimizations on (its default configuration;
    /// the clique-cache extension stays off).
    pub fn all() -> Self {
        OptimizeOptions {
            cse: true,
            reorder: true,
            triangle_cache: true,
            clique_cache: false,
        }
    }

    /// The paper's optimizations plus the clique-cache extension.
    pub fn all_with_clique_cache() -> Self {
        OptimizeOptions {
            clique_cache: true,
            ..OptimizeOptions::all()
        }
    }

    /// No optimizations (raw plan).
    pub fn none() -> Self {
        OptimizeOptions {
            cse: false,
            reorder: false,
            triangle_cache: false,
            clique_cache: false,
        }
    }
}

/// Applies the selected optimizations in the paper's order
/// (Opt1 → Opt2 → Opt3).
pub fn optimize(plan: &mut ExecutionPlan, opts: OptimizeOptions) {
    if opts.cse {
        eliminate_common_subexpressions(plan);
    }
    if opts.reorder {
        flatten_intersections(plan);
        reorder_instructions(plan);
    }
    if opts.triangle_cache {
        apply_triangle_cache(plan);
    }
    if opts.clique_cache {
        apply_clique_cache(plan);
    }
    debug_assert_eq!(plan.validate(), Ok(()));
}

/// Optimization 1. Repeatedly finds the best common operand combination
/// (size ≥ 2, appearing in ≥ 2 INT instructions) and hoists it into a
/// fresh temporary, then runs uni-operand elimination.
pub fn eliminate_common_subexpressions(plan: &mut ExecutionPlan) {
    let mut next_tmp = fresh_tmp_index(plan);
    loop {
        // Canonical (sorted) subset -> (frequency, first instruction idx).
        let mut stats: HashMap<Vec<SetVar>, (usize, usize)> = HashMap::new();
        for (idx, instr) in plan.instructions.iter().enumerate() {
            let Instruction::Intersect { operands, .. } = instr else {
                continue;
            };
            if operands.len() < 2 {
                continue;
            }
            for subset in subsets_of_size_at_least_two(operands) {
                let entry = stats.entry(subset).or_insert((0, idx));
                entry.0 += 1;
            }
        }
        // Pick: most operands, then most frequent, then first appearing.
        let best = stats
            .into_iter()
            .filter(|(_, (freq, _))| *freq >= 2)
            .max_by(|(sa, (fa, ia)), (sb, (fb, ib))| {
                sa.len().cmp(&sb.len()).then(fa.cmp(fb)).then(ib.cmp(ia)) // smaller first index wins
            });
        let Some((subset, (_, first_idx))) = best else {
            break;
        };

        // Emit the hoisted temporary with operands in the order they
        // appear in the first containing instruction.
        let ordered_operands = match &plan.instructions[first_idx] {
            Instruction::Intersect { operands, .. } => operands
                .iter()
                .copied()
                .filter(|op| subset.contains(op))
                .collect::<Vec<_>>(),
            _ => unreachable!("subset recorded on a non-INT instruction"),
        };
        let tmp = SetVar::Tmp(next_tmp);
        next_tmp += 1;

        // Replace the subset in every INT instruction containing it.
        for instr in plan.instructions.iter_mut() {
            let Instruction::Intersect { operands, .. } = instr else {
                continue;
            };
            if subset.iter().all(|s| operands.contains(s)) && operands.len() >= subset.len() {
                let first_pos = operands.iter().position(|op| subset.contains(op)).unwrap();
                operands.retain(|op| !subset.contains(op));
                operands.insert(first_pos.min(operands.len()), tmp);
            }
        }
        plan.instructions.insert(
            first_idx,
            Instruction::Intersect {
                target: tmp,
                operands: ordered_operands,
                filters: vec![],
            },
        );
    }
    uni_operand_elimination(plan);
}

/// All sorted operand subsets of size ≥ 2 (operand lists are tiny).
fn subsets_of_size_at_least_two(operands: &[SetVar]) -> Vec<Vec<SetVar>> {
    let n = operands.len();
    let mut out = Vec::new();
    for mask in 1u32..(1 << n) {
        if mask.count_ones() >= 2 {
            let mut subset: Vec<SetVar> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| operands[i])
                .collect();
            subset.sort_unstable();
            out.push(subset);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Smallest temporary index not used by the plan; raw generation names raw
/// candidates `Tmp(u)` for pattern vertices `u`, so fresh temporaries start
/// at `n`.
fn fresh_tmp_index(plan: &ExecutionPlan) -> usize {
    let mut next = plan.pattern.num_vertices();
    for instr in &plan.instructions {
        if let Some(SetVar::Tmp(t)) = instr.defined_set() {
            next = next.max(t + 1);
        }
    }
    next
}

/// Step 1 of Optimization 2: INT instructions with more than two operands
/// are flattened into chains of two-operand INTs, operands ordered by
/// definition position (earlier-defined first) so later reordering can
/// hoist prefixes independently.
pub fn flatten_intersections(plan: &mut ExecutionPlan) {
    let mut next_tmp = fresh_tmp_index(plan);
    let mut out: Vec<Instruction> = Vec::with_capacity(plan.instructions.len());
    for instr in plan.instructions.drain(..) {
        match instr {
            Instruction::Intersect {
                target,
                mut operands,
                filters,
            } if operands.len() > 2 => {
                // Definition position of each operand in the output so far
                // (AllVertices counts as always-defined).
                let def_pos = |s: SetVar, out: &[Instruction]| -> isize {
                    if s == SetVar::AllVertices {
                        return -1;
                    }
                    out.iter()
                        .position(|i| i.defined_set() == Some(s))
                        .map(|p| p as isize)
                        .unwrap_or(isize::MAX)
                };
                operands.sort_by_key(|&s| def_pos(s, &out));
                let mut acc = operands[0];
                for (i, &op) in operands.iter().enumerate().skip(1) {
                    let is_last = i + 1 == operands.len();
                    let (tgt, flt) = if is_last {
                        (target, filters.clone())
                    } else {
                        let t = SetVar::Tmp(next_tmp);
                        next_tmp += 1;
                        (t, vec![])
                    };
                    out.push(Instruction::Intersect {
                        target: tgt,
                        operands: vec![acc, op],
                        filters: flt,
                    });
                    acc = tgt;
                }
            }
            other => out.push(other),
        }
    }
    plan.instructions = out;
}

/// Rank used to break ties in the topological sort: cheap, failure-
/// detecting instructions first; loop-opening instructions last.
fn rank(kind: InstrKind) -> u8 {
    match kind {
        InstrKind::Ini => 0,
        InstrKind::Int => 1,
        InstrKind::Trc => 2,
        InstrKind::Dbq => 3,
        InstrKind::Enu => 4,
        InstrKind::Res => 5,
    }
}

/// Steps 2–3 of Optimization 2: builds the dependency graph (an edge
/// `I1 → I2` whenever `I2` reads `I1`'s target variable) and emits a
/// topological order choosing, among ready instructions, the one with the
/// lowest `(rank, original position)`.
pub fn reorder_instructions(plan: &mut ExecutionPlan) {
    let n = plan.instructions.len();
    // defs
    let mut set_def: HashMap<SetVar, usize> = HashMap::new();
    let mut vertex_def: HashMap<usize, usize> = HashMap::new();
    for (idx, instr) in plan.instructions.iter().enumerate() {
        if let Some(s) = instr.defined_set() {
            set_def.insert(s, idx);
        }
        if let Some(v) = instr.defined_vertex() {
            vertex_def.insert(v, idx);
        }
    }
    // dependency edges: deps[i] = set of instruction indices i reads from
    let mut indegree = vec![0usize; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (idx, instr) in plan.instructions.iter().enumerate() {
        let mut deps: Vec<usize> = Vec::new();
        for s in instr.used_sets() {
            if let Some(&d) = set_def.get(&s) {
                deps.push(d);
            }
        }
        for v in instr.used_vertices() {
            if let Some(&d) = vertex_def.get(&v) {
                deps.push(d);
            }
        }
        deps.sort_unstable();
        deps.dedup();
        for d in deps {
            debug_assert!(d != idx, "self-dependency");
            dependents[d].push(idx);
            indegree[idx] += 1;
        }
    }
    // ranked topological sort (plans are tiny: linear scan per step)
    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    while let Some(pos) = ready
        .iter()
        .enumerate()
        .min_by_key(|(_, &i)| (rank(plan.instructions[i].kind()), i))
        .map(|(p, _)| p)
    {
        let i = ready.swap_remove(pos);
        order.push(i);
        for &j in &dependents[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                ready.push(j);
            }
        }
    }
    assert_eq!(order.len(), n, "dependency cycle in execution plan");
    let mut instructions = Vec::with_capacity(n);
    for &i in &order {
        instructions.push(plan.instructions[i].clone());
    }
    plan.instructions = instructions;
}

/// Optimization 3: rewrites `X := Intersect(A_i, A_j)` into
/// `X := TCache(f_i, f_j, A_i, A_j)` whenever one of `u_i, u_j` is the
/// start vertex and the other is a pattern neighbour of it (the guarantee
/// that `f_i` and `f_j` are adjacent in `G`, i.e. the result is the
/// triangle set of a data edge).
pub fn apply_triangle_cache(plan: &mut ExecutionPlan) {
    let start = plan.start_vertex();
    let pattern = plan.pattern.clone();
    for instr in plan.instructions.iter_mut() {
        let Instruction::Intersect {
            target,
            operands,
            filters,
        } = instr
        else {
            continue;
        };
        if operands.len() != 2 {
            continue;
        }
        let (SetVar::Adj(i), SetVar::Adj(j)) = (operands[0], operands[1]) else {
            continue;
        };
        let qualifies = (i == start && pattern.has_edge(start, j))
            || (j == start && pattern.has_edge(start, i));
        if qualifies {
            *instr = Instruction::TCache {
                target: *target,
                a: i,
                b: j,
                filters: std::mem::take(filters),
            };
        }
    }
}

/// Extension of Optimization 3 to k-cliques (the paper's §IV-B future
/// work): an intersection whose value is a pure composition
/// `∩_{v∈S} A_v` with `S` a clique of `P` (|S| ≥ 3) computes the set of
/// vertices completing a (|S|+1)-clique with the mapped images — it is
/// rewritten to read the per-thread clique cache.
///
/// Filtered intersections are rewritten too (the raw composition is
/// cached, filters apply per use), but an instruction is only rewritten
/// when *its own result* equals the raw composition or a filtered view of
/// it — i.e. its operands' compositions are all pure.
pub fn apply_clique_cache(plan: &mut ExecutionPlan) {
    use std::collections::BTreeSet;
    let pattern = plan.pattern.clone();
    // Composition of each set variable: Some(set of pattern vertices whose
    // adjacency sets it intersects) if it is a pure unfiltered
    // composition, None otherwise.
    let mut composition: HashMap<SetVar, Option<BTreeSet<usize>>> = HashMap::new();
    let compose = |operands: &[SetVar],
                   composition: &HashMap<SetVar, Option<BTreeSet<usize>>>|
     -> Option<BTreeSet<usize>> {
        let mut all = BTreeSet::new();
        for op in operands {
            match op {
                SetVar::Adj(v) => {
                    all.insert(*v);
                }
                SetVar::AllVertices => return None,
                other => match composition.get(other) {
                    Some(Some(s)) => all.extend(s.iter().copied()),
                    _ => return None,
                },
            }
        }
        Some(all)
    };
    let is_clique = |s: &BTreeSet<usize>| {
        let verts: Vec<usize> = s.iter().copied().collect();
        verts
            .iter()
            .enumerate()
            .all(|(i, &a)| verts[i + 1..].iter().all(|&b| pattern.has_edge(a, b)))
    };

    for instr in plan.instructions.iter_mut() {
        match instr {
            Instruction::TCache {
                target,
                a,
                b,
                filters,
            } => {
                let comp: BTreeSet<usize> = [*a, *b].into_iter().collect();
                let pure = filters.is_empty();
                composition.insert(*target, pure.then_some(comp));
            }
            Instruction::Intersect {
                target,
                operands,
                filters,
            } => {
                let comp = compose(operands, &composition);
                if let Some(comp) = &comp {
                    if comp.len() >= 3 && is_clique(comp) {
                        let verts: Vec<usize> = comp.iter().copied().collect();
                        let new_instr = Instruction::KCache {
                            target: *target,
                            verts,
                            filters: std::mem::take(filters),
                        };
                        let pure = matches!(&new_instr, Instruction::KCache { filters, .. } if filters.is_empty());
                        composition.insert(*target, pure.then(|| comp.clone()));
                        *instr = new_instr;
                        continue;
                    }
                }
                let pure = filters.is_empty();
                composition.insert(*target, if pure { comp } else { None });
            }
            Instruction::KCache {
                target,
                verts,
                filters,
            } => {
                let comp: BTreeSet<usize> = verts.iter().copied().collect();
                let pure = filters.is_empty();
                composition.insert(*target, pure.then_some(comp));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::raw_plan;
    use crate::ir::{FilterCond, ResultItem};
    use benu_pattern::{queries, SymmetryBreaking};

    fn demo_plan(opts: OptimizeOptions) -> ExecutionPlan {
        let p = queries::demo_pattern();
        let sb = SymmetryBreaking::compute(&p);
        let mut plan = raw_plan(&p, &[0, 2, 4, 1, 5, 3], &sb);
        optimize(&mut plan, opts);
        plan
    }

    #[test]
    fn cse_reproduces_fig_3c() {
        let plan = demo_plan(OptimizeOptions {
            cse: true,
            reorder: false,
            triangle_cache: false,
            clique_cache: false,
        });
        // The common subexpression {A1, A3} (0-based {A0, A2}) is hoisted
        // into the fresh temporary T7 = Tmp(6)...
        let tmp6 = plan
            .instructions
            .iter()
            .find(|i| i.defined_set() == Some(SetVar::Tmp(6)))
            .expect("hoisted temporary exists");
        assert_eq!(
            tmp6,
            &Instruction::Intersect {
                target: SetVar::Tmp(6),
                operands: vec![SetVar::Adj(0), SetVar::Adj(2)],
                filters: vec![]
            }
        );
        // ...u2's candidate now reads the temporary directly (T2 was
        // removed by uni-operand elimination)...
        assert!(plan.instructions.iter().any(|i| matches!(
            i,
            Instruction::Intersect { target: SetVar::Cand(1), operands, .. }
                if operands == &vec![SetVar::Tmp(6)]
        )));
        // ...and u4's raw candidate becomes Intersect(T7, A5).
        assert!(plan.instructions.iter().any(|i| matches!(
            i,
            Instruction::Intersect { target: SetVar::Tmp(3), operands, .. }
                if operands == &vec![SetVar::Tmp(6), SetVar::Adj(4)]
        )));
        // No common subexpression remains: {A1, A5} now appears only once.
        let int_count = plan.count_kind(InstrKind::Int);
        assert_eq!(int_count, 8); // C3, C5, T7, C2, T6, C6, T4, C4
    }

    #[test]
    fn reorder_reproduces_fig_3d() {
        let plan = demo_plan(OptimizeOptions {
            cse: true,
            reorder: true,
            triangle_cache: false,
            clique_cache: false,
        });
        // Expected instruction sequence derived in the paper's Fig. 3d
        // (0-based variable names; T7→Tmp6, T6→Tmp5, T4→Tmp3).
        use Instruction as I;
        let kinds: Vec<_> = plan
            .instructions
            .iter()
            .map(|i| match i {
                I::Init { vertex } => format!("f{vertex}"),
                I::GetAdj { vertex } => format!("A{vertex}"),
                I::Intersect { target, .. } => format!("{target:?}"),
                I::Foreach { vertex, .. } => format!("f{vertex}"),
                I::TCache { target, .. } => format!("TC{target:?}"),
                I::KCache { target, .. } => format!("KC{target:?}"),
                I::ReportMatch { .. } => "RES".into(),
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                "f0", "A0", "Cand(2)", "f2", "Cand(4)", "A2", "Tmp(6)", "f4", "Cand(1)", "A4",
                "Tmp(5)", "Tmp(3)", "f1", "Cand(5)", "f5", "Cand(3)", "f3", "RES"
            ]
        );
        // T4 (Tmp(3)) was hoisted before the ENUs of f2 and f6
        // ("moved forward crossing the ENU instructions of f2 and f6").
        let pos_t4 = kinds.iter().position(|k| k == "Tmp(3)").unwrap();
        let pos_f1 = kinds.iter().position(|k| k == "f1").unwrap();
        let pos_f5 = kinds.iter().position(|k| k == "f5").unwrap();
        assert!(pos_t4 < pos_f1 && pos_t4 < pos_f5);
    }

    #[test]
    fn triangle_cache_reproduces_fig_3e() {
        let plan = demo_plan(OptimizeOptions::all());
        // Exactly the two triangle-enumerating intersections become TRC.
        let trcs: Vec<_> = plan
            .instructions
            .iter()
            .filter_map(|i| match i {
                Instruction::TCache { a, b, .. } => Some((*a, *b)),
                _ => None,
            })
            .collect();
        assert_eq!(trcs, vec![(0, 2), (0, 4)]);
        assert_eq!(plan.count_kind(InstrKind::Trc), 2);
        plan.validate().unwrap();
    }

    #[test]
    fn triangle_cache_requires_pattern_adjacency() {
        // 5-cycle has no triangles: no INT may become TRC.
        let p = queries::q5();
        let sb = SymmetryBreaking::compute(&p);
        let mut plan = raw_plan(&p, &[0, 1, 2, 3, 4], &sb);
        optimize(&mut plan, OptimizeOptions::all());
        assert_eq!(plan.count_kind(InstrKind::Trc), 0);
    }

    #[test]
    fn triangle_pattern_candidate_becomes_cached_with_filters() {
        let p = queries::triangle();
        let sb = SymmetryBreaking::compute(&p);
        let mut plan = raw_plan(&p, &[0, 1, 2], &sb);
        optimize(&mut plan, OptimizeOptions::all());
        // T2 := Intersect(A0, A1) qualifies (u0 is the start, u1 its
        // neighbour); the symmetry filters stay on the separate refined
        // candidate C2 := Intersect(T2)[≻f0, ≻f1].
        let trc = plan
            .instructions
            .iter()
            .find_map(|i| match i {
                Instruction::TCache { a, b, target, .. } => Some((*a, *b, *target)),
                _ => None,
            })
            .expect("triangle candidate cached");
        assert_eq!((trc.0, trc.1), (0, 1));
        let cand_filters = plan
            .instructions
            .iter()
            .find_map(|i| match i {
                Instruction::Intersect {
                    target: SetVar::Cand(2),
                    operands,
                    filters,
                } => {
                    assert_eq!(operands, &vec![trc.2]);
                    Some(filters.clone())
                }
                _ => None,
            })
            .unwrap();
        assert_eq!(
            cand_filters,
            vec![FilterCond::greater(0), FilterCond::greater(1)]
        );
    }

    #[test]
    fn flatten_limits_operands_to_two() {
        let p = queries::clique(5);
        let sb = SymmetryBreaking::compute(&p);
        let mut plan = raw_plan(&p, &[0, 1, 2, 3, 4], &sb);
        flatten_intersections(&mut plan);
        for instr in &plan.instructions {
            if let Instruction::Intersect { operands, .. } = instr {
                assert!(operands.len() <= 2);
            }
        }
        plan.validate().unwrap();
    }

    #[test]
    fn reorder_preserves_dbq_enu_relative_order() {
        for (name, p) in queries::catalogue() {
            let sb = SymmetryBreaking::compute(&p);
            let order: Vec<_> = (0..p.num_vertices()).collect();
            let raw = raw_plan(&p, &order, &sb);
            let raw_seq: Vec<_> = raw
                .instructions
                .iter()
                .filter(|i| matches!(i.kind(), InstrKind::Dbq | InstrKind::Enu))
                .cloned()
                .collect();
            let mut opt = raw.clone();
            optimize(
                &mut opt,
                OptimizeOptions {
                    cse: true,
                    reorder: true,
                    triangle_cache: false,
                    clique_cache: false,
                },
            );
            let opt_seq: Vec<_> = opt
                .instructions
                .iter()
                .filter(|i| matches!(i.kind(), InstrKind::Dbq | InstrKind::Enu))
                .cloned()
                .collect();
            assert_eq!(raw_seq, opt_seq, "{name}: DBQ/ENU order changed");
        }
    }

    #[test]
    fn optimized_plans_validate_for_catalogue() {
        for (name, p) in queries::catalogue() {
            let sb = SymmetryBreaking::compute(&p);
            let order: Vec<_> = (0..p.num_vertices()).collect();
            let mut plan = raw_plan(&p, &order, &sb);
            optimize(&mut plan, OptimizeOptions::all());
            plan.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            // RES still reports every pattern vertex.
            if let Some(Instruction::ReportMatch { items }) = plan.instructions.last() {
                assert_eq!(items.len(), p.num_vertices());
                assert!(items.iter().all(|it| matches!(it, ResultItem::Vertex(_))));
            } else {
                panic!("{name}: plan does not end with RES");
            }
        }
    }

    #[test]
    fn cse_terminates_on_cliques() {
        // K7 raw plans have many overlapping subexpressions; elimination
        // must converge and stay valid.
        let p = queries::clique(7);
        let sb = SymmetryBreaking::compute(&p);
        let order: Vec<_> = (0..7).collect();
        let mut plan = raw_plan(&p, &order, &sb);
        eliminate_common_subexpressions(&mut plan);
        plan.validate().unwrap();
        // After CSE, no operand combination appears in two instructions.
        let mut seen = std::collections::HashSet::new();
        for instr in &plan.instructions {
            if let Instruction::Intersect { operands, .. } = instr {
                if operands.len() >= 2 {
                    let mut key = operands.clone();
                    key.sort_unstable();
                    assert!(seen.insert(key), "duplicate operand set remains");
                }
            }
        }
    }

    #[test]
    fn clique_cache_rewrites_clique_compositions() {
        // K5's plan chains TCache(A1,A2) with A3, A4: the chained
        // intersections compose {1,2,3}, {1,2,3,4} — both pattern cliques.
        let p = queries::clique(5);
        let sb = SymmetryBreaking::compute(&p);
        let mut plan = raw_plan(&p, &[0, 1, 2, 3, 4], &sb);
        optimize(&mut plan, OptimizeOptions::all_with_clique_cache());
        let kcaches: Vec<Vec<usize>> = plan
            .instructions
            .iter()
            .filter_map(|i| match i {
                Instruction::KCache { verts, .. } => Some(verts.clone()),
                _ => None,
            })
            .collect();
        assert!(
            kcaches.contains(&vec![0, 1, 2]),
            "triangle composition cached: {kcaches:?}"
        );
        plan.validate().unwrap();
    }

    #[test]
    fn clique_cache_skips_non_clique_compositions() {
        // q5 (5-cycle) has no pattern triangles, so no composition is a
        // clique of size >= 3.
        let p = queries::q5();
        let sb = SymmetryBreaking::compute(&p);
        let mut plan = raw_plan(&p, &[0, 1, 2, 3, 4], &sb);
        optimize(&mut plan, OptimizeOptions::all_with_clique_cache());
        assert!(!plan
            .instructions
            .iter()
            .any(|i| matches!(i, Instruction::KCache { .. })));
    }

    #[test]
    fn clique_cache_never_rewrites_through_filtered_values() {
        // A filtered intersection's value is not the pure composition; its
        // consumers must not be rewritten into cache reads.
        for (name, p) in queries::catalogue() {
            let sb = SymmetryBreaking::compute(&p);
            let order: Vec<_> = (0..p.num_vertices()).collect();
            let mut plan = raw_plan(&p, &order, &sb);
            optimize(&mut plan, OptimizeOptions::all_with_clique_cache());
            plan.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            // Every KCache instruction's vertex set is truly a clique.
            for instr in &plan.instructions {
                if let Instruction::KCache { verts, .. } = instr {
                    assert!(verts.len() >= 3);
                    for (i, &a) in verts.iter().enumerate() {
                        for &b in &verts[i + 1..] {
                            assert!(p.has_edge(a, b), "{name}: non-clique cached");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn filters_survive_cse_and_reorder() {
        let plan = demo_plan(OptimizeOptions::all());
        // C5 keeps the symmetry-breaking condition ≻ f3 (u3 < u5).
        let c4 = plan
            .instructions
            .iter()
            .find_map(|i| match i {
                Instruction::Intersect {
                    target: SetVar::Cand(4),
                    filters,
                    ..
                } => Some(filters.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(c4, vec![FilterCond::greater(2)]);
    }
}
