//! Best execution-plan generation (paper §IV-D, Algorithm 3).
//!
//! The search enumerates matching orders depth-first, maintaining each
//! partial order's communication cost incrementally. Two prunings keep the
//! explored space far below `n!`:
//!
//! * **dual pruning** — syntactically equivalent vertices generate
//!   cost-identical dual plans, so only ascending-index placements are
//!   explored;
//! * **cost-based pruning** — a partial order whose communication cost
//!   already exceeds the best-known full order is abandoned.
//!
//! The candidate orders with minimum communication cost are then compiled
//! into optimized plans and ranked by estimated computation cost. The
//! counters `alpha` (cardinality estimations during the search) and `beta`
//! (optimized plans generated) are exactly the quantities Table IV reports
//! relative to their upper bounds `Σ_i P(n, i)` and `n!`.

use crate::cost::{estimate_computation_cost, CardinalityEstimator};
use crate::generate::raw_plan;
use crate::ir::ExecutionPlan;
use crate::optimize::{optimize, OptimizeOptions};
use benu_pattern::se::SyntacticEquivalence;
use benu_pattern::{Pattern, PatternVertex, SymmetryBreaking};
use std::time::{Duration, Instant};

/// Instrumentation of one best-plan search (Table IV's measurements).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SearchStats {
    /// Number of cardinality-estimation operations performed during the
    /// matching-order search (the paper's α).
    pub alpha: usize,
    /// Number of optimized execution plans generated from candidate orders
    /// (the paper's β).
    pub beta: usize,
    /// Wall-clock time of the whole search.
    pub elapsed: Duration,
}

impl SearchStats {
    /// α's upper bound `Σ_{i=1..n} P(n, i)` (partial permutations).
    pub fn alpha_upper_bound(n: usize) -> f64 {
        let mut total = 0.0;
        let mut perms = 1.0;
        for i in 0..n {
            perms *= (n - i) as f64;
            total += perms;
        }
        total
    }

    /// β's upper bound `n!`.
    pub fn beta_upper_bound(n: usize) -> f64 {
        (1..=n).map(|i| i as f64).product()
    }
}

/// The outcome of a best-plan search.
#[derive(Clone, Debug)]
pub struct BestPlanResult {
    /// The winning (optimized, uncompressed) plan.
    pub plan: ExecutionPlan,
    /// Estimated communication cost of the winning matching order.
    pub comm_cost: f64,
    /// Estimated computation cost of the winning plan.
    pub comp_cost: f64,
    /// Search instrumentation.
    pub stats: SearchStats,
}

/// Runs Algorithm 3: finds the execution plan with minimum
/// (communication, computation) cost over all matching orders.
pub fn best_plan(pattern: &Pattern, estimator: &dyn CardinalityEstimator) -> BestPlanResult {
    let start_time = Instant::now();
    let n = pattern.num_vertices();
    assert!(n >= 2, "patterns need at least two vertices");
    let se = SyntacticEquivalence::compute(pattern);
    let symmetry = SymmetryBreaking::compute(pattern);

    let mut ctx = SearchCtx {
        pattern,
        estimator,
        se: &se,
        best_comm: f64::INFINITY,
        candidates: Vec::new(),
        alpha: 0,
    };
    let mut order = Vec::with_capacity(n);
    ctx.search(&mut order, 0, 0.0);

    // Rank candidate orders by computation cost of their optimized plans.
    let mut best: Option<(ExecutionPlan, f64)> = None;
    let beta = ctx.candidates.len();
    for order in &ctx.candidates {
        let mut plan = raw_plan(pattern, order, &symmetry);
        optimize(&mut plan, OptimizeOptions::all());
        let cost = estimate_computation_cost(&plan, estimator);
        if best.as_ref().is_none_or(|(_, c)| cost < *c) {
            best = Some((plan, cost));
        }
    }
    let (plan, comp_cost) = best.expect("at least one matching order exists");
    BestPlanResult {
        plan,
        comm_cost: ctx.best_comm,
        comp_cost,
        stats: SearchStats {
            alpha: ctx.alpha,
            beta,
            elapsed: start_time.elapsed(),
        },
    }
}

struct SearchCtx<'a> {
    pattern: &'a Pattern,
    estimator: &'a dyn CardinalityEstimator,
    se: &'a SyntacticEquivalence,
    best_comm: f64,
    candidates: Vec<Vec<PatternVertex>>,
    alpha: usize,
}

impl SearchCtx<'_> {
    fn search(&mut self, order: &mut Vec<PatternVertex>, used: u64, comm_cost: f64) {
        let n = self.pattern.num_vertices();
        if order.len() == n {
            if comm_cost < self.best_comm {
                self.best_comm = comm_cost;
                self.candidates.clear();
                self.candidates.push(order.clone());
            } else if comm_cost == self.best_comm {
                self.candidates.push(order.clone());
            }
            return;
        }
        let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let unused = full & !used;
        for u in 0..n {
            if unused & (1 << u) == 0 {
                continue;
            }
            // Dual pruning: skip orders where an SE-equivalent vertex with
            // a smaller index is still unused.
            if !self.se.passes_dual_condition(u, unused) {
                continue;
            }
            let used_next = used | (1 << u);
            let remaining = full & !used_next;
            // Case 1: a DBQ will be generated for u — its execution count
            // is the match count of the partial pattern including u.
            let s = if self.pattern.neighbor_mask(u) & remaining != 0 {
                self.alpha += 1;
                self.estimator
                    .estimate_pattern_subset(self.pattern, used_next)
            } else {
                // Case 2: all of u's neighbours are already placed.
                0.0
            };
            let comm_next = comm_cost + s;
            // Cost-based pruning.
            if comm_next > self.best_comm {
                continue;
            }
            order.push(u);
            self.search(order, used_next, comm_next);
            order.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::GraphStatsEstimator;
    use benu_pattern::queries;

    fn est() -> GraphStatsEstimator {
        GraphStatsEstimator::new(100_000, 1_000_000)
    }

    #[test]
    fn best_plan_for_triangle_is_valid_and_minimal() {
        let r = best_plan(&queries::triangle(), &est());
        r.plan.validate().unwrap();
        assert_eq!(r.plan.num_levels(), 2);
        // Triangle: all orders are duals of [0,1,2]; dual pruning leaves
        // exactly one candidate order.
        assert_eq!(r.stats.beta, 1);
    }

    #[test]
    fn search_explores_fraction_of_upper_bounds() {
        for (name, p) in queries::evaluation_queries() {
            let r = best_plan(&p, &est());
            let n = p.num_vertices();
            let alpha_rel = r.stats.alpha as f64 / SearchStats::alpha_upper_bound(n);
            let beta_rel = r.stats.beta as f64 / SearchStats::beta_upper_bound(n);
            assert!(alpha_rel <= 1.0, "{name}: alpha exceeds bound");
            assert!(
                beta_rel < 0.5,
                "{name}: pruning should cut most orders (got {beta_rel})"
            );
            r.plan.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn clique_search_collapses_to_single_order() {
        // All K5 vertices are SE-equivalent: dual pruning admits only the
        // ascending order.
        let r = best_plan(&queries::clique(5), &est());
        assert_eq!(r.stats.beta, 1);
        assert_eq!(r.plan.matching_order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn best_plan_beats_or_ties_arbitrary_order() {
        use crate::cost::estimate_communication_cost;
        let p = queries::q7();
        let e = est();
        let r = best_plan(&p, &e);
        // Compare with the natural order's communication cost.
        let sb = SymmetryBreaking::compute(&p);
        let natural = raw_plan(&p, &[0, 1, 2, 3, 4, 5], &sb);
        let natural_comm = estimate_communication_cost(&natural, &e);
        assert!(r.comm_cost <= natural_comm + 1e-6);
    }

    #[test]
    fn comm_cost_matches_plan_reconstruction() {
        // The incrementally-maintained search cost must equal the cost
        // computed from the final plan's instruction list.
        use crate::cost::estimate_communication_cost;
        let p = queries::q1();
        let e = est();
        let r = best_plan(&p, &e);
        let direct = estimate_communication_cost(&r.plan, &e);
        assert!(
            (direct - r.comm_cost).abs() / r.comm_cost.max(1.0) < 1e-9,
            "search cost {} vs plan cost {direct}",
            r.comm_cost
        );
    }

    #[test]
    fn upper_bounds_are_correct() {
        assert_eq!(SearchStats::beta_upper_bound(4), 24.0);
        // Σ P(4, i) = 4 + 12 + 24 + 24 = 64.
        assert_eq!(SearchStats::alpha_upper_bound(4), 64.0);
    }
}
