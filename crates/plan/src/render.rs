//! Paper-style textual rendering of execution plans.
//!
//! Plans print in the notation of Fig. 3 — `f1:=Init(start)`,
//! `T7:=Intersect(A1,A3)`, `C5:=Intersect(A1)[|>f3]` — with 1-based
//! variable indices to match the paper, plus loop indentation showing the
//! backtracking nesting.

use crate::ir::{ExecutionPlan, FilterCond, FilterOp, Instruction, ResultItem, SetVar};
use std::fmt::Write as _;

fn set_name(s: SetVar) -> String {
    match s {
        SetVar::Adj(i) => format!("A{}", i + 1),
        SetVar::Cand(i) => format!("C{}", i + 1),
        SetVar::Tmp(i) => format!("T{}", i + 1),
        SetVar::AllVertices => "V(G)".to_string(),
    }
}

fn filter_name(fc: &FilterCond) -> String {
    let v = fc.vertex + 1;
    match fc.op {
        FilterOp::Less => format!("<f{v}"),
        FilterOp::Greater => format!(">f{v}"),
        FilterOp::NotEqual => format!("!=f{v}"),
    }
}

fn filters_suffix(filters: &[FilterCond]) -> String {
    if filters.is_empty() {
        String::new()
    } else {
        let parts: Vec<_> = filters.iter().map(filter_name).collect();
        format!("[|{}]", parts.join(","))
    }
}

/// Renders `plan` in the paper's textual notation, one numbered line per
/// instruction, indented by enumeration depth.
pub fn render(plan: &ExecutionPlan) -> String {
    let mut out = String::new();
    let mut depth = 0usize;
    for (idx, instr) in plan.instructions.iter().enumerate() {
        let _ = write!(out, "{:>2}  {}", idx + 1, "  ".repeat(depth));
        match instr {
            Instruction::Init { vertex } => {
                let _ = writeln!(out, "f{} := Init(start)", vertex + 1);
            }
            Instruction::GetAdj { vertex } => {
                let _ = writeln!(out, "A{0} := GetAdj(f{0})", vertex + 1);
            }
            Instruction::Intersect {
                target,
                operands,
                filters,
            } => {
                let ops: Vec<_> = operands.iter().map(|&o| set_name(o)).collect();
                let _ = writeln!(
                    out,
                    "{} := Intersect({}){}",
                    set_name(*target),
                    ops.join(","),
                    filters_suffix(filters)
                );
            }
            Instruction::Foreach { vertex, source } => {
                let _ = writeln!(out, "f{} := Foreach({})", vertex + 1, set_name(*source));
                depth += 1;
            }
            Instruction::TCache {
                target,
                a,
                b,
                filters,
            } => {
                let _ = writeln!(
                    out,
                    "{} := TCache(f{1},f{2},A{1},A{2}){3}",
                    set_name(*target),
                    a + 1,
                    b + 1,
                    filters_suffix(filters)
                );
            }
            Instruction::KCache {
                target,
                verts,
                filters,
            } => {
                let fs: Vec<_> = verts.iter().map(|v| format!("f{}", v + 1)).collect();
                let adjs: Vec<_> = verts.iter().map(|v| format!("A{}", v + 1)).collect();
                let _ = writeln!(
                    out,
                    "{} := KCache({},{}){}",
                    set_name(*target),
                    fs.join(","),
                    adjs.join(","),
                    filters_suffix(filters)
                );
            }
            Instruction::ReportMatch { items } => {
                let parts: Vec<_> = items
                    .iter()
                    .map(|it| match it {
                        ResultItem::Vertex(v) => format!("f{}", v + 1),
                        ResultItem::ImageSet(s) => set_name(*s),
                    })
                    .collect();
                let _ = writeln!(out, "f := ReportMatch({})", parts.join(","));
            }
        }
    }
    out
}

impl std::fmt::Display for ExecutionPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&render(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::raw_plan;
    use crate::optimize::{optimize, OptimizeOptions};
    use benu_pattern::{queries, SymmetryBreaking};

    #[test]
    fn demo_plan_renders_paper_notation() {
        let p = queries::demo_pattern();
        let sb = SymmetryBreaking::compute(&p);
        let mut plan = raw_plan(&p, &[0, 2, 4, 1, 5, 3], &sb);
        optimize(&mut plan, OptimizeOptions::all());
        let text = render(&plan);
        assert!(text.contains("f1 := Init(start)"), "{text}");
        assert!(text.contains("A1 := GetAdj(f1)"), "{text}");
        // The hoisted common subexpression is T7 in the paper's numbering.
        assert!(text.contains("T7 := TCache(f1,f3,A1,A3)"), "{text}");
        assert!(text.contains("C5 := Intersect(A1)[|>f3]"), "{text}");
        assert!(
            text.trim_end()
                .ends_with("f := ReportMatch(f1,f2,f3,f4,f5,f6)"),
            "{text}"
        );
    }

    #[test]
    fn indentation_tracks_enumeration_depth() {
        let p = queries::triangle();
        let sb = SymmetryBreaking::compute(&p);
        let plan = raw_plan(&p, &[0, 1, 2], &sb);
        let text = render(&plan);
        let lines: Vec<&str> = text.lines().collect();
        // The RES line is nested under two Foreach loops.
        let res_line = lines.last().unwrap();
        assert!(res_line.contains("    f := ReportMatch"));
    }
}
