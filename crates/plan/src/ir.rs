//! The execution-plan instruction set (Table III of the paper).
//!
//! A plan is a straight-line instruction list; every `Foreach` (ENU)
//! instruction opens one nested level of the backtracking search, so the
//! instructions after it execute once per candidate vertex. Six instruction
//! kinds exist:
//!
//! | kind | paper form | meaning |
//! |------|-----------|---------|
//! | INI  | `f_i := Init(start)` | map the first pattern vertex to the task's start vertex |
//! | DBQ  | `A_i := GetAdj(f_i)` | fetch `Γ_G(f_i)` from the distributed database |
//! | INT  | `X := Intersect(…)[∣FCs]` | intersect operand sets, apply filter conditions |
//! | ENU  | `f_i := Foreach(X)` | loop `f_i` over `X`, entering the next search level |
//! | TRC  | `X := TCache(f_i, f_j, A_i, A_j)` | triangle-cached intersection |
//! | RES  | `f := ReportMatch(…)` | emit a (possibly VCBC-compressed) match |

use benu_pattern::PatternVertex;

/// A set-valued variable referenced by instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SetVar {
    /// `A_i` — the adjacency set of `f_i`.
    Adj(PatternVertex),
    /// `C_i` — the refined candidate set for pattern vertex `u_i`.
    Cand(PatternVertex),
    /// `T_j` — a temporary produced by an intersection.
    Tmp(usize),
    /// `V(G)` — the full vertex set of the data graph.
    AllVertices,
}

impl SetVar {
    /// True if this is an adjacency-set variable `A_i`.
    pub fn is_adj(self) -> bool {
        matches!(self, SetVar::Adj(_))
    }
}

/// Comparison operator of a filtering condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FilterOp {
    /// Symmetry-breaking: result vertices must satisfy `x ≺ f_i`.
    Less,
    /// Symmetry-breaking: result vertices must satisfy `f_i ≺ x`.
    Greater,
    /// Injectivity: result vertices must satisfy `x ≠ f_i`.
    NotEqual,
}

/// A filtering condition `[op f_vertex]` attached to an INT instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FilterCond {
    /// The comparison.
    pub op: FilterOp,
    /// The pattern vertex whose mapped data vertex `f_i` is compared
    /// against.
    pub vertex: PatternVertex,
}

impl FilterCond {
    /// `x ≺ f_v`.
    pub fn less(vertex: PatternVertex) -> Self {
        FilterCond {
            op: FilterOp::Less,
            vertex,
        }
    }
    /// `f_v ≺ x`.
    pub fn greater(vertex: PatternVertex) -> Self {
        FilterCond {
            op: FilterOp::Greater,
            vertex,
        }
    }
    /// `x ≠ f_v`.
    pub fn not_equal(vertex: PatternVertex) -> Self {
        FilterCond {
            op: FilterOp::NotEqual,
            vertex,
        }
    }
}

/// One item of the RES instruction's output tuple.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ResultItem {
    /// An enumerated vertex `f_i`.
    Vertex(PatternVertex),
    /// A conditional image set `C_i` (VCBC-compressed output for a
    /// non-cover pattern vertex `u_i`).
    ImageSet(SetVar),
}

/// One execution instruction (Table III).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Instruction {
    /// INI — `f_i := Init(start)`.
    Init {
        /// The first pattern vertex of the matching order.
        vertex: PatternVertex,
    },
    /// DBQ — `A_i := GetAdj(f_i)`.
    GetAdj {
        /// The pattern vertex whose mapped data vertex is queried.
        vertex: PatternVertex,
    },
    /// INT — `target := Intersect(operands)[∣filters]`.
    Intersect {
        /// The variable that stores the result set.
        target: SetVar,
        /// Operand sets; one or more.
        operands: Vec<SetVar>,
        /// Optional filtering conditions applied to the result.
        filters: Vec<FilterCond>,
    },
    /// ENU — `f_i := Foreach(source)`.
    Foreach {
        /// The pattern vertex being mapped.
        vertex: PatternVertex,
        /// The candidate set looped over.
        source: SetVar,
    },
    /// TRC — `target := TCache(f_a, f_b, A_a, A_b)`.
    TCache {
        /// The variable that stores the (cached) triangle set.
        target: SetVar,
        /// First endpoint; by construction one of `a`, `b` is the start
        /// vertex of the matching order.
        a: PatternVertex,
        /// Second endpoint.
        b: PatternVertex,
        /// Filtering conditions applied to the result (inherited from the
        /// INT instruction this TRC replaced).
        filters: Vec<FilterCond>,
    },
    /// KCC — `target := KCache(f_{v1..vk}, A_{v1..vk})`: the clique-cache
    /// generalization of TRC proposed as future work in §IV-B. The
    /// vertices form a k-clique in the pattern, so the cached set holds
    /// the data vertices completing a (k+1)-clique with their images.
    KCache {
        /// The variable that stores the cached common-neighbour set.
        target: SetVar,
        /// The pattern vertices whose adjacency sets are intersected
        /// (sorted, `k ≥ 3`; `k = 2` stays a TRC instruction).
        verts: Vec<PatternVertex>,
        /// Filtering conditions applied per use (never cached).
        filters: Vec<FilterCond>,
    },
    /// RES — `f := ReportMatch(items)`.
    ReportMatch {
        /// One entry per pattern vertex, in pattern-vertex index order.
        items: Vec<ResultItem>,
    },
}

/// Instruction kind, used for Optimization 2's rank (`INI < INT < TRC <
/// DBQ < ENU < RES`) and for cost accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InstrKind {
    /// Initialization.
    Ini,
    /// Set intersection (computation cost).
    Int,
    /// Triangle-cached intersection (computation cost).
    Trc,
    /// Database query (communication cost).
    Dbq,
    /// Enumeration (opens a backtracking level).
    Enu,
    /// Result reporting.
    Res,
}

impl Instruction {
    /// This instruction's kind. `KCache` ranks and costs as TRC — it is
    /// the same cache-backed intersection, generalized.
    pub fn kind(&self) -> InstrKind {
        match self {
            Instruction::Init { .. } => InstrKind::Ini,
            Instruction::GetAdj { .. } => InstrKind::Dbq,
            Instruction::Intersect { .. } => InstrKind::Int,
            Instruction::Foreach { .. } => InstrKind::Enu,
            Instruction::TCache { .. } | Instruction::KCache { .. } => InstrKind::Trc,
            Instruction::ReportMatch { .. } => InstrKind::Res,
        }
    }

    /// The set variable this instruction defines, if any.
    pub fn defined_set(&self) -> Option<SetVar> {
        match self {
            Instruction::Intersect { target, .. }
            | Instruction::TCache { target, .. }
            | Instruction::KCache { target, .. } => Some(*target),
            Instruction::GetAdj { vertex } => Some(SetVar::Adj(*vertex)),
            _ => None,
        }
    }

    /// The pattern vertex whose `f_i` this instruction defines, if any.
    pub fn defined_vertex(&self) -> Option<PatternVertex> {
        match self {
            Instruction::Init { vertex } | Instruction::Foreach { vertex, .. } => Some(*vertex),
            _ => None,
        }
    }

    /// Set variables read by this instruction.
    pub fn used_sets(&self) -> Vec<SetVar> {
        match self {
            Instruction::Intersect { operands, .. } => operands.clone(),
            Instruction::Foreach { source, .. } => vec![*source],
            Instruction::TCache { a, b, .. } => vec![SetVar::Adj(*a), SetVar::Adj(*b)],
            Instruction::KCache { verts, .. } => verts.iter().map(|&v| SetVar::Adj(v)).collect(),
            Instruction::ReportMatch { items } => items
                .iter()
                .filter_map(|it| match it {
                    ResultItem::ImageSet(s) => Some(*s),
                    ResultItem::Vertex(_) => None,
                })
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Pattern vertices whose `f_i` values this instruction reads
    /// (operands of `GetAdj`/`TCache` and filter-condition references).
    pub fn used_vertices(&self) -> Vec<PatternVertex> {
        match self {
            Instruction::GetAdj { vertex } => vec![*vertex],
            Instruction::Intersect { filters, .. } => filters.iter().map(|f| f.vertex).collect(),
            Instruction::TCache { a, b, filters, .. } => {
                let mut v = vec![*a, *b];
                v.extend(filters.iter().map(|f| f.vertex));
                v
            }
            Instruction::KCache { verts, filters, .. } => {
                let mut v = verts.clone();
                v.extend(filters.iter().map(|f| f.vertex));
                v
            }
            Instruction::ReportMatch { items } => items
                .iter()
                .filter_map(|it| match it {
                    ResultItem::Vertex(v) => Some(*v),
                    ResultItem::ImageSet(_) => None,
                })
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Replaces every occurrence of set variable `from` with `to` in the
    /// operands (not the target).
    pub fn replace_operand(&mut self, from: SetVar, to: SetVar) {
        match self {
            Instruction::Intersect { operands, .. } => {
                for op in operands.iter_mut() {
                    if *op == from {
                        *op = to;
                    }
                }
            }
            Instruction::Foreach { source, .. } if *source == from => {
                *source = to;
            }
            Instruction::ReportMatch { items } => {
                for it in items.iter_mut() {
                    if let ResultItem::ImageSet(s) = it {
                        if *s == from {
                            *s = to;
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// A complete execution plan for one pattern graph.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutionPlan {
    /// The pattern this plan enumerates.
    pub pattern: benu_pattern::Pattern,
    /// The matching order `O` (pattern vertices, first = start vertex).
    pub matching_order: Vec<PatternVertex>,
    /// The symmetry-breaking partial order baked into the filters.
    pub symmetry: benu_pattern::SymmetryBreaking,
    /// The instruction list.
    pub instructions: Vec<Instruction>,
    /// True if the plan emits VCBC-compressed results.
    pub compressed: bool,
}

impl ExecutionPlan {
    /// The first pattern vertex of the matching order (the vertex mapped to
    /// each task's start vertex).
    pub fn start_vertex(&self) -> PatternVertex {
        self.matching_order[0]
    }

    /// The second pattern vertex of the matching order; its candidate set
    /// is what task splitting divides (§V-B).
    pub fn second_vertex(&self) -> Option<PatternVertex> {
        self.matching_order.get(1).copied()
    }

    /// Number of instructions of the given kind.
    pub fn count_kind(&self, kind: InstrKind) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.kind() == kind)
            .count()
    }

    /// Number of enumeration levels (ENU instructions).
    pub fn num_levels(&self) -> usize {
        self.count_kind(InstrKind::Enu)
    }

    /// Checks the plan's well-formedness: every variable is defined before
    /// use, every pattern vertex is either enumerated or (when compressed)
    /// reported as an image set, and the plan ends with RES. Returns a
    /// description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut defined_sets: Vec<SetVar> = vec![SetVar::AllVertices];
        let mut defined_vertices: Vec<PatternVertex> = Vec::new();
        let last = self.instructions.len().checked_sub(1).ok_or("empty plan")?;
        for (idx, instr) in self.instructions.iter().enumerate() {
            for s in instr.used_sets() {
                if !defined_sets.contains(&s) {
                    return Err(format!(
                        "instruction {idx}: set {s:?} used before definition"
                    ));
                }
            }
            for v in instr.used_vertices() {
                if !defined_vertices.contains(&v) {
                    return Err(format!("instruction {idx}: f_{v} used before definition"));
                }
            }
            if let Some(s) = instr.defined_set() {
                if defined_sets.contains(&s) {
                    return Err(format!("instruction {idx}: set {s:?} redefined"));
                }
                defined_sets.push(s);
            }
            if let Some(v) = instr.defined_vertex() {
                if defined_vertices.contains(&v) {
                    return Err(format!("instruction {idx}: f_{v} redefined"));
                }
                defined_vertices.push(v);
            }
            if idx == last && instr.kind() != InstrKind::Res {
                return Err("plan does not end with a RES instruction".into());
            }
            if idx != last && instr.kind() == InstrKind::Res {
                return Err(format!("instruction {idx}: RES before end of plan"));
            }
        }
        // Every pattern vertex must be covered by the RES tuple.
        if let Some(Instruction::ReportMatch { items }) = self.instructions.last() {
            if items.len() != self.pattern.num_vertices() {
                return Err(format!(
                    "RES reports {} items for {} pattern vertices",
                    items.len(),
                    self.pattern.num_vertices()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benu_pattern::{queries, SymmetryBreaking};

    fn tiny_plan() -> ExecutionPlan {
        // Hand-built triangle plan: order u0, u1, u2.
        let pattern = queries::triangle();
        let symmetry = SymmetryBreaking::compute(&pattern);
        ExecutionPlan {
            pattern,
            matching_order: vec![0, 1, 2],
            symmetry,
            instructions: vec![
                Instruction::Init { vertex: 0 },
                Instruction::GetAdj { vertex: 0 },
                Instruction::Intersect {
                    target: SetVar::Cand(1),
                    operands: vec![SetVar::Adj(0)],
                    filters: vec![FilterCond::greater(0)],
                },
                Instruction::Foreach {
                    vertex: 1,
                    source: SetVar::Cand(1),
                },
                Instruction::GetAdj { vertex: 1 },
                Instruction::Intersect {
                    target: SetVar::Cand(2),
                    operands: vec![SetVar::Adj(0), SetVar::Adj(1)],
                    filters: vec![FilterCond::greater(1)],
                },
                Instruction::Foreach {
                    vertex: 2,
                    source: SetVar::Cand(2),
                },
                Instruction::ReportMatch {
                    items: vec![
                        ResultItem::Vertex(0),
                        ResultItem::Vertex(1),
                        ResultItem::Vertex(2),
                    ],
                },
            ],
            compressed: false,
        }
    }

    #[test]
    fn valid_plan_passes_validation() {
        tiny_plan().validate().unwrap();
    }

    #[test]
    fn use_before_def_is_caught() {
        let mut p = tiny_plan();
        p.instructions.swap(1, 2); // Intersect now reads A_0 before GetAdj
        let err = p.validate().unwrap_err();
        assert!(err.contains("used before definition"), "{err}");
    }

    #[test]
    fn missing_res_is_caught() {
        let mut p = tiny_plan();
        p.instructions.pop();
        assert!(p.validate().is_err());
    }

    #[test]
    fn kinds_and_counts() {
        let p = tiny_plan();
        assert_eq!(p.count_kind(InstrKind::Dbq), 2);
        assert_eq!(p.count_kind(InstrKind::Enu), 2);
        assert_eq!(p.num_levels(), 2);
        assert_eq!(p.start_vertex(), 0);
        assert_eq!(p.second_vertex(), Some(1));
    }

    #[test]
    fn replace_operand_rewrites_uses_only() {
        let mut instr = Instruction::Intersect {
            target: SetVar::Tmp(9),
            operands: vec![SetVar::Adj(0), SetVar::Adj(1)],
            filters: vec![],
        };
        instr.replace_operand(SetVar::Adj(0), SetVar::Tmp(3));
        assert_eq!(instr.used_sets(), vec![SetVar::Tmp(3), SetVar::Adj(1)]);
        assert_eq!(instr.defined_set(), Some(SetVar::Tmp(9)));
    }

    #[test]
    fn used_vertices_include_filters() {
        let instr = Instruction::Intersect {
            target: SetVar::Cand(2),
            operands: vec![SetVar::Adj(0)],
            filters: vec![FilterCond::not_equal(1), FilterCond::less(0)],
        };
        assert_eq!(instr.used_vertices(), vec![1, 0]);
    }
}
