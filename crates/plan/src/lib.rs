//! BENU execution plans (paper §III-B, §IV).
//!
//! An execution plan is the compiled form of a backtracking search for one
//! pattern graph: a straight-line list of [`ir::Instruction`]s whose
//! `Foreach` instructions open nested enumeration levels. This crate is the
//! *compiler* for such plans:
//!
//! * [`generate`] — raw plan generation from a matching order (§IV-A),
//! * [`optimize`] — Optimization 1 (common-subexpression elimination),
//!   Optimization 2 (dependency-aware instruction reordering) and
//!   Optimization 3 (triangle-cache rewriting) (§IV-B),
//! * [`vcbc`] — VCBC output compression (§IV-B, "Support VCBC
//!   Compression"),
//! * [`cost`] — the pluggable cardinality estimator and plan cost model
//!   (§IV-C),
//! * [`feedback`] — per-instruction observed cardinalities and the
//!   feedback estimator that re-ranks plans from them,
//! * [`search`] — the best-plan search with dual and cost-based pruning
//!   (Algorithm 3, §IV-D),
//! * [`builder`] — the user-facing [`PlanBuilder`] API tying it together.

pub mod builder;
pub mod cost;
pub mod feedback;
pub mod generate;
pub mod ir;
pub mod optimize;
pub mod render;
pub mod search;
pub mod vcbc;

pub use builder::PlanBuilder;
pub use cost::{CardinalityEstimator, ChungLuEstimator, GraphStatsEstimator};
pub use feedback::{EstimatorKind, FeedbackEstimator, PlanObs, SlotObs, MAX_OBS_SLOTS};
pub use ir::{ExecutionPlan, FilterCond, FilterOp, Instruction, ResultItem, SetVar};
pub use search::{BestPlanResult, SearchStats};
