//! Plan cost estimation (paper §IV-C).
//!
//! The cost of a plan has two parts: the *communication cost* (total
//! execution times of DBQ instructions) and the *computation cost* (total
//! execution times of INT/TRC instructions). The execution times of an
//! instruction equal the number of matches of the partial pattern graph
//! `P_i` induced by the enumeration levels enclosing it, so everything
//! reduces to estimating match cardinalities.
//!
//! Three estimators implement the pluggable [`CardinalityEstimator`]
//! trait, in increasing order of fidelity:
//!
//! 1. [`GraphStatsEstimator`] — the static Erdős–Rényi model of SEED
//!    §5.1: a pattern component with `n'` vertices and `m'` edges has
//!    `E[matches] = N·(N−1)⋯(N−n'+1) · (2M / N(N−1))^{m'}` expected
//!    matches. Cheap (two scalars) but degree-oblivious, so it badly
//!    underestimates stars and cliques on power-law graphs.
//! 2. [`ChungLuEstimator`] — a degree-moment model that weights each
//!    pattern vertex by the data graph's degree moments `S_k = Σ d^k`,
//!    capturing heavy hubs. Static, but degree-aware.
//! 3. [`crate::feedback::FeedbackEstimator`] — blends a Chung-Lu prior
//!    with per-instruction cardinalities *observed* during a previous
//!    execution of a plan for the same pattern; exact on observed
//!    prefixes, prior-times-correction elsewhere.
//!
//! Disconnected partial patterns multiply their components' estimates (as
//! the paper prescribes). The trait is pluggable — the paper notes the
//! model "can be replaced if a more accurate model is proposed".

use crate::ir::{ExecutionPlan, InstrKind, Instruction};
use benu_pattern::pattern::BitIter;
use benu_pattern::Pattern;

/// Estimates the number of matches of small patterns in the data graph.
pub trait CardinalityEstimator {
    /// Expected number of matches of a *connected* pattern component with
    /// `n_vertices` and `n_edges`.
    fn estimate_component(&self, n_vertices: usize, n_edges: usize) -> f64;

    /// Degree-aware refinement: expected matches of a connected component
    /// whose vertices have the given degrees *within the component*.
    /// Defaults to the degree-oblivious estimate; degree-moment models
    /// override this.
    fn estimate_component_degrees(&self, degrees: &[usize], n_edges: usize) -> f64 {
        self.estimate_component(degrees.len(), n_edges)
    }

    /// Expected matches of an arbitrary (possibly disconnected) partial
    /// pattern: the product over connected components.
    fn estimate_pattern_subset(&self, pattern: &Pattern, vertex_mask: u64) -> f64 {
        if vertex_mask == 0 {
            return 1.0;
        }
        pattern
            .components_within(vertex_mask)
            .into_iter()
            .map(|comp| {
                let ne = pattern.induced_mask_edges(comp);
                let degrees: Vec<usize> = mask_vertices(comp)
                    .map(|u| (pattern.neighbor_mask(u) & comp).count_ones() as usize)
                    .collect();
                self.estimate_component_degrees(&degrees, ne)
            })
            .product()
    }
}

/// The Erdős–Rényi estimator parameterised by data-graph statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphStatsEstimator {
    /// `N = |V(G)|`.
    pub num_vertices: f64,
    /// `M = |E(G)|`.
    pub num_edges: f64,
}

impl GraphStatsEstimator {
    /// Creates an estimator from graph statistics.
    pub fn new(num_vertices: usize, num_edges: usize) -> Self {
        GraphStatsEstimator {
            num_vertices: num_vertices.max(2) as f64,
            num_edges: num_edges.max(1) as f64,
        }
    }

    /// A generic default (a million vertices, ten million edges) used when
    /// no data graph is at hand; plan *ranking* is fairly insensitive to
    /// the exact values because every candidate order is scored with the
    /// same statistics.
    pub fn generic() -> Self {
        GraphStatsEstimator {
            num_vertices: 1e6,
            num_edges: 1e7,
        }
    }
}

impl CardinalityEstimator for GraphStatsEstimator {
    fn estimate_component(&self, n_vertices: usize, n_edges: usize) -> f64 {
        let n = self.num_vertices;
        // A component with more vertices than the data graph admits no
        // injective embedding at all.
        if n_vertices as f64 > n {
            return 0.0;
        }
        // Edge probability of the G(N, M) model.
        let p = (2.0 * self.num_edges / (n * (n - 1.0))).min(1.0);
        let mut injective = 1.0;
        for i in 0..n_vertices {
            injective *= n - i as f64;
        }
        injective * p.powi(n_edges as i32)
    }
}

/// A degree-moment estimator based on the Chung-Lu random-graph model:
/// with vertex weights equal to the observed degrees, the probability of
/// edge `(u, v)` is `d_u·d_v / 2M`, so the expected match count of a
/// connected component factorises as
/// `Π_{a ∈ V(p')} S_{deg_{p'}(a)} / (2M)^{m'}` with the degree moments
/// `S_k = Σ_v d_v^k`. Unlike the Erdős–Rényi model it captures the heavy
/// hubs of power-law graphs, which dominate star- and clique-shaped
/// partial patterns.
#[derive(Clone, Debug, PartialEq)]
pub struct ChungLuEstimator {
    /// `moments[k] = S_k = Σ_v d_v^k` for `k = 0 ..= max_degree_supported`.
    moments: Vec<f64>,
    /// `2M`.
    two_m: f64,
}

impl ChungLuEstimator {
    /// Maximum pattern-vertex degree supported (patterns have ≤ 10
    /// vertices in the paper, so degree ≤ 9; 16 leaves headroom).
    pub const MAX_PATTERN_DEGREE: usize = 16;

    /// Computes the degree moments of a data graph.
    pub fn from_graph(g: &benu_graph::Graph) -> Self {
        let mut moments = vec![0.0f64; Self::MAX_PATTERN_DEGREE + 1];
        for v in g.vertices() {
            let d = g.degree(v) as f64;
            let mut p = 1.0;
            for m in moments.iter_mut() {
                *m += p;
                p *= d;
            }
        }
        ChungLuEstimator {
            moments,
            two_m: (2 * g.num_edges()).max(1) as f64,
        }
    }

    /// Builds directly from a degree histogram (`hist[d]` = #vertices of
    /// degree `d`), for callers without the graph at hand.
    pub fn from_degree_histogram(hist: &[usize]) -> Self {
        let mut moments = vec![0.0f64; Self::MAX_PATTERN_DEGREE + 1];
        let mut edges2 = 0.0f64;
        for (d, &count) in hist.iter().enumerate() {
            let d_f = d as f64;
            edges2 += d_f * count as f64;
            let mut p = 1.0;
            for m in moments.iter_mut() {
                *m += p * count as f64;
                p *= d_f;
            }
        }
        ChungLuEstimator {
            moments,
            two_m: edges2.max(1.0),
        }
    }
}

impl CardinalityEstimator for ChungLuEstimator {
    fn estimate_component(&self, n_vertices: usize, n_edges: usize) -> f64 {
        // Degree-oblivious fallback: spread the edges evenly. The average
        // degree is fractional in general (a 3-vertex path has avg 4/3);
        // rounding it to the nearest integer collapses distinct densities
        // onto the same moment product, so interpolate geometrically
        // between the floor and ceil moment products instead:
        // `est = est_floor^(1-frac) · est_ceil^frac`.
        let avg = (2 * n_edges) as f64 / n_vertices.max(1) as f64;
        let lo = avg.floor() as usize;
        let hi = avg.ceil() as usize;
        let frac = avg - lo as f64;
        let lo_est = self.estimate_component_degrees(&vec![lo; n_vertices], n_edges);
        if lo == hi || frac == 0.0 {
            return lo_est;
        }
        let hi_est = self.estimate_component_degrees(&vec![hi; n_vertices], n_edges);
        if lo_est <= 0.0 || hi_est <= 0.0 {
            // Degenerate moments (e.g. an empty data graph): fall back to
            // the nearer integer rather than interpolating through zero.
            return if frac < 0.5 { lo_est } else { hi_est };
        }
        lo_est.powf(1.0 - frac) * hi_est.powf(frac)
    }

    fn estimate_component_degrees(&self, degrees: &[usize], n_edges: usize) -> f64 {
        let mut numerator = 1.0f64;
        for &d in degrees {
            let k = d.min(Self::MAX_PATTERN_DEGREE);
            numerator *= self.moments[k];
        }
        numerator / self.two_m.powi(n_edges as i32)
    }
}

/// The computation cost of a plan: Σ over INT/TRC instructions of the
/// match count of the enclosing partial pattern (Algorithm 3,
/// `EstimateComputationCost`). Instructions before the first ENU execute
/// once per task and are charged zero, exactly as the pseudocode does.
pub fn estimate_computation_cost(plan: &ExecutionPlan, est: &dyn CardinalityEstimator) -> f64 {
    let mut cost = 0.0;
    let mut cur_num = 0.0;
    // p' implicitly contains the Init vertex so that after the i-th ENU it
    // equals the partial pattern P_{i+1}.
    let mut mask: u64 = 1 << plan.start_vertex();
    for instr in &plan.instructions {
        match instr.kind() {
            InstrKind::Enu => {
                if let Instruction::Foreach { vertex, .. } = instr {
                    mask |= 1 << vertex;
                }
                cur_num = est.estimate_pattern_subset(&plan.pattern, mask);
            }
            InstrKind::Int | InstrKind::Trc => cost += cur_num,
            _ => {}
        }
    }
    cost
}

/// The communication cost of a plan: Σ over DBQ instructions of the match
/// count of the enclosing partial pattern. The leading `A_{k1} :=
/// GetAdj(f_{k1})` executes once per task, i.e. `N` times in total.
pub fn estimate_communication_cost(plan: &ExecutionPlan, est: &dyn CardinalityEstimator) -> f64 {
    let mut cost = 0.0;
    let mut cur_num = est.estimate_pattern_subset(&plan.pattern, 1 << plan.start_vertex());
    let mut mask: u64 = 1 << plan.start_vertex();
    for instr in &plan.instructions {
        match instr.kind() {
            InstrKind::Enu => {
                if let Instruction::Foreach { vertex, .. } = instr {
                    mask |= 1 << vertex;
                }
                cur_num = est.estimate_pattern_subset(&plan.pattern, mask);
            }
            InstrKind::Dbq => cost += cur_num,
            _ => {}
        }
    }
    cost
}

/// Convenience: the mask of the first `len` vertices of a matching order.
pub fn order_prefix_mask(order: &[usize], len: usize) -> u64 {
    order[..len].iter().fold(0u64, |m, &v| m | (1 << v))
}

/// Iterates the vertices of a mask (re-export convenience for callers).
pub fn mask_vertices(mask: u64) -> impl Iterator<Item = usize> {
    BitIter(mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::raw_plan;
    use crate::optimize::{optimize, OptimizeOptions};
    use benu_pattern::{queries, SymmetryBreaking};

    #[test]
    fn er_estimator_matches_hand_calculation() {
        let est = GraphStatsEstimator::new(100, 450);
        // Single vertex: N matches.
        assert!((est.estimate_component(1, 0) - 100.0).abs() < 1e-9);
        // Edge: N(N-1)·p with p = 900/9900.
        let p = 900.0 / 9900.0;
        assert!((est.estimate_component(2, 1) - 100.0 * 99.0 * p).abs() < 1e-6);
        // Triangle: N(N-1)(N-2)·p³.
        let expect = 100.0 * 99.0 * 98.0 * p.powi(3);
        assert!((est.estimate_component(3, 3) - expect).abs() < 1e-6);
    }

    #[test]
    fn disconnected_subsets_multiply() {
        let est = GraphStatsEstimator::new(1000, 5000);
        let p = queries::path(3); // 0-1-2
                                  // Mask {0, 2}: two isolated vertices → N².
        let got = est.estimate_pattern_subset(&p, 0b101);
        assert!((got - 1e6).abs() / 1e6 < 1e-9);
        // Mask {0, 1}: one edge component.
        let edge = est.estimate_component(2, 1);
        assert!((est.estimate_pattern_subset(&p, 0b011) - edge).abs() < 1e-9);
    }

    #[test]
    fn empty_mask_estimates_one() {
        let est = GraphStatsEstimator::new(10, 20);
        assert_eq!(est.estimate_pattern_subset(&queries::triangle(), 0), 1.0);
    }

    #[test]
    fn computation_cost_counts_int_per_level() {
        let p = queries::triangle();
        let sb = SymmetryBreaking::compute(&p);
        let plan = raw_plan(&p, &[0, 1, 2], &sb);
        let est = GraphStatsEstimator::new(1000, 10_000);
        // Triangle raw plan: C1 := Int(A0)[...] before the first ENU
        // (cost 0), then T2 := Int(A0, A1) and C2 := Int(T2)[...] inside
        // the first level (each costs the match count of the edge P_2).
        let cost = estimate_computation_cost(&plan, &est);
        let edge_matches = est.estimate_component(2, 1);
        assert!((cost - 2.0 * edge_matches).abs() / edge_matches < 1e-9);
    }

    #[test]
    fn communication_cost_counts_dbq() {
        let p = queries::triangle();
        let sb = SymmetryBreaking::compute(&p);
        let plan = raw_plan(&p, &[0, 1, 2], &sb);
        let est = GraphStatsEstimator::new(1000, 10_000);
        // DBQs: A0 (once per task: N) + A1 (once per edge match).
        let cost = estimate_communication_cost(&plan, &est);
        let expect = 1000.0 + est.estimate_component(2, 1);
        assert!((cost - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn optimization_reduces_estimated_computation_cost() {
        let p = queries::demo_pattern();
        let sb = SymmetryBreaking::compute(&p);
        let order = [0, 2, 4, 1, 5, 3];
        // Dense statistics (avg degree 200) put the model in the regime
        // the paper targets, where partial-match counts grow with each
        // enumeration level and hoisting pays off.
        let est = GraphStatsEstimator::new(10_000, 1_000_000);
        let raw = raw_plan(&p, &order, &sb);
        let mut opt = raw.clone();
        optimize(
            &mut opt,
            OptimizeOptions {
                cse: true,
                reorder: true,
                triangle_cache: false,
                clique_cache: false,
            },
        );
        assert!(
            estimate_computation_cost(&opt, &est) < estimate_computation_cost(&raw, &est),
            "hoisting must reduce modeled computation"
        );
    }

    #[test]
    fn chung_lu_matches_histogram_construction() {
        let g = benu_graph::gen::barabasi_albert(200, 3, 9);
        let from_graph = ChungLuEstimator::from_graph(&g);
        let hist = benu_graph::stats::degree_histogram(&g);
        let from_hist = ChungLuEstimator::from_degree_histogram(&hist);
        let p = queries::triangle();
        let a = from_graph.estimate_pattern_subset(&p, 0b111);
        let b = from_hist.estimate_pattern_subset(&p, 0b111);
        assert!((a - b).abs() / a < 1e-9);
    }

    #[test]
    fn chung_lu_beats_er_on_hubby_graphs() {
        // BA graphs have far more wedges/triangle-closures than ER graphs
        // of the same size; the degree-moment model must predict more
        // ordered triangle maps than the ER model.
        let g = benu_graph::gen::barabasi_albert(500, 4, 3);
        let cl = ChungLuEstimator::from_graph(&g);
        let er = GraphStatsEstimator::new(g.num_vertices(), g.num_edges());
        let p = queries::triangle();
        let cl_est = cl.estimate_pattern_subset(&p, 0b111);
        let er_est = er.estimate_pattern_subset(&p, 0b111);
        assert!(cl_est > er_est * 2.0, "cl {cl_est} vs er {er_est}");
        // And it should be the closer one to the truth (6 ordered maps per
        // triangle).
        let truth = 6.0 * benu_graph::stats::count_triangles(&g) as f64;
        assert!(
            (cl_est.ln() - truth.ln()).abs() < (er_est.ln() - truth.ln()).abs(),
            "cl {cl_est} er {er_est} truth {truth}"
        );
    }

    #[test]
    fn chung_lu_degrees_matter() {
        let g = benu_graph::gen::star(50);
        let cl = ChungLuEstimator::from_graph(&g);
        // A star pattern centred on a high-degree vertex is far more
        // likely than a path with the same edge count.
        let star3 = cl.estimate_component_degrees(&[3, 1, 1, 1], 3);
        let path4 = cl.estimate_component_degrees(&[1, 2, 2, 1], 3);
        assert!(star3 > path4);
    }

    #[test]
    fn denser_components_are_rarer() {
        let est = GraphStatsEstimator::new(10_000, 100_000);
        let path3 = est.estimate_component(3, 2);
        let tri = est.estimate_component(3, 3);
        assert!(tri < path3);
    }

    #[test]
    fn oversized_components_estimate_zero() {
        // Regression: the injective factor used to clamp each term with
        // .max(1.0), so a 10-vertex component in a 5-vertex graph got a
        // *positive* estimate. It must be exactly zero.
        let est = GraphStatsEstimator::new(5, 8);
        assert_eq!(est.estimate_component(10, 12), 0.0);
        assert_eq!(est.estimate_component(6, 5), 0.0);
        // Exactly N vertices is still feasible (last factor is 1).
        assert!(est.estimate_component(5, 4) > 0.0);
        // And through the subset API: a 6-clique mask in a 5-vertex graph.
        let k6 = queries::clique(6);
        assert_eq!(est.estimate_pattern_subset(&k6, 0b11_1111), 0.0);
    }

    #[test]
    fn chung_lu_fallback_interpolates_fractional_degrees() {
        let g = benu_graph::gen::barabasi_albert(300, 3, 7);
        let cl = ChungLuEstimator::from_graph(&g);
        // A 3-vertex/2-edge path has average degree 4/3; the estimate must
        // lie strictly between the uniform degree-1 and degree-2 products
        // (it used to round down to the degree-1 value).
        let est = cl.estimate_component(3, 2);
        let lo = cl.estimate_component_degrees(&[1, 1, 1], 2);
        let hi = cl.estimate_component_degrees(&[2, 2, 2], 2);
        assert!(lo < est && est < hi, "lo {lo} est {est} hi {hi}");
        // Integral average degrees are untouched by interpolation.
        let tri = cl.estimate_component(3, 3);
        let tri_direct = cl.estimate_component_degrees(&[2, 2, 2], 3);
        assert!((tri - tri_direct).abs() / tri_direct < 1e-12);
    }

    #[test]
    fn chung_lu_fallback_is_monotone_in_density() {
        // On a graph with min degree ≥ 1 the moments S_k are
        // non-decreasing in k, so the interpolated moment product (the
        // estimate with the (2M)^m edge-probability factor divided out)
        // must be non-decreasing as the average degree sweeps through
        // fractional values.
        let g = benu_graph::gen::barabasi_albert(200, 2, 11);
        let cl = ChungLuEstimator::from_graph(&g);
        let two_m = (2 * g.num_edges()) as f64;
        let n_vertices = 5usize;
        let mut prev = f64::NEG_INFINITY;
        for n_edges in 0..=10usize {
            let numerator = cl.estimate_component(n_vertices, n_edges) * two_m.powi(n_edges as i32);
            assert!(
                numerator >= prev * (1.0 - 1e-12),
                "moment product decreased at m={n_edges}: {numerator} < {prev}"
            );
            prev = numerator;
        }
    }

    #[test]
    fn chung_lu_histogram_agrees_with_graph_on_random_graphs() {
        // Property: from_graph and from_degree_histogram are two routes to
        // the same moments, on ER and BA graphs across seeds and subsets.
        let patterns = [queries::triangle(), queries::path(4), queries::clique(4)];
        for seed in 0..8u64 {
            let graphs = [
                benu_graph::gen::erdos_renyi_gnm(150, 600, seed),
                benu_graph::gen::barabasi_albert(150, 3, seed),
            ];
            for g in &graphs {
                let a = ChungLuEstimator::from_graph(g);
                let b = ChungLuEstimator::from_degree_histogram(
                    &benu_graph::stats::degree_histogram(g),
                );
                for p in &patterns {
                    let full = (1u64 << p.num_vertices()) - 1;
                    for mask in 1..=full {
                        let ea = a.estimate_pattern_subset(p, mask);
                        let eb = b.estimate_pattern_subset(p, mask);
                        assert!(
                            (ea - eb).abs() <= 1e-9 * ea.abs().max(1.0),
                            "seed {seed} mask {mask:b}: {ea} vs {eb}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn estimates_are_invariant_under_pattern_relabeling() {
        // Property: estimate_pattern_subset depends only on the isomorphism
        // class of the induced subpattern, so relabeling the pattern and
        // mapping the mask through the permutation preserves the estimate.
        // This is what makes a canonical-hash keyed stats store sound.
        let g = benu_graph::gen::barabasi_albert(200, 3, 5);
        let cl = ChungLuEstimator::from_graph(&g);
        let er = GraphStatsEstimator::new(g.num_vertices(), g.num_edges());
        let patterns = [
            queries::demo_pattern(),
            queries::path(5),
            queries::clique(4),
        ];
        // A few fixed permutations per size (rotations and a swap-heavy one).
        for p in &patterns {
            let n = p.num_vertices();
            let perms: Vec<Vec<usize>> = vec![
                (0..n).map(|i| (i + 1) % n).collect(),
                (0..n).map(|i| n - 1 - i).collect(),
            ];
            for perm in &perms {
                let q = p.relabeled(perm);
                let full = (1u64 << n) - 1;
                for mask in 1..=full {
                    let mapped = mask_vertices(mask).fold(0u64, |m, v| m | (1 << perm[v]));
                    for est in [&cl as &dyn CardinalityEstimator, &er] {
                        let a = est.estimate_pattern_subset(p, mask);
                        let b = est.estimate_pattern_subset(&q, mapped);
                        assert!(
                            (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                            "mask {mask:b}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }
}
