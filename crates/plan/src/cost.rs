//! Plan cost estimation (paper §IV-C).
//!
//! The cost of a plan has two parts: the *communication cost* (total
//! execution times of DBQ instructions) and the *computation cost* (total
//! execution times of INT/TRC instructions). The execution times of an
//! instruction equal the number of matches of the partial pattern graph
//! `P_i` induced by the enumeration levels enclosing it, so everything
//! reduces to estimating match cardinalities.
//!
//! The default estimator is the Erdős–Rényi model of SEED §5.1: a pattern
//! component with `n'` vertices and `m'` edges has
//! `E[matches] = N·(N−1)⋯(N−n'+1) · (2M / N(N−1))^{m'}` expected matches.
//! Disconnected partial patterns multiply their components' estimates (as
//! the paper prescribes). The trait is pluggable — the paper notes the
//! model "can be replaced if a more accurate model is proposed".

use crate::ir::{ExecutionPlan, InstrKind, Instruction};
use benu_pattern::pattern::BitIter;
use benu_pattern::Pattern;

/// Estimates the number of matches of small patterns in the data graph.
pub trait CardinalityEstimator {
    /// Expected number of matches of a *connected* pattern component with
    /// `n_vertices` and `n_edges`.
    fn estimate_component(&self, n_vertices: usize, n_edges: usize) -> f64;

    /// Degree-aware refinement: expected matches of a connected component
    /// whose vertices have the given degrees *within the component*.
    /// Defaults to the degree-oblivious estimate; degree-moment models
    /// override this.
    fn estimate_component_degrees(&self, degrees: &[usize], n_edges: usize) -> f64 {
        self.estimate_component(degrees.len(), n_edges)
    }

    /// Expected matches of an arbitrary (possibly disconnected) partial
    /// pattern: the product over connected components.
    fn estimate_pattern_subset(&self, pattern: &Pattern, vertex_mask: u64) -> f64 {
        if vertex_mask == 0 {
            return 1.0;
        }
        pattern
            .components_within(vertex_mask)
            .into_iter()
            .map(|comp| {
                let ne = pattern.induced_mask_edges(comp);
                let degrees: Vec<usize> = mask_vertices(comp)
                    .map(|u| (pattern.neighbor_mask(u) & comp).count_ones() as usize)
                    .collect();
                self.estimate_component_degrees(&degrees, ne)
            })
            .product()
    }
}

/// The Erdős–Rényi estimator parameterised by data-graph statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphStatsEstimator {
    /// `N = |V(G)|`.
    pub num_vertices: f64,
    /// `M = |E(G)|`.
    pub num_edges: f64,
}

impl GraphStatsEstimator {
    /// Creates an estimator from graph statistics.
    pub fn new(num_vertices: usize, num_edges: usize) -> Self {
        GraphStatsEstimator {
            num_vertices: num_vertices.max(2) as f64,
            num_edges: num_edges.max(1) as f64,
        }
    }

    /// A generic default (a million vertices, ten million edges) used when
    /// no data graph is at hand; plan *ranking* is fairly insensitive to
    /// the exact values because every candidate order is scored with the
    /// same statistics.
    pub fn generic() -> Self {
        GraphStatsEstimator {
            num_vertices: 1e6,
            num_edges: 1e7,
        }
    }
}

impl CardinalityEstimator for GraphStatsEstimator {
    fn estimate_component(&self, n_vertices: usize, n_edges: usize) -> f64 {
        let n = self.num_vertices;
        // Edge probability of the G(N, M) model.
        let p = (2.0 * self.num_edges / (n * (n - 1.0))).min(1.0);
        let mut injective = 1.0;
        for i in 0..n_vertices {
            injective *= (n - i as f64).max(1.0);
        }
        injective * p.powi(n_edges as i32)
    }
}

/// A degree-moment estimator based on the Chung-Lu random-graph model:
/// with vertex weights equal to the observed degrees, the probability of
/// edge `(u, v)` is `d_u·d_v / 2M`, so the expected match count of a
/// connected component factorises as
/// `Π_{a ∈ V(p')} S_{deg_{p'}(a)} / (2M)^{m'}` with the degree moments
/// `S_k = Σ_v d_v^k`. Unlike the Erdős–Rényi model it captures the heavy
/// hubs of power-law graphs, which dominate star- and clique-shaped
/// partial patterns.
#[derive(Clone, Debug, PartialEq)]
pub struct ChungLuEstimator {
    /// `moments[k] = S_k = Σ_v d_v^k` for `k = 0 ..= max_degree_supported`.
    moments: Vec<f64>,
    /// `2M`.
    two_m: f64,
}

impl ChungLuEstimator {
    /// Maximum pattern-vertex degree supported (patterns have ≤ 10
    /// vertices in the paper, so degree ≤ 9; 16 leaves headroom).
    pub const MAX_PATTERN_DEGREE: usize = 16;

    /// Computes the degree moments of a data graph.
    pub fn from_graph(g: &benu_graph::Graph) -> Self {
        let mut moments = vec![0.0f64; Self::MAX_PATTERN_DEGREE + 1];
        for v in g.vertices() {
            let d = g.degree(v) as f64;
            let mut p = 1.0;
            for m in moments.iter_mut() {
                *m += p;
                p *= d;
            }
        }
        ChungLuEstimator {
            moments,
            two_m: (2 * g.num_edges()).max(1) as f64,
        }
    }

    /// Builds directly from a degree histogram (`hist[d]` = #vertices of
    /// degree `d`), for callers without the graph at hand.
    pub fn from_degree_histogram(hist: &[usize]) -> Self {
        let mut moments = vec![0.0f64; Self::MAX_PATTERN_DEGREE + 1];
        let mut edges2 = 0.0f64;
        for (d, &count) in hist.iter().enumerate() {
            let d_f = d as f64;
            edges2 += d_f * count as f64;
            let mut p = 1.0;
            for m in moments.iter_mut() {
                *m += p * count as f64;
                p *= d_f;
            }
        }
        ChungLuEstimator {
            moments,
            two_m: edges2.max(1.0),
        }
    }
}

impl CardinalityEstimator for ChungLuEstimator {
    fn estimate_component(&self, n_vertices: usize, n_edges: usize) -> f64 {
        // Degree-oblivious fallback: spread the edges evenly.
        let avg = (2 * n_edges) as f64 / n_vertices.max(1) as f64;
        let degrees = vec![avg.round() as usize; n_vertices];
        self.estimate_component_degrees(&degrees, n_edges)
    }

    fn estimate_component_degrees(&self, degrees: &[usize], n_edges: usize) -> f64 {
        let mut numerator = 1.0f64;
        for &d in degrees {
            let k = d.min(Self::MAX_PATTERN_DEGREE);
            numerator *= self.moments[k];
        }
        numerator / self.two_m.powi(n_edges as i32)
    }
}

/// The computation cost of a plan: Σ over INT/TRC instructions of the
/// match count of the enclosing partial pattern (Algorithm 3,
/// `EstimateComputationCost`). Instructions before the first ENU execute
/// once per task and are charged zero, exactly as the pseudocode does.
pub fn estimate_computation_cost(plan: &ExecutionPlan, est: &dyn CardinalityEstimator) -> f64 {
    let mut cost = 0.0;
    let mut cur_num = 0.0;
    // p' implicitly contains the Init vertex so that after the i-th ENU it
    // equals the partial pattern P_{i+1}.
    let mut mask: u64 = 1 << plan.start_vertex();
    for instr in &plan.instructions {
        match instr.kind() {
            InstrKind::Enu => {
                if let Instruction::Foreach { vertex, .. } = instr {
                    mask |= 1 << vertex;
                }
                cur_num = est.estimate_pattern_subset(&plan.pattern, mask);
            }
            InstrKind::Int | InstrKind::Trc => cost += cur_num,
            _ => {}
        }
    }
    cost
}

/// The communication cost of a plan: Σ over DBQ instructions of the match
/// count of the enclosing partial pattern. The leading `A_{k1} :=
/// GetAdj(f_{k1})` executes once per task, i.e. `N` times in total.
pub fn estimate_communication_cost(plan: &ExecutionPlan, est: &dyn CardinalityEstimator) -> f64 {
    let mut cost = 0.0;
    let mut cur_num = est.estimate_pattern_subset(&plan.pattern, 1 << plan.start_vertex());
    let mut mask: u64 = 1 << plan.start_vertex();
    for instr in &plan.instructions {
        match instr.kind() {
            InstrKind::Enu => {
                if let Instruction::Foreach { vertex, .. } = instr {
                    mask |= 1 << vertex;
                }
                cur_num = est.estimate_pattern_subset(&plan.pattern, mask);
            }
            InstrKind::Dbq => cost += cur_num,
            _ => {}
        }
    }
    cost
}

/// Convenience: the mask of the first `len` vertices of a matching order.
pub fn order_prefix_mask(order: &[usize], len: usize) -> u64 {
    order[..len].iter().fold(0u64, |m, &v| m | (1 << v))
}

/// Iterates the vertices of a mask (re-export convenience for callers).
pub fn mask_vertices(mask: u64) -> impl Iterator<Item = usize> {
    BitIter(mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::raw_plan;
    use crate::optimize::{optimize, OptimizeOptions};
    use benu_pattern::{queries, SymmetryBreaking};

    #[test]
    fn er_estimator_matches_hand_calculation() {
        let est = GraphStatsEstimator::new(100, 450);
        // Single vertex: N matches.
        assert!((est.estimate_component(1, 0) - 100.0).abs() < 1e-9);
        // Edge: N(N-1)·p with p = 900/9900.
        let p = 900.0 / 9900.0;
        assert!((est.estimate_component(2, 1) - 100.0 * 99.0 * p).abs() < 1e-6);
        // Triangle: N(N-1)(N-2)·p³.
        let expect = 100.0 * 99.0 * 98.0 * p.powi(3);
        assert!((est.estimate_component(3, 3) - expect).abs() < 1e-6);
    }

    #[test]
    fn disconnected_subsets_multiply() {
        let est = GraphStatsEstimator::new(1000, 5000);
        let p = queries::path(3); // 0-1-2
                                  // Mask {0, 2}: two isolated vertices → N².
        let got = est.estimate_pattern_subset(&p, 0b101);
        assert!((got - 1e6).abs() / 1e6 < 1e-9);
        // Mask {0, 1}: one edge component.
        let edge = est.estimate_component(2, 1);
        assert!((est.estimate_pattern_subset(&p, 0b011) - edge).abs() < 1e-9);
    }

    #[test]
    fn empty_mask_estimates_one() {
        let est = GraphStatsEstimator::new(10, 20);
        assert_eq!(est.estimate_pattern_subset(&queries::triangle(), 0), 1.0);
    }

    #[test]
    fn computation_cost_counts_int_per_level() {
        let p = queries::triangle();
        let sb = SymmetryBreaking::compute(&p);
        let plan = raw_plan(&p, &[0, 1, 2], &sb);
        let est = GraphStatsEstimator::new(1000, 10_000);
        // Triangle raw plan: C1 := Int(A0)[...] before the first ENU
        // (cost 0), then T2 := Int(A0, A1) and C2 := Int(T2)[...] inside
        // the first level (each costs the match count of the edge P_2).
        let cost = estimate_computation_cost(&plan, &est);
        let edge_matches = est.estimate_component(2, 1);
        assert!((cost - 2.0 * edge_matches).abs() / edge_matches < 1e-9);
    }

    #[test]
    fn communication_cost_counts_dbq() {
        let p = queries::triangle();
        let sb = SymmetryBreaking::compute(&p);
        let plan = raw_plan(&p, &[0, 1, 2], &sb);
        let est = GraphStatsEstimator::new(1000, 10_000);
        // DBQs: A0 (once per task: N) + A1 (once per edge match).
        let cost = estimate_communication_cost(&plan, &est);
        let expect = 1000.0 + est.estimate_component(2, 1);
        assert!((cost - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn optimization_reduces_estimated_computation_cost() {
        let p = queries::demo_pattern();
        let sb = SymmetryBreaking::compute(&p);
        let order = [0, 2, 4, 1, 5, 3];
        // Dense statistics (avg degree 200) put the model in the regime
        // the paper targets, where partial-match counts grow with each
        // enumeration level and hoisting pays off.
        let est = GraphStatsEstimator::new(10_000, 1_000_000);
        let raw = raw_plan(&p, &order, &sb);
        let mut opt = raw.clone();
        optimize(
            &mut opt,
            OptimizeOptions {
                cse: true,
                reorder: true,
                triangle_cache: false,
                clique_cache: false,
            },
        );
        assert!(
            estimate_computation_cost(&opt, &est) < estimate_computation_cost(&raw, &est),
            "hoisting must reduce modeled computation"
        );
    }

    #[test]
    fn chung_lu_matches_histogram_construction() {
        let g = benu_graph::gen::barabasi_albert(200, 3, 9);
        let from_graph = ChungLuEstimator::from_graph(&g);
        let hist = benu_graph::stats::degree_histogram(&g);
        let from_hist = ChungLuEstimator::from_degree_histogram(&hist);
        let p = queries::triangle();
        let a = from_graph.estimate_pattern_subset(&p, 0b111);
        let b = from_hist.estimate_pattern_subset(&p, 0b111);
        assert!((a - b).abs() / a < 1e-9);
    }

    #[test]
    fn chung_lu_beats_er_on_hubby_graphs() {
        // BA graphs have far more wedges/triangle-closures than ER graphs
        // of the same size; the degree-moment model must predict more
        // ordered triangle maps than the ER model.
        let g = benu_graph::gen::barabasi_albert(500, 4, 3);
        let cl = ChungLuEstimator::from_graph(&g);
        let er = GraphStatsEstimator::new(g.num_vertices(), g.num_edges());
        let p = queries::triangle();
        let cl_est = cl.estimate_pattern_subset(&p, 0b111);
        let er_est = er.estimate_pattern_subset(&p, 0b111);
        assert!(cl_est > er_est * 2.0, "cl {cl_est} vs er {er_est}");
        // And it should be the closer one to the truth (6 ordered maps per
        // triangle).
        let truth = 6.0 * benu_graph::stats::count_triangles(&g) as f64;
        assert!(
            (cl_est.ln() - truth.ln()).abs() < (er_est.ln() - truth.ln()).abs(),
            "cl {cl_est} er {er_est} truth {truth}"
        );
    }

    #[test]
    fn chung_lu_degrees_matter() {
        let g = benu_graph::gen::star(50);
        let cl = ChungLuEstimator::from_graph(&g);
        // A star pattern centred on a high-degree vertex is far more
        // likely than a path with the same edge count.
        let star3 = cl.estimate_component_degrees(&[3, 1, 1, 1], 3);
        let path4 = cl.estimate_component_degrees(&[1, 2, 2, 1], 3);
        assert!(star3 > path4);
    }

    #[test]
    fn denser_components_are_rarer() {
        let est = GraphStatsEstimator::new(10_000, 100_000);
        let path3 = est.estimate_component(3, 2);
        let tri = est.estimate_component(3, 3);
        assert!(tri < path3);
    }
}
