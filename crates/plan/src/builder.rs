//! The user-facing plan-compilation API.
//!
//! ```
//! use benu_pattern::queries;
//! use benu_plan::PlanBuilder;
//!
//! let pattern = queries::q4();
//! let plan = PlanBuilder::new(&pattern)
//!     .graph_stats(100_000, 1_000_000)
//!     .compressed(true)
//!     .best_plan();
//! assert!(plan.compressed);
//! ```

use crate::cost::{CardinalityEstimator, ChungLuEstimator, GraphStatsEstimator};
use crate::feedback::FeedbackEstimator;
use crate::generate::raw_plan;
use crate::ir::ExecutionPlan;
use crate::optimize::{optimize, OptimizeOptions};
use crate::search::{best_plan, BestPlanResult};
use crate::vcbc::compress;
use benu_pattern::{Pattern, PatternVertex, SymmetryBreaking};

/// Which cardinality model calibrates the best-plan search.
#[derive(Clone, Debug)]
enum EstimatorChoice {
    /// Erdős–Rényi model from (N, M) — the paper's default (SEED §5.1).
    Stats(GraphStatsEstimator),
    /// Degree-moment Chung-Lu model — better on power-law graphs.
    ChungLu(ChungLuEstimator),
    /// Chung-Lu prior corrected by cardinalities observed while executing
    /// a previous plan for the same pattern.
    Feedback(FeedbackEstimator),
}

impl CardinalityEstimator for EstimatorChoice {
    fn estimate_component(&self, n_vertices: usize, n_edges: usize) -> f64 {
        match self {
            EstimatorChoice::Stats(e) => e.estimate_component(n_vertices, n_edges),
            EstimatorChoice::ChungLu(e) => e.estimate_component(n_vertices, n_edges),
            EstimatorChoice::Feedback(e) => e.estimate_component(n_vertices, n_edges),
        }
    }

    fn estimate_component_degrees(&self, degrees: &[usize], n_edges: usize) -> f64 {
        match self {
            EstimatorChoice::Stats(e) => e.estimate_component_degrees(degrees, n_edges),
            EstimatorChoice::ChungLu(e) => e.estimate_component_degrees(degrees, n_edges),
            EstimatorChoice::Feedback(e) => e.estimate_component_degrees(degrees, n_edges),
        }
    }

    // Forwarded explicitly: the feedback estimator overrides the subset
    // estimate with directly observed prefix cardinalities, which the
    // default component-product implementation would lose.
    fn estimate_pattern_subset(&self, pattern: &Pattern, vertex_mask: u64) -> f64 {
        match self {
            EstimatorChoice::Stats(e) => e.estimate_pattern_subset(pattern, vertex_mask),
            EstimatorChoice::ChungLu(e) => e.estimate_pattern_subset(pattern, vertex_mask),
            EstimatorChoice::Feedback(e) => e.estimate_pattern_subset(pattern, vertex_mask),
        }
    }
}

/// Fluent builder producing [`ExecutionPlan`]s.
#[derive(Clone, Debug)]
pub struct PlanBuilder<'a> {
    pattern: &'a Pattern,
    estimator: EstimatorChoice,
    opts: OptimizeOptions,
    compressed: bool,
    symmetry: Option<SymmetryBreaking>,
    order: Option<Vec<PatternVertex>>,
}

impl<'a> PlanBuilder<'a> {
    /// Starts building a plan for `pattern` with all optimizations on,
    /// uncompressed output, computed symmetry breaking, and a generic
    /// cost-model calibration.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is disconnected or has fewer than two
    /// vertices (the paper assumes connected patterns; decompose
    /// disconnected ones into components first).
    pub fn new(pattern: &'a Pattern) -> Self {
        assert!(pattern.num_vertices() >= 2, "pattern too small");
        assert!(pattern.is_connected(), "pattern must be connected");
        PlanBuilder {
            pattern,
            estimator: EstimatorChoice::Stats(GraphStatsEstimator::generic()),
            opts: OptimizeOptions::all(),
            compressed: false,
            symmetry: None,
            order: None,
        }
    }

    /// Calibrates the cost model with the data graph's `N` and `M`
    /// (the paper's Erdős–Rényi model).
    pub fn graph_stats(mut self, num_vertices: usize, num_edges: usize) -> Self {
        self.estimator = EstimatorChoice::Stats(GraphStatsEstimator::new(num_vertices, num_edges));
        self
    }

    /// Calibrates the cost model with the data graph's degree moments
    /// (the Chung-Lu model — usually a better fit for power-law graphs).
    pub fn degree_moments(mut self, g: &benu_graph::Graph) -> Self {
        self.estimator = EstimatorChoice::ChungLu(ChungLuEstimator::from_graph(g));
        self
    }

    /// Calibrates the cost model with a pre-built Chung-Lu estimator, for
    /// callers holding a degree histogram rather than the graph itself.
    pub fn chung_lu(mut self, est: ChungLuEstimator) -> Self {
        self.estimator = EstimatorChoice::ChungLu(est);
        self
    }

    /// Calibrates the cost model with a feedback estimator built from a
    /// previous execution's observed per-instruction cardinalities (see
    /// [`crate::feedback`]).
    pub fn observed_feedback(mut self, est: FeedbackEstimator) -> Self {
        self.estimator = EstimatorChoice::Feedback(est);
        self
    }

    /// Selects which optimizations to apply (default: all).
    pub fn optimizations(mut self, opts: OptimizeOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Emits VCBC-compressed results (default: off).
    pub fn compressed(mut self, yes: bool) -> Self {
        self.compressed = yes;
        self
    }

    /// Overrides the symmetry-breaking partial order. Passing
    /// [`SymmetryBreaking::none`] enumerates raw matches (each subgraph
    /// reported `|Aut(P)|` times).
    pub fn symmetry(mut self, sb: SymmetryBreaking) -> Self {
        self.symmetry = Some(sb);
        self
    }

    /// Forces a specific matching order instead of searching for the best
    /// one.
    pub fn matching_order(mut self, order: Vec<PatternVertex>) -> Self {
        self.order = Some(order);
        self
    }

    fn symmetry_or_default(&self) -> SymmetryBreaking {
        self.symmetry
            .clone()
            .unwrap_or_else(|| SymmetryBreaking::compute(self.pattern))
    }

    /// Builds a plan for the forced matching order (or the natural order
    /// `0..n` when none was given), applying the selected optimizations
    /// and compression.
    pub fn build(&self) -> ExecutionPlan {
        let order = self
            .order
            .clone()
            .unwrap_or_else(|| (0..self.pattern.num_vertices()).collect());
        let sb = self.symmetry_or_default();
        let mut plan = raw_plan(self.pattern, &order, &sb);
        optimize(&mut plan, self.opts);
        if self.compressed {
            compress(&mut plan);
        }
        plan
    }

    /// Runs the best-plan search (Algorithm 3) and returns the winning
    /// plan with compression applied if requested.
    ///
    /// A forced matching order (via [`PlanBuilder::matching_order`]) takes
    /// precedence: the search is skipped and [`PlanBuilder::build`]
    /// semantics apply.
    pub fn best_plan(&self) -> ExecutionPlan {
        if self.order.is_some() {
            return self.build();
        }
        let mut result = self.best_plan_result();
        if self.compressed {
            compress(&mut result.plan);
        }
        result.plan
    }

    /// Runs the best-plan search and returns the full result with cost
    /// estimates and search instrumentation (Table IV's α, β and timing).
    /// Always uncompressed; apply [`crate::vcbc::compress`] afterwards if
    /// needed.
    pub fn best_plan_result(&self) -> BestPlanResult {
        let mut result = best_plan(self.pattern, &self.estimator);
        if let Some(sb) = &self.symmetry {
            // Re-derive the plan under the overridden symmetry with the
            // winning order.
            let order = result.plan.matching_order.clone();
            let mut plan = raw_plan(self.pattern, &order, sb);
            optimize(&mut plan, self.opts);
            result.plan = plan;
        } else if self.opts != OptimizeOptions::all() {
            let order = result.plan.matching_order.clone();
            let sb = self.symmetry_or_default();
            let mut plan = raw_plan(self.pattern, &order, &sb);
            optimize(&mut plan, self.opts);
            result.plan = plan;
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benu_pattern::queries;

    #[test]
    fn build_with_forced_order_respects_it() {
        let p = queries::demo_pattern();
        let plan = PlanBuilder::new(&p)
            .matching_order(vec![0, 2, 4, 1, 5, 3])
            .build();
        assert_eq!(plan.matching_order, vec![0, 2, 4, 1, 5, 3]);
        plan.validate().unwrap();
    }

    #[test]
    fn best_plan_compressed_flag_applies() {
        let p = queries::q4();
        let plan = PlanBuilder::new(&p).compressed(true).best_plan();
        assert!(plan.compressed);
        plan.validate().unwrap();
    }

    #[test]
    fn raw_option_produces_unoptimized_plan() {
        use crate::ir::InstrKind;
        let p = queries::demo_pattern();
        let raw = PlanBuilder::new(&p)
            .matching_order(vec![0, 2, 4, 1, 5, 3])
            .optimizations(OptimizeOptions::none())
            .build();
        assert_eq!(raw.count_kind(InstrKind::Trc), 0);
        assert_eq!(raw.instructions.len(), 18);
    }

    #[test]
    fn degree_moment_calibration_produces_valid_plans() {
        let g = benu_graph::gen::barabasi_albert(200, 4, 11);
        for (name, p) in queries::evaluation_queries() {
            let plan = PlanBuilder::new(&p).degree_moments(&g).best_plan();
            plan.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_pattern_rejected() {
        let p = Pattern::from_edges(4, &[(0, 1), (2, 3)]);
        PlanBuilder::new(&p);
    }

    #[test]
    fn no_symmetry_mode_drops_order_filters() {
        use crate::ir::{FilterOp, Instruction};
        let p = queries::triangle();
        let plan = PlanBuilder::new(&p)
            .symmetry(SymmetryBreaking::none())
            .matching_order(vec![0, 1, 2])
            .build();
        for instr in &plan.instructions {
            if let Instruction::Intersect { filters, .. } = instr {
                assert!(filters.iter().all(|f| f.op == FilterOp::NotEqual));
            }
        }
    }
}
