//! Raw execution-plan generation (paper §IV-A).
//!
//! Given a matching order `O : u_{k1}, …, u_{kn}`, instructions are
//! generated vertex by vertex:
//!
//! 1. `f_{k1} := Init(start)` and `A_{k1} := GetAdj(f_{k1})` for the first
//!    vertex;
//! 2. for every later vertex: a raw-candidate INT over the adjacency sets
//!    of its already-mapped pattern neighbours (or `V(G)` if none), a
//!    refined-candidate INT applying symmetry-breaking and injectivity
//!    filters, an ENU, and — only when a later vertex will need it — a DBQ;
//! 3. a final RES instruction;
//! 4. *uni-operand elimination*: single-operand, filter-free temporaries
//!    (`T_i := Intersect(X)`) are removed and their uses rewritten. The
//!    paper's example keeps candidate sets `C_i` intact (Fig. 4 still
//!    shows `C3` after elimination), so only `Tmp` targets are elided.

use crate::ir::{ExecutionPlan, FilterCond, Instruction, ResultItem, SetVar};
use benu_pattern::{Pattern, PatternVertex, SymmetryBreaking};

/// Generates the raw execution plan for `pattern` under `order`.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the pattern's vertices or the
/// pattern has fewer than two vertices.
pub fn raw_plan(
    pattern: &Pattern,
    order: &[PatternVertex],
    symmetry: &SymmetryBreaking,
) -> ExecutionPlan {
    let n = pattern.num_vertices();
    assert!(n >= 2, "patterns need at least two vertices");
    assert_eq!(order.len(), n, "matching order must cover all vertices");
    {
        let mut seen = vec![false; n];
        for &u in order {
            assert!(u < n && !seen[u], "matching order is not a permutation");
            seen[u] = true;
        }
    }

    let mut instructions = Vec::with_capacity(3 * n + 2);
    let first = order[0];
    instructions.push(Instruction::Init { vertex: first });
    instructions.push(Instruction::GetAdj { vertex: first });

    for i in 1..n {
        let u = order[i];
        // 1) Raw candidate set: intersect adjacency sets of the mapped
        //    pattern neighbours (in matching-order position).
        let mapped_neighbors: Vec<PatternVertex> = order[..i]
            .iter()
            .copied()
            .filter(|&j| pattern.has_edge(j, u))
            .collect();
        let operands: Vec<SetVar> = if mapped_neighbors.is_empty() {
            vec![SetVar::AllVertices]
        } else {
            mapped_neighbors.iter().map(|&j| SetVar::Adj(j)).collect()
        };
        instructions.push(Instruction::Intersect {
            target: SetVar::Tmp(u),
            operands,
            filters: Vec::new(),
        });

        // 2) Refined candidate set: symmetry-breaking conditions for
        //    order-constrained pairs; injectivity for non-adjacent pairs
        //    (adjacency already implies f_j ∉ T_u).
        let mut filters = Vec::new();
        for &j in &order[..i] {
            match symmetry.between(j, u) {
                // j < u: result vertices must be ≻ f_j.
                Some(true) => filters.push(FilterCond::greater(j)),
                // u < j: result vertices must be ≺ f_j.
                Some(false) => filters.push(FilterCond::less(j)),
                None => {
                    if !pattern.has_edge(j, u) {
                        filters.push(FilterCond::not_equal(j));
                    }
                }
            }
        }
        instructions.push(Instruction::Intersect {
            target: SetVar::Cand(u),
            operands: vec![SetVar::Tmp(u)],
            filters,
        });

        // 3) Enumerate.
        instructions.push(Instruction::Foreach {
            vertex: u,
            source: SetVar::Cand(u),
        });

        // 4) Fetch the adjacency set only if a later vertex needs it.
        let needed_later = order[i + 1..].iter().any(|&j| pattern.has_edge(j, u));
        if needed_later {
            instructions.push(Instruction::GetAdj { vertex: u });
        }
    }

    instructions.push(Instruction::ReportMatch {
        items: (0..n).map(ResultItem::Vertex).collect(),
    });

    let mut plan = ExecutionPlan {
        pattern: pattern.clone(),
        matching_order: order.to_vec(),
        symmetry: symmetry.clone(),
        instructions,
        compressed: false,
    };
    uni_operand_elimination(&mut plan);
    debug_assert_eq!(plan.validate(), Ok(()));
    plan
}

/// Removes single-operand, filter-free INT instructions targeting
/// temporaries and rewrites their uses (paper: "If an INT instruction has
/// one operand and no filtering condition like `T_i := Intersect(X)`, we
/// remove the instruction and replace `T_i` with `X`").
pub fn uni_operand_elimination(plan: &mut ExecutionPlan) {
    loop {
        let victim = plan.instructions.iter().position(|instr| {
            matches!(
                instr,
                Instruction::Intersect { target: SetVar::Tmp(_), operands, filters }
                    if operands.len() == 1 && filters.is_empty()
            )
        });
        let Some(idx) = victim else { break };
        let (from, to) = match &plan.instructions[idx] {
            Instruction::Intersect {
                target, operands, ..
            } => (*target, operands[0]),
            _ => unreachable!(),
        };
        plan.instructions.remove(idx);
        for instr in plan.instructions.iter_mut() {
            instr.replace_operand(from, to);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::InstrKind;
    use benu_pattern::queries;

    /// The paper's running example: demo pattern, matching order
    /// u1,u3,u5,u2,u6,u4 (0-based: 0,2,4,1,5,3).
    fn demo_raw() -> ExecutionPlan {
        let p = queries::demo_pattern();
        let sb = SymmetryBreaking::compute(&p);
        raw_plan(&p, &[0, 2, 4, 1, 5, 3], &sb)
    }

    #[test]
    fn demo_plan_has_paper_instruction_count() {
        // Fig. 3b has 18 instructions: u4's are the 15th–17th and RES is
        // last.
        let plan = demo_raw();
        assert_eq!(plan.instructions.len(), 18);
        // 15th instruction (1-based) is u4's raw candidate
        // T4 := Intersect(A1, A3, A5).
        assert_eq!(
            plan.instructions[14],
            Instruction::Intersect {
                target: SetVar::Tmp(3),
                operands: vec![SetVar::Adj(0), SetVar::Adj(2), SetVar::Adj(4)],
                filters: vec![],
            }
        );
        // 16th: C4 := Intersect(T4)[≠f2, ≠f6].
        assert_eq!(
            plan.instructions[15],
            Instruction::Intersect {
                target: SetVar::Cand(3),
                operands: vec![SetVar::Tmp(3)],
                filters: vec![FilterCond::not_equal(1), FilterCond::not_equal(5)],
            }
        );
        // 17th: f4 := Foreach(C4).
        assert_eq!(
            plan.instructions[16],
            Instruction::Foreach {
                vertex: 3,
                source: SetVar::Cand(3)
            }
        );
    }

    #[test]
    fn demo_plan_keeps_c3_and_applies_symmetry_to_c5() {
        let plan = demo_raw();
        // C3 := Intersect(A1) survives elimination (Cand target).
        assert_eq!(
            plan.instructions[2],
            Instruction::Intersect {
                target: SetVar::Cand(2),
                operands: vec![SetVar::Adj(0)],
                filters: vec![],
            }
        );
        // C5 := Intersect(A1)[≻ f3] carries the u3 < u5 constraint.
        assert_eq!(
            plan.instructions[5],
            Instruction::Intersect {
                target: SetVar::Cand(4),
                operands: vec![SetVar::Adj(0)],
                filters: vec![FilterCond::greater(2)],
            }
        );
    }

    #[test]
    fn dbq_skipped_when_adjacency_unused() {
        let plan = demo_raw();
        // Only u1, u3, u5 need DBQ instructions (u2, u6, u4 have no
        // pattern neighbours after them in the order).
        let dbqs: Vec<_> = plan
            .instructions
            .iter()
            .filter_map(|i| match i {
                Instruction::GetAdj { vertex } => Some(*vertex),
                _ => None,
            })
            .collect();
        assert_eq!(dbqs, vec![0, 2, 4]);
    }

    #[test]
    fn non_adjacent_prior_vertices_get_injectivity_filters() {
        let plan = demo_raw();
        // C2 := Intersect(T2→A?)[≠f5]: u2 adjacent to u1,u3 (omitted),
        // not adjacent to u5.
        let c2 = plan
            .instructions
            .iter()
            .find_map(|i| match i {
                Instruction::Intersect {
                    target: SetVar::Cand(1),
                    filters,
                    ..
                } => Some(filters),
                _ => None,
            })
            .unwrap();
        assert_eq!(c2, &vec![FilterCond::not_equal(4)]);
    }

    #[test]
    fn disconnected_order_uses_all_vertices_operand() {
        // Path 0-1-2 with order [0, 2, 1]: u2 is not adjacent to u0.
        let p = queries::path(3);
        let sb = SymmetryBreaking::compute(&p);
        let plan = raw_plan(&p, &[0, 2, 1], &sb);
        let c2 = plan
            .instructions
            .iter()
            .find_map(|i| match i {
                Instruction::Intersect {
                    target: SetVar::Cand(2),
                    operands,
                    ..
                } => Some(operands.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(c2, vec![SetVar::AllVertices]);
    }

    #[test]
    fn plans_validate_for_all_catalogue_patterns() {
        for (name, p) in queries::catalogue() {
            let sb = SymmetryBreaking::compute(&p);
            let order: Vec<_> = (0..p.num_vertices()).collect();
            let plan = raw_plan(&p, &order, &sb);
            plan.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(plan.num_levels(), p.num_vertices() - 1);
        }
    }

    #[test]
    fn first_vertex_always_gets_init_and_dbq() {
        let plan = demo_raw();
        assert_eq!(plan.instructions[0], Instruction::Init { vertex: 0 });
        assert_eq!(plan.instructions[1], Instruction::GetAdj { vertex: 0 });
        assert_eq!(plan.instructions[0].kind(), InstrKind::Ini);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_bad_order() {
        let p = queries::triangle();
        let sb = SymmetryBreaking::compute(&p);
        raw_plan(&p, &[0, 1, 1], &sb);
    }
}
