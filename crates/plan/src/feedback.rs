//! Feedback-driven cardinality estimation.
//!
//! The static estimators in [`crate::cost`] are priors: they never see the
//! data graph beyond a handful of scalar statistics, so on skewed inputs
//! they can mis-rank candidate plans. This module closes the loop. The
//! engine records, per instruction slot of the compiled plan, how many
//! *candidates* each instruction produced and how many *survived* its
//! filters ([`PlanObs`]); a [`FeedbackEstimator`] then turns those
//! observed per-instruction selectivities into cardinality estimates that
//! are exact on the prefixes the plan actually enumerated and
//! prior-times-correction everywhere else.
//!
//! Everything here is a pure function of the recorded counters — no
//! clocks, no randomness — so re-planning from feedback is byte-
//! deterministic given the same observation, which the chaos/replay
//! suites rely on.

use crate::cost::{CardinalityEstimator, ChungLuEstimator};
use crate::ir::{ExecutionPlan, Instruction};
use benu_pattern::pattern::BitIter;
use benu_pattern::{Pattern, PatternVertex};

/// Number of instruction slots tracked per plan. Plans for ≤ 10-vertex
/// patterns compile to well under this many instructions; recording
/// silently ignores slots beyond the cap.
pub const MAX_OBS_SLOTS: usize = 48;

/// Observed cardinalities of one instruction slot: how many elements the
/// instruction considered (`candidates`) and how many passed its filters
/// into the slot's output (`survivors`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlotObs {
    /// Elements considered: loop-range length for ENU, produced-set size
    /// inputs for DBQ/INT/TRC (one execution each).
    pub candidates: u64,
    /// Elements that survived: label-filter passes for ENU, output-set
    /// sizes for DBQ/INT/TRC/KCC.
    pub survivors: u64,
}

/// Per-instruction observed cardinalities for one compiled plan, indexed
/// by instruction slot (`plan.instructions[pc]` ↔ `slots[pc]`).
///
/// Recording is deterministic and independent of caching or pooling:
/// cache hits record the same output sizes a cold execution would.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanObs {
    /// One entry per instruction slot.
    pub slots: [SlotObs; MAX_OBS_SLOTS],
}

impl Default for PlanObs {
    fn default() -> Self {
        PlanObs {
            slots: [SlotObs::default(); MAX_OBS_SLOTS],
        }
    }
}

impl PlanObs {
    /// Mutable access to a slot, `None` beyond the cap (so recording in
    /// the hot loop is a branch plus two adds).
    #[inline]
    pub fn slot_mut(&mut self, pc: usize) -> Option<&mut SlotObs> {
        self.slots.get_mut(pc)
    }

    /// True if no slot recorded anything.
    pub fn is_empty(&self) -> bool {
        self.slots
            .iter()
            .all(|s| s.candidates == 0 && s.survivors == 0)
    }

    /// Iterates `(pc, slot)` pairs with non-zero counters.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, SlotObs)> + '_ {
        self.slots
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, s)| s.candidates != 0 || s.survivors != 0)
    }

    /// Total candidates and survivors across every slot.
    pub fn totals(&self) -> (u64, u64) {
        self.slots.iter().fold((0, 0), |(c, s), slot| {
            (c + slot.candidates, s + slot.survivors)
        })
    }
}

impl core::ops::AddAssign for PlanObs {
    fn add_assign(&mut self, rhs: Self) {
        for (a, b) in self.slots.iter_mut().zip(rhs.slots.iter()) {
            a.candidates += b.candidates;
            a.survivors += b.survivors;
        }
    }
}

/// Which cardinality estimator plan search should use.
///
/// `Feedback` asks for feedback-driven re-planning where an observation
/// is available; callers fall back to the Chung-Lu prior when none has
/// been recorded yet.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EstimatorKind {
    /// Static Erdős–Rényi model from `(N, M)` (paper §IV-C).
    #[default]
    Er,
    /// Static degree-moment (Chung-Lu) model.
    ChungLu,
    /// Chung-Lu prior blended with observed per-instruction cardinalities
    /// from a previous run; Chung-Lu until an observation exists.
    Feedback,
}

impl EstimatorKind {
    /// Stable lowercase name (used in configs and reports).
    pub fn name(&self) -> &'static str {
        match self {
            EstimatorKind::Er => "er",
            EstimatorKind::ChungLu => "chung-lu",
            EstimatorKind::Feedback => "feedback",
        }
    }
}

impl core::fmt::Display for EstimatorKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

impl core::str::FromStr for EstimatorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "er" => Ok(EstimatorKind::Er),
            "chung-lu" | "chung_lu" | "cl" => Ok(EstimatorKind::ChungLu),
            "feedback" | "fb" => Ok(EstimatorKind::Feedback),
            other => Err(format!(
                "unknown estimator '{other}' (expected er | chung-lu | feedback)"
            )),
        }
    }
}

/// Counts the linear extensions of the symmetry-breaking partial order
/// restricted to the vertices of `mask`, via the standard subset DP.
/// Returns `None` when the restriction has more than 20 vertices (2^20
/// DP states is the sanity bound; patterns are ≤ 10 vertices in
/// practice).
fn linear_extensions(constraints: &[(PatternVertex, PatternVertex)], mask: u64) -> Option<f64> {
    let verts: Vec<usize> = BitIter(mask).collect();
    let k = verts.len();
    if k > 20 {
        return None;
    }
    let mut pos = [usize::MAX; 64];
    for (i, &v) in verts.iter().enumerate() {
        pos[v] = i;
    }
    // pred[i] = compact mask of vertices required to precede verts[i].
    let mut pred = vec![0u64; k];
    for &(a, b) in constraints {
        if a < 64 && b < 64 && mask & (1 << a) != 0 && mask & (1 << b) != 0 {
            pred[pos[b]] |= 1 << pos[a];
        }
    }
    let full = (1u64 << k) - 1;
    let mut dp = vec![0.0f64; 1 << k];
    dp[0] = 1.0;
    for m in 0..full {
        if dp[m as usize] == 0.0 {
            continue;
        }
        for (i, &p) in pred.iter().enumerate() {
            if m & (1 << i) == 0 && p & m == p {
                dp[(m | (1 << i)) as usize] += dp[m as usize];
            }
        }
    }
    Some(dp[full as usize])
}

/// `|S|!` as a float (exact for `|S| ≤ 20`).
fn factorial(k: usize) -> f64 {
    (1..=k).fold(1.0f64, |acc, i| acc * i as f64)
}

/// A [`CardinalityEstimator`] that blends a static Chung-Lu prior with
/// cardinalities observed while executing a plan for the same pattern.
///
/// Construction walks the observed plan's instruction list. At each ENU
/// the prefix mask `S` grows by the enumerated vertex and the slot's
/// `survivors` counter equals the number of *symmetry-constrained*
/// partial matches of `P[S]` the run enumerated. Multiplying by
/// `|S|! / e(C|S)` — `e` being the number of linear extensions of the
/// symmetry-breaking constraints restricted to `S` — converts that to an
/// estimate of the *ordered* (unconstrained) match count the cost model
/// is defined over. At the full mask the conversion is exact: on a
/// complete data graph every injective map embeds, so the orbit property
/// of symmetry breaking forces `e(C) = |S|! / |Aut(P)|`, and
/// `survivors · |Aut(P)|` is the ordered match count by the same orbit
/// property on the real graph. On proper prefixes `C|S` need not break
/// `Aut(P[S])` exactly, so the conversion is a (deterministic)
/// approximation there.
///
/// Masks never observed (other matching orders visit different prefixes)
/// are estimated as `prior(S) · ρ^{edges(S)}`, where `ρ` is the geometric
/// mean per-edge correction `(observed / prior)^{1/edges}` over the
/// observed masks — the observation's average selectivity surprise,
/// propagated to unseen subpatterns.
///
/// The estimator is a pure function of `(prior, plan, obs)`; queries must
/// use the same pattern (or a relabeling-identical one) the plan was
/// compiled for.
#[derive(Clone, Debug, PartialEq)]
pub struct FeedbackEstimator {
    prior: ChungLuEstimator,
    /// `(prefix mask, ordered match estimate)`, ascending by mask (prefix
    /// masks only ever gain bits, so plan order is sorted order).
    observed: Vec<(u64, f64)>,
    /// Geometric-mean per-edge correction factor.
    rho: f64,
}

impl FeedbackEstimator {
    /// Builds the estimator from a prior, the executed plan, and the
    /// observation recorded while running it.
    pub fn new(prior: ChungLuEstimator, plan: &ExecutionPlan, obs: &PlanObs) -> Self {
        let mut mask: u64 = 1 << plan.start_vertex();
        let constraints = plan.symmetry.constraints();
        let mut observed: Vec<(u64, f64)> = Vec::new();
        for (pc, instr) in plan.instructions.iter().enumerate() {
            if let Instruction::Foreach { vertex, .. } = instr {
                mask |= 1 << vertex;
                if pc >= MAX_OBS_SLOTS {
                    continue;
                }
                let survivors = obs.slots[pc].survivors as f64;
                let k = mask.count_ones() as usize;
                if let Some(e) = linear_extensions(constraints, mask) {
                    if e >= 1.0 {
                        observed.push((mask, survivors * factorial(k) / e));
                    }
                }
            }
        }
        // Per-edge correction: geometric mean of (observed / prior)^(1/m)
        // over observed masks with at least one induced edge.
        let mut log_sum = 0.0f64;
        let mut n_terms = 0usize;
        for &(m, value) in &observed {
            let edges = plan.pattern.induced_mask_edges(m);
            if edges == 0 || value <= 0.0 {
                continue;
            }
            let p = prior.estimate_pattern_subset(&plan.pattern, m);
            if p > 0.0 {
                log_sum += (value / p).ln() / edges as f64;
                n_terms += 1;
            }
        }
        let rho = if n_terms > 0 {
            (log_sum / n_terms as f64).exp()
        } else {
            1.0
        };
        FeedbackEstimator {
            prior,
            observed,
            rho,
        }
    }

    /// Number of prefix masks with direct observations.
    pub fn observed_masks(&self) -> usize {
        self.observed.len()
    }

    /// The geometric-mean per-edge correction factor ρ.
    pub fn correction(&self) -> f64 {
        self.rho
    }

    /// The underlying static prior.
    pub fn prior(&self) -> &ChungLuEstimator {
        &self.prior
    }
}

impl CardinalityEstimator for FeedbackEstimator {
    fn estimate_component(&self, n_vertices: usize, n_edges: usize) -> f64 {
        self.prior.estimate_component(n_vertices, n_edges) * self.rho.powi(n_edges as i32)
    }

    fn estimate_component_degrees(&self, degrees: &[usize], n_edges: usize) -> f64 {
        self.prior.estimate_component_degrees(degrees, n_edges) * self.rho.powi(n_edges as i32)
    }

    fn estimate_pattern_subset(&self, pattern: &Pattern, vertex_mask: u64) -> f64 {
        if vertex_mask == 0 {
            return 1.0;
        }
        if let Ok(i) = self
            .observed
            .binary_search_by(|&(m, _)| m.cmp(&vertex_mask))
        {
            return self.observed[i].1;
        }
        let prior = self.prior.estimate_pattern_subset(pattern, vertex_mask);
        let edges = pattern.induced_mask_edges(vertex_mask);
        prior * self.rho.powi(edges as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlanBuilder;
    use benu_pattern::automorphism::automorphisms;
    use benu_pattern::queries;

    fn uncompressed_plan(p: &Pattern) -> ExecutionPlan {
        PlanBuilder::new(p).compressed(false).best_plan()
    }

    #[test]
    fn plan_obs_defaults_merge_and_iterate() {
        let mut a = PlanObs::default();
        assert!(a.is_empty());
        a.slot_mut(3).unwrap().candidates += 5;
        a.slot_mut(3).unwrap().survivors += 2;
        let mut b = PlanObs::default();
        b.slot_mut(3).unwrap().candidates += 1;
        b.slot_mut(7).unwrap().survivors += 4;
        a += b;
        let nz: Vec<_> = a.iter_nonzero().collect();
        assert_eq!(
            nz,
            vec![
                (
                    3,
                    SlotObs {
                        candidates: 6,
                        survivors: 2
                    }
                ),
                (
                    7,
                    SlotObs {
                        candidates: 0,
                        survivors: 4
                    }
                ),
            ]
        );
        assert_eq!(a.totals(), (6, 6));
        // Out-of-range slots are ignored, not panicked on.
        assert!(a.slot_mut(MAX_OBS_SLOTS).is_none());
    }

    #[test]
    fn estimator_kind_round_trips() {
        for kind in [
            EstimatorKind::Er,
            EstimatorKind::ChungLu,
            EstimatorKind::Feedback,
        ] {
            assert_eq!(kind.name().parse::<EstimatorKind>().unwrap(), kind);
        }
        assert!("bogus".parse::<EstimatorKind>().is_err());
        assert_eq!(EstimatorKind::default(), EstimatorKind::Er);
    }

    #[test]
    fn linear_extensions_match_hand_counts() {
        // Chain 0<1<2: one extension of the full set.
        let chain = [(0, 1), (1, 2)];
        assert_eq!(linear_extensions(&chain, 0b111), Some(1.0));
        // Antichain of 3: 3! extensions.
        assert_eq!(linear_extensions(&[], 0b111), Some(6.0));
        // One relation among three: half the orders.
        assert_eq!(linear_extensions(&[(0, 2)], 0b111), Some(3.0));
        // Restriction drops relations with an endpoint outside the mask:
        // 0<1<2 restricted to {0, 2} is an antichain of two.
        assert_eq!(linear_extensions(&chain, 0b101), Some(2.0));
    }

    #[test]
    fn full_mask_scale_equals_automorphism_count() {
        // The construction converts constrained counts to ordered counts
        // with |S|!/e; at the full mask that factor must equal |Aut(P)|.
        for (name, p) in queries::evaluation_queries() {
            let sb = benu_pattern::SymmetryBreaking::compute(&p);
            let n = p.num_vertices();
            let full = (1u64 << n) - 1;
            let e = linear_extensions(sb.constraints(), full).unwrap();
            let aut = automorphisms(&p).len() as f64;
            let scale = factorial(n) / e;
            assert!(
                (scale - aut).abs() < 1e-6,
                "{name}: |S|!/e = {scale}, |Aut| = {aut}"
            );
        }
    }

    #[test]
    fn feedback_is_exact_on_observed_full_mask() {
        // Run the triangle plan "by hand": the data graph K4 has 4
        // triangles, i.e. 24 ordered matches and 4 constrained ones.
        let p = queries::triangle();
        let plan = uncompressed_plan(&p);
        let mut obs = PlanObs::default();
        // Fill every ENU slot with consistent constrained counts:
        // level 1 (edge prefix): 6 constrained edge matches of K4,
        // level 2 (triangle): 4 constrained triangle matches.
        let mut level = 0;
        for (pc, instr) in plan.instructions.iter().enumerate() {
            if matches!(instr, Instruction::Foreach { .. }) {
                let survivors = if level == 0 { 6 } else { 4 };
                obs.slots[pc] = SlotObs {
                    candidates: survivors,
                    survivors,
                };
                level += 1;
            }
        }
        let prior = ChungLuEstimator::from_degree_histogram(&[0, 0, 0, 4]);
        let fb = FeedbackEstimator::new(prior, &plan, &obs);
        let full = 0b111;
        let got = fb.estimate_pattern_subset(&p, full);
        assert!(
            (got - 24.0).abs() < 1e-9,
            "full-mask estimate must be the exact ordered count, got {got}"
        );
    }

    #[test]
    fn feedback_is_deterministic_and_blends_unseen_masks() {
        let p = queries::demo_pattern();
        let plan = uncompressed_plan(&p);
        let mut obs = PlanObs::default();
        for (pc, instr) in plan.instructions.iter().enumerate() {
            if matches!(instr, Instruction::Foreach { .. }) {
                obs.slots[pc] = SlotObs {
                    candidates: 100 + pc as u64,
                    survivors: 10 + pc as u64,
                };
            }
        }
        let prior = ChungLuEstimator::from_degree_histogram(&[0, 10, 40, 20, 5]);
        let a = FeedbackEstimator::new(prior.clone(), &plan, &obs);
        let b = FeedbackEstimator::new(prior.clone(), &plan, &obs);
        assert_eq!(a, b, "construction must be a pure function of inputs");
        let full = (1u64 << p.num_vertices()) - 1;
        for mask in 1..=full {
            let ea = a.estimate_pattern_subset(&p, mask);
            let eb = b.estimate_pattern_subset(&p, mask);
            assert_eq!(ea.to_bits(), eb.to_bits(), "mask {mask:b}");
        }
        // An unseen single-edge mask is prior ·ρ, not the raw prior
        // (unless ρ happens to be exactly 1).
        let rho = a.correction();
        assert!(rho > 0.0 && rho.is_finite());
        let edge_mask = {
            let (u, v) = p.edges().next().unwrap();
            (1u64 << u) | (1u64 << v)
        };
        if !a.observed.iter().any(|&(m, _)| m == edge_mask) {
            let got = a.estimate_pattern_subset(&p, edge_mask);
            let want = prior.estimate_pattern_subset(&p, edge_mask) * rho;
            assert!((got - want).abs() <= 1e-9 * want.abs().max(1.0));
        }
    }

    #[test]
    fn empty_observation_reduces_to_prior() {
        let p = queries::triangle();
        let plan = uncompressed_plan(&p);
        let prior = ChungLuEstimator::from_degree_histogram(&[0, 5, 10, 3]);
        let fb = FeedbackEstimator::new(prior.clone(), &plan, &PlanObs::default());
        // survivors = 0 everywhere → observed masks estimate 0 (a run that
        // found nothing), ρ stays 1 and unseen masks equal the prior.
        assert_eq!(fb.correction(), 1.0);
        let unseen = 0b101; // not a prefix of any matching order of K3? may
                            // be observed for some plans; only check ρ
                            // behaviour on component estimates.
        let _ = unseen;
        assert_eq!(fb.estimate_component(2, 1), prior.estimate_component(2, 1));
    }
}
