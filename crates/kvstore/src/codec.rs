//! Versioned adjacency-value codecs.
//!
//! Every value stored for a vertex is one encoded adjacency set, led by
//! a **one-byte format tag** so readers are self-describing: a store
//! written with either codec decodes with the same entry points, and an
//! unknown or damaged tag surfaces as a structured [`CodecError`]
//! instead of a panic.
//!
//! Wire formats:
//!
//! ```text
//! tag 0x01  raw-u32        [tag][n × u32 little-endian]
//! tag 0x02  delta-varint   [tag][varint id0][varint gap1]...[varint gapN]
//! ```
//!
//! `delta-varint` exploits that adjacency sets are strictly increasing:
//! it stores the first id and then the gaps, each as an LEB128 varint
//! (7 payload bits per byte, high bit = continuation). Sorted real-world
//! neighbourhoods have small gaps, so most neighbours cost 1–2 bytes
//! instead of 4 — the communication-volume lever the BENU cost model
//! rewards directly.
//!
//! Decoding validates structure end to end (tag, truncation, id
//! overflow, monotonicity), so a corrupt shard value degrades into an
//! error the worker taxonomy can route, never undefined behaviour.

use benu_graph::{AdjSet, VertexId, DENSE_BLOCK_THRESHOLD};
use bytes::{BufMut, Bytes, BytesMut};

/// Wire tag of [`CodecKind::RawU32`].
const TAG_RAW_U32: u8 = 0x01;
/// Wire tag of [`CodecKind::DeltaVarint`].
const TAG_DELTA_VARINT: u8 = 0x02;

/// The adjacency codecs a store can be built with. The kind picked at
/// store-build time decides the wire bytes; decoding always follows the
/// per-value tag, so readers need no configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CodecKind {
    /// `[tag][n × u32 LE]` — today's payload bytes behind the tag.
    #[default]
    RawU32,
    /// `[tag][varint first][varint gaps...]` — delta + LEB128.
    DeltaVarint,
}

impl CodecKind {
    /// Stable lower-case name (used in reports and CLI flags).
    pub fn name(&self) -> &'static str {
        match self {
            CodecKind::RawU32 => "raw-u32",
            CodecKind::DeltaVarint => "delta-varint",
        }
    }

    /// The one-byte wire tag leading every value this codec writes.
    pub fn tag(&self) -> u8 {
        match self {
            CodecKind::RawU32 => TAG_RAW_U32,
            CodecKind::DeltaVarint => TAG_DELTA_VARINT,
        }
    }

    /// Resolves a wire tag back to its codec.
    pub fn from_tag(tag: u8) -> Option<CodecKind> {
        match tag {
            TAG_RAW_U32 => Some(CodecKind::RawU32),
            TAG_DELTA_VARINT => Some(CodecKind::DeltaVarint),
            _ => None,
        }
    }
}

impl std::fmt::Display for CodecKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for CodecKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "raw-u32" => Ok(CodecKind::RawU32),
            "delta-varint" => Ok(CodecKind::DeltaVarint),
            other => Err(format!("unknown codec '{other}' (raw-u32|delta-varint)")),
        }
    }
}

/// Structured decode failure: what exactly is wrong with a value's
/// bytes. Carried up through the store's `CorruptValue` and from there
/// into the worker error taxonomy, so a damaged shard degrades like a
/// fault instead of crashing the enumeration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Zero-length value: even an empty set carries its tag byte.
    Empty,
    /// Leading byte is not a known codec tag.
    UnknownTag(u8),
    /// Payload ends mid-id (raw) or mid-varint / with a dangling
    /// continuation bit (delta).
    Truncated,
    /// A decoded id or gap sum exceeds `u32::MAX`.
    Overflow,
    /// Ids are not strictly increasing (raw payload out of order, or a
    /// zero gap).
    NonMonotonic,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Empty => write!(f, "empty value (missing codec tag)"),
            CodecError::UnknownTag(tag) => write!(f, "unknown codec tag 0x{tag:02x}"),
            CodecError::Truncated => write!(f, "truncated payload"),
            CodecError::Overflow => write!(f, "id overflows u32"),
            CodecError::NonMonotonic => write!(f, "ids not strictly increasing"),
        }
    }
}

impl std::error::Error for CodecError {}

/// An adjacency-value wire format: encode a strictly increasing id run
/// into tagged bytes, decode a tagged payload back. Implementations are
/// stateless unit structs; [`encode`]/[`decode_into`] dispatch on
/// [`CodecKind`] / the wire tag so callers rarely name them directly.
pub trait Codec {
    /// The kind this codec writes (and whose tag it expects back).
    fn kind(&self) -> CodecKind;

    /// Appends the tag byte and the encoded payload to `out`.
    fn encode_into(&self, neighbors: &[VertexId], out: &mut BytesMut);

    /// Decodes `payload` (the bytes *after* the tag) into `out`
    /// (cleared first), validating structure and monotonicity.
    fn decode_payload(&self, payload: &[u8], out: &mut Vec<VertexId>) -> Result<(), CodecError>;
}

/// `[tag][n × u32 little-endian]`.
pub struct RawU32;

impl Codec for RawU32 {
    fn kind(&self) -> CodecKind {
        CodecKind::RawU32
    }

    fn encode_into(&self, neighbors: &[VertexId], out: &mut BytesMut) {
        // (vendored BytesMut has no reserve; growth is amortised)
        out.put_u8(TAG_RAW_U32);
        for &v in neighbors {
            out.put_u32_le(v);
        }
    }

    fn decode_payload(&self, payload: &[u8], out: &mut Vec<VertexId>) -> Result<(), CodecError> {
        out.clear();
        if !payload.len().is_multiple_of(4) {
            return Err(CodecError::Truncated);
        }
        out.reserve(payload.len() / 4);
        let mut prev: Option<VertexId> = None;
        for chunk in payload.chunks_exact(4) {
            let v = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            if prev.is_some_and(|p| p >= v) {
                return Err(CodecError::NonMonotonic);
            }
            prev = Some(v);
            out.push(v);
        }
        Ok(())
    }
}

/// `[tag][varint first][varint gaps...]` — see the module docs.
pub struct DeltaVarint;

/// Appends `v` as an LEB128 varint (1–5 bytes for a `u32`).
fn put_varint(mut v: u32, out: &mut BytesMut) {
    while v >= 0x80 {
        out.put_u8((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.put_u8(v as u8);
}

/// Reads one LEB128 varint from `payload[*pos..]`, advancing `pos`.
fn get_varint(payload: &[u8], pos: &mut usize) -> Result<u32, CodecError> {
    let mut value: u32 = 0;
    let mut shift: u32 = 0;
    loop {
        let &byte = payload.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        let bits = (byte & 0x7f) as u32;
        // A u32 spans at most 5 varint bytes; the 5th may carry only 4
        // payload bits.
        if shift == 28 && bits > 0x0f {
            return Err(CodecError::Overflow);
        }
        if shift > 28 {
            return Err(CodecError::Overflow);
        }
        value |= bits << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

impl Codec for DeltaVarint {
    fn kind(&self) -> CodecKind {
        CodecKind::DeltaVarint
    }

    fn encode_into(&self, neighbors: &[VertexId], out: &mut BytesMut) {
        // (vendored BytesMut has no reserve; growth is amortised)
        out.put_u8(TAG_DELTA_VARINT);
        let mut prev = 0u32;
        for (i, &v) in neighbors.iter().enumerate() {
            debug_assert!(i == 0 || v > prev, "ids not strictly increasing");
            put_varint(if i == 0 { v } else { v - prev }, out);
            prev = v;
        }
    }

    fn decode_payload(&self, payload: &[u8], out: &mut Vec<VertexId>) -> Result<(), CodecError> {
        out.clear();
        let mut pos = 0usize;
        if payload.is_empty() {
            return Ok(());
        }
        let mut current = get_varint(payload, &mut pos)?;
        out.push(current);
        while pos < payload.len() {
            let gap = get_varint(payload, &mut pos)?;
            if gap == 0 {
                return Err(CodecError::NonMonotonic);
            }
            current = current.checked_add(gap).ok_or(CodecError::Overflow)?;
            out.push(current);
        }
        Ok(())
    }
}

/// Encodes a strictly increasing id run with the given codec, returning
/// the tagged wire bytes.
pub fn encode(kind: CodecKind, neighbors: &[VertexId]) -> Bytes {
    let mut out = BytesMut::new();
    match kind {
        CodecKind::RawU32 => RawU32.encode_into(neighbors, &mut out),
        CodecKind::DeltaVarint => DeltaVarint.encode_into(neighbors, &mut out),
    }
    out.freeze()
}

/// Decodes a tagged value into a caller-owned buffer (cleared first) —
/// the pooled-buffer entry point: a reader that recycles `out` performs
/// no allocation once the buffer has grown to the working degree.
/// Returns the codec the value was written with.
pub fn decode_into(value: &[u8], out: &mut Vec<VertexId>) -> Result<CodecKind, CodecError> {
    let (&tag, payload) = value.split_first().ok_or(CodecError::Empty)?;
    let kind = CodecKind::from_tag(tag).ok_or(CodecError::UnknownTag(tag))?;
    match kind {
        CodecKind::RawU32 => RawU32.decode_payload(payload, out)?,
        CodecKind::DeltaVarint => DeltaVarint.decode_payload(payload, out)?,
    }
    Ok(kind)
}

/// Decodes a tagged value into an owned [`AdjSet`], building the dense
/// block representation when the degree warrants it (the store-build
/// half of the dual-representation design).
pub fn decode(value: &[u8]) -> Result<AdjSet, CodecError> {
    let mut ids = Vec::new();
    decode_into(value, &mut ids)?;
    Ok(AdjSet::from_sorted(ids).with_blocks(DENSE_BLOCK_THRESHOLD))
}

/// Encodes with [`CodecKind::RawU32`].
#[deprecated(
    since = "0.8.0",
    note = "use `encode(CodecKind::RawU32, ..)` or a store built with \
            `KvStore::from_graph_with` — values are tagged now"
)]
pub fn encode_adj(neighbors: &[VertexId]) -> Bytes {
    encode(CodecKind::RawU32, neighbors)
}

/// Decodes a tagged value, panicking on corrupt bytes.
#[deprecated(since = "0.8.0", note = "use `decode`, which reports a `CodecError`")]
pub fn decode_adj(value: &Bytes) -> AdjSet {
    decode(value).expect("corrupt adjacency value")
}

#[cfg(test)]
mod tests {
    use super::*;

    const KINDS: [CodecKind; 2] = [CodecKind::RawU32, CodecKind::DeltaVarint];

    /// Adversarial degree distributions: empty, singleton, dense runs,
    /// huge gaps, and ids at the `u32` ceiling.
    fn adversarial_sets() -> Vec<Vec<VertexId>> {
        let mut sets = vec![
            vec![],
            vec![0],
            vec![u32::MAX],
            vec![0, u32::MAX],
            (0..1000).collect(),
            (0..2048).map(|x| x * 2).collect(),
            vec![
                1,
                2,
                3,
                127,
                128,
                129,
                16_383,
                16_384,
                u32::MAX - 1,
                u32::MAX,
            ],
        ];
        // Power-law-ish gaps: doubling strides.
        let mut v = 1u32;
        let mut doubling = Vec::new();
        while let Some(next) = v.checked_mul(2) {
            doubling.push(v);
            v = next;
        }
        sets.push(doubling);
        sets
    }

    #[test]
    fn roundtrip_is_exact_for_every_codec_and_distribution() {
        let mut out = Vec::new();
        for ids in adversarial_sets() {
            for kind in KINDS {
                let wire = encode(kind, &ids);
                assert_eq!(wire[0], kind.tag(), "tag leads the value");
                let decoded_kind = decode_into(&wire, &mut out).expect("roundtrip");
                assert_eq!(decoded_kind, kind, "decode is self-describing");
                assert_eq!(out, ids, "{kind}: {ids:?}");
                let set = decode(&wire).expect("roundtrip");
                assert_eq!(set.as_slice(), &ids[..]);
            }
        }
    }

    #[test]
    fn cross_codec_decodes_agree_byte_for_byte() {
        let (mut raw, mut delta) = (Vec::new(), Vec::new());
        for ids in adversarial_sets() {
            decode_into(&encode(CodecKind::RawU32, &ids), &mut raw).expect("raw");
            decode_into(&encode(CodecKind::DeltaVarint, &ids), &mut delta).expect("delta");
            assert_eq!(raw, delta, "{ids:?}");
        }
    }

    #[test]
    fn delta_varint_compresses_small_gap_runs() {
        let ids: Vec<VertexId> = (0..1000).collect();
        let raw = encode(CodecKind::RawU32, &ids);
        let delta = encode(CodecKind::DeltaVarint, &ids);
        assert_eq!(raw.len(), 1 + 4 * 1000);
        // First id is one byte, then 999 single-byte gaps.
        assert_eq!(delta.len(), 1 + 1000);
        assert!(delta.len() * 2 < raw.len(), "≥2× smaller on dense runs");
    }

    #[test]
    fn decode_surfaces_structured_errors() {
        let mut out = Vec::new();
        assert_eq!(decode_into(&[], &mut out), Err(CodecError::Empty));
        assert_eq!(
            decode_into(&[0xff, 1, 2, 3], &mut out),
            Err(CodecError::UnknownTag(0xff))
        );
        // Raw payload not a multiple of 4.
        assert_eq!(
            decode_into(&[TAG_RAW_U32, 1, 2, 3], &mut out),
            Err(CodecError::Truncated)
        );
        // Raw payload out of order / duplicated.
        let mut wire = BytesMut::new();
        RawU32.encode_into(&[5, 5], &mut wire);
        assert_eq!(decode_into(&wire, &mut out), Err(CodecError::NonMonotonic));
        // Delta varint with a dangling continuation bit.
        assert_eq!(
            decode_into(&[TAG_DELTA_VARINT, 0x80], &mut out),
            Err(CodecError::Truncated)
        );
        // Zero gap = duplicate id.
        assert_eq!(
            decode_into(&[TAG_DELTA_VARINT, 7, 0], &mut out),
            Err(CodecError::NonMonotonic)
        );
        // Gap pushing the running id past u32::MAX.
        let mut wire = BytesMut::new();
        DeltaVarint.encode_into(&[u32::MAX - 1, u32::MAX], &mut wire);
        let mut bytes = wire.to_vec();
        *bytes.last_mut().expect("gap byte") = 0x03;
        assert_eq!(decode_into(&bytes, &mut out), Err(CodecError::Overflow));
        // A 5-byte varint whose top nibble spills out of u32.
        assert_eq!(
            decode_into(&[TAG_DELTA_VARINT, 0xff, 0xff, 0xff, 0xff, 0x1f], &mut out),
            Err(CodecError::Overflow)
        );
    }

    #[test]
    fn decode_builds_blocks_for_dense_sets_only() {
        let dense: Vec<VertexId> = (0..100).collect();
        let wire = encode(CodecKind::DeltaVarint, &dense);
        assert!(decode(&wire).expect("dense").has_blocks());
        let sparse = encode(CodecKind::DeltaVarint, &[1, 9, 200]);
        assert!(!decode(&sparse).expect("sparse").has_blocks());
    }

    #[test]
    fn kind_parses_its_own_names_and_tags() {
        for kind in KINDS {
            assert_eq!(kind.name().parse::<CodecKind>(), Ok(kind));
            assert_eq!(CodecKind::from_tag(kind.tag()), Some(kind));
        }
        assert!("zstd".parse::<CodecKind>().is_err());
        assert_eq!(CodecKind::from_tag(0), None);
    }

    #[test]
    fn deprecated_shims_stay_wire_compatible() {
        #![allow(deprecated)]
        let ids = vec![3u32, 7, 9];
        let wire = encode_adj(&ids);
        assert_eq!(wire, encode(CodecKind::RawU32, &ids));
        assert_eq!(decode_adj(&wire).as_slice(), &ids[..]);
    }

    #[test]
    #[should_panic(expected = "corrupt")]
    fn deprecated_decode_still_panics_on_corrupt_values() {
        #![allow(deprecated)]
        decode_adj(&Bytes::from_static(&[TAG_RAW_U32, 1, 2, 3]));
    }
}
