//! Value encoding for the key-value store.
//!
//! Adjacency sets are stored as little-endian `u32` runs — the same wire
//! format a real deployment would put in HBase cells. Byte counts of these
//! encoded values are what the communication-cost metric measures.

use benu_graph::{AdjSet, VertexId};
use bytes::{BufMut, Bytes, BytesMut};

/// Encodes a sorted adjacency slice into an opaque value.
pub fn encode_adj(neighbors: &[VertexId]) -> Bytes {
    let mut buf = BytesMut::with_capacity(neighbors.len() * 4);
    for &v in neighbors {
        buf.put_u32_le(v);
    }
    buf.freeze()
}

/// Decodes a value back into an adjacency set.
///
/// # Panics
///
/// Panics if the value length is not a multiple of four (corrupt value).
pub fn decode_adj(value: &Bytes) -> AdjSet {
    assert!(value.len().is_multiple_of(4), "corrupt adjacency value");
    let ids: Vec<VertexId> = value
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    AdjSet::from_sorted(ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let adj = vec![1u32, 7, 42, 1_000_000];
        let encoded = encode_adj(&adj);
        assert_eq!(encoded.len(), 16);
        assert_eq!(decode_adj(&encoded).as_slice(), adj.as_slice());
    }

    #[test]
    fn empty_roundtrip() {
        let encoded = encode_adj(&[]);
        assert!(encoded.is_empty());
        assert!(decode_adj(&encoded).is_empty());
    }

    #[test]
    #[should_panic(expected = "corrupt")]
    fn corrupt_value_detected() {
        decode_adj(&Bytes::from_static(&[1, 2, 3]));
    }
}
