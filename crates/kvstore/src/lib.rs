//! The distributed key-value database holding the data graph.
//!
//! The paper stores adjacency sets in HBase and queries them with `GetAdj`
//! (DBQ) instructions. This crate is the single-process stand-in: a
//! [`KvStore`] partitions the vertex space across shards (one per worker
//! machine in the simulated cluster), stores each adjacency set as an
//! opaque encoded value, and counts every request and transferred byte —
//! the communication-cost metric of the paper's evaluation. Values are
//! written by a versioned [`codec`] chosen at store-build time (see
//! [`KvStore::from_graph_with`]); every byte count reported is the
//! *wire* volume of those tagged, possibly compressed values.
//!
//! The store is immutable after loading (BENU's preprocessing step,
//! Algorithm 2 line 1, is pattern-independent), so reads are lock-free.
//!
//! # Replication
//!
//! A store loaded with [`KvStore::from_graph_replicated`] keeps `R`
//! copies of every value: the primary shard `v % num_shards` plus the
//! next `R - 1` shards in ring order (the HDFS-style placement backing
//! HBase regions). [`KvStore::placement`] enumerates that ring, and the
//! replica-aware accessors ([`KvStore::get_replica`],
//! [`KvStore::get_many_routed`]) let a caller read from any copy while
//! the request/byte accounting charges the shard that actually served.

pub mod codec;

pub use codec::{Codec, CodecError, CodecKind};

use benu_graph::{AdjSet, Graph, VertexId};
use benu_obs::{Counter, Histogram, Registry};
use bytes::Bytes;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A value whose stored bytes failed to decode: which vertex, which
/// shard served it, and the structural [`CodecError`]. Surfaced by the
/// `try_*` read paths so a damaged shard degrades through the worker
/// error taxonomy instead of crashing the process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CorruptValue {
    /// The vertex whose value is damaged.
    pub vertex: VertexId,
    /// The shard that served the damaged bytes.
    pub shard: usize,
    /// What exactly is wrong with the bytes.
    pub error: CodecError,
}

impl std::fmt::Display for CorruptValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "corrupt value for vertex {} on shard {}: {}",
            self.vertex, self.shard, self.error
        )
    }
}

impl std::error::Error for CorruptValue {}

/// Per-shard request/byte counters.
#[derive(Debug, Default)]
struct ShardStats {
    requests: AtomicU64,
    keys: AtomicU64,
    bytes: AtomicU64,
    deduped: AtomicU64,
}

/// One partition of the key space (the role of one HBase region server).
#[derive(Debug)]
struct Shard {
    values: HashMap<VertexId, Bytes>,
    stats: ShardStats,
}

/// Registry handles one shard records into (mirrors [`ShardStats`] under
/// `store.shard.{i}.*` names).
#[derive(Debug)]
struct ShardObs {
    requests: Arc<Counter>,
    keys: Arc<Counter>,
    bytes: Arc<Counter>,
    deduped: Arc<Counter>,
}

/// Registry handles for the whole store: per-shard counters plus a
/// deterministic value-size histogram and a wall-clock request-latency
/// histogram (wall-flagged, so it never enters deterministic snapshots).
#[derive(Debug)]
struct StoreObs {
    shards: Vec<ShardObs>,
    value_bytes: Arc<Histogram>,
    latency_nanos: Arc<Histogram>,
}

/// A sharded, read-only key-value store mapping each data vertex to its
/// encoded adjacency set.
#[derive(Debug)]
pub struct KvStore {
    shards: Vec<Shard>,
    num_vertices: usize,
    replication: usize,
    codec: CodecKind,
    obs: Option<StoreObs>,
}

/// The single source of truth for value placement: replica `offset` of
/// vertex `v` lives on shard `(v % num_shards) + offset` in ring order.
/// Both loading and every read path go through this helper, so primary
/// and replica assignment can never diverge.
fn ring_shard(v: VertexId, num_shards: usize, offset: usize) -> usize {
    (v as usize % num_shards + offset) % num_shards
}

/// Snapshot of the store's access statistics.
///
/// `requests` counts *round trips* (one per [`KvStore::get`], one per
/// touched shard per [`KvStore::get_many`]); `keys` counts individual
/// values served. For unbatched access the two coincide; batching lowers
/// `requests` while `keys` and `bytes` stay workload-determined.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KvStats {
    /// Total round trips served.
    pub requests: u64,
    /// Total values served (individual `GetAdj` answers).
    pub keys: u64,
    /// Total *wire* bytes transferred ("communication cost"): the
    /// tagged, codec-compressed value lengths — not the decoded id
    /// footprint — so a store built with a compressing codec shows its
    /// savings here directly.
    pub bytes: u64,
    /// Lookups saved by batch-level key deduplication: duplicate keys in
    /// one multi-get are decoded, charged and transferred once, and every
    /// further occurrence is answered from the first (frontier batches
    /// repeat hub vertices heavily).
    pub deduped_keys: u64,
}

/// The result of one batched multi-get.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One slot per requested key, in request order (`None` for unknown
    /// vertices). Duplicate keys are served by one decode: the first
    /// occurrence is fetched and accounted, later occurrences share its
    /// value and count as [`KvStats::deduped_keys`].
    pub values: Vec<Option<Arc<AdjSet>>>,
    /// Round trips this batch cost (= number of distinct shards touched).
    pub round_trips: u64,
    /// Wire bytes transferred by this batch (tagged, codec-encoded
    /// value lengths).
    pub bytes: u64,
}

impl KvStore {
    /// Loads the data graph into `num_shards` partitions (vertices are
    /// assigned round-robin by id, giving balanced shards even for skewed
    /// degree distributions).
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero.
    pub fn from_graph(g: &Graph, num_shards: usize) -> Self {
        Self::from_graph_replicated(g, num_shards, 1)
    }

    /// Loads the data graph with `replication` copies of every value:
    /// the primary shard plus the next `replication - 1` shards in ring
    /// order. Values are cheap to mirror ([`Bytes`] is reference
    /// counted), so memory grows only by the shared-pointer overhead.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero or `replication` is outside
    /// `1..=num_shards` (more copies than shards would place two
    /// replicas on the same shard, defeating the point).
    pub fn from_graph_replicated(g: &Graph, num_shards: usize, replication: usize) -> Self {
        Self::from_graph_with(g, num_shards, replication, CodecKind::default())
    }

    /// Loads the data graph with an explicit adjacency [`CodecKind`]:
    /// the store-build-time decision that fixes every value's wire
    /// bytes (and thus the communication cost every read is charged).
    /// Reads are codec-agnostic — values are tagged — so stores built
    /// with different codecs are drop-in interchangeable.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero or `replication` is outside
    /// `1..=num_shards` (more copies than shards would place two
    /// replicas on the same shard, defeating the point).
    pub fn from_graph_with(
        g: &Graph,
        num_shards: usize,
        replication: usize,
        codec: CodecKind,
    ) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        assert!(
            (1..=num_shards).contains(&replication),
            "replication factor {replication} must be within 1..={num_shards} (the shard count)"
        );
        let mut shards: Vec<Shard> = (0..num_shards)
            .map(|_| Shard {
                values: HashMap::new(),
                stats: ShardStats::default(),
            })
            .collect();
        for v in g.vertices() {
            let value = codec::encode(codec, g.neighbors(v));
            for offset in 0..replication {
                shards[ring_shard(v, num_shards, offset)]
                    .values
                    .insert(v, value.clone());
            }
        }
        KvStore {
            shards,
            num_vertices: g.num_vertices(),
            replication,
            codec,
            obs: None,
        }
    }

    /// Attaches observability handles: per-shard `store.shard.{i}.*`
    /// request/key/byte counters, a `store.value_bytes` size histogram,
    /// and a wall-flagged `store.latency_nanos` request-latency
    /// histogram. Must be called before the store is shared (the handles
    /// are registered once; recording afterwards is lock-free).
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.obs = Some(StoreObs {
            shards: (0..self.shards.len())
                .map(|i| ShardObs {
                    requests: registry.counter(&format!("store.shard.{i}.requests")),
                    keys: registry.counter(&format!("store.shard.{i}.keys")),
                    bytes: registry.counter(&format!("store.shard.{i}.bytes")),
                    deduped: registry.counter(&format!("store.shard.{i}.deduped_keys")),
                })
                .collect(),
            value_bytes: registry.histogram("store.value_bytes"),
            latency_nanos: registry.histogram_wall("store.latency_nanos"),
        });
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of vertices stored.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// The replication factor the store was loaded with.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The adjacency codec the store was built with.
    pub fn codec(&self) -> CodecKind {
        self.codec
    }

    /// The primary shard of vertex `v` (replica offset 0).
    pub fn shard_of(&self, v: VertexId) -> usize {
        self.replica_shard(v, 0)
    }

    /// The shard holding replica `offset` of vertex `v` (offset 0 is the
    /// primary; offsets wrap around the ring).
    pub fn replica_shard(&self, v: VertexId, offset: usize) -> usize {
        ring_shard(v, self.shards.len(), offset)
    }

    /// The full placement of vertex `v`: its primary shard followed by
    /// the `replication - 1` mirror shards, in failover order.
    pub fn placement(&self, v: VertexId) -> impl Iterator<Item = usize> + '_ {
        (0..self.replication).map(move |offset| self.replica_shard(v, offset))
    }

    /// Fetches and decodes the adjacency set of `v`, counting the request
    /// and transferred bytes. Returns `None` for unknown vertices.
    pub fn get(&self, v: VertexId) -> Option<Arc<AdjSet>> {
        self.get_replica(v, 0)
    }

    /// Fetches the adjacency set of `v` from replica `offset` of its
    /// placement, charging the request to the shard that served it (the
    /// failover read path). Offset 0 is the primary, making
    /// [`KvStore::get`] a thin alias.
    ///
    /// # Panics
    ///
    /// Panics on a corrupt stored value (use
    /// [`KvStore::try_get_replica`] to handle that structurally), and
    /// in debug builds if `offset` is not below the replication factor
    /// — such a shard holds no copy of `v`.
    pub fn get_replica(&self, v: VertexId, offset: usize) -> Option<Arc<AdjSet>> {
        self.try_get_replica(v, offset)
            .unwrap_or_else(|e| panic!("{e}"))
            .map(|(adj, _)| adj)
    }

    /// [`KvStore::get_replica`] with structured corruption handling:
    /// returns the decoded set together with the wire bytes it cost,
    /// or a [`CorruptValue`] naming the vertex, serving shard and the
    /// exact [`CodecError`]. Statistics are charged only after a
    /// successful decode, so a corrupt read never perturbs the
    /// communication accounting it aborts.
    pub fn try_get_replica(
        &self,
        v: VertexId,
        offset: usize,
    ) -> Result<Option<(Arc<AdjSet>, u64)>, CorruptValue> {
        debug_assert!(
            offset < self.replication,
            "replica offset {offset} outside replication factor {}",
            self.replication
        );
        let started = self.obs.as_ref().map(|_| Instant::now());
        let s = self.replica_shard(v, offset);
        let shard = &self.shards[s];
        let Some(value) = shard.values.get(&v) else {
            return Ok(None);
        };
        let decoded = codec::decode(value).map_err(|error| CorruptValue {
            vertex: v,
            shard: s,
            error,
        })?;
        shard.stats.requests.fetch_add(1, Ordering::Relaxed);
        shard.stats.keys.fetch_add(1, Ordering::Relaxed);
        shard
            .stats
            .bytes
            .fetch_add(value.len() as u64, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.shards[s].requests.inc();
            obs.shards[s].keys.inc();
            obs.shards[s].bytes.add(value.len() as u64);
            obs.value_bytes.record(value.len() as u64);
            if let Some(t0) = started {
                obs.latency_nanos.record(t0.elapsed().as_nanos() as u64);
            }
        }
        Ok(Some((Arc::new(decoded), value.len() as u64)))
    }

    /// Chaos hook: silently drops vertex `v` from every replica shard,
    /// leaving `num_vertices` — and thus any task list derived from it —
    /// unchanged. The store now disagrees with the data graph, which is
    /// exactly the corruption the missing-vertex error path exists to
    /// surface. Returns true if the vertex was present.
    pub fn remove_vertex(&mut self, v: VertexId) -> bool {
        let mut removed = false;
        for offset in 0..self.replication {
            let s = self.replica_shard(v, offset);
            removed |= self.shards[s].values.remove(&v).is_some();
        }
        removed
    }

    /// Chaos hook: overwrites vertex `v`'s value on every replica shard
    /// with garbage bytes (an unknown codec tag), modelling bit rot in
    /// a region file. Subsequent reads of `v` surface a structured
    /// [`CorruptValue`] through the `try_*` paths — the corrupt-shard
    /// degradation the worker taxonomy routes like a fault. Returns
    /// true if the vertex was present.
    pub fn corrupt_value(&mut self, v: VertexId) -> bool {
        let garbage = Bytes::from_static(&[0xff, 0xde, 0xad]);
        let mut corrupted = false;
        for offset in 0..self.replication {
            let s = self.replica_shard(v, offset);
            if let Some(value) = self.shards[s].values.get_mut(&v) {
                *value = garbage.clone();
                corrupted = true;
            }
        }
        corrupted
    }

    /// Fetches a batch of adjacency sets, grouping the keys by shard so
    /// each touched shard is charged exactly one round trip regardless of
    /// how many of its keys appear in `keys` (the HBase `multi-get`
    /// analogue). Returns the values in request order.
    pub fn get_many(&self, keys: &[VertexId]) -> BatchOutcome {
        self.get_many_routed(keys, |_| 0)
    }

    /// Batched fetch with per-primary replica routing: `route(primary)`
    /// names the replica offset every key primarily owned by `primary`
    /// should be served from (0 = no failover). Keys are regrouped by
    /// *serving* shard, so two primaries routed onto the same survivor
    /// still cost one round trip, and accounting charges the shards that
    /// actually answered.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `route` returns an offset at or above
    /// the replication factor.
    pub fn get_many_routed(
        &self,
        keys: &[VertexId],
        route: impl Fn(usize) -> usize,
    ) -> BatchOutcome {
        self.try_get_many_routed(keys, route)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`KvStore::get_many_routed`] with structured corruption
    /// handling: the first damaged value aborts the batch with a
    /// [`CorruptValue`]. Per-shard statistics are committed only for
    /// sub-batches that decoded cleanly, so the charge never includes
    /// bytes the caller did not receive.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `route` returns an offset at or above
    /// the replication factor.
    pub fn try_get_many_routed(
        &self,
        keys: &[VertexId],
        route: impl Fn(usize) -> usize,
    ) -> Result<BatchOutcome, CorruptValue> {
        let started = self.obs.as_ref().map(|_| Instant::now());
        let mut values: Vec<Option<Arc<AdjSet>>> = vec![None; keys.len()];
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, &v) in keys.iter().enumerate() {
            let offset = route(self.shard_of(v));
            debug_assert!(
                offset < self.replication,
                "replica offset {offset} outside replication factor {}",
                self.replication
            );
            by_shard[self.replica_shard(v, offset)].push(i);
        }
        let mut round_trips = 0u64;
        let mut total_bytes = 0u64;
        for (s, indices) in by_shard.iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let shard = &self.shards[s];
            round_trips += 1;
            let mut shard_keys = 0u64;
            let mut shard_bytes = 0u64;
            let mut shard_deduped = 0u64;
            // First occurrence of a key in this shard's sub-batch decodes
            // and is charged; every repeat clones the first slot's `Arc`,
            // keeping the 1:1 slot alignment while the wire carries (and
            // the stats charge) each key once.
            let mut first_slot: HashMap<VertexId, usize> = HashMap::new();
            for &i in indices {
                if let Some(&first) = first_slot.get(&keys[i]) {
                    values[i] = values[first].clone();
                    shard_deduped += 1;
                    continue;
                }
                first_slot.insert(keys[i], i);
                if let Some(value) = shard.values.get(&keys[i]) {
                    let decoded = codec::decode(value).map_err(|error| CorruptValue {
                        vertex: keys[i],
                        shard: s,
                        error,
                    })?;
                    shard_keys += 1;
                    shard_bytes += value.len() as u64;
                    if let Some(obs) = &self.obs {
                        obs.value_bytes.record(value.len() as u64);
                    }
                    values[i] = Some(Arc::new(decoded));
                }
            }
            shard.stats.requests.fetch_add(1, Ordering::Relaxed);
            shard.stats.keys.fetch_add(shard_keys, Ordering::Relaxed);
            shard.stats.bytes.fetch_add(shard_bytes, Ordering::Relaxed);
            shard
                .stats
                .deduped
                .fetch_add(shard_deduped, Ordering::Relaxed);
            if let Some(obs) = &self.obs {
                obs.shards[s].requests.inc();
                obs.shards[s].keys.add(shard_keys);
                obs.shards[s].bytes.add(shard_bytes);
                obs.shards[s].deduped.add(shard_deduped);
            }
            total_bytes += shard_bytes;
        }
        if let (Some(obs), Some(t0)) = (&self.obs, started) {
            obs.latency_nanos.record(t0.elapsed().as_nanos() as u64);
        }
        Ok(BatchOutcome {
            values,
            round_trips,
            bytes: total_bytes,
        })
    }

    /// Fetches without touching the statistics (used by loaders and
    /// tests).
    pub fn get_unaccounted(&self, v: VertexId) -> Option<Arc<AdjSet>> {
        let shard = &self.shards[self.shard_of(v)];
        shard
            .values
            .get(&v)
            .map(|value| Arc::new(codec::decode(value).unwrap_or_else(|e| panic!("{e}"))))
    }

    /// Aggregated access statistics.
    pub fn stats(&self) -> KvStats {
        let mut total = KvStats::default();
        for s in &self.shards {
            total.requests += s.stats.requests.load(Ordering::Relaxed);
            total.keys += s.stats.keys.load(Ordering::Relaxed);
            total.bytes += s.stats.bytes.load(Ordering::Relaxed);
            total.deduped_keys += s.stats.deduped.load(Ordering::Relaxed);
        }
        total
    }

    /// Statistics of one shard.
    pub fn shard_stats(&self, shard: usize) -> KvStats {
        let s = &self.shards[shard].stats;
        KvStats {
            requests: s.requests.load(Ordering::Relaxed),
            keys: s.keys.load(Ordering::Relaxed),
            bytes: s.bytes.load(Ordering::Relaxed),
            deduped_keys: s.deduped.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters (used between experiment runs).
    pub fn reset_stats(&self) {
        for s in &self.shards {
            s.stats.requests.store(0, Ordering::Relaxed);
            s.stats.keys.store(0, Ordering::Relaxed);
            s.stats.bytes.store(0, Ordering::Relaxed);
            s.stats.deduped.store(0, Ordering::Relaxed);
        }
    }

    /// Total *primary-copy* value bytes — the "size of the data graph"
    /// that Exp-3's relative cache capacities are measured against.
    /// Every value appears exactly `replication` times across the
    /// shards, so the per-copy total is the raw sum divided by the
    /// replication factor (mirrors are redundancy, not extra data).
    pub fn total_value_bytes(&self) -> usize {
        let raw: usize = self
            .shards
            .iter()
            .map(|s| s.values.values().map(Bytes::len).sum::<usize>())
            .sum();
        raw / self.replication
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benu_graph::gen;

    #[test]
    fn round_trips_adjacency_sets() {
        let g = gen::erdos_renyi_gnm(100, 300, 5);
        let store = KvStore::from_graph(&g, 4);
        for v in g.vertices() {
            let adj = store.get(v).unwrap();
            assert_eq!(adj.as_slice(), g.neighbors(v));
        }
    }

    #[test]
    fn counts_requests_and_bytes() {
        let g = gen::star(9); // centre 0 has 9 neighbours
        let store = KvStore::from_graph(&g, 2);
        store.get(0).unwrap();
        store.get(1).unwrap();
        store.get(1).unwrap();
        let stats = store.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.keys, 3, "unbatched gets serve one key per request");
        // centre: tag + 9 ids × 4 bytes; leaf: tag + 1 id fetched twice.
        assert_eq!(stats.bytes, 37 + 5 + 5);
    }

    #[test]
    fn get_many_charges_one_round_trip_per_touched_shard() {
        let g = gen::cycle(8);
        let store = KvStore::from_graph(&g, 4);
        // Vertices 0 and 4 share shard 0; 1 is on shard 1: 2 round trips.
        let batch = store.get_many(&[0, 4, 1]);
        assert_eq!(batch.round_trips, 2);
        assert_eq!(batch.values.iter().filter(|v| v.is_some()).count(), 3);
        let stats = store.stats();
        assert_eq!(stats.requests, 2, "per-shard grouping batches round trips");
        assert_eq!(stats.keys, 3, "every key is still served");
        // Each cycle vertex: a tag byte plus 2 neighbours × 4 bytes.
        assert_eq!(stats.bytes, 3 * 9);
        assert_eq!(batch.bytes, stats.bytes);
        assert_eq!(store.shard_stats(0).requests, 1);
        assert_eq!(store.shard_stats(0).keys, 2);
        assert_eq!(store.shard_stats(1).requests, 1);
        assert_eq!(store.shard_stats(2).requests, 0);
    }

    #[test]
    fn get_many_returns_values_in_request_order() {
        let g = gen::path(6);
        let store = KvStore::from_graph(&g, 3);
        let keys = [5u32, 0, 3, 1];
        let batch = store.get_many(&keys);
        for (i, &v) in keys.iter().enumerate() {
            assert_eq!(
                batch.values[i].as_ref().unwrap().as_slice(),
                g.neighbors(v),
                "slot {i} must hold vertex {v}"
            );
        }
    }

    #[test]
    fn get_many_marks_unknown_vertices_none_without_charging_bytes() {
        let g = gen::path(4);
        let store = KvStore::from_graph(&g, 2);
        let batch = store.get_many(&[1, 100]);
        assert!(batch.values[0].is_some());
        assert!(batch.values[1].is_none());
        // The round trip to vertex 100's shard still happened.
        assert_eq!(batch.round_trips, 2);
        assert_eq!(store.stats().keys, 1);
    }

    #[test]
    fn batched_and_unbatched_transfer_identical_bytes() {
        let g = gen::barabasi_albert(60, 3, 7);
        let keys: Vec<VertexId> = g.vertices().collect();
        let store = KvStore::from_graph(&g, 4);
        let batch = store.get_many(&keys);
        let batched = store.stats();
        store.reset_stats();
        for &v in &keys {
            store.get(v).unwrap();
        }
        let unbatched = store.stats();
        assert_eq!(batched.bytes, unbatched.bytes);
        assert_eq!(batched.keys, unbatched.keys);
        assert_eq!(batch.round_trips, 4, "one trip per shard for a full scan");
        assert!(batched.requests < unbatched.requests);
    }

    #[test]
    fn get_many_dedups_repeated_keys_but_keeps_slot_alignment() {
        let g = gen::star(9); // centre 0: 9 neighbours, leaves: 1
        let store = KvStore::from_graph(&g, 2);
        let keys = [0u32, 3, 0, 0, 3, 5];
        let batch = store.get_many(&keys);
        for (i, &v) in keys.iter().enumerate() {
            assert_eq!(
                batch.values[i].as_ref().unwrap().as_slice(),
                g.neighbors(v),
                "slot {i} must hold vertex {v} despite dedup"
            );
        }
        // Duplicates share the first occurrence's decode.
        assert!(Arc::ptr_eq(
            batch.values[0].as_ref().unwrap(),
            batch.values[2].as_ref().unwrap()
        ));
        let stats = store.stats();
        assert_eq!(stats.keys, 3, "only unique keys are served");
        assert_eq!(stats.deduped_keys, 3, "three repeats were saved");
        // Bytes are charged once per unique key: centre (tag + 9×4) +
        // two tagged leaves.
        assert_eq!(stats.bytes, 37 + 5 + 5);
        assert_eq!(batch.bytes, stats.bytes);
    }

    #[test]
    fn deduped_unknown_keys_stay_none_and_uncharged() {
        let g = gen::path(4);
        let store = KvStore::from_graph(&g, 2);
        let batch = store.get_many(&[100, 1, 100]);
        assert!(batch.values[0].is_none());
        assert!(batch.values[1].is_some());
        assert!(batch.values[2].is_none());
        let stats = store.stats();
        assert_eq!(stats.keys, 1);
        assert_eq!(stats.deduped_keys, 1, "the repeated miss is still saved");
    }

    #[test]
    fn obs_histogram_counts_unique_keys_only() {
        let g = gen::path(6);
        let registry = Registry::new();
        let mut store = KvStore::from_graph(&g, 2);
        store.attach_obs(&registry);
        store.get_many(&[2, 2, 4, 2]);
        assert_eq!(
            registry.histogram("store.value_bytes").count(),
            store.stats().keys,
            "histogram mirrors served keys after dedup"
        );
        assert_eq!(
            registry.counter("store.shard.0.deduped_keys").get(),
            store.shard_stats(0).deduped_keys
        );
        assert_eq!(store.stats().deduped_keys, 2);
    }

    #[test]
    fn get_many_of_empty_batch_is_free() {
        let g = gen::path(3);
        let store = KvStore::from_graph(&g, 2);
        let batch = store.get_many(&[]);
        assert!(batch.values.is_empty());
        assert_eq!(batch.round_trips, 0);
        assert_eq!(store.stats(), KvStats::default());
    }

    #[test]
    fn unknown_vertex_is_none_and_unaccounted() {
        let g = gen::path(4);
        let store = KvStore::from_graph(&g, 3);
        assert!(store.get(100).is_none());
        assert_eq!(store.stats().requests, 0);
    }

    #[test]
    fn unaccounted_reads_leave_stats_untouched() {
        let g = gen::path(4);
        let store = KvStore::from_graph(&g, 1);
        assert!(store.get_unaccounted(0).is_some());
        assert_eq!(store.stats(), KvStats::default());
    }

    #[test]
    fn reset_clears_counters() {
        let g = gen::cycle(5);
        let store = KvStore::from_graph(&g, 2);
        store.get(0);
        store.reset_stats();
        assert_eq!(store.stats(), KvStats::default());
    }

    #[test]
    fn shards_partition_all_vertices() {
        let g = gen::erdos_renyi_gnm(50, 100, 1);
        let store = KvStore::from_graph(&g, 7);
        assert_eq!(store.num_shards(), 7);
        for v in g.vertices() {
            assert!(store.shard_of(v) < 7);
            assert!(store.get_unaccounted(v).is_some());
        }
    }

    #[test]
    fn total_value_bytes_matches_graph_plus_tags() {
        let g = gen::complete(6);
        let store = KvStore::from_graph(&g, 3);
        // raw-u32 wire = the raw adjacency bytes plus one tag per value.
        assert_eq!(
            store.total_value_bytes(),
            g.adjacency_bytes() + g.num_vertices()
        );
    }

    #[test]
    fn attached_obs_mirrors_shard_stats() {
        let g = gen::path(6);
        let registry = Registry::new();
        let mut store = KvStore::from_graph(&g, 2);
        store.attach_obs(&registry);
        store.get(0); // shard 0
        store.get(1); // shard 1
        store.get_many(&[2, 4, 3]); // shards 0 and 1
        assert_eq!(
            registry.counter("store.shard.0.requests").get(),
            store.shard_stats(0).requests
        );
        assert_eq!(
            registry.counter("store.shard.1.bytes").get(),
            store.shard_stats(1).bytes
        );
        assert_eq!(
            registry.histogram("store.value_bytes").count(),
            store.stats().keys
        );
        // Latency is wall-derived: recorded, but deterministic snapshots
        // must exclude it.
        assert!(registry.histogram("store.latency_nanos").count() > 0);
        assert!(!registry
            .snapshot_deterministic()
            .contains_key("store.latency_nanos"));
    }

    #[test]
    fn placement_walks_the_ring_from_the_primary() {
        let g = gen::cycle(10);
        let store = KvStore::from_graph_replicated(&g, 4, 3);
        assert_eq!(store.placement(6).collect::<Vec<_>>(), vec![2, 3, 0]);
        // The ring wraps: vertex 3's mirrors spill past the last shard.
        assert_eq!(store.placement(3).collect::<Vec<_>>(), vec![3, 0, 1]);
        assert_eq!(store.shard_of(6), 2, "shard_of is the placement head");
        assert_eq!(store.replica_shard(6, 2), 0);
    }

    #[test]
    fn replicas_mirror_every_value() {
        let g = gen::barabasi_albert(40, 3, 11);
        let store = KvStore::from_graph_replicated(&g, 5, 2);
        for v in g.vertices() {
            for offset in 0..2 {
                let adj = store.get_replica(v, offset).unwrap();
                assert_eq!(adj.as_slice(), g.neighbors(v), "replica {offset} of {v}");
            }
        }
    }

    #[test]
    fn replica_reads_charge_the_serving_shard() {
        let g = gen::path(8);
        let store = KvStore::from_graph_replicated(&g, 4, 2);
        // Vertex 1's primary is shard 1; its mirror lives on shard 2.
        store.get_replica(1, 1).unwrap();
        assert_eq!(store.shard_stats(1).requests, 0, "primary was bypassed");
        assert_eq!(store.shard_stats(2).requests, 1);
        assert_eq!(store.shard_stats(2).keys, 1);
    }

    #[test]
    fn routed_batches_regroup_by_serving_shard() {
        let g = gen::cycle(8);
        let store = KvStore::from_graph_replicated(&g, 4, 2);
        // Vertices 0 and 4 are primary on shard 0; 1 and 5 on shard 1.
        // Failing shard 0 over to its mirror (shard 1) collapses the
        // whole batch onto one serving shard: one round trip.
        let batch = store.get_many_routed(&[0, 4, 1, 5], |primary| usize::from(primary == 0));
        assert_eq!(batch.round_trips, 1);
        assert_eq!(batch.values.iter().filter(|v| v.is_some()).count(), 4);
        assert_eq!(store.shard_stats(0).requests, 0);
        assert_eq!(store.shard_stats(1).requests, 1);
        assert_eq!(store.shard_stats(1).keys, 4);
    }

    #[test]
    fn unreplicated_store_matches_legacy_behaviour() {
        let g = gen::erdos_renyi_gnm(60, 150, 3);
        let legacy = KvStore::from_graph(&g, 4);
        let explicit = KvStore::from_graph_replicated(&g, 4, 1);
        assert_eq!(legacy.replication(), 1);
        for v in g.vertices() {
            assert_eq!(legacy.shard_of(v), explicit.shard_of(v));
            assert_eq!(legacy.placement(v).count(), 1);
        }
        assert_eq!(legacy.total_value_bytes(), explicit.total_value_bytes());
    }

    #[test]
    fn total_value_bytes_counts_primary_copies_only() {
        let g = gen::complete(6);
        let single = KvStore::from_graph(&g, 3);
        let mirrored = KvStore::from_graph_replicated(&g, 3, 3);
        let wire = g.adjacency_bytes() + g.num_vertices();
        assert_eq!(single.total_value_bytes(), wire);
        assert_eq!(
            mirrored.total_value_bytes(),
            wire,
            "mirrors are redundancy, not extra data"
        );
    }

    #[test]
    fn delta_codec_store_serves_identical_sets_for_fewer_bytes() {
        let g = gen::barabasi_albert(80, 4, 13);
        let raw = KvStore::from_graph_with(&g, 4, 1, CodecKind::RawU32);
        let delta = KvStore::from_graph_with(&g, 4, 1, CodecKind::DeltaVarint);
        assert_eq!(raw.codec(), CodecKind::RawU32);
        assert_eq!(delta.codec(), CodecKind::DeltaVarint);
        for v in g.vertices() {
            let a = raw.get(v).unwrap();
            let b = delta.get(v).unwrap();
            assert_eq!(a.as_slice(), b.as_slice(), "codec must not change data");
        }
        let (rs, ds) = (raw.stats(), delta.stats());
        assert_eq!(rs.keys, ds.keys);
        assert!(
            ds.bytes < rs.bytes,
            "delta-varint must shrink the wire volume ({} vs {})",
            ds.bytes,
            rs.bytes
        );
        assert!(delta.total_value_bytes() < raw.total_value_bytes());
    }

    #[test]
    fn try_get_reports_wire_bytes_matching_stats() {
        let g = gen::star(9);
        let store = KvStore::from_graph_with(&g, 2, 1, CodecKind::DeltaVarint);
        let (adj, wire) = store.try_get_replica(0, 0).unwrap().unwrap();
        assert_eq!(adj.len(), 9);
        assert_eq!(wire, store.stats().bytes, "single get = whole charge");
        assert!(wire < 37, "delta encoding beats the raw wire");
    }

    #[test]
    fn corrupt_value_surfaces_structured_error_without_charging() {
        let g = gen::cycle(6);
        let mut store = KvStore::from_graph_replicated(&g, 2, 2);
        assert!(store.corrupt_value(3));
        let err = store.try_get_replica(3, 0).unwrap_err();
        assert_eq!(err.vertex, 3);
        assert_eq!(err.shard, store.shard_of(3));
        assert_eq!(err.error, CodecError::UnknownTag(0xff));
        // Every replica is equally rotten.
        assert!(store.try_get_replica(3, 1).is_err());
        // The batch path aborts with the same structured error.
        let batch_err = store.try_get_many_routed(&[0, 3], |_| 0).unwrap_err();
        assert_eq!(batch_err.vertex, 3);
        // Corrupt reads never perturb the byte accounting: only vertex
        // 0's clean shard sub-batch committed its charge; the corrupt
        // shard's sub-batch (and both failed single gets) charged
        // nothing.
        let healthy: u64 = 9; // tag + 2 ids
        assert_eq!(store.stats().bytes, healthy);
        assert_eq!(store.stats().keys, 1);
        // Clean vertices still read fine.
        assert!(store.get(0).is_some());
        assert!(!store.corrupt_value(100), "unknown vertex: nothing to rot");
    }

    #[test]
    #[should_panic(expected = "replication factor 0")]
    fn zero_replication_is_rejected() {
        let g = gen::path(3);
        KvStore::from_graph_replicated(&g, 2, 0);
    }

    #[test]
    #[should_panic(expected = "must be within 1..=2")]
    fn replication_beyond_shard_count_is_rejected() {
        let g = gen::path(3);
        KvStore::from_graph_replicated(&g, 2, 3);
    }

    #[test]
    fn per_shard_stats_attribute_requests() {
        let g = gen::path(6);
        let store = KvStore::from_graph(&g, 2);
        store.get(0); // shard 0
        store.get(2); // shard 0
        store.get(1); // shard 1
        assert_eq!(store.shard_stats(0).requests, 2);
        assert_eq!(store.shard_stats(1).requests, 1);
    }
}
