//! DFS-vs-hybrid byte-identity property suite.
//!
//! The hybrid frontier engine reorders *when* adjacency sets are fetched
//! (one deduplicated batch per expansion level instead of one lookup per
//! DBQ miss) but must never change *what* is enumerated. This suite
//! crosses {static, work-stealing} schedulers × {faults off, crash +
//! shard outage} × {tiny, medium, unbounded} byte budgets and asserts
//! that every hybrid configuration produces the exact match count, the
//! exact sorted match set, and — on deterministic configurations — a
//! same-seed replay of the frontier/spill report.

use benu_cluster::{Cluster, ClusterConfig, ExecMode, RunOutcome, SchedulerKind};
use benu_fault::FaultPlan;
use benu_graph::{Graph, VertexId};
use benu_pattern::queries;
use benu_plan::{ExecutionPlan, PlanBuilder};

const BUDGETS: [(&str, usize); 3] = [("tiny", 512), ("medium", 64 << 10), ("unbounded", 0)];

fn config(scheduler: SchedulerKind, mode: ExecMode, budget: usize, faulty: bool) -> ClusterConfig {
    ClusterConfig::builder()
        .workers(3)
        .threads_per_worker(2)
        // Faulty runs disable the cache so every fetch is a fault site;
        // clean runs keep a small cache in the loop.
        .cache_capacity_bytes(if faulty { 0 } else { 1 << 18 })
        .tau(20)
        .scheduler(scheduler)
        // Replication 2 lets reads fail over across the injected outage.
        .replication(if faulty { 2 } else { 1 })
        .exec_mode(mode)
        .memory_budget_bytes(budget)
        .build()
}

/// Crash worker 1 after 4 tasks and darken shard 0 from the recovery
/// pass onwards — the requeue and failover machinery both engage.
fn chaos_plan() -> FaultPlan {
    FaultPlan::builder(42)
        .transient_rate(0.02)
        .crash(1, 4)
        .shard_outage(0, 2)
        .build()
}

fn run(
    g: &Graph,
    plan: &ExecutionPlan,
    scheduler: SchedulerKind,
    mode: ExecMode,
    budget: usize,
    faults: Option<FaultPlan>,
) -> (RunOutcome, Vec<Vec<VertexId>>) {
    let mut cluster = Cluster::new(g, config(scheduler, mode, budget, faults.is_some()));
    cluster.set_fault_plan(faults);
    cluster.run_collect(plan).expect("run must survive")
}

#[test]
fn hybrid_matches_dfs_across_schedulers_faults_and_budgets() {
    let g = benu_graph::gen::barabasi_albert(100, 4, 13);
    let plan = PlanBuilder::new(&queries::q5()).best_plan();
    for scheduler in [SchedulerKind::Static, SchedulerKind::WorkStealing] {
        for faulty in [false, true] {
            let faults = faulty.then(chaos_plan);
            let (dfs, dfs_matches) = run(&g, &plan, scheduler, ExecMode::Dfs, 0, faults.clone());
            assert_eq!(dfs.exec_mode, ExecMode::Dfs);
            assert_eq!(dfs.frontier_expansions, 0, "DFS never expands a frontier");
            assert_eq!(dfs.spill_events, 0);
            for (label, budget) in BUDGETS {
                let (hy, hy_matches) = run(
                    &g,
                    &plan,
                    scheduler,
                    ExecMode::Hybrid,
                    budget,
                    faults.clone(),
                );
                let ctx = format!("{scheduler:?}/faulty={faulty}/budget={label}");
                assert_eq!(hy.exec_mode, ExecMode::Hybrid);
                assert_eq!(hy.total_matches, dfs.total_matches, "{ctx}: count diverged");
                assert_eq!(hy.total_codes, dfs.total_codes, "{ctx}: codes diverged");
                assert_eq!(hy_matches, dfs_matches, "{ctx}: match set diverged");
                // Instruction-level metrics are order-free counts, so
                // they agree exactly too.
                assert_eq!(hy.metrics, dfs.metrics, "{ctx}: metrics diverged");
                if budget == 0 {
                    assert_eq!(hy.spill_events, 0, "{ctx}: unbounded must not spill");
                    assert!(hy.frontier_expansions > 0, "{ctx}: hybrid must batch");
                }
            }
        }
    }
}

#[test]
fn frontier_report_replays_byte_identically_on_deterministic_configs() {
    // 1 worker × 1 thread × static scheduler is the deterministic
    // snapshot configuration: two same-seed runs must agree on every
    // frontier counter, not just the match count.
    let g = benu_graph::gen::erdos_renyi_gnm(80, 320, 7);
    let plan = PlanBuilder::new(&queries::triangle()).best_plan();
    let cfg = ClusterConfig::builder()
        .workers(1)
        .threads_per_worker(1)
        .cache_capacity_bytes(1 << 18)
        .tau(20)
        .exec_mode(ExecMode::Hybrid)
        .memory_budget_bytes(8 << 10)
        .build();
    let a = Cluster::new(&g, cfg).run(&plan).unwrap();
    let b = Cluster::new(&g, cfg).run(&plan).unwrap();
    assert_eq!(a.frontier_expansions, b.frontier_expansions);
    assert_eq!(a.spill_events, b.spill_events);
    assert_eq!(a.peak_frontier_bytes, b.peak_frontier_bytes);
    assert_eq!(a.total_matches, b.total_matches);
    assert!(a.frontier_expansions > 0);
}

#[test]
fn tight_budget_spills_yet_finishes_with_exact_counts() {
    let g = benu_graph::gen::barabasi_albert(150, 5, 3);
    let plan = PlanBuilder::new(&queries::clique(4)).best_plan();
    let expected = {
        let cfg = config(SchedulerKind::Static, ExecMode::Dfs, 0, false);
        Cluster::new(&g, cfg).run(&plan).unwrap().total_matches
    };
    let cfg = config(SchedulerKind::Static, ExecMode::Hybrid, 256, false);
    let outcome = Cluster::new(&g, cfg).run(&plan).unwrap();
    assert_eq!(outcome.total_matches, expected);
    assert!(outcome.spill_events > 0, "256 bytes must force spills");
}
