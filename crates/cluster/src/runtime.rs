//! The cluster executor.
//!
//! `Cluster` wires the runtime layers together: a [`Scheduler`] hands
//! tasks to worker threads, each worker's [`Transport`] carries its store
//! traffic (with byte/round-trip accounting), and each worker machine
//! owns a persistent [`DbCache`] that survives across `run` calls — the
//! paper's long-lived per-machine database cache. See DESIGN.md
//! "Runtime layering" for the full picture.

use crate::config::ClusterConfig;
use crate::report::{RunOutcome, WorkerReport};
use crate::transport::Transport;
use crate::worker::{ErrorSlot, ThreadResult, Worker, WorkerError};
use benu_cache::{CacheStats, DbCache};
use benu_engine::{SearchTask, SplitSpec};
use benu_graph::{Graph, TotalOrder, VertexId};
use benu_kvstore::KvStore;
use benu_plan::ExecutionPlan;
use std::sync::Arc;
use std::time::Instant;

type Matches = Vec<Vec<VertexId>>;

/// A loaded cluster: the data graph resident in the sharded store, ready
/// to run any number of plans. Each worker machine's database cache is
/// created once and persists across runs (warm caches), mirroring the
/// paper's long-lived reducer processes; call [`Cluster::clear_caches`]
/// for a cold-cache run.
pub struct Cluster {
    store: Arc<KvStore>,
    order: Arc<TotalOrder>,
    degrees: Vec<u32>,
    caches: Vec<Arc<DbCache>>,
    config: ClusterConfig,
}

impl Cluster {
    /// Loads `g` into a store sharded across the configured workers
    /// (Algorithm 2 line 1 — the pattern-independent preprocessing) and
    /// creates the per-machine caches.
    pub fn new(g: &Graph, config: ClusterConfig) -> Self {
        config.validate();
        Cluster {
            store: Arc::new(KvStore::from_graph(g, config.workers)),
            order: Arc::new(TotalOrder::new(g)),
            degrees: g.vertices().map(|v| g.degree(v) as u32).collect(),
            caches: Self::build_caches(&config),
            config,
        }
    }

    fn build_caches(config: &ClusterConfig) -> Vec<Arc<DbCache>> {
        (0..config.workers)
            .map(|_| {
                Arc::new(DbCache::new(
                    config.cache_capacity_bytes,
                    config.cache_shards,
                ))
            })
            .collect()
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The underlying store (for capacity/size queries).
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// The persistent per-machine database caches.
    pub fn caches(&self) -> &[Arc<DbCache>] {
        &self.caches
    }

    /// Drops every cached adjacency set and resets the cache counters —
    /// the cold-cache starting point of the Exp-3 ablation. Run-to-run
    /// warmth is otherwise deliberate.
    pub fn clear_caches(&self) {
        for cache in &self.caches {
            cache.clear();
        }
    }

    /// Reconfigures the cluster in place. The store sharding stays as
    /// loaded; execution parameters change, and the per-machine caches
    /// are rebuilt (cold) only when the new configuration changes their
    /// shape (worker count, capacity or shard count).
    pub fn set_config(&mut self, config: ClusterConfig) {
        config.validate();
        let reshape = config.workers != self.config.workers
            || config.cache_capacity_bytes != self.config.cache_capacity_bytes
            || config.cache_shards != self.config.cache_shards;
        if reshape {
            self.caches = Self::build_caches(&config);
        }
        self.config = config;
    }

    /// Generates the (split) task list for a compiled plan.
    fn generate_tasks(&self, second_adjacent: bool, has_second: bool) -> Vec<SearchTask> {
        let n = self.degrees.len();
        let tau = if has_second { self.config.tau } else { 0 };
        let mut tasks = Vec::with_capacity(n);
        for v in 0..n {
            let degree = self.degrees[v] as usize;
            let bound = if second_adjacent { degree } else { n };
            if tau > 0 && degree >= tau && bound > tau {
                let total = bound.div_ceil(tau) as u32;
                for index in 0..total {
                    tasks.push(SearchTask {
                        start: v as VertexId,
                        split: Some(SplitSpec { index, total }),
                    });
                }
            } else {
                tasks.push(SearchTask::whole(v as VertexId));
            }
        }
        tasks
    }

    /// Runs `plan`, counting matches (Algorithm 2 lines 3–8). Store
    /// counters are reset at entry so the outcome reflects this run only;
    /// cache contents persist from earlier runs (cache *stats* in the
    /// outcome are per-run deltas).
    ///
    /// # Errors
    ///
    /// Aborts with a [`WorkerError`] when a task queries a vertex the
    /// store does not hold or a task panics.
    pub fn run(&self, plan: &ExecutionPlan) -> Result<RunOutcome, WorkerError> {
        Ok(self.run_inner(plan, false)?.0)
    }

    /// Runs `plan` and additionally collects every (expanded) embedding.
    /// Intended for correctness tests and small graphs.
    ///
    /// # Errors
    ///
    /// See [`Cluster::run`].
    pub fn run_collect(&self, plan: &ExecutionPlan) -> Result<(RunOutcome, Matches), WorkerError> {
        let (outcome, matches) = self.run_inner(plan, true)?;
        Ok((outcome, matches.unwrap_or_default()))
    }

    fn run_inner(
        &self,
        plan: &ExecutionPlan,
        collect: bool,
    ) -> Result<(RunOutcome, Option<Matches>), WorkerError> {
        let compiled = benu_engine::CompiledPlan::compile(plan);
        let tasks = self.generate_tasks(compiled.second_adjacent, compiled.second_vertex.is_some());
        let total_tasks = tasks.len();
        let p = self.config.workers;

        // Round-robin initial assignment — the even shuffle of tasks to
        // reducers. The scheduler decides whether tasks may migrate.
        let mut worker_tasks: Vec<Vec<SearchTask>> = vec![Vec::new(); p];
        for (i, t) in tasks.into_iter().enumerate() {
            worker_tasks[i % p].push(t);
        }
        let scheduler = self.config.scheduler.build(worker_tasks);

        self.store.reset_stats();
        let transports: Vec<Transport> = (0..p)
            .map(|_| Transport::new(Arc::clone(&self.store)))
            .collect();
        let cache_stats_before: Vec<CacheStats> = self.caches.iter().map(|c| c.stats()).collect();
        let errors = ErrorSlot::new();
        let started = Instant::now();

        let mut thread_results: Vec<Vec<Result<ThreadResult, WorkerError>>> =
            (0..p).map(|_| Vec::new()).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p * self.config.threads_per_worker);
            for (w, transport) in transports.iter().enumerate() {
                for _ in 0..self.config.threads_per_worker {
                    let worker = Worker {
                        id: w,
                        scheduler: scheduler.as_ref(),
                        transport,
                        cache: &self.caches[w],
                        order: &self.order,
                        compiled: &compiled,
                        config: &self.config,
                        errors: &errors,
                    };
                    handles.push((w, scope.spawn(move || worker.run_thread(collect))));
                }
            }
            for (w, handle) in handles {
                let result = handle
                    .join()
                    .unwrap_or(Err(WorkerError::ThreadPanicked { worker: w }));
                thread_results[w].push(result);
            }
        });
        let elapsed = started.elapsed();

        if let Some(err) = errors.first() {
            return Err(err);
        }

        let mut reports: Vec<WorkerReport> = Vec::with_capacity(p);
        let mut all_matches: Option<Matches> = collect.then(Vec::new);
        let mut all_task_times = self.config.collect_task_times.then(Vec::new);
        for (w, results) in thread_results.into_iter().enumerate() {
            let mut report = WorkerReport {
                worker: w,
                tasks: scheduler.assigned(w),
                steals: scheduler.steals(w),
                ..WorkerReport::default()
            };
            for result in results {
                let r = result?;
                report.metrics += r.metrics;
                report.busy_time += r.busy;
                report.tasks_executed += r.executed;
                report.thread_busy.push(r.busy);
                report.triangle_cache.hits += r.tri_stats.hits;
                report.triangle_cache.misses += r.tri_stats.misses;
                if let Some(times) = all_task_times.as_mut() {
                    times.extend(r.task_times);
                }
                if let (Some(all), Some(mine)) = (all_matches.as_mut(), r.matches) {
                    all.extend(mine);
                }
            }
            // Per-run cache effectiveness: delta against the persistent
            // cache's counters at run start.
            let now = self.caches[w].stats();
            let before = cache_stats_before[w];
            report.cache = CacheStats {
                hits: now.hits - before.hits,
                misses: now.misses - before.misses,
                evictions: now.evictions - before.evictions,
            };
            report.comm_bytes = transports[w].bytes();
            report.comm_requests = transports[w].requests();
            report.batch_round_trips = transports[w].batch_round_trips();
            reports.push(report);
        }

        let mut metrics = benu_engine::TaskMetrics::default();
        for r in &reports {
            metrics += r.metrics;
        }
        let outcome = RunOutcome {
            total_matches: metrics.matches,
            total_codes: metrics.codes,
            elapsed,
            metrics,
            workers: reports,
            kv: self.store.stats(),
            total_tasks,
            scheduler: self.config.scheduler,
            task_times: all_task_times,
        };
        if let Some(m) = all_matches.as_mut() {
            m.sort_unstable();
        }
        Ok((outcome, all_matches))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::SchedulerKind;
    use benu_graph::gen;
    use benu_pattern::queries;
    use benu_plan::PlanBuilder;
    use std::time::Duration;

    fn small_cluster(g: &Graph, workers: usize, threads: usize) -> Cluster {
        Cluster::new(
            g,
            ClusterConfig::builder()
                .workers(workers)
                .threads_per_worker(threads)
                .cache_capacity_bytes(1 << 20)
                .tau(20)
                .build(),
        )
    }

    #[test]
    fn counts_triangles_in_k6() {
        let g = gen::complete(6);
        let cluster = small_cluster(&g, 2, 2);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let outcome = cluster.run(&plan).unwrap();
        assert_eq!(outcome.total_matches, 20);
        assert_eq!(outcome.total_tasks, 6);
        let executed: usize = outcome.workers.iter().map(|w| w.tasks_executed).sum();
        assert_eq!(executed, 6);
    }

    #[test]
    fn result_is_independent_of_cluster_shape() {
        let g = gen::barabasi_albert(150, 4, 3);
        let plan = PlanBuilder::new(&queries::q1()).best_plan();
        let expected = benu_engine::count_embeddings(&plan, &g);
        for (workers, threads) in [(1, 1), (2, 3), (5, 2)] {
            let cluster = small_cluster(&g, workers, threads);
            let outcome = cluster.run(&plan).unwrap();
            assert_eq!(
                outcome.total_matches, expected,
                "{workers}x{threads} cluster changed the count"
            );
        }
    }

    #[test]
    fn result_is_independent_of_cache_capacity_and_tau() {
        let g = gen::barabasi_albert(120, 5, 8);
        let plan = PlanBuilder::new(&queries::q4())
            .compressed(true)
            .best_plan();
        let mut counts = std::collections::HashSet::new();
        for (capacity, tau) in [(0usize, 0usize), (1 << 12, 10), (1 << 24, 500)] {
            let cluster = Cluster::new(
                &g,
                ClusterConfig::builder()
                    .workers(3)
                    .threads_per_worker(2)
                    .cache_capacity_bytes(capacity)
                    .tau(tau)
                    .build(),
            );
            counts.insert(cluster.run(&plan).unwrap().total_matches);
        }
        assert_eq!(counts.len(), 1, "configuration changed results: {counts:?}");
    }

    #[test]
    fn collected_matches_agree_with_sequential_engine() {
        let g = gen::erdos_renyi_gnm(40, 150, 21);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let cluster = small_cluster(&g, 3, 2);
        let (outcome, matches) = cluster.run_collect(&plan).unwrap();
        let expected = benu_engine::collect_embeddings(&plan, &g);
        assert_eq!(matches, expected);
        assert_eq!(outcome.total_matches as usize, matches.len());
    }

    #[test]
    fn communication_accounting_is_consistent() {
        let g = gen::barabasi_albert(200, 4, 13);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let cluster = small_cluster(&g, 2, 2);
        let outcome = cluster.run(&plan).unwrap();
        // Worker-level byte counts must equal the store's own accounting.
        assert_eq!(outcome.communication_bytes(), outcome.kv.bytes);
        assert!(outcome.kv.requests > 0);
        // Cache misses equal values served by the store (round trips and
        // keys coincide here because nothing batches without prefetch).
        let misses: u64 = outcome.workers.iter().map(|w| w.cache.misses).sum();
        assert_eq!(misses, outcome.kv.keys);
        assert_eq!(outcome.kv.keys, outcome.kv.requests);
        let requests: u64 = outcome.workers.iter().map(|w| w.comm_requests).sum();
        assert_eq!(requests, outcome.kv.requests);
    }

    #[test]
    fn larger_cache_reduces_communication() {
        let g = gen::barabasi_albert(300, 6, 4);
        let plan = PlanBuilder::new(&queries::q4()).best_plan();
        let run_with_capacity = |capacity: usize| {
            let cluster = Cluster::new(
                &g,
                ClusterConfig::builder()
                    .workers(2)
                    .threads_per_worker(2)
                    .cache_capacity_bytes(capacity)
                    .build(),
            );
            cluster.run(&plan).unwrap()
        };
        let cold = run_with_capacity(0);
        let warm = run_with_capacity(64 << 20);
        assert_eq!(cold.total_matches, warm.total_matches);
        assert!(
            warm.communication_bytes() < cold.communication_bytes() / 2,
            "cache must cut communication (cold {}, warm {})",
            cold.communication_bytes(),
            warm.communication_bytes()
        );
        assert!(warm.cache_hit_rate() > 0.5);
    }

    #[test]
    fn caches_persist_across_runs_until_cleared() {
        let g = gen::barabasi_albert(200, 5, 6);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        // One thread per worker: concurrent threads can race on the same
        // cold miss and double-fetch, which would make the exact
        // cold-vs-cold byte comparison below nondeterministic.
        let cluster = Cluster::new(
            &g,
            ClusterConfig::builder()
                .workers(2)
                .threads_per_worker(1)
                .cache_capacity_bytes(64 << 20)
                .build(),
        );
        let first = cluster.run(&plan).unwrap();
        let second = cluster.run(&plan).unwrap();
        assert_eq!(first.total_matches, second.total_matches);
        assert!(
            second.communication_bytes() < first.communication_bytes() / 10,
            "second run must be nearly free on a warm cache ({} vs {})",
            second.communication_bytes(),
            first.communication_bytes()
        );
        cluster.clear_caches();
        let cold = cluster.run(&plan).unwrap();
        assert_eq!(
            cold.communication_bytes(),
            first.communication_bytes(),
            "clear_caches must restore the cold-cache cost"
        );
    }

    #[test]
    fn per_run_cache_stats_are_deltas() {
        let g = gen::erdos_renyi_gnm(80, 300, 3);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let cluster = small_cluster(&g, 2, 1);
        let first = cluster.run(&plan).unwrap();
        let second = cluster.run(&plan).unwrap();
        let misses = |o: &RunOutcome| o.workers.iter().map(|w| w.cache.misses).sum::<u64>();
        assert!(misses(&first) > 0);
        assert_eq!(
            misses(&second),
            0,
            "warm second run must report zero per-run misses"
        );
    }

    #[test]
    fn task_times_are_collected_when_requested() {
        let g = gen::erdos_renyi_gnm(50, 120, 2);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let cluster = Cluster::new(
            &g,
            ClusterConfig::builder()
                .workers(2)
                .threads_per_worker(1)
                .collect_task_times(true)
                .build(),
        );
        let outcome = cluster.run(&plan).unwrap();
        let times = outcome.task_times.as_ref().unwrap();
        assert_eq!(times.len(), outcome.total_tasks);
    }

    #[test]
    fn splitting_creates_more_tasks_on_skewed_graphs() {
        let g = gen::star(100);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let unsplit = Cluster::new(&g, ClusterConfig::builder().workers(2).tau(0).build());
        let split = Cluster::new(&g, ClusterConfig::builder().workers(2).tau(10).build());
        let a = unsplit.run(&plan).unwrap();
        let b = split.run(&plan).unwrap();
        assert_eq!(a.total_matches, b.total_matches);
        assert!(b.total_tasks > a.total_tasks);
    }

    /// An adversarial placement for the static shuffle: cliques laid out
    /// so every member's id is ≡ 0 (mod `spacing`). With tau = 0 the
    /// task index equals the vertex id, so round-robin over `spacing`
    /// workers parks every clique task — all the triangle work — on
    /// worker 0, while the other workers draw only isolated vertices.
    fn cliques_on_multiples_of(spacing: usize, cliques: usize, size: usize) -> Graph {
        let mut edges = Vec::new();
        for c in 0..cliques {
            let base = c * size * spacing;
            for i in 0..size {
                for j in (i + 1)..size {
                    edges.push((
                        (base + i * spacing) as VertexId,
                        (base + j * spacing) as VertexId,
                    ));
                }
            }
        }
        Graph::from_edges(edges)
    }

    #[test]
    fn work_stealing_improves_balance_on_skewed_placement() {
        // 4 workers × 1 thread; all clique members at ids ≡ 0 (mod 4) so
        // the static round-robin shuffle lands every heavy task on
        // worker 0.
        let workers = 4;
        let g = cliques_on_multiples_of(workers, 2, 40);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let run = |kind: SchedulerKind| {
            let cluster = Cluster::new(
                &g,
                ClusterConfig::builder()
                    .workers(workers)
                    .threads_per_worker(1)
                    .tau(0)
                    .cache_capacity_bytes(0)
                    .scheduler(kind)
                    .build(),
            );
            cluster.run(&plan).unwrap()
        };
        let stat = run(SchedulerKind::Static);
        let ws = run(SchedulerKind::WorkStealing);
        assert_eq!(stat.total_matches, ws.total_matches);
        assert_eq!(stat.total_steals(), 0);
        assert!(ws.total_steals() > 0, "idle workers must have stolen");
        let floor = Duration::from_micros(50);
        let (r_stat, r_ws) = (stat.busy_ratio(floor), ws.busy_ratio(floor));
        assert!(
            r_ws < r_stat,
            "work stealing must improve the max/min busy ratio (static {r_stat:.1}, ws {r_ws:.1})"
        );
        // Migration must be visible in the per-worker reports.
        let moved = ws.workers.iter().any(|w| w.tasks_executed != w.tasks);
        assert!(moved, "some tasks must have migrated");
    }

    #[test]
    fn invariants_hold_under_both_schedulers() {
        let g = gen::barabasi_albert(150, 4, 9);
        let plan = PlanBuilder::new(&queries::q1()).best_plan();
        let expected = benu_engine::count_embeddings(&plan, &g);
        for kind in [SchedulerKind::Static, SchedulerKind::WorkStealing] {
            let cluster = Cluster::new(
                &g,
                ClusterConfig::builder()
                    .workers(3)
                    .threads_per_worker(2)
                    .scheduler(kind)
                    .build(),
            );
            let outcome = cluster.run(&plan).unwrap();
            assert_eq!(outcome.total_matches, expected, "{kind} changed the count");
            assert_eq!(outcome.scheduler, kind);
            let executed: usize = outcome.workers.iter().map(|w| w.tasks_executed).sum();
            assert_eq!(
                executed, outcome.total_tasks,
                "{kind} lost or duplicated tasks"
            );
            let assigned: usize = outcome.workers.iter().map(|w| w.tasks).sum();
            assert_eq!(assigned, outcome.total_tasks);
        }
    }

    #[test]
    fn prefetch_cuts_round_trips_without_changing_bytes_accounting() {
        let g = gen::barabasi_albert(200, 5, 11);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let run = |prefetch: bool| {
            let cluster = Cluster::new(
                &g,
                ClusterConfig::builder()
                    .workers(2)
                    .threads_per_worker(1)
                    .cache_capacity_bytes(64 << 20)
                    .prefetch_frontier(prefetch)
                    .build(),
            );
            cluster.run(&plan).unwrap()
        };
        let plain = run(false);
        let prefetched = run(true);
        assert_eq!(plain.total_matches, prefetched.total_matches);
        assert!(prefetched.workers.iter().any(|w| w.batch_round_trips > 0));
        assert!(
            prefetched.kv.requests < plain.kv.requests,
            "batched prefetch must lower round trips ({} vs {})",
            prefetched.kv.requests,
            plain.kv.requests
        );
        // Bytes still reconcile between worker and store accounting.
        assert_eq!(prefetched.communication_bytes(), prefetched.kv.bytes);
    }
}
