//! The cluster executor.
//!
//! `Cluster` wires the runtime layers together: a [`Scheduler`](crate::Scheduler) hands
//! tasks to worker threads, each worker's [`Transport`] carries its store
//! traffic (with byte/round-trip accounting), and each worker machine
//! owns a persistent [`DbCache`] that survives across `run` calls — the
//! paper's long-lived per-machine database cache. See DESIGN.md
//! "Runtime layering" for the full picture.
//!
//! With a [`FaultPlan`] installed (see [`Cluster::set_fault_plan`]), a
//! run also exercises BENU's recovery story: transports retry injected
//! store faults with capped backoff, workers crash at planned task
//! boundaries and their tasks are requeued onto survivors in extra
//! scheduler passes, and configured straggler speculation re-executes
//! the slowest tasks. Because tasks are idempotent and a dead worker's
//! results are discarded wholesale, match counts are byte-identical to a
//! fault-free run; the [`RecoveryReport`] in the outcome records what
//! the machinery absorbed. [`Cluster::run`] returns `Err` only for
//! unrecoverable faults (a shard outage outlasting the retry policy, or
//! every worker crashing).

use crate::balance::CostProfile;
use crate::config::ClusterConfig;
use crate::recovery::RecoveryCtx;
use crate::report::{RecoveryReport, RunOutcome, WorkerReport};
use crate::schedule::StaticScheduler;
use crate::transport::Transport;
use crate::worker::{ErrorSlot, ThreadResult, Worker, WorkerError};
use benu_cache::{CacheObs, CacheStats, DbCache};
use benu_engine::SearchTask;
use benu_fault::FaultPlan;
use benu_graph::{Graph, TotalOrder, VertexId};
use benu_kvstore::KvStore;
use benu_obs::ObsHub;
use benu_plan::ExecutionPlan;
use std::sync::Arc;
use std::time::{Duration, Instant};

type Matches = Vec<Vec<VertexId>>;

/// A loaded cluster: the data graph resident in the sharded store, ready
/// to run any number of plans. Each worker machine's database cache is
/// created once and persists across runs (warm caches), mirroring the
/// paper's long-lived reducer processes; call [`Cluster::clear_caches`]
/// for a cold-cache run.
pub struct Cluster {
    store: Arc<KvStore>,
    order: Arc<TotalOrder>,
    degrees: Vec<u32>,
    caches: Vec<Arc<DbCache>>,
    config: ClusterConfig,
    fault_plan: Option<Arc<FaultPlan>>,
    cost_profile: Option<Arc<CostProfile>>,
    obs: Option<Arc<ObsHub>>,
}

impl Cluster {
    /// Loads `g` into a store sharded across the configured workers
    /// (Algorithm 2 line 1 — the pattern-independent preprocessing) and
    /// creates the per-machine caches.
    pub fn new(g: &Graph, config: ClusterConfig) -> Self {
        Self::build(g, config, None)
    }

    /// Like [`Cluster::new`], with an observability hub every layer
    /// records into: the store's per-shard counters and latency
    /// histograms, the db cache tier, the engine's instruction counters,
    /// per-worker busy/steal/retry/crash events, and phase spans (store
    /// load, plan compile, task generation, passes, speculation) on the
    /// hub's virtual clock. Registry counters are monotonic for the
    /// hub's lifetime — pass a fresh hub for per-run numbers.
    pub fn new_observed(g: &Graph, config: ClusterConfig, hub: Arc<ObsHub>) -> Self {
        Self::build(g, config, Some(hub))
    }

    fn build(g: &Graph, config: ClusterConfig, obs: Option<Arc<ObsHub>>) -> Self {
        config.validate();
        let store = {
            let _span = obs.as_ref().map(|h| h.tracer.span("store_load"));
            let mut store =
                KvStore::from_graph_with(g, config.workers, config.replication, config.codec);
            if let Some(hub) = &obs {
                store.attach_obs(&hub.registry);
            }
            Arc::new(store)
        };
        Cluster {
            store,
            order: Arc::new(TotalOrder::new(g)),
            degrees: g.vertices().map(|v| g.degree(v) as u32).collect(),
            caches: Self::build_caches(&config, obs.as_deref()),
            config,
            fault_plan: None,
            cost_profile: None,
            obs,
        }
    }

    fn build_caches(config: &ClusterConfig, obs: Option<&ObsHub>) -> Vec<Arc<DbCache>> {
        (0..config.workers)
            .map(|_| {
                let mut cache = DbCache::new(config.cache_capacity_bytes, config.cache_shards);
                if let Some(hub) = obs {
                    cache.attach_obs(CacheObs::register(&hub.registry, "db"));
                }
                Arc::new(cache)
            })
            .collect()
    }

    /// The observability hub, when this cluster was built with
    /// [`Cluster::new_observed`].
    pub fn obs(&self) -> Option<&Arc<ObsHub>> {
        self.obs.as_ref()
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The underlying store (for capacity/size queries).
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// The persistent per-machine database caches.
    pub fn caches(&self) -> &[Arc<DbCache>] {
        &self.caches
    }

    /// Installs (or removes, with `None`) the fault plan subsequent runs
    /// inject from. Transient faults and timeouts are retried per the
    /// configured [`ClusterConfig::retry`] policy; planned worker
    /// crashes trigger task requeue and re-execution.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan.map(Arc::new);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_deref()
    }

    /// Installs (or removes, with `None`) an observed-cost profile from a
    /// previous run (see [`ClusterConfig::collect_cost_profile`]).
    /// Subsequent runs split tasks at an observed-cost threshold instead
    /// of the degree proxy, place them longest-first onto the least
    /// loaded worker, and order each queue heaviest-first (the steal
    /// priority). All decisions are pure functions of the profile, so
    /// runs stay deterministic under the static scheduler.
    pub fn set_cost_profile(&mut self, profile: Option<CostProfile>) {
        self.cost_profile = profile.map(Arc::new);
    }

    /// The installed cost profile, if any.
    pub fn cost_profile(&self) -> Option<&CostProfile> {
        self.cost_profile.as_deref()
    }

    /// Drops every cached adjacency set and resets the cache counters —
    /// the cold-cache starting point of the Exp-3 ablation. Run-to-run
    /// warmth is otherwise deliberate.
    pub fn clear_caches(&self) {
        for cache in &self.caches {
            cache.clear();
        }
    }

    /// Reconfigures the cluster in place. The store sharding stays as
    /// loaded; execution parameters change, and the per-machine caches
    /// are rebuilt (cold) only when the new configuration changes their
    /// shape (worker count, capacity or shard count).
    pub fn set_config(&mut self, config: ClusterConfig) {
        config.validate();
        let reshape = config.workers != self.config.workers
            || config.cache_capacity_bytes != self.config.cache_capacity_bytes
            || config.cache_shards != self.config.cache_shards;
        if reshape {
            self.caches = Self::build_caches(&config, self.obs.as_deref());
        }
        self.config = config;
    }

    /// Generates the (split) task list for a compiled plan through the
    /// engine's single §V-B implementation, returning the tasks and the
    /// split threshold actually used (static `tau`, or the adaptive
    /// choice under `tau_auto`).
    fn generate_tasks(&self, second_adjacent: bool, has_second: bool) -> (Vec<SearchTask>, usize) {
        // An installed cost profile overrides both degree-based paths:
        // split at an observed-cost threshold θ (reported in place of τ)
        // rather than a degree proxy.
        if has_second {
            if let Some(profile) = &self.cost_profile {
                let lanes = self.config.workers * self.config.threads_per_worker;
                let (tasks, theta) = profile.generate_tasks(&self.degrees, lanes, second_adjacent);
                return (tasks, theta as usize);
            }
        }
        let tau = if !has_second {
            0
        } else if self.config.tau_auto {
            let lanes = self.config.workers * self.config.threads_per_worker;
            benu_engine::task::auto_tau(&self.degrees, lanes, second_adjacent)
        } else {
            self.config.tau
        };
        let tasks =
            benu_engine::task::generate_tasks_from_degrees(&self.degrees, tau, second_adjacent);
        (tasks, tau)
    }

    /// A [`PlanBuilder`](benu_plan::PlanBuilder) calibrated per the
    /// configured [`ClusterConfig::estimator`] from the resident graph
    /// statistics: `(N, M)` for the Erdős–Rényi model, the degree
    /// histogram's moments for Chung-Lu. [`EstimatorKind::Feedback`]
    /// falls back to the Chung-Lu prior here — use
    /// [`Cluster::plan_builder_with_feedback`] once a run has produced
    /// an observation.
    pub fn plan_builder<'p>(
        &self,
        pattern: &'p benu_pattern::Pattern,
    ) -> benu_plan::PlanBuilder<'p> {
        let builder = benu_plan::PlanBuilder::new(pattern);
        match self.config.estimator {
            benu_plan::EstimatorKind::Er => {
                let n = self.degrees.len();
                let m = self.degrees.iter().map(|&d| d as usize).sum::<usize>() / 2;
                builder.graph_stats(n, m)
            }
            benu_plan::EstimatorKind::ChungLu | benu_plan::EstimatorKind::Feedback => {
                builder.chung_lu(self.chung_lu_prior())
            }
        }
    }

    /// A plan builder calibrated with a [`benu_plan::FeedbackEstimator`]:
    /// the cluster's Chung-Lu prior corrected by the per-instruction
    /// cardinalities (`RunOutcome::metrics.obs`) observed while running
    /// `observed_plan`. Deterministic given the observation, so repeat
    /// compilations re-rank candidate plans identically.
    pub fn plan_builder_with_feedback<'p>(
        &self,
        pattern: &'p benu_pattern::Pattern,
        observed_plan: &ExecutionPlan,
        obs: &benu_plan::PlanObs,
    ) -> benu_plan::PlanBuilder<'p> {
        let est = benu_plan::FeedbackEstimator::new(self.chung_lu_prior(), observed_plan, obs);
        benu_plan::PlanBuilder::new(pattern).observed_feedback(est)
    }

    /// The Chung-Lu estimator over the resident degree array.
    fn chung_lu_prior(&self) -> benu_plan::ChungLuEstimator {
        let max_d = self.degrees.iter().copied().max().unwrap_or(0) as usize;
        let mut hist = vec![0usize; max_d + 1];
        for &d in &self.degrees {
            hist[d as usize] += 1;
        }
        benu_plan::ChungLuEstimator::from_degree_histogram(&hist)
    }

    /// Chaos hook: drops vertex `v` from every replica shard of the
    /// loaded store while the degree array (and thus the task list)
    /// still names it — the store-vs-graph disagreement the structured
    /// `MissingVertex` error path exists to surface. Only callable
    /// between runs (the store must not be shared with a running pass).
    /// Returns true if the vertex was present.
    pub fn corrupt_remove_vertex(&mut self, v: VertexId) -> bool {
        Arc::get_mut(&mut self.store)
            .expect("corrupt_remove_vertex requires exclusive store access (no run in flight)")
            .remove_vertex(v)
    }

    /// Chaos hook: overwrites vertex `v`'s stored value with undecodable
    /// bytes on every replica shard — the data rot the structured
    /// `CorruptValue` error path exists to surface (a corrupt shard must
    /// degrade like any other store fault, not panic the run). Only
    /// callable between runs. Returns true if the vertex was present.
    pub fn corrupt_value(&mut self, v: VertexId) -> bool {
        Arc::get_mut(&mut self.store)
            .expect("corrupt_value requires exclusive store access (no run in flight)")
            .corrupt_value(v)
    }

    /// Runs `plan`, counting matches (Algorithm 2 lines 3–8). Store
    /// counters are reset at entry so the outcome reflects this run only;
    /// cache contents persist from earlier runs (cache *stats* in the
    /// outcome are per-run deltas).
    ///
    /// # Errors
    ///
    /// Aborts with a [`WorkerError`] when a task queries a vertex the
    /// store does not hold, a task panics, an injected shard outage
    /// outlasts the retry policy, or every worker crashes with work
    /// still queued. Faults the recovery machinery absorbs (retried
    /// transients, requeued crashes) do not error — they are reported in
    /// [`RunOutcome::recovery`].
    pub fn run(&self, plan: &ExecutionPlan) -> Result<RunOutcome, WorkerError> {
        Ok(self.run_inner(plan, false)?.0)
    }

    /// Runs `plan` and additionally collects every (expanded) embedding.
    /// Intended for correctness tests and small graphs.
    ///
    /// # Errors
    ///
    /// See [`Cluster::run`].
    pub fn run_collect(&self, plan: &ExecutionPlan) -> Result<(RunOutcome, Matches), WorkerError> {
        let (outcome, matches) = self.run_inner(plan, true)?;
        Ok((outcome, matches.unwrap_or_default()))
    }

    fn run_inner(
        &self,
        plan: &ExecutionPlan,
        collect: bool,
    ) -> Result<(RunOutcome, Option<Matches>), WorkerError> {
        let compiled = {
            let _span = self.obs.as_ref().map(|h| h.tracer.span("plan_compile"));
            benu_engine::CompiledPlan::compile(plan)
        };
        let (tasks, effective_tau) = {
            let _span = self.obs.as_ref().map(|h| h.tracer.span("task_generation"));
            self.generate_tasks(compiled.second_adjacent, compiled.second_vertex.is_some())
        };
        let total_tasks = tasks.len();
        let p = self.config.workers;

        let recovery_ctx = self
            .fault_plan
            .as_ref()
            .map(|plan| RecoveryCtx::new(Arc::clone(plan), p));

        // Initial assignment. Default: round robin — the even shuffle of
        // tasks to reducers. With a cost profile installed: longest-
        // processing-time-first onto the least-loaded worker, each queue
        // ordered heaviest-first (the steal priority). The scheduler
        // decides whether tasks may migrate afterwards.
        let mut pending: Vec<Vec<SearchTask>> = match &self.cost_profile {
            Some(profile) => profile.assign_lpt(tasks, p),
            None => {
                let mut queues: Vec<Vec<SearchTask>> = vec![Vec::new(); p];
                for (i, t) in tasks.into_iter().enumerate() {
                    queues[i % p].push(t);
                }
                queues
            }
        };

        self.store.reset_stats();
        let transports: Vec<Transport> = (0..p)
            .map(|_| match &self.fault_plan {
                Some(plan) => Transport::with_faults(
                    Arc::clone(&self.store),
                    Arc::clone(plan),
                    self.config.retry,
                ),
                None => Transport::new(Arc::clone(&self.store)),
            })
            .collect();
        let cache_stats_before: Vec<CacheStats> = self.caches.iter().map(|c| c.stats()).collect();
        let errors = ErrorSlot::new();
        let started = Instant::now();

        let mut merged: Vec<Vec<ThreadResult>> = (0..p).map(|_| Vec::new()).collect();
        let mut assigned = vec![0usize; p];
        let mut steals = vec![0u64; p];
        let mut recovery_passes = 0u64;
        let mut attempt: u32 = 1;
        // Virtual fault latency already charged into the tracer's clock;
        // spans advance by per-pass deltas, so trace timestamps are a
        // deterministic function of the fault seed, never the wall clock.
        let mut virtual_charged = Duration::ZERO;
        let virtual_total = |transports: &[Transport]| -> Duration {
            transports
                .iter()
                .map(|t| t.backoff_virtual() + t.timeout_virtual() + t.slow_virtual())
                .sum()
        };

        // Pass loop: run every queued task; if a worker crashed, its
        // lost tasks come back via the requeue and run in another pass
        // on the survivors (BENU's regenerate-and-re-execute recovery).
        loop {
            let pass_span = self.obs.as_ref().map(|h| {
                let name = if attempt == 1 {
                    "pass.0".to_string()
                } else {
                    format!("recovery_pass.{}", attempt - 1)
                };
                h.tracer.span(&name)
            });
            // Shard-outage decisions are pass-scoped: advance every
            // transport's view at the barrier, before any thread runs.
            for t in &transports {
                t.set_pass(attempt);
            }
            let alive_before: Vec<bool> = (0..p)
                .map(|w| recovery_ctx.as_ref().is_none_or(|rc| !rc.is_dead(w)))
                .collect();
            let scheduler = self.config.scheduler.build(pending);
            let mut pass_results: Vec<Vec<Result<ThreadResult, WorkerError>>> =
                (0..p).map(|_| Vec::new()).collect();

            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(p * self.config.threads_per_worker);
                for (w, transport) in transports.iter().enumerate() {
                    if !alive_before[w] {
                        continue;
                    }
                    for _ in 0..self.config.threads_per_worker {
                        let worker = Worker {
                            id: w,
                            scheduler: scheduler.as_ref(),
                            transport,
                            cache: &self.caches[w],
                            order: &self.order,
                            compiled: &compiled,
                            config: &self.config,
                            errors: &errors,
                            recovery: recovery_ctx.as_ref(),
                            attempt,
                        };
                        handles.push((w, scope.spawn(move || worker.run_thread(collect))));
                    }
                }
                for (w, handle) in handles {
                    let result = handle
                        .join()
                        .unwrap_or(Err(WorkerError::ThreadPanicked { worker: w }));
                    pass_results[w].push(result);
                }
            });

            if let Some(err) = errors.first() {
                return Err(err);
            }
            for w in 0..p {
                assigned[w] += scheduler.assigned(w);
                steals[w] += scheduler.steals(w);
            }
            for (w, results) in pass_results.into_iter().enumerate() {
                // A worker that died this pass takes its results down
                // with the machine; every task it touched is already in
                // the requeue, so nothing is counted twice.
                if recovery_ctx.as_ref().is_some_and(|rc| rc.is_dead(w)) {
                    continue;
                }
                for result in results {
                    merged[w].push(result?);
                }
            }

            if let Some(rc) = &recovery_ctx {
                // No threads are running now. Under work stealing, a
                // thread of a crashing worker can steal from a victim
                // and append the remainder to its own queue *after* the
                // crashing sibling drained it — those tasks would be
                // stranded in the dead queue (never drained again) and
                // silently dropped. Sweep every dead worker's queue into
                // the requeue before the pass's scheduler is discarded.
                for w in 0..p {
                    if rc.is_dead(w) {
                        rc.requeue_all(scheduler.drain(w));
                    }
                }
                // The results merged above are durable from here on — a
                // later crash of a surviving worker can only lose work
                // from its own pass — so commit them: leaving them in
                // the executed pools would requeue (and double-count)
                // them on that later crash.
                rc.commit_merged();
            }

            if let Some(hub) = &self.obs {
                // Charge this pass's injected virtual latency into the
                // trace clock before the pass span closes.
                let now = virtual_total(&transports);
                hub.tracer
                    .clock()
                    .advance((now - virtual_charged).as_nanos() as u64);
                virtual_charged = now;
            }
            drop(pass_span);

            let requeued = recovery_ctx
                .as_ref()
                .map(|rc| rc.take_requeue())
                .unwrap_or_default();
            if requeued.is_empty() {
                break;
            }
            let rc = recovery_ctx.as_ref().expect("requeue implies a fault plan");
            let alive: Vec<usize> = (0..p).filter(|&w| !rc.is_dead(w)).collect();
            if alive.is_empty() {
                return Err(WorkerError::ClusterLost {
                    outstanding: requeued.len(),
                });
            }
            recovery_passes += 1;
            attempt += 1;
            pending = vec![Vec::new(); p];
            for (i, t) in requeued.into_iter().enumerate() {
                pending[alive[i % alive.len()]].push(t);
            }
        }
        let elapsed = started.elapsed();

        // Per-task timings for straggler speculation. Snapshotted here,
        // but the speculation itself runs *below*, only after every
        // worker, store and fault counter has been read: speculative
        // attempts are discarded, so their traffic, retries and virtual
        // latency must not leak into the report of the real run.
        let timed: Vec<(SearchTask, Duration)> = if self.config.speculate_quantile.is_some() {
            merged
                .iter()
                .flatten()
                .flat_map(|r| r.timed_tasks.iter().copied())
                .collect()
        } else {
            Vec::new()
        };

        let mut reports: Vec<WorkerReport> = Vec::with_capacity(p);
        let mut all_matches: Option<Matches> = collect.then(Vec::new);
        let mut all_task_times = self.config.collect_task_times.then(Vec::new);
        let mut task_cost_records: Option<Vec<(SearchTask, u64)>> =
            self.config.collect_cost_profile.then(Vec::new);
        for (w, results) in merged.into_iter().enumerate() {
            let mut report = WorkerReport {
                worker: w,
                tasks: assigned[w],
                steals: steals[w],
                ..WorkerReport::default()
            };
            for r in results {
                report.metrics += r.metrics;
                report.busy_time += r.busy;
                report.tasks_executed += r.executed;
                report.thread_busy.push(r.busy);
                report.triangle_cache.hits += r.tri_stats.hits;
                report.triangle_cache.misses += r.tri_stats.misses;
                report.pool += r.pool;
                report.frontier += r.frontier;
                if let Some(times) = all_task_times.as_mut() {
                    times.extend(r.task_times);
                }
                if let Some(records) = task_cost_records.as_mut() {
                    records.extend(r.task_costs);
                }
                if let (Some(all), Some(mine)) = (all_matches.as_mut(), r.matches) {
                    all.extend(mine);
                }
            }
            // Per-run cache effectiveness: delta against the persistent
            // cache's counters at run start.
            let now = self.caches[w].stats();
            let before = cache_stats_before[w];
            report.cache = CacheStats {
                hits: now.hits - before.hits,
                misses: now.misses - before.misses,
                evictions: now.evictions - before.evictions,
            };
            report.comm_bytes = transports[w].bytes();
            report.comm_requests = transports[w].requests();
            report.batch_round_trips = transports[w].batch_round_trips();
            reports.push(report);
        }

        let mut recovery = RecoveryReport {
            recovery_passes,
            ..RecoveryReport::default()
        };
        for t in &transports {
            recovery.transient_faults += t.transient_faults();
            recovery.timeouts += t.timeouts();
            recovery.retries += t.retries();
            recovery.backoff_virtual += t.backoff_virtual();
            recovery.timeout_wait_virtual += t.timeout_virtual();
            recovery.slow_penalty_virtual += t.slow_virtual();
            recovery.failovers += t.failovers();
            recovery.failover_reads += t.failover_reads();
        }
        if let Some(rc) = &recovery_ctx {
            recovery.worker_crashes = rc.crashes();
            recovery.tasks_requeued = rc.total_requeued();
        }
        if let Some(plan) = &self.fault_plan {
            // Distinct shards the plan held dark during any pass this
            // run actually executed — a pure function of (plan, passes),
            // so replays agree on it.
            recovery.shard_outages = (0..self.store.num_shards())
                .filter(|&s| (1..=attempt).any(|pass| plan.outage_at(s, pass)))
                .count() as u64;
        }
        // Store-level totals, also read before speculation runs.
        let kv = self.store.stats();

        // Straggler speculation: re-execute every surviving task whose
        // duration exceeded the configured busy-time quantile, round
        // robin over the live workers. Results are discarded (tasks are
        // idempotent; counts must not change) — only the timing race is
        // interesting, and a real cluster would overlap it with the tail
        // of the run, so it is excluded from `elapsed` and from every
        // counter snapshotted above; only the launch/win tallies enter
        // the report.
        let spec_span = self
            .config
            .speculate_quantile
            .and_then(|_| self.obs.as_ref().map(|h| h.tracer.span("speculation")));
        if let Some(q) = self.config.speculate_quantile {
            let alive: Vec<usize> = (0..p)
                .filter(|&w| recovery_ctx.as_ref().is_none_or(|rc| !rc.is_dead(w)))
                .collect();
            if timed.len() >= 2 && !alive.is_empty() {
                let mut durations: Vec<Duration> = timed.iter().map(|&(_, d)| d).collect();
                durations.sort_unstable();
                let threshold = durations[((durations.len() - 1) as f64 * q) as usize];
                let spec_errors = ErrorSlot::new();
                let idle = StaticScheduler::new(vec![Vec::new(); p]);
                for (i, (task, original)) in timed
                    .into_iter()
                    .filter(|&(_, d)| d > threshold)
                    .enumerate()
                {
                    let w = alive[i % alive.len()];
                    let worker = Worker {
                        id: w,
                        scheduler: &idle,
                        transport: &transports[w],
                        cache: &self.caches[w],
                        order: &self.order,
                        compiled: &compiled,
                        config: &self.config,
                        errors: &spec_errors,
                        recovery: None,
                        attempt: attempt + 1,
                    };
                    recovery.speculative_launches += 1;
                    if let Some(dt) = worker.run_speculative(task) {
                        if dt < original {
                            recovery.speculative_wins += 1;
                        }
                    }
                }
            }
        }

        drop(spec_span);

        let mut metrics = benu_engine::TaskMetrics::default();
        let mut frontier = benu_engine::FrontierStats::default();
        for r in &reports {
            metrics += r.metrics;
            frontier += r.frontier;
        }
        if let Some(hub) = &self.obs {
            let reg = &hub.registry;
            // Engine instruction counters, summed across the run.
            metrics.record_into(reg);
            // Per-thread triangle caches, merged per worker.
            let tri_obs = CacheObs::register(reg, "triangle");
            for report in &reports {
                tri_obs.record_stats(&report.triangle_cache);
                let w = report.worker;
                reg.counter(&format!("worker.{w}.tasks_executed"))
                    .add(report.tasks_executed as u64);
                reg.counter(&format!("worker.{w}.steals"))
                    .add(report.steals);
                reg.counter_wall(&format!("worker.{w}.busy_nanos"))
                    .add(report.busy_time.as_nanos() as u64);
            }
            for (w, t) in transports.iter().enumerate() {
                reg.counter(&format!("worker.{w}.retries")).add(t.retries());
                if recovery_ctx.as_ref().is_some_and(|rc| rc.is_dead(w)) {
                    reg.counter(&format!("worker.{w}.crashes")).inc();
                }
            }
            reg.counter("fault.transient_faults")
                .add(recovery.transient_faults);
            reg.counter("fault.timeouts").add(recovery.timeouts);
            reg.counter("fault.retries").add(recovery.retries);
            reg.counter("fault.worker_crashes")
                .add(recovery.worker_crashes);
            reg.counter("fault.tasks_requeued")
                .add(recovery.tasks_requeued);
            reg.counter("fault.recovery_passes")
                .add(recovery.recovery_passes);
            reg.counter("fault.shard_outages")
                .add(recovery.shard_outages);
            reg.counter("store.failover.attempts")
                .add(recovery.failovers);
            reg.counter("store.failover.reads")
                .add(recovery.failover_reads);
            reg.counter("engine.frontier.expansions")
                .add(frontier.expansions);
            reg.counter("engine.frontier.spill_events")
                .add(frontier.spill_events);
            reg.counter("engine.frontier.peak_bytes")
                .add(frontier.peak_bytes);
        }
        let outcome = RunOutcome {
            total_matches: metrics.matches,
            total_codes: metrics.codes,
            elapsed,
            metrics,
            workers: reports,
            kv,
            total_tasks,
            effective_tau,
            scheduler: self.config.scheduler,
            exec_mode: self.config.exec_mode,
            codec: self.config.codec,
            frontier_expansions: frontier.expansions,
            spill_events: frontier.spill_events,
            peak_frontier_bytes: frontier.peak_bytes,
            task_times: all_task_times,
            recovery,
            cost_profile: task_cost_records
                .map(|records| CostProfile::from_task_costs(self.degrees.len(), records)),
        };
        if let Some(m) = all_matches.as_mut() {
            m.sort_unstable();
        }
        Ok((outcome, all_matches))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::SchedulerKind;
    use benu_fault::RetryPolicy;
    use benu_graph::gen;
    use benu_pattern::queries;
    use benu_plan::PlanBuilder;
    use std::time::Duration;

    fn small_cluster(g: &Graph, workers: usize, threads: usize) -> Cluster {
        Cluster::new(
            g,
            ClusterConfig::builder()
                .workers(workers)
                .threads_per_worker(threads)
                .cache_capacity_bytes(1 << 20)
                .tau(20)
                .build(),
        )
    }

    #[test]
    fn counts_triangles_in_k6() {
        let g = gen::complete(6);
        let cluster = small_cluster(&g, 2, 2);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let outcome = cluster.run(&plan).unwrap();
        assert_eq!(outcome.total_matches, 20);
        assert_eq!(outcome.total_tasks, 6);
        let executed: usize = outcome.workers.iter().map(|w| w.tasks_executed).sum();
        assert_eq!(executed, 6);
        assert!(outcome.recovery.is_clean(), "no fault plan, no recovery");
    }

    #[test]
    fn cost_profile_feedback_loop_preserves_counts_and_balances_work() {
        let g = gen::barabasi_albert(300, 4, 5);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let config = ClusterConfig::builder()
            .workers(4)
            .threads_per_worker(1)
            .tau_auto(true)
            .collect_cost_profile(true)
            .build();

        // Pass 1: degree-driven auto τ, collecting per-task costs.
        let mut cluster = Cluster::new(&g, config);
        let first = cluster.run(&plan).unwrap();
        let profile = first.cost_profile.clone().expect("profile was requested");
        assert_eq!(profile.len(), 300);
        assert!(profile.total() > 0, "BA graph has triangles to find");

        // Pass 2: same cluster, observed-cost splitting + LPT placement.
        cluster.clear_caches();
        cluster.set_cost_profile(Some(profile));
        let second = cluster.run(&plan).unwrap();
        assert_eq!(second.total_matches, first.total_matches);
        assert!(
            second.work_imbalance() <= first.work_imbalance() + 1e-9,
            "cost-driven splitting must not worsen work imbalance: {} -> {}",
            first.work_imbalance(),
            second.work_imbalance()
        );

        // Determinism: a fresh cluster with the same profile reproduces
        // the second pass byte-for-byte on the deterministic fields.
        let mut cluster2 = Cluster::new(
            &g,
            ClusterConfig::builder()
                .workers(4)
                .threads_per_worker(1)
                .tau_auto(true)
                .collect_cost_profile(true)
                .build(),
        );
        // Re-derive pass 1's profile on the fresh cluster to mirror the
        // exact pipeline.
        let profile2 = cluster2.run(&plan).unwrap().cost_profile.unwrap();
        cluster2.set_cost_profile(Some(profile2));
        cluster2.clear_caches();
        let third = cluster2.run(&plan).unwrap();
        assert_eq!(third.total_matches, second.total_matches);
        assert_eq!(third.total_tasks, second.total_tasks);
        assert_eq!(third.effective_tau, second.effective_tau);
        assert_eq!(third.metrics.obs, second.metrics.obs);
    }

    #[test]
    fn plan_builder_honours_configured_estimator() {
        let g = gen::barabasi_albert(200, 4, 7);
        for kind in [
            benu_plan::EstimatorKind::Er,
            benu_plan::EstimatorKind::ChungLu,
            benu_plan::EstimatorKind::Feedback,
        ] {
            let cluster = Cluster::new(
                &g,
                ClusterConfig::builder().workers(1).estimator(kind).build(),
            );
            for (name, p) in queries::evaluation_queries() {
                let plan = cluster.plan_builder(&p).best_plan();
                plan.validate()
                    .unwrap_or_else(|e| panic!("{kind} {name}: {e}"));
            }
        }
    }

    #[test]
    fn feedback_replanning_is_deterministic_and_count_preserving() {
        let g = gen::barabasi_albert(250, 4, 9);
        let pattern = queries::q1();
        let cluster = Cluster::new(
            &g,
            ClusterConfig::builder()
                .workers(2)
                .threads_per_worker(2)
                .estimator(benu_plan::EstimatorKind::Feedback)
                .build(),
        );
        // Cold plan: Chung-Lu prior (no observation yet). Must be
        // uncompressed so every enumeration level records a slot.
        let cold = cluster.plan_builder(&pattern).best_plan();
        let expected = benu_engine::count_embeddings(&cold, &g);
        let outcome = cluster.run(&cold).unwrap();
        assert_eq!(outcome.total_matches, expected);
        assert!(
            !outcome.metrics.obs.is_empty(),
            "run must record observations"
        );

        // Warm plan: re-planned from the observed cardinalities.
        let warm = cluster
            .plan_builder_with_feedback(&pattern, &cold, &outcome.metrics.obs)
            .best_plan();
        warm.validate().unwrap();
        assert_eq!(cluster.run(&warm).unwrap().total_matches, expected);

        // Byte-determinism of re-planning: same observation, same plan.
        let warm2 = cluster
            .plan_builder_with_feedback(&pattern, &cold, &outcome.metrics.obs)
            .best_plan();
        assert_eq!(warm.matching_order, warm2.matching_order);
        assert_eq!(warm.instructions, warm2.instructions);
    }

    #[test]
    fn result_is_independent_of_cluster_shape() {
        let g = gen::barabasi_albert(150, 4, 3);
        let plan = PlanBuilder::new(&queries::q1()).best_plan();
        let expected = benu_engine::count_embeddings(&plan, &g);
        for (workers, threads) in [(1, 1), (2, 3), (5, 2)] {
            let cluster = small_cluster(&g, workers, threads);
            let outcome = cluster.run(&plan).unwrap();
            assert_eq!(
                outcome.total_matches, expected,
                "{workers}x{threads} cluster changed the count"
            );
        }
    }

    #[test]
    fn result_is_independent_of_cache_capacity_and_tau() {
        let g = gen::barabasi_albert(120, 5, 8);
        let plan = PlanBuilder::new(&queries::q4())
            .compressed(true)
            .best_plan();
        let mut counts = std::collections::HashSet::new();
        for (capacity, tau) in [(0usize, 0usize), (1 << 12, 10), (1 << 24, 500)] {
            let cluster = Cluster::new(
                &g,
                ClusterConfig::builder()
                    .workers(3)
                    .threads_per_worker(2)
                    .cache_capacity_bytes(capacity)
                    .tau(tau)
                    .build(),
            );
            counts.insert(cluster.run(&plan).unwrap().total_matches);
        }
        assert_eq!(counts.len(), 1, "configuration changed results: {counts:?}");
    }

    #[test]
    fn collected_matches_agree_with_sequential_engine() {
        let g = gen::erdos_renyi_gnm(40, 150, 21);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let cluster = small_cluster(&g, 3, 2);
        let (outcome, matches) = cluster.run_collect(&plan).unwrap();
        let expected = benu_engine::collect_embeddings(&plan, &g);
        assert_eq!(matches, expected);
        assert_eq!(outcome.total_matches as usize, matches.len());
    }

    #[test]
    fn communication_accounting_is_consistent() {
        let g = gen::barabasi_albert(200, 4, 13);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let cluster = small_cluster(&g, 2, 2);
        let outcome = cluster.run(&plan).unwrap();
        // Worker-level byte counts must equal the store's own accounting.
        assert_eq!(outcome.communication_bytes(), outcome.kv.bytes);
        assert!(outcome.kv.requests > 0);
        // Cache misses equal values served by the store (round trips and
        // keys coincide here because nothing batches without prefetch).
        let misses: u64 = outcome.workers.iter().map(|w| w.cache.misses).sum();
        assert_eq!(misses, outcome.kv.keys);
        assert_eq!(outcome.kv.keys, outcome.kv.requests);
        let requests: u64 = outcome.workers.iter().map(|w| w.comm_requests).sum();
        assert_eq!(requests, outcome.kv.requests);
    }

    #[test]
    fn larger_cache_reduces_communication() {
        let g = gen::barabasi_albert(300, 6, 4);
        let plan = PlanBuilder::new(&queries::q4()).best_plan();
        let run_with_capacity = |capacity: usize| {
            let cluster = Cluster::new(
                &g,
                ClusterConfig::builder()
                    .workers(2)
                    .threads_per_worker(2)
                    .cache_capacity_bytes(capacity)
                    .build(),
            );
            cluster.run(&plan).unwrap()
        };
        let cold = run_with_capacity(0);
        let warm = run_with_capacity(64 << 20);
        assert_eq!(cold.total_matches, warm.total_matches);
        assert!(
            warm.communication_bytes() < cold.communication_bytes() / 2,
            "cache must cut communication (cold {}, warm {})",
            cold.communication_bytes(),
            warm.communication_bytes()
        );
        assert!(warm.cache_hit_rate() > 0.5);
    }

    #[test]
    fn caches_persist_across_runs_until_cleared() {
        let g = gen::barabasi_albert(200, 5, 6);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        // One thread per worker: concurrent threads can race on the same
        // cold miss and double-fetch, which would make the exact
        // cold-vs-cold byte comparison below nondeterministic.
        let cluster = Cluster::new(
            &g,
            ClusterConfig::builder()
                .workers(2)
                .threads_per_worker(1)
                .cache_capacity_bytes(64 << 20)
                .build(),
        );
        let first = cluster.run(&plan).unwrap();
        let second = cluster.run(&plan).unwrap();
        assert_eq!(first.total_matches, second.total_matches);
        assert!(
            second.communication_bytes() < first.communication_bytes() / 10,
            "second run must be nearly free on a warm cache ({} vs {})",
            second.communication_bytes(),
            first.communication_bytes()
        );
        cluster.clear_caches();
        let cold = cluster.run(&plan).unwrap();
        assert_eq!(
            cold.communication_bytes(),
            first.communication_bytes(),
            "clear_caches must restore the cold-cache cost"
        );
    }

    #[test]
    fn per_run_cache_stats_are_deltas() {
        let g = gen::erdos_renyi_gnm(80, 300, 3);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let cluster = small_cluster(&g, 2, 1);
        let first = cluster.run(&plan).unwrap();
        let second = cluster.run(&plan).unwrap();
        let misses = |o: &RunOutcome| o.workers.iter().map(|w| w.cache.misses).sum::<u64>();
        assert!(misses(&first) > 0);
        assert_eq!(
            misses(&second),
            0,
            "warm second run must report zero per-run misses"
        );
    }

    #[test]
    fn task_times_are_collected_when_requested() {
        let g = gen::erdos_renyi_gnm(50, 120, 2);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let cluster = Cluster::new(
            &g,
            ClusterConfig::builder()
                .workers(2)
                .threads_per_worker(1)
                .collect_task_times(true)
                .build(),
        );
        let outcome = cluster.run(&plan).unwrap();
        let times = outcome.task_times.as_ref().unwrap();
        assert_eq!(times.len(), outcome.total_tasks);
    }

    #[test]
    fn splitting_creates_more_tasks_on_skewed_graphs() {
        let g = gen::star(100);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let unsplit = Cluster::new(&g, ClusterConfig::builder().workers(2).tau(0).build());
        let split = Cluster::new(&g, ClusterConfig::builder().workers(2).tau(10).build());
        let a = unsplit.run(&plan).unwrap();
        let b = split.run(&plan).unwrap();
        assert_eq!(a.total_matches, b.total_matches);
        assert!(b.total_tasks > a.total_tasks);
    }

    /// An adversarial placement for the static shuffle: cliques laid out
    /// so every member's id is ≡ 0 (mod `spacing`). With tau = 0 the
    /// task index equals the vertex id, so round-robin over `spacing`
    /// workers parks every clique task — all the triangle work — on
    /// worker 0, while the other workers draw only isolated vertices.
    fn cliques_on_multiples_of(spacing: usize, cliques: usize, size: usize) -> Graph {
        let mut edges = Vec::new();
        for c in 0..cliques {
            let base = c * size * spacing;
            for i in 0..size {
                for j in (i + 1)..size {
                    edges.push((
                        (base + i * spacing) as VertexId,
                        (base + j * spacing) as VertexId,
                    ));
                }
            }
        }
        Graph::from_edges(edges)
    }

    #[test]
    fn work_stealing_improves_balance_on_skewed_placement() {
        // 4 workers × 1 thread; all clique members at ids ≡ 0 (mod 4) so
        // the static round-robin shuffle lands every heavy task on
        // worker 0.
        let workers = 4;
        let g = cliques_on_multiples_of(workers, 2, 40);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let run = |kind: SchedulerKind| {
            let cluster = Cluster::new(
                &g,
                ClusterConfig::builder()
                    .workers(workers)
                    .threads_per_worker(1)
                    .tau(0)
                    .cache_capacity_bytes(0)
                    .scheduler(kind)
                    .build(),
            );
            cluster.run(&plan).unwrap()
        };
        let stat = run(SchedulerKind::Static);
        let ws = run(SchedulerKind::WorkStealing);
        assert_eq!(stat.total_matches, ws.total_matches);
        assert_eq!(stat.total_steals(), 0);
        assert!(ws.total_steals() > 0, "idle workers must have stolen");
        let floor = Duration::from_micros(50);
        let (r_stat, r_ws) = (stat.busy_ratio(floor), ws.busy_ratio(floor));
        assert!(
            r_ws < r_stat,
            "work stealing must improve the max/min busy ratio (static {r_stat:.1}, ws {r_ws:.1})"
        );
        // Migration must be visible in the per-worker reports.
        let moved = ws.workers.iter().any(|w| w.tasks_executed != w.tasks);
        assert!(moved, "some tasks must have migrated");
    }

    #[test]
    fn invariants_hold_under_both_schedulers() {
        let g = gen::barabasi_albert(150, 4, 9);
        let plan = PlanBuilder::new(&queries::q1()).best_plan();
        let expected = benu_engine::count_embeddings(&plan, &g);
        for kind in [SchedulerKind::Static, SchedulerKind::WorkStealing] {
            let cluster = Cluster::new(
                &g,
                ClusterConfig::builder()
                    .workers(3)
                    .threads_per_worker(2)
                    .scheduler(kind)
                    .build(),
            );
            let outcome = cluster.run(&plan).unwrap();
            assert_eq!(outcome.total_matches, expected, "{kind} changed the count");
            assert_eq!(outcome.scheduler, kind);
            let executed: usize = outcome.workers.iter().map(|w| w.tasks_executed).sum();
            assert_eq!(
                executed, outcome.total_tasks,
                "{kind} lost or duplicated tasks"
            );
            let assigned: usize = outcome.workers.iter().map(|w| w.tasks).sum();
            assert_eq!(assigned, outcome.total_tasks);
        }
    }

    #[test]
    fn prefetch_cuts_round_trips_without_changing_bytes_accounting() {
        let g = gen::barabasi_albert(200, 5, 11);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let run = |prefetch: bool| {
            let cluster = Cluster::new(
                &g,
                ClusterConfig::builder()
                    .workers(2)
                    .threads_per_worker(1)
                    .cache_capacity_bytes(64 << 20)
                    .prefetch_frontier(prefetch)
                    .build(),
            );
            cluster.run(&plan).unwrap()
        };
        let plain = run(false);
        let prefetched = run(true);
        assert_eq!(plain.total_matches, prefetched.total_matches);
        assert!(prefetched.workers.iter().any(|w| w.batch_round_trips > 0));
        assert!(
            prefetched.kv.requests < plain.kv.requests,
            "batched prefetch must lower round trips ({} vs {})",
            prefetched.kv.requests,
            plain.kv.requests
        );
        // Bytes still reconcile between worker and store accounting.
        assert_eq!(prefetched.communication_bytes(), prefetched.kv.bytes);
    }

    /// The missing-vertex chaos matrix: a vertex dropped from the store
    /// (while the task list still names it) must surface the structured
    /// `MissingVertex` error — never a panic, never a silent undercount —
    /// identically across single-get and batched-prefetch fetch paths
    /// and across both schedulers.
    #[test]
    fn missing_vertex_is_structured_across_prefetch_and_schedulers() {
        let g = gen::barabasi_albert(80, 3, 13);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let corrupted: VertexId = 7;
        for kind in [SchedulerKind::Static, SchedulerKind::WorkStealing] {
            for prefetch in [false, true] {
                let mut cluster = Cluster::new(
                    &g,
                    ClusterConfig::builder()
                        .workers(2)
                        .threads_per_worker(1)
                        .cache_capacity_bytes(1 << 20)
                        .prefetch_frontier(prefetch)
                        .scheduler(kind)
                        .build(),
                );
                assert!(cluster.corrupt_remove_vertex(corrupted));
                match cluster.run(&plan) {
                    Err(WorkerError::MissingVertex { vertex, .. }) => {
                        assert_eq!(
                            vertex, corrupted,
                            "{kind} prefetch={prefetch}: wrong vertex blamed"
                        );
                    }
                    other => {
                        panic!("{kind} prefetch={prefetch}: expected MissingVertex, got {other:?}")
                    }
                }
            }
        }
    }

    /// The corrupt-value chaos matrix: a vertex whose stored bytes rot
    /// (on every replica) must surface the structured `CorruptValue`
    /// error — never a panic, never a silent undercount — identically
    /// across single-get and batched-prefetch fetch paths and across
    /// both schedulers.
    #[test]
    fn corrupt_value_is_structured_across_prefetch_and_schedulers() {
        let g = gen::barabasi_albert(80, 3, 13);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let rotten: VertexId = 7;
        for kind in [SchedulerKind::Static, SchedulerKind::WorkStealing] {
            for prefetch in [false, true] {
                let mut cluster = Cluster::new(
                    &g,
                    ClusterConfig::builder()
                        .workers(2)
                        .threads_per_worker(1)
                        .cache_capacity_bytes(1 << 20)
                        .prefetch_frontier(prefetch)
                        .scheduler(kind)
                        .build(),
                );
                assert!(cluster.corrupt_value(rotten));
                match cluster.run(&plan) {
                    Err(WorkerError::CorruptValue { error, .. }) => {
                        assert_eq!(
                            error.vertex, rotten,
                            "{kind} prefetch={prefetch}: wrong vertex blamed"
                        );
                    }
                    other => {
                        panic!("{kind} prefetch={prefetch}: expected CorruptValue, got {other:?}")
                    }
                }
            }
        }
    }

    #[test]
    fn delta_codec_cuts_store_bytes_with_identical_matches() {
        let g = gen::barabasi_albert(150, 5, 29);
        let plan = PlanBuilder::new(&queries::q1()).best_plan();
        let run = |codec: benu_kvstore::CodecKind| {
            let cluster = Cluster::new(
                &g,
                ClusterConfig::builder()
                    .workers(2)
                    .threads_per_worker(1)
                    .cache_capacity_bytes(0) // every fetch pays wire bytes
                    .codec(codec)
                    .build(),
            );
            cluster.run_collect(&plan).unwrap()
        };
        let (raw, raw_matches) = run(benu_kvstore::CodecKind::RawU32);
        let (delta, delta_matches) = run(benu_kvstore::CodecKind::DeltaVarint);
        assert_eq!(raw.total_matches, delta.total_matches);
        assert_eq!(raw_matches, delta_matches, "codecs must be byte-identical");
        assert!(
            delta.communication_bytes() < raw.communication_bytes(),
            "delta-varint must shrink the wire ({} vs {})",
            delta.communication_bytes(),
            raw.communication_bytes()
        );
        // The compressed wire volume still reconciles with the store.
        assert_eq!(delta.communication_bytes(), delta.kv.bytes);
    }

    #[test]
    fn corruption_requires_exclusive_store_and_reports_absence() {
        let g = gen::complete(5);
        let mut cluster = small_cluster(&g, 2, 1);
        assert!(cluster.corrupt_remove_vertex(3));
        assert!(!cluster.corrupt_remove_vertex(3), "already gone");
        assert_eq!(cluster.store().num_vertices(), 5, "task list unchanged");
    }

    #[test]
    fn pooled_and_unpooled_clusters_are_byte_identical() {
        let g = gen::barabasi_albert(120, 4, 21);
        let plan = PlanBuilder::new(&queries::q1()).best_plan();
        for kind in [SchedulerKind::Static, SchedulerKind::WorkStealing] {
            let run = |pooled: bool| {
                let cluster = Cluster::new(
                    &g,
                    ClusterConfig::builder()
                        .workers(3)
                        .threads_per_worker(2)
                        .scheduler(kind)
                        .tau(20)
                        .pooled_buffers(pooled)
                        .build(),
                );
                cluster.run_collect(&plan).unwrap()
            };
            let (po, pm) = run(true);
            let (uo, um) = run(false);
            assert_eq!(po.total_matches, uo.total_matches, "{kind}: count diverged");
            assert_eq!(pm, um, "{kind}: matches must be byte-identical");
            assert_eq!(
                po.metrics, uo.metrics,
                "{kind}: instruction metrics must agree"
            );
        }
    }

    #[test]
    fn adaptive_tau_splits_hubs_and_keeps_counts_exact() {
        // A star hub serializes behind one worker under static τ = 0;
        // tau_auto must split it, report the chosen threshold, and leave
        // the count untouched.
        let g = gen::star(300);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let static_run = Cluster::new(&g, ClusterConfig::builder().workers(4).tau(0).build())
            .run(&plan)
            .unwrap();
        let auto_run = Cluster::new(
            &g,
            ClusterConfig::builder().workers(4).tau_auto(true).build(),
        )
        .run(&plan)
        .unwrap();
        assert_eq!(auto_run.total_matches, static_run.total_matches);
        assert_eq!(static_run.effective_tau, 0);
        assert!(
            auto_run.effective_tau > 0,
            "tau_auto must report its choice"
        );
        assert!(
            auto_run.total_tasks > static_run.total_tasks,
            "the hub must split ({} vs {} tasks)",
            auto_run.total_tasks,
            static_run.total_tasks
        );
        // Same-shape reruns choose the same threshold (pure function of
        // the degree distribution and the lane count).
        let replay = Cluster::new(
            &g,
            ClusterConfig::builder().workers(4).tau_auto(true).build(),
        )
        .run(&plan)
        .unwrap();
        assert_eq!(replay.effective_tau, auto_run.effective_tau);
    }

    #[test]
    fn static_tau_is_reported_as_effective() {
        let g = gen::complete(6);
        let cluster = small_cluster(&g, 2, 2);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let outcome = cluster.run(&plan).unwrap();
        assert_eq!(outcome.effective_tau, cluster.config().tau);
    }

    // ---- fault injection & recovery ----

    fn chaos_cluster(g: &Graph, plan: FaultPlan) -> Cluster {
        let mut cluster = Cluster::new(
            g,
            ClusterConfig::builder()
                .workers(3)
                .threads_per_worker(1)
                .cache_capacity_bytes(0) // every fetch hits the store: plenty of fault sites
                .tau(20)
                .build(),
        );
        cluster.set_fault_plan(Some(plan));
        cluster
    }

    #[test]
    fn transient_faults_are_retried_to_an_identical_count() {
        let g = gen::erdos_renyi_gnm(60, 220, 5);
        let query = PlanBuilder::new(&queries::triangle()).best_plan();
        let expected = benu_engine::count_embeddings(&query, &g);
        let cluster = chaos_cluster(&g, FaultPlan::builder(77).transient_rate(0.05).build());
        let outcome = cluster.run(&query).unwrap();
        assert_eq!(outcome.total_matches, expected);
        assert!(outcome.recovery.transient_faults > 0, "5% must fault");
        assert_eq!(outcome.recovery.retries, outcome.recovery.transient_faults);
        assert!(outcome.recovery.backoff_virtual > Duration::ZERO);
        assert_eq!(outcome.recovery.worker_crashes, 0);
        // Faulted attempts never reached the store, so the accounting
        // still reconciles exactly.
        assert_eq!(outcome.communication_bytes(), outcome.kv.bytes);
    }

    #[test]
    fn worker_crash_requeues_tasks_and_keeps_counts_exact() {
        let g = gen::barabasi_albert(120, 4, 31);
        let query = PlanBuilder::new(&queries::triangle()).best_plan();
        let expected = benu_engine::count_embeddings(&query, &g);
        let cluster = chaos_cluster(&g, FaultPlan::builder(3).crash(1, 5).build());
        let outcome = cluster.run(&query).unwrap();
        assert_eq!(outcome.total_matches, expected, "crash changed the count");
        assert_eq!(outcome.recovery.worker_crashes, 1);
        assert!(
            outcome.recovery.tasks_requeued >= 5,
            "the 5 lost results + its queue"
        );
        assert!(outcome.recovery.recovery_passes >= 1);
        // Every task's result enters the tally exactly once.
        let executed: usize = outcome.workers.iter().map(|w| w.tasks_executed).sum();
        assert_eq!(executed, outcome.total_tasks);
        // The dead worker reports no surviving work.
        assert_eq!(outcome.workers[1].tasks_executed, 0);
    }

    #[test]
    fn staggered_crashes_across_passes_do_not_double_count() {
        // Regression: a worker that survives pass 1 (results merged)
        // and crashes in a recovery pass must only requeue the tasks of
        // the pass it died in — requeueing its committed pass-1 tasks
        // would count them twice.
        let g = gen::barabasi_albert(120, 4, 31);
        let query = PlanBuilder::new(&queries::triangle()).best_plan();
        let expected = benu_engine::count_embeddings(&query, &g);
        // Probe the task count so worker 1's boundary provably lands in
        // pass 2: it survives its initial static share and dies a few
        // tasks into the requeued work from worker 0's pass-1 crash.
        let total_tasks = chaos_cluster(&g, FaultPlan::benign(0))
            .run(&query)
            .unwrap()
            .total_tasks;
        let boundary = (total_tasks / 3 + 5) as u64;
        let cluster = chaos_cluster(
            &g,
            FaultPlan::builder(9).crash(0, 5).crash(1, boundary).build(),
        );
        let outcome = cluster.run(&query).unwrap();
        assert_eq!(outcome.total_matches, expected, "multi-crash double count");
        assert_eq!(outcome.recovery.worker_crashes, 2);
        assert!(outcome.recovery.recovery_passes >= 2);
        let executed: usize = outcome.workers.iter().map(|w| w.tasks_executed).sum();
        assert_eq!(
            executed, outcome.total_tasks,
            "every task's result must enter the tally exactly once"
        );
    }

    #[test]
    fn speculation_does_not_skew_recovery_or_store_accounting() {
        // Regression: speculative attempts are discarded, so their store
        // traffic, injected faults, retries and virtual latency must not
        // inflate the report of the real run.
        let g = gen::erdos_renyi_gnm(60, 220, 5);
        let query = PlanBuilder::new(&queries::triangle()).best_plan();
        let run = |speculate: Option<f64>| {
            let mut cluster = Cluster::new(
                &g,
                ClusterConfig::builder()
                    .workers(2)
                    .threads_per_worker(1)
                    .cache_capacity_bytes(0)
                    .speculate_quantile(speculate)
                    .build(),
            );
            cluster.set_fault_plan(Some(FaultPlan::builder(77).transient_rate(0.05).build()));
            cluster.run(&query).unwrap()
        };
        let plain = run(None);
        let spec = run(Some(0.5));
        assert_eq!(plain.total_matches, spec.total_matches);
        assert!(spec.recovery.speculative_launches > 0);
        assert_eq!(
            plain.recovery.transient_faults,
            spec.recovery.transient_faults
        );
        assert_eq!(plain.recovery.retries, spec.recovery.retries);
        assert_eq!(
            plain.recovery.backoff_virtual,
            spec.recovery.backoff_virtual
        );
        assert_eq!(plain.communication_bytes(), spec.communication_bytes());
        assert_eq!(
            plain.kv.requests, spec.kv.requests,
            "speculative store traffic must not enter the run's totals"
        );
        assert_eq!(spec.communication_bytes(), spec.kv.bytes);
    }

    #[test]
    fn combined_faults_survive_under_both_schedulers() {
        let g = gen::erdos_renyi_gnm(80, 300, 9);
        let query = PlanBuilder::new(&queries::q1()).best_plan();
        let expected = benu_engine::count_embeddings(&query, &g);
        for kind in [SchedulerKind::Static, SchedulerKind::WorkStealing] {
            let mut cluster = Cluster::new(
                &g,
                ClusterConfig::builder()
                    .workers(4)
                    .threads_per_worker(2)
                    .cache_capacity_bytes(0)
                    .scheduler(kind)
                    .build(),
            );
            cluster.set_fault_plan(Some(
                FaultPlan::builder(11)
                    .transient_rate(0.02)
                    .timeout_rate(0.01)
                    .crash(2, 4)
                    .build(),
            ));
            let outcome = cluster.run(&query).unwrap();
            assert_eq!(outcome.total_matches, expected, "{kind} lost exactness");
            // Whether worker 2 reaches its crash boundary under work
            // stealing is timing-dependent (its queue may be stolen bare
            // first), so only the static scheduler guarantees the crash.
            if kind == SchedulerKind::Static {
                assert_eq!(outcome.recovery.worker_crashes, 1);
            }
            assert!(outcome.recovery.faults_injected() > 0);
        }
    }

    #[test]
    fn same_seed_replay_reproduces_the_recovery_report() {
        let g = gen::barabasi_albert(100, 3, 17);
        let query = PlanBuilder::new(&queries::triangle()).best_plan();
        let chaos = || {
            FaultPlan::builder(42)
                .transient_rate(0.03)
                .crash(0, 4)
                .build()
        };
        // Determinism scope: static scheduler, one thread per worker —
        // the acceptance configuration. (Work stealing and intra-worker
        // thread races reorder requests, which moves fault sites.)
        let run = || chaos_cluster(&g, chaos()).run(&query).unwrap();
        let a = run();
        let b = run();
        assert_eq!(a.recovery, b.recovery, "same seed must replay identically");
        assert_eq!(a.total_matches, b.total_matches);
        assert!(a.recovery.transient_faults > 0);
        assert_eq!(a.recovery.worker_crashes, 1);
    }

    #[test]
    fn benign_plan_changes_nothing_and_reports_clean() {
        let g = gen::erdos_renyi_gnm(50, 180, 2);
        let query = PlanBuilder::new(&queries::triangle()).best_plan();
        let expected = benu_engine::count_embeddings(&query, &g);
        let cluster = chaos_cluster(&g, FaultPlan::benign(0));
        let outcome = cluster.run(&query).unwrap();
        assert_eq!(outcome.total_matches, expected);
        assert!(outcome.recovery.is_clean());
    }

    #[test]
    fn slow_shards_charge_busy_time_without_sleeping() {
        let g = gen::erdos_renyi_gnm(60, 220, 8);
        let query = PlanBuilder::new(&queries::triangle()).best_plan();
        let cluster = chaos_cluster(
            &g,
            FaultPlan::builder(5)
                .base_latency(Duration::from_millis(2))
                .slow_shard(0, 4.0)
                .build(),
        );
        let started = Instant::now();
        let outcome = cluster.run(&query).unwrap();
        let wall = started.elapsed();
        let penalty = outcome.recovery.slow_penalty_virtual;
        assert!(
            penalty > Duration::ZERO,
            "shard 0 traffic must be penalised"
        );
        let total_busy: Duration = outcome.workers.iter().map(|w| w.busy_time).sum();
        assert!(
            total_busy >= penalty,
            "virtual latency must be charged into busy time ({total_busy:?} < {penalty:?})"
        );
        assert!(
            wall < penalty,
            "penalties are virtual: wall {wall:?} must undercut charged {penalty:?}"
        );
    }

    #[test]
    fn speculation_reexecutes_stragglers_without_changing_counts() {
        let g = gen::barabasi_albert(150, 4, 23);
        let query = PlanBuilder::new(&queries::triangle()).best_plan();
        let expected = benu_engine::count_embeddings(&query, &g);
        let cluster = Cluster::new(
            &g,
            ClusterConfig::builder()
                .workers(2)
                .threads_per_worker(1)
                .speculate_quantile(Some(0.9))
                .build(),
        );
        let outcome = cluster.run(&query).unwrap();
        assert_eq!(
            outcome.total_matches, expected,
            "speculation changed counts"
        );
        let spec = outcome.recovery.speculative_launches;
        assert!(spec > 0, "a 0.9 quantile must leave stragglers to chase");
        assert!(
            (spec as usize) < outcome.total_tasks / 2,
            "only the tail may be speculated ({spec} of {})",
            outcome.total_tasks
        );
        assert!(outcome.recovery.speculative_wins <= spec);
    }

    #[test]
    fn unrecoverable_shard_outage_surfaces_a_contextual_error() {
        let g = gen::erdos_renyi_gnm(40, 120, 1);
        let query = PlanBuilder::new(&queries::triangle()).best_plan();
        let mut cluster = Cluster::new(
            &g,
            ClusterConfig::builder()
                .workers(2)
                .threads_per_worker(1)
                .cache_capacity_bytes(0)
                .retry(RetryPolicy {
                    max_attempts: 2,
                    ..RetryPolicy::default()
                })
                .build(),
        );
        cluster.set_fault_plan(Some(FaultPlan::builder(0).transient_rate(0.9).build()));
        match cluster.run(&query) {
            Err(WorkerError::StoreUnavailable { error, task, .. }) => {
                assert_eq!(error.attempts, 2);
                assert!(task.is_some(), "failure happened inside a task");
            }
            other => panic!("rate 0.9 with 2 attempts must exhaust, got {other:?}"),
        }
    }

    // ---- replication & failover ----

    fn replicated_cluster(g: &Graph, replication: usize, plan: Option<FaultPlan>) -> Cluster {
        let mut cluster = Cluster::new(
            g,
            ClusterConfig::builder()
                .workers(3)
                .threads_per_worker(1)
                .cache_capacity_bytes(0) // every fetch hits the store
                .tau(20)
                .replication(replication)
                .build(),
        );
        cluster.set_fault_plan(plan);
        cluster
    }

    #[test]
    fn replicated_cluster_survives_a_whole_shard_outage() {
        let g = gen::barabasi_albert(120, 4, 31);
        let query = PlanBuilder::new(&queries::triangle()).best_plan();
        let (clean, clean_matches) = replicated_cluster(&g, 2, None).run_collect(&query).unwrap();
        let dark = replicated_cluster(
            &g,
            2,
            Some(FaultPlan::builder(0).shard_outage(0, 1).build()),
        );
        let (outcome, matches) = dark.run_collect(&query).unwrap();
        assert_eq!(
            outcome.total_matches, clean.total_matches,
            "a survivable outage must not change the count"
        );
        assert_eq!(matches, clean_matches, "matches must be byte-identical");
        assert!(outcome.recovery.failovers > 0);
        assert!(outcome.recovery.failover_reads > 0);
        assert_eq!(outcome.recovery.shard_outages, 1);
        assert_eq!(
            outcome.recovery.retries, 0,
            "failover happens before the retry budget"
        );
        // Accounting still reconciles: the dark shard served nothing.
        assert_eq!(outcome.communication_bytes(), outcome.kv.bytes);
    }

    #[test]
    fn unreplicated_shard_outage_fails_fast() {
        let g = gen::barabasi_albert(120, 4, 31);
        let query = PlanBuilder::new(&queries::triangle()).best_plan();
        let cluster = replicated_cluster(
            &g,
            1,
            Some(FaultPlan::builder(0).shard_outage(0, 1).build()),
        );
        match cluster.run(&query) {
            Err(WorkerError::StoreUnavailable { error, .. }) => {
                assert_eq!(error.attempts, 1, "outages must not burn the retry budget");
            }
            other => panic!("single-copy store under outage must abort, got {other:?}"),
        }
    }

    #[test]
    fn losing_every_replica_of_a_group_still_aborts() {
        // R = 2 with two ring-adjacent shards dark destroys a whole
        // placement group: total data loss must surface, not undercount.
        let g = gen::barabasi_albert(120, 4, 31);
        let query = PlanBuilder::new(&queries::triangle()).best_plan();
        let cluster = replicated_cluster(
            &g,
            2,
            Some(
                FaultPlan::builder(0)
                    .shard_outage(0, 1)
                    .shard_outage(1, 1)
                    .build(),
            ),
        );
        match cluster.run(&query) {
            Err(WorkerError::StoreUnavailable { error, .. }) => {
                assert_eq!(error.attempts, 1);
            }
            other => panic!("total placement-group loss must abort, got {other:?}"),
        }
    }

    #[test]
    fn outage_survival_replays_identically() {
        let g = gen::erdos_renyi_gnm(80, 260, 5);
        let query = PlanBuilder::new(&queries::triangle()).best_plan();
        let run = || {
            let cluster = replicated_cluster(
                &g,
                2,
                Some(
                    FaultPlan::builder(13)
                        .shard_outage(2, 1)
                        .transient_rate(0.02)
                        .build(),
                ),
            );
            cluster.run(&query).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.total_matches, b.total_matches);
        assert_eq!(a.recovery, b.recovery, "failover fields must replay");
        assert!(a.recovery.failover_reads > 0);
    }

    // ---- observability ----

    #[test]
    fn observed_cluster_records_into_every_layer() {
        let g = gen::barabasi_albert(100, 4, 19);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let hub = Arc::new(benu_obs::ObsHub::new());
        let cluster = Cluster::new_observed(
            &g,
            ClusterConfig::builder()
                .workers(2)
                .threads_per_worker(1)
                .cache_capacity_bytes(1 << 20)
                .build(),
            Arc::clone(&hub),
        );
        let outcome = cluster.run(&plan).unwrap();
        let reg = &hub.registry;
        // Engine counters mirror the typed outcome.
        assert_eq!(reg.counter("engine.matches").get(), outcome.total_matches);
        assert_eq!(
            reg.counter("engine.dbq_executions").get(),
            outcome.metrics.dbq_executions
        );
        // Store shard counters sum to the store totals.
        let shard_requests: u64 = (0..2)
            .map(|i| reg.counter(&format!("store.shard.{i}.requests")).get())
            .sum();
        assert_eq!(shard_requests, outcome.kv.requests);
        // Cache tier counters match the per-run deltas (fresh hub).
        let hits: u64 = outcome.workers.iter().map(|w| w.cache.hits).sum();
        assert_eq!(reg.counter("cache.db.hits").get(), hits);
        // Per-worker counters.
        let executed: u64 = (0..2)
            .map(|w| reg.counter(&format!("worker.{w}.tasks_executed")).get())
            .sum();
        assert_eq!(executed, outcome.total_tasks as u64);
        // Phase spans cover the run.
        let spans: Vec<String> = hub
            .tracer
            .events()
            .into_iter()
            .filter(|e| e.enter)
            .map(|e| e.span)
            .collect();
        for expected in ["store_load", "plan_compile", "task_generation", "pass.0"] {
            assert!(spans.contains(&expected.to_string()), "missing {expected}");
        }
    }

    #[test]
    fn faulted_observed_runs_are_byte_identical_across_executions() {
        // The acceptance configuration: 1 worker × 1 thread, static
        // scheduler, fixed fault seed. The deterministic report — metric
        // snapshot plus trace — must not differ between two executions.
        let g = gen::barabasi_albert(80, 3, 17);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let run = || {
            let hub = Arc::new(benu_obs::ObsHub::new());
            let mut cluster = Cluster::new_observed(
                &g,
                ClusterConfig::builder()
                    .workers(1)
                    .threads_per_worker(1)
                    .cache_capacity_bytes(0)
                    .tau(20)
                    .build(),
                Arc::clone(&hub),
            );
            cluster.set_fault_plan(Some(FaultPlan::builder(42).transient_rate(0.03).build()));
            let outcome = cluster.run(&plan).unwrap();
            let mut report = hub.report(benu_obs::ReportMode::Deterministic);
            report.merge(outcome.report(benu_obs::ReportMode::Deterministic));
            report
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "deterministic reports must replay identically");
        assert!(
            a.get_u64("metrics/fault.transient_faults").unwrap_or(0) > 0,
            "the fault plan must actually inject"
        );
        // The trace clock advanced by the virtual backoff the faults cost.
        let backoff = a.get_u64("recovery/backoff_virtual_nanos").unwrap();
        assert!(backoff > 0);
    }

    #[test]
    fn losing_every_worker_is_an_error() {
        let g = gen::erdos_renyi_gnm(40, 120, 6);
        let query = PlanBuilder::new(&queries::triangle()).best_plan();
        let mut cluster = Cluster::new(
            &g,
            ClusterConfig::builder()
                .workers(2)
                .threads_per_worker(1)
                .build(),
        );
        cluster.set_fault_plan(Some(FaultPlan::builder(0).crash(0, 1).crash(1, 1).build()));
        match cluster.run(&query) {
            Err(WorkerError::ClusterLost { outstanding }) => {
                assert!(outstanding > 0, "lost tasks must be reported");
            }
            other => panic!("expected ClusterLost, got {other:?}"),
        }
    }
}
