//! The cluster executor.

use crate::config::ClusterConfig;
use crate::report::{RunOutcome, WorkerReport};
use benu_cache::DbCache;
use benu_engine::{
    CollectingConsumer, CountingConsumer, DataSource, LocalEngine, MatchConsumer, SearchTask,
    SplitSpec, TaskMetrics,
};
use benu_graph::{AdjSet, Graph, TotalOrder, VertexId};
use benu_kvstore::KvStore;
use benu_plan::ExecutionPlan;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A loaded cluster: the data graph resident in the sharded store, ready
/// to run any number of plans.
pub struct Cluster {
    store: Arc<KvStore>,
    order: Arc<TotalOrder>,
    degrees: Vec<u32>,
    config: ClusterConfig,
}

/// Counts store traffic per worker (the per-machine communication cost).
struct WorkerSource<'a> {
    store: &'a KvStore,
    cache: &'a DbCache,
    bytes: &'a AtomicU64,
    requests: &'a AtomicU64,
}

impl DataSource for WorkerSource<'_> {
    fn num_vertices(&self) -> usize {
        self.store.num_vertices()
    }

    fn get_adj(&self, v: VertexId) -> Arc<AdjSet> {
        self.cache
            .get_or_fetch(v, || -> Result<Arc<AdjSet>, ()> {
                let adj = self.store.get(v).expect("vertex exists in store");
                self.requests.fetch_add(1, Ordering::Relaxed);
                self.bytes.fetch_add(adj.size_bytes() as u64, Ordering::Relaxed);
                Ok(adj)
            })
            .expect("store fetch is infallible")
    }
}

impl Cluster {
    /// Loads `g` into a store sharded across the configured workers
    /// (Algorithm 2 line 1 — the pattern-independent preprocessing).
    pub fn new(g: &Graph, config: ClusterConfig) -> Self {
        config.validate();
        Cluster {
            store: Arc::new(KvStore::from_graph(g, config.workers)),
            order: Arc::new(TotalOrder::new(g)),
            degrees: g.vertices().map(|v| g.degree(v) as u32).collect(),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The underlying store (for capacity/size queries).
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Reconfigures the cluster in place (the store sharding stays as
    /// loaded; only execution parameters change).
    pub fn set_config(&mut self, config: ClusterConfig) {
        config.validate();
        self.config = config;
    }

    /// Generates the (split) task list for a compiled plan.
    fn generate_tasks(&self, second_adjacent: bool, has_second: bool) -> Vec<SearchTask> {
        let n = self.degrees.len();
        let tau = if has_second { self.config.tau } else { 0 };
        let mut tasks = Vec::with_capacity(n);
        for v in 0..n {
            let degree = self.degrees[v] as usize;
            let bound = if second_adjacent { degree } else { n };
            if tau > 0 && degree >= tau && bound > tau {
                let total = bound.div_ceil(tau) as u32;
                for index in 0..total {
                    tasks.push(SearchTask {
                        start: v as VertexId,
                        split: Some(SplitSpec { index, total }),
                    });
                }
            } else {
                tasks.push(SearchTask::whole(v as VertexId));
            }
        }
        tasks
    }

    /// Runs `plan`, counting matches (Algorithm 2 lines 3–8). Store
    /// counters are reset at entry so the outcome reflects this run only.
    pub fn run(&self, plan: &ExecutionPlan) -> RunOutcome {
        self.run_inner(plan, false).0
    }

    /// Runs `plan` and additionally collects every (expanded) embedding.
    /// Intended for correctness tests and small graphs.
    pub fn run_collect(&self, plan: &ExecutionPlan) -> (RunOutcome, Vec<Vec<VertexId>>) {
        let (outcome, matches) = self.run_inner(plan, true);
        (outcome, matches.unwrap_or_default())
    }

    fn run_inner(
        &self,
        plan: &ExecutionPlan,
        collect: bool,
    ) -> (RunOutcome, Option<Vec<Vec<VertexId>>>) {
        let compiled = benu_engine::CompiledPlan::compile(plan);
        let tasks = self.generate_tasks(compiled.second_adjacent, compiled.second_vertex.is_some());
        let p = self.config.workers;

        // Round-robin assignment — the even shuffle of tasks to reducers.
        let mut worker_tasks: Vec<Vec<SearchTask>> = vec![Vec::new(); p];
        for (i, t) in tasks.iter().enumerate() {
            worker_tasks[i % p].push(*t);
        }

        self.store.reset_stats();
        let started = Instant::now();

        struct ThreadResult {
            metrics: TaskMetrics,
            busy: Duration,
            task_times: Vec<Duration>,
            tri_stats: benu_cache::CacheStats,
            matches: Option<Vec<Vec<VertexId>>>,
        }

        let mut reports: Vec<WorkerReport> = Vec::with_capacity(p);
        let mut all_matches: Option<Vec<Vec<VertexId>>> = collect.then(Vec::new);
        let mut all_task_times: Option<Vec<Duration>> =
            self.config.collect_task_times.then(Vec::new);

        std::thread::scope(|scope| {
            let mut worker_handles = Vec::with_capacity(p);
            for (w, tasks) in worker_tasks.iter().enumerate() {
                let cache = Arc::new(DbCache::new(
                    self.config.cache_capacity_bytes,
                    self.config.cache_shards,
                ));
                let bytes = Arc::new(AtomicU64::new(0));
                let requests = Arc::new(AtomicU64::new(0));
                let cursor = Arc::new(AtomicUsize::new(0));
                let mut thread_handles = Vec::with_capacity(self.config.threads_per_worker);
                for _ in 0..self.config.threads_per_worker {
                    let cache = Arc::clone(&cache);
                    let bytes = Arc::clone(&bytes);
                    let requests = Arc::clone(&requests);
                    let cursor = Arc::clone(&cursor);
                    let store = Arc::clone(&self.store);
                    let order = Arc::clone(&self.order);
                    let compiled = &compiled;
                    let config = &self.config;
                    thread_handles.push(scope.spawn(move || {
                        let source = WorkerSource {
                            store: &store,
                            cache: &cache,
                            bytes: &bytes,
                            requests: &requests,
                        };
                        let mut engine = LocalEngine::with_triangle_cache(
                            compiled,
                            &source,
                            &order,
                            config.triangle_cache_entries,
                        );
                        let mut counting = CountingConsumer::default();
                        let mut collecting = CollectingConsumer::default();
                        let mut result = ThreadResult {
                            metrics: TaskMetrics::default(),
                            busy: Duration::ZERO,
                            task_times: Vec::new(),
                            tri_stats: benu_cache::CacheStats::default(),
                            matches: None,
                        };
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= tasks.len() {
                                break;
                            }
                            let t0 = Instant::now();
                            let consumer: &mut dyn MatchConsumer = if collect {
                                &mut collecting
                            } else {
                                &mut counting
                            };
                            result.metrics += engine.run_task(tasks[i], consumer);
                            let dt = t0.elapsed();
                            result.busy += dt;
                            if config.collect_task_times {
                                result.task_times.push(dt);
                            }
                        }
                        result.tri_stats = engine.triangle_cache_stats();
                        if collect {
                            result.matches = Some(collecting.into_matches());
                        }
                        result
                    }));
                }
                worker_handles.push((w, cache, bytes, requests, tasks.len(), thread_handles));
            }

            for (w, cache, bytes, requests, num_tasks, thread_handles) in worker_handles {
                let mut report = WorkerReport {
                    worker: w,
                    tasks: num_tasks,
                    ..WorkerReport::default()
                };
                for handle in thread_handles {
                    let r = handle.join().expect("worker thread panicked");
                    report.metrics += r.metrics;
                    report.busy_time += r.busy;
                    report.thread_busy.push(r.busy);
                    report.triangle_cache.hits += r.tri_stats.hits;
                    report.triangle_cache.misses += r.tri_stats.misses;
                    if let Some(times) = all_task_times.as_mut() {
                        times.extend(r.task_times);
                    }
                    if let (Some(all), Some(mine)) = (all_matches.as_mut(), r.matches) {
                        all.extend(mine);
                    }
                }
                report.cache = cache.stats();
                report.comm_bytes = bytes.load(Ordering::Relaxed);
                report.comm_requests = requests.load(Ordering::Relaxed);
                reports.push(report);
            }
        });

        let elapsed = started.elapsed();
        let mut metrics = TaskMetrics::default();
        for r in &reports {
            metrics += r.metrics;
        }
        let outcome = RunOutcome {
            total_matches: metrics.matches,
            total_codes: metrics.codes,
            elapsed,
            metrics,
            workers: reports,
            kv: self.store.stats(),
            total_tasks: tasks.len(),
            task_times: all_task_times,
        };
        if let Some(m) = all_matches.as_mut() {
            m.sort_unstable();
        }
        (outcome, all_matches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benu_graph::gen;
    use benu_pattern::queries;
    use benu_plan::PlanBuilder;

    fn small_cluster(g: &Graph, workers: usize, threads: usize) -> Cluster {
        Cluster::new(
            g,
            ClusterConfig::builder()
                .workers(workers)
                .threads_per_worker(threads)
                .cache_capacity_bytes(1 << 20)
                .tau(20)
                .build(),
        )
    }

    #[test]
    fn counts_triangles_in_k6() {
        let g = gen::complete(6);
        let cluster = small_cluster(&g, 2, 2);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let outcome = cluster.run(&plan);
        assert_eq!(outcome.total_matches, 20);
        assert_eq!(outcome.total_tasks, 6);
    }

    #[test]
    fn result_is_independent_of_cluster_shape() {
        let g = gen::barabasi_albert(150, 4, 3);
        let plan = PlanBuilder::new(&queries::q1()).best_plan();
        let expected = benu_engine::count_embeddings(&plan, &g);
        for (workers, threads) in [(1, 1), (2, 3), (5, 2)] {
            let cluster = small_cluster(&g, workers, threads);
            let outcome = cluster.run(&plan);
            assert_eq!(
                outcome.total_matches, expected,
                "{workers}x{threads} cluster changed the count"
            );
        }
    }

    #[test]
    fn result_is_independent_of_cache_capacity_and_tau() {
        let g = gen::barabasi_albert(120, 5, 8);
        let plan = PlanBuilder::new(&queries::q4()).compressed(true).best_plan();
        let mut counts = std::collections::HashSet::new();
        for (capacity, tau) in [(0usize, 0usize), (1 << 12, 10), (1 << 24, 500)] {
            let cluster = Cluster::new(
                &g,
                ClusterConfig::builder()
                    .workers(3)
                    .threads_per_worker(2)
                    .cache_capacity_bytes(capacity)
                    .tau(tau)
                    .build(),
            );
            counts.insert(cluster.run(&plan).total_matches);
        }
        assert_eq!(counts.len(), 1, "configuration changed results: {counts:?}");
    }

    #[test]
    fn collected_matches_agree_with_sequential_engine() {
        let g = gen::erdos_renyi_gnm(40, 150, 21);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let cluster = small_cluster(&g, 3, 2);
        let (outcome, matches) = cluster.run_collect(&plan);
        let expected = benu_engine::collect_embeddings(&plan, &g);
        assert_eq!(matches, expected);
        assert_eq!(outcome.total_matches as usize, matches.len());
    }

    #[test]
    fn communication_accounting_is_consistent() {
        let g = gen::barabasi_albert(200, 4, 13);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let cluster = small_cluster(&g, 2, 2);
        let outcome = cluster.run(&plan);
        // Worker-level byte counts must equal the store's own accounting.
        assert_eq!(outcome.communication_bytes(), outcome.kv.bytes);
        assert!(outcome.kv.requests > 0);
        // Cache misses equal store requests.
        let misses: u64 = outcome.workers.iter().map(|w| w.cache.misses).sum();
        assert_eq!(misses, outcome.kv.requests);
    }

    #[test]
    fn larger_cache_reduces_communication() {
        let g = gen::barabasi_albert(300, 6, 4);
        let plan = PlanBuilder::new(&queries::q4()).best_plan();
        let run_with_capacity = |capacity: usize| {
            let cluster = Cluster::new(
                &g,
                ClusterConfig::builder()
                    .workers(2)
                    .threads_per_worker(2)
                    .cache_capacity_bytes(capacity)
                    .build(),
            );
            cluster.run(&plan)
        };
        let cold = run_with_capacity(0);
        let warm = run_with_capacity(64 << 20);
        assert_eq!(cold.total_matches, warm.total_matches);
        assert!(
            warm.communication_bytes() < cold.communication_bytes() / 2,
            "cache must cut communication (cold {}, warm {})",
            cold.communication_bytes(),
            warm.communication_bytes()
        );
        assert!(warm.cache_hit_rate() > 0.5);
    }

    #[test]
    fn task_times_are_collected_when_requested() {
        let g = gen::erdos_renyi_gnm(50, 120, 2);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let cluster = Cluster::new(
            &g,
            ClusterConfig::builder()
                .workers(2)
                .threads_per_worker(1)
                .collect_task_times(true)
                .build(),
        );
        let outcome = cluster.run(&plan);
        let times = outcome.task_times.as_ref().unwrap();
        assert_eq!(times.len(), outcome.total_tasks);
    }

    #[test]
    fn splitting_creates_more_tasks_on_skewed_graphs() {
        let g = gen::star(100);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let unsplit = Cluster::new(
            &g,
            ClusterConfig::builder().workers(2).tau(0).build(),
        );
        let split = Cluster::new(
            &g,
            ClusterConfig::builder().workers(2).tau(10).build(),
        );
        let a = unsplit.run(&plan);
        let b = split.run(&plan);
        assert_eq!(a.total_matches, b.total_matches);
        assert!(b.total_tasks > a.total_tasks);
    }
}
