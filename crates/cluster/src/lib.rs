//! The simulated shared-nothing cluster runtime (paper §III, Fig. 2).
//!
//! The paper runs BENU as a MapReduce job: local search tasks are
//! generated from the data vertices (with task splitting, §V-B), shuffled
//! evenly to one reducer per worker machine, and executed by a pool of
//! working threads per reducer; every machine hosts a shared database
//! cache in front of the distributed store.
//!
//! This crate reproduces that topology in one process, layered as:
//!
//! * **store** — the data graph lives in a [`benu_kvstore::KvStore`]
//!   sharded across the workers;
//! * **transport** — every worker's store traffic flows through a
//!   [`transport::Transport`], which accounts bytes, round trips and
//!   batched multi-gets;
//! * **cache** — each logical worker owns a byte-budgeted
//!   [`benu_cache::DbCache`] shared by its (real OS) worker threads and
//!   *persistent across runs* (see [`Cluster::clear_caches`]);
//! * **scheduler** — a pluggable [`schedule::Scheduler`] hands tasks to
//!   threads: static round-robin (the paper's even shuffle) or work
//!   stealing for skewed task sets;
//! * **worker** — each thread runs a [`worker::Worker`] hosting a
//!   [`benu_engine::LocalEngine`] with its private triangle cache, and
//!   fails soft: store/task errors surface as [`WorkerError`] instead of
//!   panics;
//! * **recovery** — with a [`benu_fault::FaultPlan`] installed via
//!   [`Cluster::set_fault_plan`], transports retry injected store faults
//!   with capped virtual backoff, crashed workers' tasks are requeued
//!   and re-executed on survivors (BENU's idempotent-task recovery,
//!   §III-C), stragglers past [`ClusterConfig::speculate_quantile`] are
//!   speculatively re-executed, and the whole story is summarised in the
//!   outcome's [`RecoveryReport`];
//! * per-worker communication bytes, cache statistics, busy time, steal
//!   counts and optional per-task durations are reported in the
//!   [`RunOutcome`] — exactly the measurements behind Table V, Fig. 8,
//!   Fig. 9 and Fig. 10.

pub mod analysis;
pub mod balance;
pub mod config;
mod recovery;
pub mod report;
pub mod runtime;
pub mod schedule;
pub mod transport;
pub mod worker;

// Everything a non-`Cluster` owner needs to build its own fault-aware
// [`transport::Transport`]s ([`transport::Transport::with_faults`]):
// the plan, the retry policy, and the routed store decorator — so a
// serving layer can reuse the exact retry/failover machinery the batch
// runtime runs on.
pub use balance::CostProfile;
pub use benu_fault::{
    FaultError, FaultKind, FaultPlan, FaultPlanBuilder, FaultingStore, RetryPolicy, StoreError,
};
pub use benu_kvstore::{CodecKind, CorruptValue};
pub use config::{ClusterConfig, ClusterConfigBuilder, ExecMode};
pub use report::{RecoveryReport, RunOutcome, WorkerReport};
pub use runtime::Cluster;
pub use schedule::{Scheduler, SchedulerKind};
pub use transport::{FetchError, TransportError};
pub use worker::WorkerError;
