//! The simulated shared-nothing cluster runtime (paper §III, Fig. 2).
//!
//! The paper runs BENU as a MapReduce job: local search tasks are
//! generated from the data vertices (with task splitting, §V-B), shuffled
//! evenly to one reducer per worker machine, and executed by a pool of
//! working threads per reducer; every machine hosts a shared database
//! cache in front of the distributed store.
//!
//! This crate reproduces that topology in one process:
//!
//! * the data graph lives in a [`benu_kvstore::KvStore`] sharded across
//!   the workers;
//! * each logical worker owns a byte-budgeted [`benu_cache::DbCache`]
//!   shared by its (real OS) worker threads;
//! * each thread owns a [`benu_engine::LocalEngine`] with its private
//!   triangle cache;
//! * tasks are assigned round-robin and pulled by threads from their
//!   worker's queue;
//! * per-worker communication bytes, cache statistics, busy time and
//!   optional per-task durations are reported in the [`RunOutcome`] —
//!   exactly the measurements behind Table V, Fig. 8, Fig. 9 and Fig. 10.

pub mod analysis;
pub mod config;
pub mod report;
pub mod runtime;

pub use config::{ClusterConfig, ClusterConfigBuilder};
pub use report::{RunOutcome, WorkerReport};
pub use runtime::Cluster;
