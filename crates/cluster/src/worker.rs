//! The worker thread body.
//!
//! Each simulated worker machine runs `threads_per_worker` OS threads,
//! all executing [`Worker::run_thread`]: pull a task from the scheduler,
//! optionally prefetch its frontier in one batched round trip, run it on
//! a thread-local engine, accumulate metrics. Failures are structured —
//! a vertex missing from the store or a panicking task aborts the whole
//! run with a [`WorkerError`] instead of poisoning a thread join.

use crate::config::ClusterConfig;
use crate::schedule::Scheduler;
use crate::transport::Transport;
use benu_cache::DbCache;
use benu_engine::{
    CollectingConsumer, CompiledPlan, CountingConsumer, DataSource, LocalEngine, MatchConsumer,
    TaskMetrics,
};
use benu_graph::{AdjSet, TotalOrder, VertexId};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a cluster run aborted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkerError {
    /// A task queried a vertex the store does not hold — the data graph
    /// and the task list disagree (corrupted load or bad task input).
    MissingVertex {
        /// The worker that issued the query.
        worker: usize,
        /// The unknown vertex.
        vertex: VertexId,
    },
    /// A task panicked inside the engine.
    TaskPanicked {
        /// The worker executing the task.
        worker: usize,
        /// The task's start vertex.
        start: VertexId,
    },
    /// A worker thread died outside of task execution.
    ThreadPanicked {
        /// The worker whose thread died.
        worker: usize,
    },
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::MissingVertex { worker, vertex } => {
                write!(f, "worker {worker}: vertex {vertex} missing from the store")
            }
            WorkerError::TaskPanicked { worker, start } => {
                write!(
                    f,
                    "worker {worker}: task starting at vertex {start} panicked"
                )
            }
            WorkerError::ThreadPanicked { worker } => {
                write!(f, "worker {worker}: thread panicked outside task execution")
            }
        }
    }
}

impl std::error::Error for WorkerError {}

/// First-error slot shared by every thread of a run. Recording an error
/// raises the abort flag; threads poll it between tasks and bail out, so
/// one failure drains the whole cluster quickly but cleanly.
pub(crate) struct ErrorSlot {
    error: Mutex<Option<WorkerError>>,
    abort: AtomicBool,
}

impl ErrorSlot {
    pub(crate) fn new() -> Self {
        ErrorSlot {
            error: Mutex::new(None),
            abort: AtomicBool::new(false),
        }
    }

    /// Records `err` if it is the first, and raises the abort flag.
    pub(crate) fn record(&self, err: WorkerError) {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(err);
        }
        self.abort.store(true, Ordering::Release);
    }

    /// True once any thread has failed.
    pub(crate) fn aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    /// The first recorded error, if any.
    pub(crate) fn first(&self) -> Option<WorkerError> {
        self.error.lock().clone()
    }
}

/// The engine's view of the data graph from inside one worker: database
/// cache in front of the worker's [`Transport`]. Missing vertices cannot
/// surface through the infallible [`DataSource`] signature, so they are
/// recorded in the [`ErrorSlot`] and answered with an empty adjacency set
/// — the run aborts before the bogus empty result can be observed as a
/// match count.
pub(crate) struct WorkerSource<'a> {
    worker: usize,
    transport: &'a Transport,
    cache: &'a DbCache,
    errors: &'a ErrorSlot,
}

impl WorkerSource<'_> {
    fn missing(&self, vertex: VertexId) -> Arc<AdjSet> {
        self.errors.record(WorkerError::MissingVertex {
            worker: self.worker,
            vertex,
        });
        Arc::new(AdjSet::new())
    }

    /// Warms the cache for a task starting at `start`: fetches the start
    /// vertex, then pulls all its uncached neighbours in one batched
    /// round trip. Prefetched entries enter the cache without counting a
    /// miss (their later lookups count as hits); the byte accounting is
    /// exact either way. May fetch neighbours the task never expands —
    /// prefetching trades bytes for round trips.
    pub(crate) fn prefetch_frontier(&self, start: VertexId) {
        let adj = self.get_adj(start);
        let missing: Vec<VertexId> = adj
            .iter()
            .copied()
            .filter(|&w| !self.cache.contains(w))
            .collect();
        if missing.is_empty() {
            return;
        }
        for (i, value) in self.transport.fetch_many(&missing).into_iter().enumerate() {
            match value {
                Some(adj) => self.cache.insert(missing[i], adj),
                None => {
                    self.missing(missing[i]);
                }
            }
        }
    }
}

impl DataSource for WorkerSource<'_> {
    fn num_vertices(&self) -> usize {
        self.transport.store().num_vertices()
    }

    fn get_adj(&self, v: VertexId) -> Arc<AdjSet> {
        match self
            .cache
            .get_or_fetch(v, || self.transport.fetch(v).ok_or(()))
        {
            Ok(adj) => adj,
            Err(()) => self.missing(v),
        }
    }

    fn get_adj_batch(&self, vs: &[VertexId]) -> Vec<Arc<AdjSet>> {
        let mut out: Vec<Option<Arc<AdjSet>>> = vec![None; vs.len()];
        let mut missing_slots = Vec::new();
        let mut missing_keys = Vec::new();
        for (i, &v) in vs.iter().enumerate() {
            match self.cache.get(v) {
                Some(adj) => out[i] = Some(adj),
                None => {
                    missing_slots.push(i);
                    missing_keys.push(v);
                }
            }
        }
        if !missing_keys.is_empty() {
            for (j, value) in self
                .transport
                .fetch_many(&missing_keys)
                .into_iter()
                .enumerate()
            {
                out[missing_slots[j]] = Some(match value {
                    Some(adj) => {
                        self.cache.insert(missing_keys[j], Arc::clone(&adj));
                        adj
                    }
                    None => self.missing(missing_keys[j]),
                });
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every slot filled"))
            .collect()
    }
}

/// What one thread accumulated over its share of the run.
pub struct ThreadResult {
    pub(crate) metrics: TaskMetrics,
    pub(crate) busy: Duration,
    pub(crate) executed: usize,
    pub(crate) task_times: Vec<Duration>,
    pub(crate) tri_stats: benu_cache::CacheStats,
    pub(crate) matches: Option<Vec<Vec<VertexId>>>,
}

/// One worker machine's execution context, shared by its threads.
pub struct Worker<'a> {
    pub(crate) id: usize,
    pub(crate) scheduler: &'a dyn Scheduler,
    pub(crate) transport: &'a Transport,
    pub(crate) cache: &'a DbCache,
    pub(crate) order: &'a TotalOrder,
    pub(crate) compiled: &'a CompiledPlan,
    pub(crate) config: &'a ClusterConfig,
    pub(crate) errors: &'a ErrorSlot,
}

impl Worker<'_> {
    /// The thread body: pulls tasks from the scheduler until exhaustion
    /// or abort. `collect` switches from counting to materialising
    /// matches.
    pub fn run_thread(&self, collect: bool) -> Result<ThreadResult, WorkerError> {
        let source = WorkerSource {
            worker: self.id,
            transport: self.transport,
            cache: self.cache,
            errors: self.errors,
        };
        let mut engine = LocalEngine::with_triangle_cache(
            self.compiled,
            &source,
            self.order,
            self.config.triangle_cache_entries,
        );
        let mut counting = CountingConsumer::default();
        let mut collecting = CollectingConsumer::default();
        let mut result = ThreadResult {
            metrics: TaskMetrics::default(),
            busy: Duration::ZERO,
            executed: 0,
            task_times: Vec::new(),
            tri_stats: benu_cache::CacheStats::default(),
            matches: None,
        };
        let prefetch = self.config.prefetch_frontier && self.config.cache_capacity_bytes > 0;
        while !self.errors.aborted() {
            let Some(task) = self.scheduler.next(self.id) else {
                break;
            };
            if prefetch {
                source.prefetch_frontier(task.start);
            }
            let t0 = Instant::now();
            let run = catch_unwind(AssertUnwindSafe(|| {
                let consumer: &mut dyn MatchConsumer = if collect {
                    &mut collecting
                } else {
                    &mut counting
                };
                engine.run_task(task, consumer)
            }));
            match run {
                Ok(metrics) => {
                    result.metrics += metrics;
                    result.executed += 1;
                }
                Err(_) => {
                    let err = WorkerError::TaskPanicked {
                        worker: self.id,
                        start: task.start,
                    };
                    self.errors.record(err.clone());
                    return Err(err);
                }
            }
            let dt = t0.elapsed();
            result.busy += dt;
            if self.config.collect_task_times {
                result.task_times.push(dt);
            }
        }
        result.tri_stats = engine.triangle_cache_stats();
        if collect {
            result.matches = Some(collecting.into_matches());
        }
        // Another thread may have failed while this one drained cleanly:
        // surface that error so the run aborts deterministically.
        match self.errors.first() {
            Some(err) => Err(err),
            None => Ok(result),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benu_graph::gen;
    use benu_kvstore::KvStore;

    fn harness(shards: usize) -> (Transport, DbCache, ErrorSlot) {
        let g = gen::complete(5);
        (
            Transport::new(Arc::new(KvStore::from_graph(&g, shards))),
            DbCache::new(1 << 16, 2),
            ErrorSlot::new(),
        )
    }

    #[test]
    fn missing_vertex_records_error_and_returns_empty_set() {
        let (transport, cache, errors) = harness(2);
        let source = WorkerSource {
            worker: 3,
            transport: &transport,
            cache: &cache,
            errors: &errors,
        };
        let adj = source.get_adj(99);
        assert!(adj.is_empty());
        assert!(errors.aborted());
        assert_eq!(
            errors.first(),
            Some(WorkerError::MissingVertex {
                worker: 3,
                vertex: 99
            })
        );
    }

    #[test]
    fn error_slot_keeps_the_first_error() {
        let slot = ErrorSlot::new();
        assert!(!slot.aborted());
        slot.record(WorkerError::ThreadPanicked { worker: 1 });
        slot.record(WorkerError::ThreadPanicked { worker: 2 });
        assert_eq!(
            slot.first(),
            Some(WorkerError::ThreadPanicked { worker: 1 })
        );
    }

    #[test]
    fn batch_lookup_serves_cache_hits_without_round_trips() {
        let (transport, cache, errors) = harness(2);
        let source = WorkerSource {
            worker: 0,
            transport: &transport,
            cache: &cache,
            errors: &errors,
        };
        source.get_adj(0);
        let before = transport.requests();
        let sets = source.get_adj_batch(&[0, 1, 2]);
        assert_eq!(sets.len(), 3);
        assert_eq!(sets[0].len(), 4);
        // Vertex 0 was cached; 1 and 2 arrive via one batched trip each
        // shard (1 on shard 1, 2 on shard 0 → 2 round trips).
        assert_eq!(transport.requests() - before, 2);
        assert_eq!(transport.batch_round_trips(), 2);
    }

    #[test]
    fn prefetch_warms_the_cache_in_one_batched_trip() {
        let (transport, cache, errors) = harness(1);
        let source = WorkerSource {
            worker: 0,
            transport: &transport,
            cache: &cache,
            errors: &errors,
        };
        source.prefetch_frontier(0);
        // Start vertex + its 4 neighbours are now cached.
        for v in 0..5 {
            assert!(cache.contains(v));
        }
        // 1 single fetch for the start + 1 batched trip (single shard).
        assert_eq!(transport.requests(), 2);
        assert_eq!(transport.batch_round_trips(), 1);
        // Re-prefetching is free.
        source.prefetch_frontier(0);
        assert_eq!(transport.requests(), 2);
        assert!(!errors.aborted());
    }

    #[test]
    fn worker_error_displays_context() {
        let e = WorkerError::MissingVertex {
            worker: 2,
            vertex: 7,
        };
        assert_eq!(e.to_string(), "worker 2: vertex 7 missing from the store");
        let e = WorkerError::TaskPanicked {
            worker: 0,
            start: 3,
        };
        assert!(e.to_string().contains("task starting at vertex 3"));
    }
}
