//! The worker thread body.
//!
//! Each simulated worker machine runs `threads_per_worker` OS threads,
//! all executing [`Worker::run_thread`]: pull a task from the scheduler,
//! optionally prefetch its frontier in one batched round trip, run it on
//! a thread-local engine, accumulate metrics. Failures are structured —
//! a vertex missing from the store, a store shard that outlasts the
//! retry policy, or a panicking task aborts the whole run with a
//! [`WorkerError`] carrying the task, shard and attempt context instead
//! of poisoning a thread join. Injected worker crashes are *not* errors:
//! the thread books them with the run's `RecoveryCtx` and stops, and
//! the runtime re-executes the lost tasks in a recovery pass.

use crate::config::{ClusterConfig, ExecMode};
use crate::recovery::{RecoveryCtx, TaskFate};
use crate::schedule::Scheduler;
use crate::transport::{FetchError, Transport, TransportError};
use benu_cache::DbCache;
use benu_engine::{
    CollectingConsumer, CompiledPlan, CountingConsumer, DataSource, FrontierEngine, FrontierStats,
    LocalEngine, MatchConsumer, MemoryBudget, PoolStats, SearchTask, TaskMetrics,
};
use benu_graph::{AdjSet, TotalOrder, VertexId};
use benu_kvstore::CorruptValue;
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Renders the task context of an error: `task v3`, `task v3[2/5]`, or
/// `no task` for failures outside task execution.
struct TaskLabel(Option<SearchTask>);

impl std::fmt::Display for TaskLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0 {
            Some(t) => {
                write!(f, "task v{}", t.start)?;
                if let Some(split) = t.split {
                    write!(f, "[{}/{}]", split.index + 1, split.total)?;
                }
                Ok(())
            }
            None => f.write_str("no task"),
        }
    }
}

/// Why a cluster run aborted. Every variant names the worker; task-level
/// failures additionally carry the task being executed, the shard
/// involved and the execution attempt (1 = first pass, +1 per recovery
/// pass), so a one-line log message localises the failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkerError {
    /// A task queried a vertex the store does not hold — the data graph
    /// and the task list disagree (corrupted load or bad task input).
    MissingVertex {
        /// The worker that issued the query.
        worker: usize,
        /// The unknown vertex.
        vertex: VertexId,
        /// The shard that would own the vertex.
        shard: usize,
        /// The task being executed, if the failure happened inside one.
        task: Option<SearchTask>,
        /// The execution attempt (1-based; >1 means a recovery pass).
        attempt: u32,
    },
    /// A store request failed past every recovery the configuration
    /// offers: transient faults outlasted the retry policy, or a
    /// persistent shard outage darkened *every* replica of a placement
    /// group. With `replication >= 2` a whole-shard outage is absorbed
    /// by ring failover and never reaches this error — only total data
    /// loss (all `R` copies dark) aborts the run.
    StoreUnavailable {
        /// The worker that gave up.
        worker: usize,
        /// The exhausted request.
        error: TransportError,
        /// The task being executed, if the failure happened inside one.
        task: Option<SearchTask>,
        /// The execution attempt (1-based).
        attempt: u32,
    },
    /// A stored adjacency value failed to decode — the shard's data is
    /// rotten. Every replica mirrors the same bytes, so neither retries
    /// nor ring failover can recover; the run aborts like any other
    /// unrecoverable store fault, with the codec error as context.
    CorruptValue {
        /// The worker whose fetch hit the rotten value.
        worker: usize,
        /// The decode failure, naming vertex, shard and codec error.
        error: CorruptValue,
        /// The task being executed, if the failure happened inside one.
        task: Option<SearchTask>,
        /// The execution attempt (1-based).
        attempt: u32,
    },
    /// A task panicked inside the engine.
    TaskPanicked {
        /// The worker executing the task.
        worker: usize,
        /// The panicking task.
        task: SearchTask,
        /// The execution attempt (1-based).
        attempt: u32,
    },
    /// A worker thread died outside of task execution.
    ThreadPanicked {
        /// The worker whose thread died.
        worker: usize,
    },
    /// Every worker crashed with work still queued — nothing is left to
    /// run the recovery pass on.
    ClusterLost {
        /// Tasks that were awaiting re-execution.
        outstanding: usize,
    },
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::MissingVertex {
                worker,
                vertex,
                shard,
                task,
                attempt,
            } => {
                write!(
                    f,
                    "worker {worker}: vertex {vertex} missing from the store \
                     (shard {shard}, {}, attempt {attempt})",
                    TaskLabel(*task)
                )
            }
            WorkerError::StoreUnavailable {
                worker,
                error,
                task,
                attempt,
            } => {
                write!(
                    f,
                    "worker {worker}: {error} ({}, attempt {attempt})",
                    TaskLabel(*task)
                )
            }
            WorkerError::CorruptValue {
                worker,
                error,
                task,
                attempt,
            } => {
                write!(
                    f,
                    "worker {worker}: {error} ({}, attempt {attempt})",
                    TaskLabel(*task)
                )
            }
            WorkerError::TaskPanicked {
                worker,
                task,
                attempt,
            } => {
                write!(
                    f,
                    "worker {worker}: {} panicked (attempt {attempt})",
                    TaskLabel(Some(*task))
                )
            }
            WorkerError::ThreadPanicked { worker } => {
                write!(f, "worker {worker}: thread panicked outside task execution")
            }
            WorkerError::ClusterLost { outstanding } => {
                write!(
                    f,
                    "every worker crashed with {outstanding} tasks outstanding"
                )
            }
        }
    }
}

impl std::error::Error for WorkerError {}

/// First-error slot shared by every thread of a run. Recording an error
/// raises the abort flag; threads poll it between tasks and bail out, so
/// one failure drains the whole cluster quickly but cleanly.
pub(crate) struct ErrorSlot {
    error: Mutex<Option<WorkerError>>,
    abort: AtomicBool,
}

impl ErrorSlot {
    pub(crate) fn new() -> Self {
        ErrorSlot {
            error: Mutex::new(None),
            abort: AtomicBool::new(false),
        }
    }

    /// Records `err` if it is the first, and raises the abort flag.
    pub(crate) fn record(&self, err: WorkerError) {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(err);
        }
        self.abort.store(true, Ordering::Release);
    }

    /// True once any thread has failed.
    pub(crate) fn aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    /// The first recorded error, if any.
    pub(crate) fn first(&self) -> Option<WorkerError> {
        self.error.lock().clone()
    }
}

/// How a cache fill through the transport can fail.
enum FetchFail {
    /// The vertex genuinely does not exist (permanent).
    Missing,
    /// The shard's injected faults outlasted the retry policy.
    Unavailable(TransportError),
    /// The stored value failed to decode (permanent).
    Corrupt(CorruptValue),
}

/// The engine's view of the data graph from inside one worker: database
/// cache in front of the worker's [`Transport`]. Failures cannot surface
/// through the infallible [`DataSource`] signature, so they are recorded
/// in the [`ErrorSlot`] — with the current task, shard and attempt as
/// context — and answered with an empty adjacency set; the run aborts
/// before the bogus empty result can be observed as a match count.
pub(crate) struct WorkerSource<'a> {
    worker: usize,
    transport: &'a Transport,
    cache: &'a DbCache,
    errors: &'a ErrorSlot,
    attempt: u32,
    current: Mutex<Option<SearchTask>>,
}

impl<'a> WorkerSource<'a> {
    pub(crate) fn new(
        worker: usize,
        transport: &'a Transport,
        cache: &'a DbCache,
        errors: &'a ErrorSlot,
        attempt: u32,
    ) -> Self {
        WorkerSource {
            worker,
            transport,
            cache,
            errors,
            attempt,
            current: Mutex::new(None),
        }
    }

    /// Sets the task whose fetches are in flight (error context).
    pub(crate) fn set_current(&self, task: Option<SearchTask>) {
        *self.current.lock() = task;
    }

    fn missing(&self, vertex: VertexId) -> Arc<AdjSet> {
        self.errors.record(WorkerError::MissingVertex {
            worker: self.worker,
            vertex,
            shard: self.transport.store().shard_of(vertex),
            task: *self.current.lock(),
            attempt: self.attempt,
        });
        Arc::new(AdjSet::new())
    }

    fn unavailable(&self, error: TransportError) -> Arc<AdjSet> {
        self.errors.record(WorkerError::StoreUnavailable {
            worker: self.worker,
            error,
            task: *self.current.lock(),
            attempt: self.attempt,
        });
        Arc::new(AdjSet::new())
    }

    fn corrupt(&self, error: CorruptValue) -> Arc<AdjSet> {
        self.errors.record(WorkerError::CorruptValue {
            worker: self.worker,
            error,
            task: *self.current.lock(),
            attempt: self.attempt,
        });
        Arc::new(AdjSet::new())
    }

    /// Records the matching [`WorkerError`] for a failed fetch and
    /// degrades to an empty set (the run aborts before the empty result
    /// can be observed).
    fn fetch_failed(&self, error: FetchError) -> Arc<AdjSet> {
        match error {
            FetchError::Unavailable(err) => self.unavailable(err),
            FetchError::Corrupt(err) => self.corrupt(err),
        }
    }

    /// Warms the cache for a task starting at `start`: fetches the start
    /// vertex, then pulls all its uncached neighbours in one batched
    /// round trip. Prefetched entries enter the cache without counting a
    /// miss (their later lookups count as hits); the byte accounting is
    /// exact either way. May fetch neighbours the task never expands —
    /// prefetching trades bytes for round trips.
    pub(crate) fn prefetch_frontier(&self, start: VertexId) {
        let adj = self.get_adj(start);
        let missing: Vec<VertexId> = adj
            .iter()
            .copied()
            .filter(|&w| !self.cache.contains(w))
            .collect();
        if missing.is_empty() {
            return;
        }
        match self.transport.fetch_many(&missing) {
            Ok(values) => {
                for (i, value) in values.into_iter().enumerate() {
                    match value {
                        Some(adj) => self.cache.insert(missing[i], adj),
                        None => {
                            self.missing(missing[i]);
                        }
                    }
                }
            }
            Err(error) => {
                self.fetch_failed(error);
            }
        }
    }
}

impl DataSource for WorkerSource<'_> {
    fn num_vertices(&self) -> usize {
        self.transport.store().num_vertices()
    }

    fn get_adj(&self, v: VertexId) -> Arc<AdjSet> {
        let fetch = self
            .cache
            .get_or_fetch(v, || match self.transport.fetch(v) {
                Ok(Some(adj)) => Ok(adj),
                Ok(None) => Err(FetchFail::Missing),
                Err(FetchError::Unavailable(error)) => Err(FetchFail::Unavailable(error)),
                Err(FetchError::Corrupt(error)) => Err(FetchFail::Corrupt(error)),
            });
        match fetch {
            Ok(adj) => adj,
            Err(FetchFail::Missing) => self.missing(v),
            Err(FetchFail::Unavailable(error)) => self.unavailable(error),
            Err(FetchFail::Corrupt(error)) => self.corrupt(error),
        }
    }

    fn get_adj_batch(&self, vs: &[VertexId]) -> Vec<Arc<AdjSet>> {
        let mut out: Vec<Option<Arc<AdjSet>>> = vec![None; vs.len()];
        let mut missing_slots = Vec::new();
        let mut missing_keys = Vec::new();
        for (i, &v) in vs.iter().enumerate() {
            match self.cache.get(v) {
                Some(adj) => out[i] = Some(adj),
                None => {
                    missing_slots.push(i);
                    missing_keys.push(v);
                }
            }
        }
        if !missing_keys.is_empty() {
            match self.transport.fetch_many(&missing_keys) {
                Ok(values) => {
                    for (j, value) in values.into_iter().enumerate() {
                        out[missing_slots[j]] = Some(match value {
                            Some(adj) => {
                                self.cache.insert(missing_keys[j], Arc::clone(&adj));
                                adj
                            }
                            None => self.missing(missing_keys[j]),
                        });
                    }
                }
                Err(error) => {
                    let empty = self.fetch_failed(error);
                    for &slot in &missing_slots {
                        out[slot] = Some(Arc::clone(&empty));
                    }
                }
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every slot filled"))
            .collect()
    }
}

/// What one thread accumulated over its share of the run.
pub struct ThreadResult {
    pub(crate) metrics: TaskMetrics,
    pub(crate) busy: Duration,
    pub(crate) executed: usize,
    pub(crate) task_times: Vec<Duration>,
    /// Per-task durations with task identity; only recorded when
    /// straggler speculation is configured.
    pub(crate) timed_tasks: Vec<(SearchTask, Duration)>,
    /// Per-task deterministic costs (vticks) with task identity; only
    /// recorded when the cost profile is being collected, and only under
    /// DFS execution (the hybrid engine reports batch-level metrics).
    pub(crate) task_costs: Vec<(SearchTask, u64)>,
    pub(crate) tri_stats: benu_cache::CacheStats,
    pub(crate) pool: PoolStats,
    pub(crate) frontier: FrontierStats,
    pub(crate) matches: Option<Vec<Vec<VertexId>>>,
}

impl ThreadResult {
    fn empty() -> Self {
        ThreadResult {
            metrics: TaskMetrics::default(),
            busy: Duration::ZERO,
            executed: 0,
            task_times: Vec::new(),
            timed_tasks: Vec::new(),
            task_costs: Vec::new(),
            tri_stats: benu_cache::CacheStats::default(),
            pool: PoolStats::default(),
            frontier: FrontierStats::default(),
            matches: None,
        }
    }
}

/// Tasks pulled per hybrid batch: enough siblings to share hub fetches,
/// small enough that a crash loses little booked work.
const FRONTIER_TASK_BATCH: usize = 64;

/// One worker machine's execution context, shared by its threads.
pub struct Worker<'a> {
    pub(crate) id: usize,
    pub(crate) scheduler: &'a dyn Scheduler,
    pub(crate) transport: &'a Transport,
    pub(crate) cache: &'a DbCache,
    pub(crate) order: &'a TotalOrder,
    pub(crate) compiled: &'a CompiledPlan,
    pub(crate) config: &'a ClusterConfig,
    pub(crate) errors: &'a ErrorSlot,
    /// Crash bookkeeping; `None` when no fault plan is installed.
    pub(crate) recovery: Option<&'a RecoveryCtx>,
    /// Execution attempt this pass runs as (1 = first pass).
    pub(crate) attempt: u32,
}

impl Worker<'_> {
    /// The thread body: pulls tasks from the scheduler until exhaustion,
    /// abort, or an injected crash of this worker. `collect` switches
    /// from counting to materialising matches. Task durations include
    /// the virtual latency (retry backoff, slow shards) their store
    /// traffic was charged.
    pub fn run_thread(&self, collect: bool) -> Result<ThreadResult, WorkerError> {
        match self.config.exec_mode {
            ExecMode::Dfs => self.run_thread_dfs(collect),
            ExecMode::Hybrid => self.run_thread_hybrid(collect),
        }
    }

    /// Classic task-at-a-time DFS (the paper's execution model).
    fn run_thread_dfs(&self, collect: bool) -> Result<ThreadResult, WorkerError> {
        let source = WorkerSource::new(
            self.id,
            self.transport,
            self.cache,
            self.errors,
            self.attempt,
        );
        let mut engine = LocalEngine::with_triangle_cache(
            self.compiled,
            &source,
            self.order,
            self.config.triangle_cache_entries,
        )
        .with_pooling(self.config.pooled_buffers);
        let mut counting = CountingConsumer::default();
        let mut collecting = CollectingConsumer::default();
        let mut result = ThreadResult::empty();
        let prefetch = self.config.prefetch_frontier && self.config.cache_capacity_bytes > 0;
        let record_timed = self.config.speculate_quantile.is_some();
        let _ = Transport::take_task_penalty();
        while !self.errors.aborted() {
            if self.recovery.is_some_and(|rc| rc.is_dead(self.id)) {
                break;
            }
            let Some(task) = self.scheduler.next(self.id) else {
                break;
            };
            source.set_current(Some(task));
            if prefetch {
                source.prefetch_frontier(task.start);
            }
            let t0 = Instant::now();
            let run = catch_unwind(AssertUnwindSafe(|| {
                let consumer: &mut dyn MatchConsumer = if collect {
                    &mut collecting
                } else {
                    &mut counting
                };
                engine.run_task(task, consumer)
            }));
            let dt = t0.elapsed() + Transport::take_task_penalty();
            match run {
                Ok(metrics) => {
                    result.metrics += metrics;
                    result.executed += 1;
                    if self.config.collect_cost_profile {
                        result
                            .task_costs
                            .push((task, crate::balance::vticks(&metrics)));
                    }
                }
                Err(_) => {
                    let err = WorkerError::TaskPanicked {
                        worker: self.id,
                        task,
                        attempt: self.attempt,
                    };
                    self.errors.record(err.clone());
                    return Err(err);
                }
            }
            result.busy += dt;
            if self.config.collect_task_times {
                result.task_times.push(dt);
            }
            if record_timed {
                result.timed_tasks.push((task, dt));
            }
            if let Some(rc) = self.recovery {
                match rc.task_done(self.id, task) {
                    TaskFate::Counted => {}
                    TaskFate::Crashed => {
                        // The machine dies at this task boundary: its
                        // queue goes down with it.
                        rc.requeue_all(self.scheduler.drain(self.id));
                        break;
                    }
                    TaskFate::Lost => break,
                }
            }
        }
        source.set_current(None);
        result.tri_stats = engine.triangle_cache_stats();
        result.pool = engine.pool_stats();
        if collect {
            result.matches = Some(collecting.into_matches());
        }
        // Another thread may have failed while this one drained cleanly:
        // surface that error so the run aborts deterministically.
        match self.errors.first() {
            Some(err) => Err(err),
            None => Ok(result),
        }
    }

    /// Memory-bounded BFS/DFS hybrid: pulls tasks in batches and expands
    /// them level-synchronously through a [`FrontierEngine`], so sibling
    /// tasks share one deduplicated batched store read per expansion
    /// level. The per-worker byte budget is split evenly across the
    /// worker's threads; exceeding it makes the frontier spill back to
    /// DFS at the current batch, which always runs to completion — crash
    /// recovery requeues whole tasks, and spills land on task boundaries.
    fn run_thread_hybrid(&self, collect: bool) -> Result<ThreadResult, WorkerError> {
        let source = WorkerSource::new(
            self.id,
            self.transport,
            self.cache,
            self.errors,
            self.attempt,
        );
        let engine = LocalEngine::with_triangle_cache(
            self.compiled,
            &source,
            self.order,
            self.config.triangle_cache_entries,
        )
        .with_pooling(self.config.pooled_buffers);
        let per_thread = self.config.memory_budget_bytes / self.config.threads_per_worker.max(1);
        let mut fe = FrontierEngine::new(engine, MemoryBudget::bytes(per_thread));
        let mut counting = CountingConsumer::default();
        let mut collecting = CollectingConsumer::default();
        let mut result = ThreadResult::empty();
        let record_timed = self.config.speculate_quantile.is_some();
        let _ = Transport::take_task_penalty();
        'batches: while !self.errors.aborted() {
            if self.recovery.is_some_and(|rc| rc.is_dead(self.id)) {
                break;
            }
            let mut batch = Vec::new();
            while batch.len() < FRONTIER_TASK_BATCH {
                match self.scheduler.next(self.id) {
                    Some(task) => batch.push(task),
                    None => break,
                }
            }
            if batch.is_empty() {
                break;
            }
            // Error context names the batch head; the batch shares its
            // store traffic, so a finer attribution does not exist.
            source.set_current(Some(batch[0]));
            let t0 = Instant::now();
            let run = catch_unwind(AssertUnwindSafe(|| {
                let consumer: &mut dyn MatchConsumer = if collect {
                    &mut collecting
                } else {
                    &mut counting
                };
                fe.run_batch(&batch, consumer)
            }));
            let dt = t0.elapsed() + Transport::take_task_penalty();
            match run {
                Ok(metrics) => {
                    result.metrics += metrics;
                    result.executed += batch.len();
                }
                Err(_) => {
                    let err = WorkerError::TaskPanicked {
                        worker: self.id,
                        task: batch[0],
                        attempt: self.attempt,
                    };
                    self.errors.record(err.clone());
                    return Err(err);
                }
            }
            result.busy += dt;
            let share = dt / batch.len() as u32;
            if self.config.collect_task_times {
                result.task_times.extend(batch.iter().map(|_| share));
            }
            if record_timed {
                result.timed_tasks.extend(batch.iter().map(|&t| (t, share)));
            }
            if let Some(rc) = self.recovery {
                // Book the whole completed batch in pull order. A crash
                // boundary inside it kills the machine: `task_done`
                // requeues everything booked so far, and the rest of the
                // batch — executed but never booked — must be requeued
                // here (the dead worker's results are discarded
                // wholesale, so nothing double-counts).
                for (i, &task) in batch.iter().enumerate() {
                    match rc.task_done(self.id, task) {
                        TaskFate::Counted => {}
                        TaskFate::Crashed => {
                            rc.requeue_all(batch[i + 1..].to_vec());
                            rc.requeue_all(self.scheduler.drain(self.id));
                            break 'batches;
                        }
                        TaskFate::Lost => {
                            rc.requeue_all(batch[i + 1..].to_vec());
                            break 'batches;
                        }
                    }
                }
            }
        }
        source.set_current(None);
        result.tri_stats = fe.triangle_cache_stats();
        result.pool = fe.pool_stats();
        result.frontier = fe.stats();
        if collect {
            result.matches = Some(collecting.into_matches());
        }
        match self.errors.first() {
            Some(err) => Err(err),
            None => Ok(result),
        }
    }

    /// Executes one task speculatively: same engine, throwaway consumer,
    /// result discarded. Returns the attempt's duration (wall time plus
    /// charged virtual latency), or `None` if the attempt panicked. The
    /// caller provides a throwaway [`ErrorSlot`], so speculative store
    /// failures never poison the completed run.
    pub(crate) fn run_speculative(&self, task: SearchTask) -> Option<Duration> {
        let source = WorkerSource::new(
            self.id,
            self.transport,
            self.cache,
            self.errors,
            self.attempt,
        );
        source.set_current(Some(task));
        let mut engine = LocalEngine::with_triangle_cache(
            self.compiled,
            &source,
            self.order,
            self.config.triangle_cache_entries,
        )
        .with_pooling(self.config.pooled_buffers);
        let mut consumer = CountingConsumer::default();
        let _ = Transport::take_task_penalty();
        let t0 = Instant::now();
        let run = catch_unwind(AssertUnwindSafe(|| engine.run_task(task, &mut consumer)));
        let dt = t0.elapsed() + Transport::take_task_penalty();
        run.ok().map(|_| dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benu_engine::SplitSpec;
    use benu_graph::gen;
    use benu_kvstore::KvStore;

    fn harness(shards: usize) -> (Transport, DbCache, ErrorSlot) {
        let g = gen::complete(5);
        (
            Transport::new(Arc::new(KvStore::from_graph(&g, shards))),
            DbCache::new(1 << 16, 2),
            ErrorSlot::new(),
        )
    }

    #[test]
    fn missing_vertex_records_error_and_returns_empty_set() {
        let (transport, cache, errors) = harness(2);
        let source = WorkerSource::new(3, &transport, &cache, &errors, 1);
        let adj = source.get_adj(99);
        assert!(adj.is_empty());
        assert!(errors.aborted());
        assert_eq!(
            errors.first(),
            Some(WorkerError::MissingVertex {
                worker: 3,
                vertex: 99,
                shard: 1,
                task: None,
                attempt: 1,
            })
        );
    }

    #[test]
    fn errors_carry_the_current_task_context() {
        let (transport, cache, errors) = harness(2);
        let source = WorkerSource::new(0, &transport, &cache, &errors, 2);
        let task = SearchTask {
            start: 3,
            split: Some(SplitSpec { index: 1, total: 5 }),
        };
        source.set_current(Some(task));
        source.get_adj(42);
        match errors.first() {
            Some(WorkerError::MissingVertex {
                task: t, attempt, ..
            }) => {
                assert_eq!(t, Some(task));
                assert_eq!(attempt, 2);
            }
            other => panic!("expected MissingVertex, got {other:?}"),
        }
    }

    #[test]
    fn error_slot_keeps_the_first_error() {
        let slot = ErrorSlot::new();
        assert!(!slot.aborted());
        slot.record(WorkerError::ThreadPanicked { worker: 1 });
        slot.record(WorkerError::ThreadPanicked { worker: 2 });
        assert_eq!(
            slot.first(),
            Some(WorkerError::ThreadPanicked { worker: 1 })
        );
    }

    #[test]
    fn batch_lookup_serves_cache_hits_without_round_trips() {
        let (transport, cache, errors) = harness(2);
        let source = WorkerSource::new(0, &transport, &cache, &errors, 1);
        source.get_adj(0);
        let before = transport.requests();
        let sets = source.get_adj_batch(&[0, 1, 2]);
        assert_eq!(sets.len(), 3);
        assert_eq!(sets[0].len(), 4);
        // Vertex 0 was cached; 1 and 2 arrive via one batched trip each
        // shard (1 on shard 1, 2 on shard 0 → 2 round trips).
        assert_eq!(transport.requests() - before, 2);
        assert_eq!(transport.batch_round_trips(), 2);
    }

    #[test]
    fn prefetch_warms_the_cache_in_one_batched_trip() {
        let (transport, cache, errors) = harness(1);
        let source = WorkerSource::new(0, &transport, &cache, &errors, 1);
        source.prefetch_frontier(0);
        // Start vertex + its 4 neighbours are now cached.
        for v in 0..5 {
            assert!(cache.contains(v));
        }
        // 1 single fetch for the start + 1 batched trip (single shard).
        assert_eq!(transport.requests(), 2);
        assert_eq!(transport.batch_round_trips(), 1);
        // Re-prefetching is free.
        source.prefetch_frontier(0);
        assert_eq!(transport.requests(), 2);
        assert!(!errors.aborted());
    }

    #[test]
    fn exhausted_store_records_unavailable_with_context() {
        use benu_fault::{FaultPlan, RetryPolicy};
        let g = gen::complete(5);
        let transport = Transport::with_faults(
            Arc::new(KvStore::from_graph(&g, 1)),
            Arc::new(FaultPlan::builder(0).transient_rate(0.995).build()),
            RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            },
        );
        let cache = DbCache::new(0, 2);
        let errors = ErrorSlot::new();
        let source = WorkerSource::new(1, &transport, &cache, &errors, 1);
        source.set_current(Some(SearchTask::whole(4)));
        for v in 0..5 {
            source.get_adj(v);
        }
        assert!(errors.aborted(), "rate 0.995 with 2 attempts must exhaust");
        match errors.first() {
            Some(WorkerError::StoreUnavailable {
                worker,
                error,
                task,
                ..
            }) => {
                assert_eq!(worker, 1);
                assert_eq!(error.attempts, 2);
                assert_eq!(task, Some(SearchTask::whole(4)));
            }
            other => panic!("expected StoreUnavailable, got {other:?}"),
        }
        let _ = Transport::take_task_penalty();
    }

    #[test]
    fn worker_error_displays_context() {
        let e = WorkerError::MissingVertex {
            worker: 2,
            vertex: 7,
            shard: 1,
            task: Some(SearchTask::whole(7)),
            attempt: 1,
        };
        assert_eq!(
            e.to_string(),
            "worker 2: vertex 7 missing from the store (shard 1, task v7, attempt 1)"
        );
        let e = WorkerError::TaskPanicked {
            worker: 0,
            task: SearchTask {
                start: 3,
                split: Some(SplitSpec { index: 1, total: 5 }),
            },
            attempt: 2,
        };
        assert_eq!(e.to_string(), "worker 0: task v3[2/5] panicked (attempt 2)");
        let e = WorkerError::StoreUnavailable {
            worker: 4,
            error: TransportError {
                shard: 3,
                vertex: 9,
                attempts: 8,
            },
            task: None,
            attempt: 1,
        };
        assert_eq!(
            e.to_string(),
            "worker 4: shard 3 unavailable for vertex 9 after 8 attempts (no task, attempt 1)"
        );
        let e = WorkerError::CorruptValue {
            worker: 1,
            error: CorruptValue {
                vertex: 5,
                shard: 2,
                error: benu_kvstore::CodecError::Truncated,
            },
            task: Some(SearchTask::whole(5)),
            attempt: 1,
        };
        assert_eq!(
            e.to_string(),
            "worker 1: corrupt value for vertex 5 on shard 2: truncated payload \
             (task v5, attempt 1)"
        );
        let e = WorkerError::ClusterLost { outstanding: 12 };
        assert_eq!(
            e.to_string(),
            "every worker crashed with 12 tasks outstanding"
        );
    }

    #[test]
    fn corrupt_value_records_structured_error_and_degrades() {
        let g = gen::complete(5);
        let mut store = KvStore::from_graph(&g, 2);
        assert!(store.corrupt_value(2));
        let transport = Transport::new(Arc::new(store));
        let cache = DbCache::new(1 << 16, 2);
        let errors = ErrorSlot::new();
        let source = WorkerSource::new(4, &transport, &cache, &errors, 1);
        source.set_current(Some(SearchTask::whole(2)));
        let adj = source.get_adj(2);
        assert!(adj.is_empty(), "corrupt fetch degrades to an empty set");
        assert!(errors.aborted());
        match errors.first() {
            Some(WorkerError::CorruptValue {
                worker,
                error,
                task,
                attempt,
            }) => {
                assert_eq!(worker, 4);
                assert_eq!(error.vertex, 2);
                assert_eq!(task, Some(SearchTask::whole(2)));
                assert_eq!(attempt, 1);
            }
            other => panic!("expected CorruptValue, got {other:?}"),
        }
    }
}
