//! Run reports: the measurements the paper's evaluation plots.
//!
//! [`RunOutcome`] is the typed view a program inspects; its
//! [`RunOutcome::report`] renders the same measurements as one unified
//! [`Report`] tree — the single serialisation surface every bench bin
//! emits (`benu-bench` encodes it canonically as JSON). A
//! [`ReportMode::Deterministic`] report drops every wall-clock-derived
//! field, leaving exactly the values that are byte-identical across two
//! executions of the same seeded run.

use crate::balance::{self, CostProfile};
use crate::config::ExecMode;
use crate::schedule::SchedulerKind;
use benu_cache::CacheStats;
use benu_engine::{FrontierStats, PoolStats, TaskMetrics};
use benu_kvstore::KvStats;
use benu_obs::{safe_ratio, Report, ReportMode, Value};
use std::time::Duration;

/// What one logical worker machine did during a run.
#[derive(Clone, Debug, Default)]
pub struct WorkerReport {
    /// Worker index.
    pub worker: usize,
    /// Number of (sub)tasks initially assigned to this worker by the
    /// round-robin shuffle.
    pub tasks: usize,
    /// Number of (sub)tasks this worker actually executed. Equal to
    /// `tasks` under the static scheduler; under work stealing the
    /// difference is migration.
    pub tasks_executed: usize,
    /// Tasks this worker stole from other workers' queues (zero under
    /// the static scheduler).
    pub steals: u64,
    /// Batched multi-get round trips this worker issued (a subset of
    /// `comm_requests`).
    pub batch_round_trips: u64,
    /// Aggregated engine metrics.
    pub metrics: TaskMetrics,
    /// Sum of task durations across the worker's threads — the "reducer
    /// load" of Fig. 9b.
    pub busy_time: Duration,
    /// Per-thread busy times; the maximum across the cluster is the
    /// simulated makespan on dedicated machines.
    pub thread_busy: Vec<Duration>,
    /// Bytes fetched from the distributed store by this worker (cache
    /// misses only) — the per-worker communication cost.
    pub comm_bytes: u64,
    /// Store requests issued by this worker.
    pub comm_requests: u64,
    /// Database-cache statistics of this worker.
    pub cache: CacheStats,
    /// Aggregated triangle-cache statistics of the worker's threads.
    pub triangle_cache: CacheStats,
    /// Aggregated execution-buffer-pool counters of the worker's threads.
    pub pool: PoolStats,
    /// Aggregated hybrid-frontier counters of the worker's threads (all
    /// zeros under DFS execution).
    pub frontier: FrontierStats,
}

/// What the fault-recovery machinery did during a run. All zeros for a
/// run without an installed fault plan. Whenever `Cluster::run` returns
/// `Ok`, every injected fault was survived: transients and timeouts were
/// retried to success, crashes were absorbed by requeueing — so
/// "survived" equals [`RecoveryReport::faults_injected`] by construction,
/// and the match counts are byte-identical to a fault-free run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Injected transient store errors.
    pub transient_faults: u64,
    /// Injected store timeouts.
    pub timeouts: u64,
    /// Retries issued by the transports (each fault survived costs
    /// attempts − 1 of these).
    pub retries: u64,
    /// Worker machines that crashed at a task boundary.
    pub worker_crashes: u64,
    /// Tasks whose results died with a worker and were re-executed.
    pub tasks_requeued: u64,
    /// Extra scheduler passes run to re-execute requeued tasks.
    pub recovery_passes: u64,
    /// Straggler tasks speculatively re-executed.
    pub speculative_launches: u64,
    /// Speculative attempts that beat the original duration.
    pub speculative_wins: u64,
    /// Times a store read stepped past a dead or faulted replica to try
    /// the next one in ring order (failover happens *before* any retry
    /// budget is spent).
    pub failovers: u64,
    /// Round trips served by a non-primary replica — the reads that a
    /// single-copy store would have lost to an outage.
    pub failover_reads: u64,
    /// Distinct shards the fault plan held in outage during the run.
    pub shard_outages: u64,
    /// Total virtual retry backoff charged into busy time (never slept).
    pub backoff_virtual: Duration,
    /// Total virtual timeout wait charged into busy time — every
    /// injected timeout blocks (virtually) for the fault plan's full
    /// timeout before its loss is detected, so timeouts cost latency
    /// where transients fail instantly.
    pub timeout_wait_virtual: Duration,
    /// Total virtual slow-shard latency charged into busy time.
    pub slow_penalty_virtual: Duration,
}

/// Renders [`CacheStats`] as a report subtree with its
/// [`CacheStats::hit_rate`] derived, not hand-plumbed.
fn cache_report(stats: &CacheStats) -> Report {
    let mut r = Report::new();
    r.set("hits", stats.hits);
    r.set("misses", stats.misses);
    r.set("evictions", stats.evictions);
    r.set("hit_rate", stats.hit_rate());
    r
}

impl RecoveryReport {
    /// This report as a unified subtree. Everything here — including the
    /// *virtual* durations, which are deterministic functions of the
    /// fault seed — survives [`ReportMode::Deterministic`].
    pub fn report(&self) -> Report {
        let mut r = Report::new();
        r.set("transient_faults", self.transient_faults);
        r.set("timeouts", self.timeouts);
        r.set("retries", self.retries);
        r.set("worker_crashes", self.worker_crashes);
        r.set("tasks_requeued", self.tasks_requeued);
        r.set("recovery_passes", self.recovery_passes);
        r.set("speculative_launches", self.speculative_launches);
        r.set("speculative_wins", self.speculative_wins);
        r.set("failovers", self.failovers);
        r.set("failover_reads", self.failover_reads);
        r.set("shard_outages", self.shard_outages);
        r.set(
            "backoff_virtual_nanos",
            self.backoff_virtual.as_nanos() as u64,
        );
        r.set(
            "timeout_wait_virtual_nanos",
            self.timeout_wait_virtual.as_nanos() as u64,
        );
        r.set(
            "slow_penalty_virtual_nanos",
            self.slow_penalty_virtual.as_nanos() as u64,
        );
        r.set("faults_injected", self.faults_injected());
        r
    }

    /// Total faults injected: transients + timeouts + crashes.
    pub fn faults_injected(&self) -> u64 {
        self.transient_faults + self.timeouts + self.worker_crashes
    }

    /// Faults the run absorbed without failing. On a successful run this
    /// is every injected fault (see the type docs).
    pub fn faults_survived(&self) -> u64 {
        self.faults_injected()
    }

    /// True if nothing was injected and nothing had to recover.
    pub fn is_clean(&self) -> bool {
        *self == RecoveryReport::default()
    }
}

impl WorkerReport {
    /// This worker's measurements as a unified subtree. Busy times are
    /// wall-clock-derived and appear only in [`ReportMode::Full`].
    pub fn report(&self, mode: ReportMode) -> Report {
        let mut r = Report::new();
        r.set("worker", self.worker);
        r.set("tasks", self.tasks);
        r.set("tasks_executed", self.tasks_executed);
        r.set("steals", self.steals);
        r.set("batch_round_trips", self.batch_round_trips);
        r.set("comm_bytes", self.comm_bytes);
        r.set("comm_requests", self.comm_requests);
        r.set_tree("cache", cache_report(&self.cache));
        r.set_tree("triangle_cache", cache_report(&self.triangle_cache));
        if mode == ReportMode::Full {
            r.set("busy_seconds", self.busy_time.as_secs_f64());
            r.set(
                "thread_busy_seconds",
                Value::List(
                    self.thread_busy
                        .iter()
                        .map(|d| Value::Float(d.as_secs_f64()))
                        .collect(),
                ),
            );
        }
        r
    }
}

/// The outcome of one cluster run.
#[derive(Clone, Debug, Default)]
pub struct RunOutcome {
    /// Total embeddings found (expanded count for compressed plans).
    pub total_matches: u64,
    /// Total VCBC codes emitted (zero for uncompressed plans).
    pub total_codes: u64,
    /// Wall-clock time of the parallel execution (excluding store
    /// loading and plan compilation, matching the paper's "pure
    /// enumeration" timing).
    pub elapsed: Duration,
    /// Aggregated engine metrics.
    pub metrics: TaskMetrics,
    /// Per-worker reports.
    pub workers: Vec<WorkerReport>,
    /// Store-level totals (cross-check of the per-worker sums).
    pub kv: KvStats,
    /// Total tasks executed (after splitting).
    pub total_tasks: usize,
    /// The split threshold τ the run actually used: the static
    /// configuration value, or the adaptive choice when
    /// `ClusterConfig::tau_auto` is set (0 = splitting disabled).
    pub effective_tau: usize,
    /// The scheduling policy this run used.
    pub scheduler: SchedulerKind,
    /// The engine driving mode this run used.
    pub exec_mode: ExecMode,
    /// The adjacency wire codec the store was built with (decides what
    /// `kv.bytes` measures).
    pub codec: benu_kvstore::CodecKind,
    /// Frontier levels expanded with a batched read (zero under DFS).
    pub frontier_expansions: u64,
    /// Task batches that exceeded the byte budget and drained via DFS.
    pub spill_events: u64,
    /// Largest charged frontier footprint of any single thread, in bytes.
    pub peak_frontier_bytes: u64,
    /// Per-task durations, when requested in the configuration.
    pub task_times: Option<Vec<Duration>>,
    /// What fault injection and recovery did (all zeros without a fault
    /// plan).
    pub recovery: RecoveryReport,
    /// Per-start-vertex observed costs, collected when
    /// [`ClusterConfig::collect_cost_profile`](crate::ClusterConfig::collect_cost_profile)
    /// is set (DFS execution only). Feed it back via
    /// [`Cluster::set_cost_profile`](crate::Cluster::set_cost_profile) to
    /// drive the next run's splitting and placement from observed cost.
    pub cost_profile: Option<CostProfile>,
}

impl RunOutcome {
    /// Total communication bytes (cache misses across all workers).
    pub fn communication_bytes(&self) -> u64 {
        self.workers.iter().map(|w| w.comm_bytes).sum()
    }

    /// Simulated parallel makespan: the busiest thread's total task time.
    /// On a cluster of dedicated machines (the paper's setting) this is
    /// the wall-clock enumeration time; unlike [`RunOutcome::elapsed`], it
    /// is meaningful even when the simulation host has fewer cores than
    /// the simulated cluster has threads.
    pub fn makespan(&self) -> Duration {
        self.workers
            .iter()
            .flat_map(|w| w.thread_busy.iter())
            .copied()
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Cluster-wide database-cache hit rate (the shared [`safe_ratio`]
    /// convention: 0.0 when no lookups happened).
    pub fn cache_hit_rate(&self) -> f64 {
        let (mut hits, mut misses) = (0u64, 0u64);
        for w in &self.workers {
            hits += w.cache.hits;
            misses += w.cache.misses;
        }
        safe_ratio(hits as f64, (hits + misses) as f64)
    }

    /// Total tasks stolen across all workers (zero under the static
    /// scheduler).
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Cluster-wide execution-buffer-pool counters.
    pub fn pool_stats(&self) -> PoolStats {
        let mut total = PoolStats::default();
        for w in &self.workers {
            total += w.pool;
        }
        total
    }

    /// Ratio of the busiest worker's busy time to the least busy
    /// worker's (with `floor` as the minimum denominator, guarding
    /// against idle workers). 1.0 = perfectly balanced; the work-stealing
    /// scheduler exists to pull this down on skewed task sets. Returns
    /// 0.0 — never NaN or ∞ — for a run with no workers, or with a zero
    /// floor on a run where no worker did any work.
    pub fn busy_ratio(&self, floor: Duration) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        let max = self
            .workers
            .iter()
            .map(|w| w.busy_time)
            .max()
            .unwrap_or(Duration::ZERO)
            .max(floor);
        let min = self
            .workers
            .iter()
            .map(|w| w.busy_time)
            .min()
            .unwrap_or(Duration::ZERO)
            .max(floor);
        safe_ratio(max.as_secs_f64(), min.as_secs_f64())
    }

    /// Work imbalance: max over workers of executed *vticks* (the
    /// deterministic instruction-count work measure, see
    /// [`crate::balance::vticks`]) divided by the mean. 1.0 = perfectly
    /// balanced. The deterministic sibling of [`RunOutcome::load_imbalance`]:
    /// it measures how evenly the *work* landed, independent of wall
    /// clock, so it is byte-stable across runs under the static
    /// scheduler. Returns 0.0 — never NaN — for a run with no workers or
    /// no executed work.
    pub fn work_imbalance(&self) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        let work: Vec<f64> = self
            .workers
            .iter()
            .map(|w| balance::vticks(&w.metrics) as f64)
            .collect();
        let mean = safe_ratio(work.iter().sum::<f64>(), work.len() as f64);
        safe_ratio(work.iter().cloned().fold(0.0f64, f64::max), mean)
    }

    /// Load imbalance: max over workers of busy time divided by the mean
    /// (1.0 = perfectly balanced). Returns 0.0 — never NaN — for a run
    /// with no workers or no recorded busy time (a zero-task run has no
    /// balance to speak of).
    pub fn load_imbalance(&self) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        let times: Vec<f64> = self
            .workers
            .iter()
            .map(|w| w.busy_time.as_secs_f64())
            .collect();
        let mean = safe_ratio(times.iter().sum::<f64>(), times.len() as f64);
        safe_ratio(times.iter().cloned().fold(0.0f64, f64::max), mean)
    }

    /// This outcome as the unified report tree — the canonical shape
    /// every bench bin serialises (schema `benu/report-v1`, see
    /// DESIGN.md "Observability"). [`ReportMode::Deterministic`] drops
    /// every wall-clock-derived field (elapsed, makespan, busy times,
    /// imbalance ratios, task times); the remaining tree is
    /// byte-identical across two executions of the same seeded run on a
    /// 1-worker × 1-thread static-scheduler cluster.
    pub fn report(&self, mode: ReportMode) -> Report {
        let mut r = Report::new();
        r.set("total_matches", self.total_matches);
        r.set("total_codes", self.total_codes);
        r.set("total_tasks", self.total_tasks);
        r.set("effective_tau", self.effective_tau);
        r.set("scheduler", self.scheduler.to_string());
        r.set("exec_mode", self.exec_mode.to_string());
        r.set("total_steals", self.total_steals());
        r.set("communication_bytes", self.communication_bytes());
        r.set("cache_hit_rate", self.cache_hit_rate());

        let m = &self.metrics;
        let mut engine = Report::new();
        engine.set("matches", m.matches);
        engine.set("codes", m.codes);
        engine.set("code_bytes", m.code_bytes);
        engine.set("dbq_executions", m.dbq_executions);
        engine.set("int_executions", m.int_executions);
        engine.set("trc_executions", m.trc_executions);
        engine.set("kcache_executions", m.kcache_executions);
        engine.set("enu_candidates", m.enu_candidates);
        engine.set("obs_candidates", m.obs.totals().0);
        engine.set("obs_survivors", m.obs.totals().1);
        let mut obs = Report::new();
        for (pc, slot) in m.obs.iter_nonzero() {
            let mut s = Report::new();
            s.set("candidates", slot.candidates);
            s.set("survivors", slot.survivors);
            obs.set_tree(&format!("slot_{pc:02}"), s);
        }
        engine.set_tree("obs", obs);
        let pool = self.pool_stats();
        let mut pool_tree = Report::new();
        pool_tree.set("hits", pool.hits);
        pool_tree.set("misses", pool.misses);
        pool_tree.set("returns", pool.returns);
        engine.set_tree("pool", pool_tree);
        let mut frontier = Report::new();
        frontier.set("expansions", self.frontier_expansions);
        frontier.set("spill_events", self.spill_events);
        frontier.set("peak_bytes", self.peak_frontier_bytes);
        engine.set_tree("frontier", frontier);
        r.set_tree("engine", engine);

        let mut store = Report::new();
        store.set("codec", self.codec.name());
        store.set("requests", self.kv.requests);
        store.set("keys", self.kv.keys);
        store.set("bytes", self.kv.bytes);
        store.set("deduped_keys", self.kv.deduped_keys);
        r.set_tree("store", store);

        r.set(
            "workers",
            Value::List(
                self.workers
                    .iter()
                    .map(|w| Value::Tree(w.report(mode)))
                    .collect(),
            ),
        );
        r.set_tree("recovery", self.recovery.report());
        r.set("work_imbalance", self.work_imbalance());

        if mode == ReportMode::Full {
            r.set("elapsed_seconds", self.elapsed.as_secs_f64());
            r.set("makespan_seconds", self.makespan().as_secs_f64());
            r.set("load_imbalance", self.load_imbalance());
            if let Some(times) = &self.task_times {
                r.set(
                    "task_times_seconds",
                    Value::List(
                        times
                            .iter()
                            .map(|d| Value::Float(d.as_secs_f64()))
                            .collect(),
                    ),
                );
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker(busy_ms: u64, hits: u64, misses: u64, bytes: u64) -> WorkerReport {
        WorkerReport {
            busy_time: Duration::from_millis(busy_ms),
            cache: CacheStats {
                hits,
                misses,
                evictions: 0,
            },
            comm_bytes: bytes,
            ..WorkerReport::default()
        }
    }

    #[test]
    fn aggregates_communication_and_hit_rate() {
        let outcome = RunOutcome {
            workers: vec![worker(10, 30, 10, 100), worker(10, 50, 10, 200)],
            ..RunOutcome::default()
        };
        assert_eq!(outcome.communication_bytes(), 300);
        assert!((outcome.cache_hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn load_imbalance_detects_straggler() {
        let balanced = RunOutcome {
            workers: vec![worker(100, 0, 0, 0), worker(100, 0, 0, 0)],
            ..RunOutcome::default()
        };
        assert!((balanced.load_imbalance() - 1.0).abs() < 1e-9);
        let skewed = RunOutcome {
            workers: vec![worker(300, 0, 0, 0), worker(100, 0, 0, 0)],
            ..RunOutcome::default()
        };
        assert!(skewed.load_imbalance() > 1.4);
    }

    #[test]
    fn work_imbalance_is_deterministic_and_tracks_vticks() {
        let mut heavy = worker(0, 0, 0, 0);
        heavy.metrics.enu_candidates = 300;
        let mut light = worker(0, 0, 0, 0);
        light.metrics.enu_candidates = 100;
        let o = RunOutcome {
            workers: vec![heavy, light],
            ..RunOutcome::default()
        };
        assert!((o.work_imbalance() - 1.5).abs() < 1e-9);
        // Deterministic: present even in deterministic-mode reports.
        let det = o.report(ReportMode::Deterministic);
        assert_eq!(det.get_f64("work_imbalance"), Some(o.work_imbalance()));
        // Guard zero-work runs.
        assert_eq!(RunOutcome::default().work_imbalance(), 0.0);
    }

    #[test]
    fn report_surfaces_observed_slot_cardinalities() {
        let mut o = RunOutcome::default();
        if let Some(s) = o.metrics.obs.slot_mut(2) {
            s.candidates = 10;
            s.survivors = 4;
        }
        let r = o.report(ReportMode::Deterministic);
        assert_eq!(r.get_u64("engine/obs/slot_02/candidates"), Some(10));
        assert_eq!(r.get_u64("engine/obs/slot_02/survivors"), Some(4));
        assert_eq!(r.get_u64("engine/obs_candidates"), Some(10));
    }

    #[test]
    fn makespan_is_busiest_thread() {
        let mut w1 = worker(0, 0, 0, 0);
        w1.thread_busy = vec![Duration::from_millis(40), Duration::from_millis(90)];
        let mut w2 = worker(0, 0, 0, 0);
        w2.thread_busy = vec![Duration::from_millis(70)];
        let o = RunOutcome {
            workers: vec![w1, w2],
            ..RunOutcome::default()
        };
        assert_eq!(o.makespan(), Duration::from_millis(90));
    }

    #[test]
    fn empty_outcome_is_sane() {
        let o = RunOutcome::default();
        assert_eq!(o.communication_bytes(), 0);
        assert_eq!(o.cache_hit_rate(), 0.0);
        assert_eq!(o.load_imbalance(), 0.0);
        assert_eq!(o.total_steals(), 0);
        assert_eq!(o.scheduler, SchedulerKind::Static);
        assert!(o.recovery.is_clean());
    }

    #[test]
    fn busy_ratio_floors_idle_workers() {
        let o = RunOutcome {
            workers: vec![worker(100, 0, 0, 0), worker(0, 0, 0, 0)],
            ..RunOutcome::default()
        };
        let ratio = o.busy_ratio(Duration::from_millis(1));
        assert!((ratio - 100.0).abs() < 1e-9, "100ms vs 1ms floor");
        let balanced = RunOutcome {
            workers: vec![worker(50, 0, 0, 0), worker(50, 0, 0, 0)],
            ..RunOutcome::default()
        };
        assert!((balanced.busy_ratio(Duration::from_millis(1)) - 1.0).abs() < 1e-9);
    }

    // Regression: a zero-task or zero-time run must yield finite metrics
    // (0.0), not NaN or ∞ — downstream JSON and table writers choke on
    // non-finite numbers.
    #[test]
    fn imbalance_metrics_guard_zero_work_runs() {
        let no_workers = RunOutcome::default();
        assert_eq!(no_workers.busy_ratio(Duration::ZERO), 0.0);
        assert_eq!(no_workers.busy_ratio(Duration::from_millis(1)), 0.0);
        assert_eq!(no_workers.load_imbalance(), 0.0);

        let all_idle = RunOutcome {
            workers: vec![worker(0, 0, 0, 0), worker(0, 0, 0, 0)],
            ..RunOutcome::default()
        };
        assert_eq!(
            all_idle.busy_ratio(Duration::ZERO),
            0.0,
            "zero floor over zero busy time must not divide by zero"
        );
        assert_eq!(all_idle.load_imbalance(), 0.0);
        assert!(all_idle.busy_ratio(Duration::ZERO).is_finite());
        assert!(all_idle.load_imbalance().is_finite());
        // A floored ratio over idle workers stays the benign 1.0.
        assert!((all_idle.busy_ratio(Duration::from_millis(1)) - 1.0).abs() < 1e-9);
    }

    // Regression per call site: every ratio helper shares safe_ratio's
    // zero-work semantics and never emits NaN/∞.
    #[test]
    fn ratio_helpers_share_safe_ratio_semantics() {
        let empty = RunOutcome::default();
        for v in [
            empty.cache_hit_rate(),
            empty.busy_ratio(Duration::ZERO),
            empty.load_imbalance(),
        ] {
            assert_eq!(v, 0.0);
            assert!(v.is_finite());
        }
        // Non-degenerate values are unchanged by the rerouting.
        let o = RunOutcome {
            workers: vec![worker(200, 9, 1, 0), worker(100, 0, 0, 0)],
            ..RunOutcome::default()
        };
        assert!((o.cache_hit_rate() - 0.9).abs() < 1e-12);
        assert!((o.busy_ratio(Duration::from_millis(1)) - 2.0).abs() < 1e-9);
        assert!((o.load_imbalance() - 200.0 / 150.0).abs() < 1e-9);
    }

    #[test]
    fn unified_report_modes_split_wall_fields() {
        let o = RunOutcome {
            total_matches: 7,
            elapsed: Duration::from_millis(5),
            workers: vec![worker(10, 1, 1, 64)],
            ..RunOutcome::default()
        };
        let full = o.report(ReportMode::Full);
        assert_eq!(full.get_u64("total_matches"), Some(7));
        assert!(full.get_f64("elapsed_seconds").is_some());
        assert!(full.get_f64("load_imbalance").is_some());
        let det = o.report(ReportMode::Deterministic);
        assert_eq!(det.get_u64("total_matches"), Some(7));
        assert!(det.get_path("elapsed_seconds").is_none());
        assert!(det.get_path("makespan_seconds").is_none());
        assert!(det.get_path("load_imbalance").is_none());
        // Deterministic worker subtrees carry no busy times.
        match det.get_path("workers") {
            Some(Value::List(ws)) => match &ws[0] {
                Value::Tree(w) => {
                    assert!(w.get_path("busy_seconds").is_none());
                    assert_eq!(w.get_u64("comm_bytes"), Some(64));
                }
                other => panic!("expected tree, got {other:?}"),
            },
            other => panic!("expected workers list, got {other:?}"),
        }
        // Derived ratios route through the typed helpers.
        assert_eq!(
            det.get_f64("cache_hit_rate"),
            Some(o.cache_hit_rate()),
            "report and typed view must agree"
        );
    }

    #[test]
    fn recovery_report_subtree_is_deterministic_fields_only() {
        let rec = RecoveryReport {
            transient_faults: 3,
            retries: 3,
            backoff_virtual: Duration::from_micros(70),
            ..RecoveryReport::default()
        };
        let r = rec.report();
        assert_eq!(r.get_u64("transient_faults"), Some(3));
        assert_eq!(r.get_u64("backoff_virtual_nanos"), Some(70_000));
        assert_eq!(r.get_u64("faults_injected"), Some(3));
    }

    #[test]
    fn recovery_report_carries_failover_fields() {
        let rec = RecoveryReport {
            failovers: 4,
            failover_reads: 3,
            shard_outages: 1,
            ..RecoveryReport::default()
        };
        let r = rec.report();
        assert_eq!(r.get_u64("failovers"), Some(4));
        assert_eq!(r.get_u64("failover_reads"), Some(3));
        assert_eq!(r.get_u64("shard_outages"), Some(1));
        // Masked faults never surface, so they are not "injected" — but
        // a run that failed over is not clean either.
        assert_eq!(rec.faults_injected(), 0);
        assert!(!rec.is_clean());
    }

    #[test]
    fn recovery_report_aggregates_faults() {
        let r = RecoveryReport {
            transient_faults: 5,
            timeouts: 2,
            worker_crashes: 1,
            retries: 7,
            tasks_requeued: 3,
            recovery_passes: 1,
            ..RecoveryReport::default()
        };
        assert_eq!(r.faults_injected(), 8);
        assert_eq!(r.faults_survived(), 8);
        assert!(!r.is_clean());
        assert!(RecoveryReport::default().is_clean());
    }
}
