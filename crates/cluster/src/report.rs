//! Run reports: the measurements the paper's evaluation plots.

use crate::schedule::SchedulerKind;
use benu_cache::CacheStats;
use benu_engine::TaskMetrics;
use benu_kvstore::KvStats;
use std::time::Duration;

/// What one logical worker machine did during a run.
#[derive(Clone, Debug, Default)]
pub struct WorkerReport {
    /// Worker index.
    pub worker: usize,
    /// Number of (sub)tasks initially assigned to this worker by the
    /// round-robin shuffle.
    pub tasks: usize,
    /// Number of (sub)tasks this worker actually executed. Equal to
    /// `tasks` under the static scheduler; under work stealing the
    /// difference is migration.
    pub tasks_executed: usize,
    /// Tasks this worker stole from other workers' queues (zero under
    /// the static scheduler).
    pub steals: u64,
    /// Batched multi-get round trips this worker issued (a subset of
    /// `comm_requests`).
    pub batch_round_trips: u64,
    /// Aggregated engine metrics.
    pub metrics: TaskMetrics,
    /// Sum of task durations across the worker's threads — the "reducer
    /// load" of Fig. 9b.
    pub busy_time: Duration,
    /// Per-thread busy times; the maximum across the cluster is the
    /// simulated makespan on dedicated machines.
    pub thread_busy: Vec<Duration>,
    /// Bytes fetched from the distributed store by this worker (cache
    /// misses only) — the per-worker communication cost.
    pub comm_bytes: u64,
    /// Store requests issued by this worker.
    pub comm_requests: u64,
    /// Database-cache statistics of this worker.
    pub cache: CacheStats,
    /// Aggregated triangle-cache statistics of the worker's threads.
    pub triangle_cache: CacheStats,
}

/// The outcome of one cluster run.
#[derive(Clone, Debug, Default)]
pub struct RunOutcome {
    /// Total embeddings found (expanded count for compressed plans).
    pub total_matches: u64,
    /// Total VCBC codes emitted (zero for uncompressed plans).
    pub total_codes: u64,
    /// Wall-clock time of the parallel execution (excluding store
    /// loading and plan compilation, matching the paper's "pure
    /// enumeration" timing).
    pub elapsed: Duration,
    /// Aggregated engine metrics.
    pub metrics: TaskMetrics,
    /// Per-worker reports.
    pub workers: Vec<WorkerReport>,
    /// Store-level totals (cross-check of the per-worker sums).
    pub kv: KvStats,
    /// Total tasks executed (after splitting).
    pub total_tasks: usize,
    /// The scheduling policy this run used.
    pub scheduler: SchedulerKind,
    /// Per-task durations, when requested in the configuration.
    pub task_times: Option<Vec<Duration>>,
}

impl RunOutcome {
    /// Total communication bytes (cache misses across all workers).
    pub fn communication_bytes(&self) -> u64 {
        self.workers.iter().map(|w| w.comm_bytes).sum()
    }

    /// Simulated parallel makespan: the busiest thread's total task time.
    /// On a cluster of dedicated machines (the paper's setting) this is
    /// the wall-clock enumeration time; unlike [`RunOutcome::elapsed`], it
    /// is meaningful even when the simulation host has fewer cores than
    /// the simulated cluster has threads.
    pub fn makespan(&self) -> Duration {
        self.workers
            .iter()
            .flat_map(|w| w.thread_busy.iter())
            .copied()
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Cluster-wide database-cache hit rate.
    pub fn cache_hit_rate(&self) -> f64 {
        let (mut hits, mut misses) = (0u64, 0u64);
        for w in &self.workers {
            hits += w.cache.hits;
            misses += w.cache.misses;
        }
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Total tasks stolen across all workers (zero under the static
    /// scheduler).
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Ratio of the busiest worker's busy time to the least busy
    /// worker's (with `floor` as the minimum denominator, guarding
    /// against idle workers). 1.0 = perfectly balanced; the work-stealing
    /// scheduler exists to pull this down on skewed task sets.
    pub fn busy_ratio(&self, floor: Duration) -> f64 {
        let max = self
            .workers
            .iter()
            .map(|w| w.busy_time)
            .max()
            .unwrap_or(Duration::ZERO)
            .max(floor);
        let min = self
            .workers
            .iter()
            .map(|w| w.busy_time)
            .min()
            .unwrap_or(Duration::ZERO)
            .max(floor);
        max.as_secs_f64() / min.as_secs_f64()
    }

    /// Load imbalance: max over workers of busy time divided by the mean
    /// (1.0 = perfectly balanced).
    pub fn load_imbalance(&self) -> f64 {
        if self.workers.is_empty() {
            return 1.0;
        }
        let times: Vec<f64> = self
            .workers
            .iter()
            .map(|w| w.busy_time.as_secs_f64())
            .collect();
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        if mean == 0.0 {
            return 1.0;
        }
        times.iter().cloned().fold(0.0f64, f64::max) / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker(busy_ms: u64, hits: u64, misses: u64, bytes: u64) -> WorkerReport {
        WorkerReport {
            busy_time: Duration::from_millis(busy_ms),
            cache: CacheStats {
                hits,
                misses,
                evictions: 0,
            },
            comm_bytes: bytes,
            ..WorkerReport::default()
        }
    }

    #[test]
    fn aggregates_communication_and_hit_rate() {
        let outcome = RunOutcome {
            workers: vec![worker(10, 30, 10, 100), worker(10, 50, 10, 200)],
            ..RunOutcome::default()
        };
        assert_eq!(outcome.communication_bytes(), 300);
        assert!((outcome.cache_hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn load_imbalance_detects_straggler() {
        let balanced = RunOutcome {
            workers: vec![worker(100, 0, 0, 0), worker(100, 0, 0, 0)],
            ..RunOutcome::default()
        };
        assert!((balanced.load_imbalance() - 1.0).abs() < 1e-9);
        let skewed = RunOutcome {
            workers: vec![worker(300, 0, 0, 0), worker(100, 0, 0, 0)],
            ..RunOutcome::default()
        };
        assert!(skewed.load_imbalance() > 1.4);
    }

    #[test]
    fn makespan_is_busiest_thread() {
        let mut w1 = worker(0, 0, 0, 0);
        w1.thread_busy = vec![Duration::from_millis(40), Duration::from_millis(90)];
        let mut w2 = worker(0, 0, 0, 0);
        w2.thread_busy = vec![Duration::from_millis(70)];
        let o = RunOutcome {
            workers: vec![w1, w2],
            ..RunOutcome::default()
        };
        assert_eq!(o.makespan(), Duration::from_millis(90));
    }

    #[test]
    fn empty_outcome_is_sane() {
        let o = RunOutcome::default();
        assert_eq!(o.communication_bytes(), 0);
        assert_eq!(o.cache_hit_rate(), 0.0);
        assert_eq!(o.load_imbalance(), 1.0);
        assert_eq!(o.total_steals(), 0);
        assert_eq!(o.scheduler, SchedulerKind::Static);
    }

    #[test]
    fn busy_ratio_floors_idle_workers() {
        let o = RunOutcome {
            workers: vec![worker(100, 0, 0, 0), worker(0, 0, 0, 0)],
            ..RunOutcome::default()
        };
        let ratio = o.busy_ratio(Duration::from_millis(1));
        assert!((ratio - 100.0).abs() < 1e-9, "100ms vs 1ms floor");
        let balanced = RunOutcome {
            workers: vec![worker(50, 0, 0, 0), worker(50, 0, 0, 0)],
            ..RunOutcome::default()
        };
        assert!((balanced.busy_ratio(Duration::from_millis(1)) - 1.0).abs() < 1e-9);
    }
}
