//! Pluggable task schedulers.
//!
//! The paper shuffles local search tasks evenly to the reducers and lets
//! task splitting (§V-B) bound the size of any single task. Splitting
//! caps the *largest* task but cannot fix placement skew: a static
//! round-robin shuffle can still land all the heavy tasks on one worker.
//! This module makes the assignment policy pluggable behind the
//! [`Scheduler`] trait:
//!
//! * [`StaticScheduler`] — the paper's even shuffle: each worker owns a
//!   fixed slice of the task list and threads pull from it; nothing moves
//!   between workers.
//! * [`WorkStealingScheduler`] — the same initial shuffle, but a worker
//!   that drains its queue steals the back half of a victim's queue,
//!   redistributing placement skew at run time.
//!
//! Both schedulers execute every generated task exactly once, so match
//! counts — and, with the database cache disabled, communication bytes —
//! are scheduler-independent (asserted by the cross-scheduler property
//! test in `tests/`).

use benu_engine::SearchTask;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Which scheduling policy a cluster run uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Fixed round-robin assignment (the paper's even shuffle).
    #[default]
    Static,
    /// Round-robin assignment plus steal-half-on-exhaustion.
    WorkStealing,
}

impl SchedulerKind {
    /// Stable lowercase name (the CLI / JSON spelling).
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Static => "static",
            SchedulerKind::WorkStealing => "work-stealing",
        }
    }

    /// Builds a scheduler of this kind over an initial per-worker
    /// assignment (one queue per worker, tasks in execution order).
    pub fn build(&self, worker_tasks: Vec<Vec<SearchTask>>) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Static => Box::new(StaticScheduler::new(worker_tasks)),
            SchedulerKind::WorkStealing => Box::new(WorkStealingScheduler::new(worker_tasks)),
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SchedulerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "static" | "round-robin" | "rr" => Ok(SchedulerKind::Static),
            "work-stealing" | "stealing" | "ws" => Ok(SchedulerKind::WorkStealing),
            other => Err(format!(
                "unknown scheduler {other:?} (expected \"static\" or \"work-stealing\")"
            )),
        }
    }
}

/// Hands tasks to worker threads. One scheduler instance drives one run;
/// all threads of worker `w` call [`Scheduler::next`]`(w)` until it
/// returns `None`.
pub trait Scheduler: Sync {
    /// The next task for a thread of `worker`, or `None` when no work
    /// remains anywhere this worker may draw from.
    fn next(&self, worker: usize) -> Option<SearchTask>;

    /// Tasks initially assigned to `worker` (before any stealing).
    fn assigned(&self, worker: usize) -> usize;

    /// Tasks `worker` has taken from other workers' queues so far.
    fn steals(&self, worker: usize) -> u64;

    /// Removes and returns everything still queued for `worker` — a
    /// crashed worker's queue goes down with the machine and is handed
    /// to the recovery requeue. Subsequent `next(worker)` calls find the
    /// queue empty.
    fn drain(&self, worker: usize) -> Vec<SearchTask>;
}

/// The paper's static shuffle: per-worker task slices consumed through an
/// atomic cursor, no migration.
pub struct StaticScheduler {
    queues: Vec<(Vec<SearchTask>, AtomicUsize)>,
}

impl StaticScheduler {
    /// Wraps a fixed per-worker assignment.
    pub fn new(worker_tasks: Vec<Vec<SearchTask>>) -> Self {
        StaticScheduler {
            queues: worker_tasks
                .into_iter()
                .map(|tasks| (tasks, AtomicUsize::new(0)))
                .collect(),
        }
    }
}

impl Scheduler for StaticScheduler {
    fn next(&self, worker: usize) -> Option<SearchTask> {
        let (tasks, cursor) = &self.queues[worker];
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        tasks.get(i).copied()
    }

    fn assigned(&self, worker: usize) -> usize {
        self.queues[worker].0.len()
    }

    fn steals(&self, _worker: usize) -> u64 {
        0
    }

    fn drain(&self, worker: usize) -> Vec<SearchTask> {
        let (tasks, cursor) = &self.queues[worker];
        // Jump the cursor past the end; whatever it had not yet handed
        // out is the drained remainder. A concurrent `next` either got
        // its index before the swap (it owns that task) or after (it
        // sees an exhausted queue) — no task is both drained and served.
        let i = cursor.swap(tasks.len(), Ordering::Relaxed).min(tasks.len());
        tasks[i..].to_vec()
    }
}

/// Steal-half work stealing over per-worker deques.
///
/// Threads pop their own worker's queue from the front; an exhausted
/// worker scans the other workers (starting at its right neighbour) and
/// transfers the *back* half of the first non-empty queue it finds —
/// back, because a queue's front is about to be executed by its owner and
/// is the most cache-relevant to it. The victim's lock is released before
/// the thief touches its own queue, so no thread ever holds two queue
/// locks (no lock-order deadlock).
///
/// A momentary race (a thread observing all queues empty while a thief
/// holds freshly stolen tasks it has not yet re-queued) can only make
/// that thread exit early — the stolen tasks are still executed exactly
/// once by the thief's worker.
pub struct WorkStealingScheduler {
    queues: Vec<Mutex<VecDeque<SearchTask>>>,
    assigned: Vec<usize>,
    steals: Vec<AtomicU64>,
}

impl WorkStealingScheduler {
    /// Wraps an initial per-worker assignment.
    pub fn new(worker_tasks: Vec<Vec<SearchTask>>) -> Self {
        WorkStealingScheduler {
            assigned: worker_tasks.iter().map(Vec::len).collect(),
            steals: worker_tasks.iter().map(|_| AtomicU64::new(0)).collect(),
            queues: worker_tasks
                .into_iter()
                .map(|tasks| Mutex::new(VecDeque::from(tasks)))
                .collect(),
        }
    }
}

impl Scheduler for WorkStealingScheduler {
    fn next(&self, worker: usize) -> Option<SearchTask> {
        if let Some(task) = self.queues[worker].lock().pop_front() {
            return Some(task);
        }
        let p = self.queues.len();
        for offset in 1..p {
            let victim = (worker + offset) % p;
            let mut stolen = {
                let mut queue = self.queues[victim].lock();
                let n = queue.len();
                if n == 0 {
                    continue;
                }
                // Victim keeps the front ⌊n/2⌋ tasks; the thief takes the
                // rest (so a single remaining task migrates whole).
                queue.split_off(n / 2)
            };
            self.steals[worker].fetch_add(stolen.len() as u64, Ordering::Relaxed);
            let task = stolen.pop_front().expect("stole at least one task");
            if !stolen.is_empty() {
                self.queues[worker].lock().append(&mut stolen);
            }
            return Some(task);
        }
        None
    }

    fn assigned(&self, worker: usize) -> usize {
        self.assigned[worker]
    }

    fn steals(&self, worker: usize) -> u64 {
        self.steals[worker].load(Ordering::Relaxed)
    }

    fn drain(&self, worker: usize) -> Vec<SearchTask> {
        self.queues[worker].lock().drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benu_graph::VertexId;

    fn tasks(ids: std::ops::Range<u32>) -> Vec<SearchTask> {
        ids.map(|v| SearchTask::whole(v as VertexId)).collect()
    }

    fn drain_all(s: &dyn Scheduler, workers: usize) -> Vec<Vec<VertexId>> {
        (0..workers)
            .map(|w| {
                let mut got = Vec::new();
                while let Some(t) = s.next(w) {
                    got.push(t.start);
                }
                got
            })
            .collect()
    }

    #[test]
    fn static_scheduler_keeps_assignment_fixed() {
        let s = StaticScheduler::new(vec![tasks(0..3), tasks(3..5)]);
        assert_eq!(s.assigned(0), 3);
        assert_eq!(s.assigned(1), 2);
        let got = drain_all(&s, 2);
        assert_eq!(got[0], vec![0, 1, 2]);
        assert_eq!(got[1], vec![3, 4]);
        assert_eq!(s.steals(0) + s.steals(1), 0);
    }

    #[test]
    fn work_stealing_executes_every_task_exactly_once() {
        let s = WorkStealingScheduler::new(vec![tasks(0..10), Vec::new(), Vec::new()]);
        // Idle worker 1 moves first, so there is still work to steal.
        let mut all: Vec<VertexId> = Vec::new();
        for w in [1, 2, 0] {
            while let Some(t) = s.next(w) {
                all.push(t.start);
            }
        }
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        assert!(s.steals(1) > 0, "idle workers must steal");
        assert_eq!(s.assigned(0), 10, "initial assignment is unchanged");
    }

    #[test]
    fn thief_takes_the_back_half() {
        let s = WorkStealingScheduler::new(vec![tasks(0..8), Vec::new()]);
        // Worker 1 is empty: its first `next` steals tasks 4..8.
        let first = s.next(1).unwrap();
        assert_eq!(first.start, 4);
        assert_eq!(s.steals(1), 4);
        // The victim still owns its front half.
        assert_eq!(s.next(0).unwrap().start, 0);
    }

    #[test]
    fn single_task_queues_are_stolen_whole() {
        let s = WorkStealingScheduler::new(vec![tasks(0..1), Vec::new()]);
        assert_eq!(s.next(1).unwrap().start, 0);
        assert!(s.next(0).is_none());
    }

    #[test]
    fn kind_parses_and_displays() {
        use std::str::FromStr;
        assert_eq!(
            SchedulerKind::from_str("static").unwrap(),
            SchedulerKind::Static
        );
        assert_eq!(
            SchedulerKind::from_str("rr").unwrap(),
            SchedulerKind::Static
        );
        assert_eq!(
            SchedulerKind::from_str("work-stealing").unwrap(),
            SchedulerKind::WorkStealing
        );
        assert_eq!(SchedulerKind::WorkStealing.to_string(), "work-stealing");
        assert!(SchedulerKind::from_str("lottery").is_err());
        assert_eq!(SchedulerKind::default(), SchedulerKind::Static);
    }

    #[test]
    fn drain_empties_a_queue_exactly_once() {
        let s = StaticScheduler::new(vec![tasks(0..6), tasks(6..8)]);
        s.next(0);
        let drained: Vec<VertexId> = s.drain(0).iter().map(|t| t.start).collect();
        assert_eq!(drained, vec![1, 2, 3, 4, 5]);
        assert!(s.next(0).is_none(), "drained queue serves nothing");
        assert!(s.drain(0).is_empty(), "second drain finds nothing");
        assert_eq!(s.next(1).unwrap().start, 6, "other queues unaffected");

        let ws = WorkStealingScheduler::new(vec![tasks(0..4), Vec::new()]);
        ws.next(0);
        assert_eq!(ws.drain(0).len(), 3);
        assert!(ws.next(1).is_none(), "nothing left to steal");
    }

    #[test]
    fn exhausted_scheduler_returns_none_everywhere() {
        let s = WorkStealingScheduler::new(vec![tasks(0..2), tasks(2..4)]);
        drain_all(&s, 2);
        for w in 0..2 {
            assert!(s.next(w).is_none());
        }
    }
}
