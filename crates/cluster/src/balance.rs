//! Observed-cost load balancing.
//!
//! Degree-based task splitting (`auto_tau`, paper §V-B) uses the start
//! vertex's degree as a proxy for task cost. The proxy is often wrong:
//! two vertices of equal degree can anchor wildly different amounts of
//! search work depending on how their neighbourhoods close into the
//! pattern. A [`CostProfile`] replaces the proxy with the real thing —
//! the per-start-vertex work a previous run *observed* — and drives both
//! decisions that degree used to drive:
//!
//! * **split thresholds** — a start vertex whose observed cost exceeds
//!   the threshold θ splits into `⌈cost/θ⌉` subtasks (capped by its
//!   candidate bound, the most the range split can physically divide),
//!   with θ chosen by the same budgeted binary search `auto_tau` uses;
//! * **placement and steal priority** — initial assignment is
//!   longest-processing-time-first onto the least-loaded worker, and
//!   each worker's queue is ordered heaviest-first, so under work
//!   stealing the heavy tasks start earliest and thieves steal from the
//!   light tail.
//!
//! Cost is measured in *vticks* — the engine's deterministic instruction
//! counters (ENU candidates + DBQ + INT + TRC + KCC executions) — so a
//! profile, and every decision derived from it, is a pure function of
//! the run that produced it.

use benu_engine::task::AUTO_TAU_EXTRA_PER_LANE;
use benu_engine::{SearchTask, SplitSpec, TaskMetrics};
use benu_graph::VertexId;

/// Deterministic work units of one task execution: the engine's
/// instruction counters, which are independent of wall clock, caching
/// and pooling.
pub fn vticks(m: &TaskMetrics) -> u64 {
    m.enu_candidates + m.dbq_executions + m.int_executions + m.trc_executions + m.kcache_executions
}

/// Per-start-vertex observed execution cost from a completed run, in
/// vticks. Built by the cluster when
/// [`ClusterConfig::collect_cost_profile`](crate::ClusterConfig::collect_cost_profile)
/// is set; install it back with
/// [`Cluster::set_cost_profile`](crate::Cluster::set_cost_profile) to
/// switch splitting and placement to observed costs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CostProfile {
    /// `costs[v]` = total observed vticks of start vertex `v`, summed
    /// over its subtasks.
    costs: Vec<u64>,
}

impl CostProfile {
    /// Builds a profile for `n` start vertices from `(task, vticks)`
    /// records; subtask costs of the same start vertex accumulate.
    pub fn from_task_costs(n: usize, records: impl IntoIterator<Item = (SearchTask, u64)>) -> Self {
        let mut costs = vec![0u64; n];
        for (task, cost) in records {
            if let Some(c) = costs.get_mut(task.start as usize) {
                *c += cost;
            }
        }
        CostProfile { costs }
    }

    /// Observed cost of start vertex `v` (0 for unseen vertices).
    pub fn cost(&self, v: VertexId) -> u64 {
        self.costs.get(v as usize).copied().unwrap_or(0)
    }

    /// Number of start vertices covered.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// True when the profile covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// Total observed vticks across all start vertices.
    pub fn total(&self) -> u64 {
        self.costs.iter().sum()
    }

    /// Estimated cost of one (sub)task: the start vertex's observed cost
    /// divided evenly over its split, since [`SplitSpec::range`] divides
    /// the candidate range into near-equal slices.
    pub fn task_cost(&self, task: &SearchTask) -> u64 {
        let c = self.cost(task.start);
        match task.split {
            Some(split) => c / split.total as u64,
            None => c,
        }
    }

    /// Number of subtasks start vertex `v` splits into at cost threshold
    /// `theta`, capped by its candidate bound (a range of `bound`
    /// candidates cannot be divided further than `bound` ways).
    fn subtasks_at(&self, v: usize, theta: u64, bound: usize) -> usize {
        let c = self.costs[v];
        if theta == 0 || c <= theta || bound < 2 {
            return 1;
        }
        (c.div_ceil(theta) as usize).min(bound)
    }

    /// Generates the task list with cost-driven splitting: the smallest
    /// cost threshold θ whose total extra subtasks stay within
    /// `lanes × AUTO_TAU_EXTRA_PER_LANE` (the same budget `auto_tau`
    /// spends on degree-based splits), found by binary search — extra
    /// subtasks are monotone non-increasing in θ. Returns the tasks and
    /// the chosen θ. Pure function of `(profile, degrees, lanes,
    /// second_adjacent)`.
    pub fn generate_tasks(
        &self,
        degrees: &[u32],
        lanes: usize,
        second_adjacent: bool,
    ) -> (Vec<SearchTask>, u64) {
        let n = degrees.len();
        debug_assert_eq!(self.costs.len(), n, "profile must cover every start vertex");
        let budget = lanes.max(1) * AUTO_TAU_EXTRA_PER_LANE;
        let bound_of = |v: usize| -> usize {
            if second_adjacent {
                degrees[v] as usize
            } else {
                n
            }
        };
        let extra = |theta: u64| -> usize {
            (0..n.min(self.costs.len()))
                .map(|v| self.subtasks_at(v, theta, bound_of(v)) - 1)
                .sum()
        };
        // θ = max cost splits nothing, so the interval is feasible.
        let max_cost = self.costs.iter().copied().max().unwrap_or(0).max(1);
        let (mut lo, mut hi) = (1u64, max_cost);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if extra(mid) <= budget {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let theta = lo;
        let mut tasks = Vec::with_capacity(n + budget);
        for v in 0..n {
            let total = self.subtasks_at(v, theta, bound_of(v));
            if total <= 1 {
                tasks.push(SearchTask::whole(v as VertexId));
            } else {
                let total = u32::try_from(total).expect("subtask count overflows u32");
                for index in 0..total {
                    tasks.push(SearchTask {
                        start: v as VertexId,
                        split: Some(SplitSpec { index, total }),
                    });
                }
            }
        }
        (tasks, theta)
    }

    /// Longest-processing-time-first placement: tasks sorted by
    /// descending estimated cost (ties broken by `(start, split index)`
    /// for determinism), each assigned to the currently least-loaded
    /// worker (ties to the lowest index). Every queue comes out
    /// heaviest-first, which doubles as the steal priority — thieves
    /// take from the back, i.e. the light tail.
    pub fn assign_lpt(&self, tasks: Vec<SearchTask>, workers: usize) -> Vec<Vec<SearchTask>> {
        let workers = workers.max(1);
        let mut order: Vec<SearchTask> = tasks;
        order.sort_by(|a, b| {
            self.task_cost(b)
                .cmp(&self.task_cost(a))
                .then_with(|| a.start.cmp(&b.start))
                .then_with(|| {
                    let ia = a.split.map_or(0, |s| s.index);
                    let ib = b.split.map_or(0, |s| s.index);
                    ia.cmp(&ib)
                })
        });
        let mut queues: Vec<Vec<SearchTask>> = vec![Vec::new(); workers];
        let mut load = vec![0u64; workers];
        for task in order {
            let w = (0..workers).min_by_key(|&w| (load[w], w)).unwrap();
            load[w] += self.task_cost(&task).max(1);
            queues[w].push(task);
        }
        queues
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(costs: Vec<u64>) -> CostProfile {
        CostProfile { costs }
    }

    #[test]
    fn from_task_costs_accumulates_subtasks() {
        let t0 = SearchTask::whole(0);
        let t1a = SearchTask {
            start: 1,
            split: Some(SplitSpec { index: 0, total: 2 }),
        };
        let t1b = SearchTask {
            start: 1,
            split: Some(SplitSpec { index: 1, total: 2 }),
        };
        let p = CostProfile::from_task_costs(3, vec![(t0, 5), (t1a, 7), (t1b, 9)]);
        assert_eq!(p.cost(0), 5);
        assert_eq!(p.cost(1), 16);
        assert_eq!(p.cost(2), 0);
        assert_eq!(p.total(), 21);
        // Subtask cost is the vertex cost spread over the split.
        assert_eq!(p.task_cost(&t1a), 8);
    }

    #[test]
    fn cost_driven_split_respects_budget_and_bounds() {
        // One hub with 100× the cost of everyone else.
        let mut costs = vec![10u64; 50];
        costs[7] = 1000;
        let degrees = vec![20u32; 50];
        let p = profile(costs);
        let lanes = 2;
        let (tasks, theta) = p.generate_tasks(&degrees, lanes, true);
        let extra = tasks.len() - 50;
        assert!(extra > 0, "the hub must split (θ={theta})");
        assert!(extra <= lanes * AUTO_TAU_EXTRA_PER_LANE);
        let hub: Vec<_> = tasks.iter().filter(|t| t.start == 7).collect();
        assert!(hub.len() > 1);
        assert!(hub.len() <= 20, "cannot split beyond the candidate bound");
        // Determinism.
        let (tasks2, theta2) = p.generate_tasks(&degrees, lanes, true);
        assert_eq!(tasks, tasks2);
        assert_eq!(theta, theta2);
    }

    #[test]
    fn split_cap_honours_the_candidate_bound_in_both_arms() {
        // Cost says "split 100 ways" but degree (the second-adjacent
        // bound) is 3 — only 3 subtasks are physically meaningful.
        let mut costs = vec![1u64; 10];
        costs[0] = 10_000;
        let degrees = {
            let mut d = vec![1u32; 10];
            d[0] = 3;
            d
        };
        let p = profile(costs);
        let (tasks, _) = p.generate_tasks(&degrees, 4, true);
        assert_eq!(tasks.iter().filter(|t| t.start == 0).count(), 3);
        // Non-adjacent arm: the bound is |V| = 10.
        let (tasks, _) = p.generate_tasks(&degrees, 4, false);
        let hub = tasks.iter().filter(|t| t.start == 0).count();
        assert!(hub > 3 && hub <= 10, "hub split {hub} ways");
    }

    #[test]
    fn lpt_balances_better_than_round_robin_on_skew() {
        // 1 heavy task (100) + 7 light (1): round robin puts the heavy
        // one plus light ones on worker 0; LPT isolates the heavy task.
        let costs = {
            let mut c = vec![1u64; 8];
            c[0] = 100;
            c
        };
        let p = profile(costs);
        let tasks: Vec<SearchTask> = (0..8).map(|v| SearchTask::whole(v as VertexId)).collect();
        let queues = p.assign_lpt(tasks.clone(), 2);
        let load = |q: &Vec<SearchTask>| q.iter().map(|t| p.task_cost(t)).sum::<u64>();
        let (a, b) = (load(&queues[0]), load(&queues[1]));
        assert_eq!(a.max(b), 100, "heavy task must sit alone: {a} vs {b}");
        // Round robin for comparison: worker 0 gets 100 + 3 lights.
        let rr0: u64 = tasks
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 0)
            .map(|(_, t)| p.task_cost(t))
            .sum();
        assert!(a.max(b) < rr0);
        // Queues are heaviest-first.
        for q in &queues {
            for pair in q.windows(2) {
                assert!(p.task_cost(&pair[0]) >= p.task_cost(&pair[1]));
            }
        }
        // Deterministic.
        assert_eq!(p.assign_lpt(tasks.clone(), 2), queues);
    }
}
