//! Crash recovery bookkeeping.
//!
//! BENU's fault-tolerance argument (paper §III-C) is that local search
//! tasks are independent and idempotent: when a worker machine dies, its
//! tasks can simply be regenerated and re-executed on any surviving
//! worker, with no partial state to reconcile. [`RecoveryCtx`] is the
//! run-scoped bookkeeping that makes this exact in the simulation:
//!
//! * A crash-capable worker (one the [`FaultPlan`] crashes) tracks every
//!   task it completes in an *executed pool*. When its completion count
//!   reaches the plan's boundary, the worker is marked dead and the pool
//!   — every result the dead machine was holding — moves to the requeue,
//!   together with whatever was still in the worker's scheduler queue.
//!   The pool only ever holds the *current* pass's completions: once a
//!   pass's results are merged into the run tally they are durable (a
//!   later crash cannot lose them), so [`RecoveryCtx::commit_merged`]
//!   empties the survivors' pools at each pass boundary.
//! * The runtime discards the dead worker's thread results wholesale, so
//!   no task is ever counted twice: each task's contribution enters the
//!   final tally exactly once, from whichever attempt survived.
//! * The push-into-pool / check-dead ordering below runs under the
//!   pool's lock, so a sibling thread finishing a task concurrently with
//!   the crash either lands its task in the pool (requeued with the
//!   rest) or observes the death and requeues it itself — never both,
//!   never neither.

use benu_engine::SearchTask;
use benu_fault::FaultPlan;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// What became of a task a worker thread just finished.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TaskFate {
    /// The worker is alive; the result counts.
    Counted,
    /// This completion crashed the worker. The thread must drain its
    /// scheduler queue into the requeue and stop.
    Crashed,
    /// A sibling thread crashed the worker mid-task. The result is lost
    /// (already requeued); the thread must stop.
    Lost,
}

/// Shared crash bookkeeping for one run (all passes).
pub(crate) struct RecoveryCtx {
    plan: Arc<FaultPlan>,
    /// Tasks completed per worker, across its threads and passes.
    completed: Vec<AtomicU64>,
    /// Dead workers never run another pass.
    dead: Vec<AtomicBool>,
    /// Per-worker executed pool holding the current pass's completions;
    /// only populated for crash-capable workers (tracking a worker that
    /// cannot crash would be waste). Emptied by
    /// [`RecoveryCtx::commit_merged`] once a pass's results are merged.
    executed: Vec<Mutex<Vec<SearchTask>>>,
    /// Tasks awaiting re-execution in the next pass.
    requeue: Mutex<Vec<SearchTask>>,
    crashes: AtomicU64,
    requeued: AtomicU64,
}

impl RecoveryCtx {
    pub(crate) fn new(plan: Arc<FaultPlan>, workers: usize) -> Self {
        RecoveryCtx {
            completed: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            dead: (0..workers).map(|_| AtomicBool::new(false)).collect(),
            executed: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
            requeue: Mutex::new(Vec::new()),
            crashes: AtomicU64::new(0),
            requeued: AtomicU64::new(0),
            plan,
        }
    }

    /// True once `worker` has crashed. Dead workers take no further part
    /// in the run.
    pub(crate) fn is_dead(&self, worker: usize) -> bool {
        self.dead[worker].load(Ordering::Acquire)
    }

    /// Books a completed task and decides whether its worker survives
    /// the task boundary. See the module docs for the race argument.
    pub(crate) fn task_done(&self, worker: usize, task: SearchTask) -> TaskFate {
        let Some(boundary) = self.plan.crash_after(worker) else {
            return TaskFate::Counted;
        };
        let mut pool = self.executed[worker].lock();
        if self.dead[worker].load(Ordering::Acquire) {
            // The machine died while this thread was mid-task: the
            // result is gone with it.
            drop(pool);
            self.requeue_all(vec![task]);
            return TaskFate::Lost;
        }
        pool.push(task);
        let done = self.completed[worker].fetch_add(1, Ordering::AcqRel) + 1;
        if done < boundary {
            return TaskFate::Counted;
        }
        self.dead[worker].store(true, Ordering::Release);
        self.crashes.fetch_add(1, Ordering::Relaxed);
        let lost: Vec<SearchTask> = pool.drain(..).collect();
        drop(pool);
        self.requeue_all(lost);
        TaskFate::Crashed
    }

    /// Queues tasks for re-execution in the next pass.
    pub(crate) fn requeue_all(&self, tasks: Vec<SearchTask>) {
        if tasks.is_empty() {
            return;
        }
        self.requeued
            .fetch_add(tasks.len() as u64, Ordering::Relaxed);
        self.requeue.lock().extend(tasks);
    }

    /// Takes everything queued for re-execution.
    pub(crate) fn take_requeue(&self) -> Vec<SearchTask> {
        std::mem::take(&mut *self.requeue.lock())
    }

    /// Marks every surviving worker's results durable at a pass boundary.
    ///
    /// The runtime calls this once per pass, after merging the live
    /// workers' thread results and with no worker threads running. Merged
    /// results can no longer be lost — a worker that crashes in a *later*
    /// pass only discards that pass's results — so its executed pool must
    /// be emptied here: leaving committed tasks in the pool would requeue
    /// them on a later crash and count them twice. Dead workers' pools
    /// were already drained into the requeue when they crashed.
    pub(crate) fn commit_merged(&self) {
        for (w, pool) in self.executed.iter().enumerate() {
            if !self.dead[w].load(Ordering::Acquire) {
                pool.lock().clear();
            }
        }
    }

    /// Worker crashes so far.
    pub(crate) fn crashes(&self) -> u64 {
        self.crashes.load(Ordering::Relaxed)
    }

    /// Tasks requeued so far (executed-but-lost plus still-queued).
    pub(crate) fn total_requeued(&self) -> u64 {
        self.requeued.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benu_graph::VertexId;

    fn task(v: VertexId) -> SearchTask {
        SearchTask::whole(v)
    }

    #[test]
    fn crash_free_workers_never_track_anything() {
        let ctx = RecoveryCtx::new(Arc::new(FaultPlan::benign(0)), 2);
        for v in 0..100 {
            assert_eq!(ctx.task_done(v as usize % 2, task(v)), TaskFate::Counted);
        }
        assert!(!ctx.is_dead(0) && !ctx.is_dead(1));
        assert_eq!(ctx.crashes(), 0);
        assert!(ctx.take_requeue().is_empty());
    }

    #[test]
    fn crash_boundary_requeues_everything_the_worker_held() {
        let plan = Arc::new(FaultPlan::builder(0).crash(1, 3).build());
        let ctx = RecoveryCtx::new(plan, 2);
        assert_eq!(ctx.task_done(1, task(10)), TaskFate::Counted);
        assert_eq!(ctx.task_done(1, task(11)), TaskFate::Counted);
        assert_eq!(ctx.task_done(1, task(12)), TaskFate::Crashed);
        assert!(ctx.is_dead(1));
        assert_eq!(ctx.crashes(), 1);
        let mut requeued: Vec<VertexId> = ctx.take_requeue().iter().map(|t| t.start).collect();
        requeued.sort_unstable();
        assert_eq!(requeued, vec![10, 11, 12], "all completed work is lost");
        assert_eq!(ctx.total_requeued(), 3);
        // Worker 0 is untouched by worker 1's crash.
        assert_eq!(ctx.task_done(0, task(0)), TaskFate::Counted);
    }

    #[test]
    fn tasks_finishing_on_a_dead_worker_are_lost_and_requeued() {
        let plan = Arc::new(FaultPlan::builder(0).crash(0, 1).build());
        let ctx = RecoveryCtx::new(plan, 1);
        assert_eq!(ctx.task_done(0, task(5)), TaskFate::Crashed);
        // A sibling thread finishing after the crash.
        assert_eq!(ctx.task_done(0, task(6)), TaskFate::Lost);
        let mut requeued: Vec<VertexId> = ctx.take_requeue().iter().map(|t| t.start).collect();
        requeued.sort_unstable();
        assert_eq!(requeued, vec![5, 6]);
    }

    #[test]
    fn committed_passes_survive_later_crashes() {
        // Regression: the executed pool must not span passes. A worker
        // whose pass-1 results were merged (durable) and which crashes
        // in a later pass may only requeue that later pass's tasks.
        let plan = Arc::new(FaultPlan::builder(0).crash(0, 3).build());
        let ctx = RecoveryCtx::new(plan, 2);
        assert_eq!(ctx.task_done(0, task(1)), TaskFate::Counted);
        assert_eq!(ctx.task_done(0, task(2)), TaskFate::Counted);
        ctx.commit_merged(); // pass boundary: results 1 and 2 merged
        assert_eq!(ctx.task_done(0, task(3)), TaskFate::Crashed);
        let requeued: Vec<VertexId> = ctx.take_requeue().iter().map(|t| t.start).collect();
        assert_eq!(requeued, vec![3], "committed tasks must stay counted");
        assert_eq!(ctx.total_requeued(), 1);
    }

    #[test]
    fn commit_does_not_touch_dead_workers() {
        let plan = Arc::new(FaultPlan::builder(0).crash(0, 1).build());
        let ctx = RecoveryCtx::new(plan, 1);
        assert_eq!(ctx.task_done(0, task(7)), TaskFate::Crashed);
        ctx.commit_merged();
        // The crash's requeue is intact; a later completion on the dead
        // worker is still lost-and-requeued.
        assert_eq!(ctx.task_done(0, task(8)), TaskFate::Lost);
        let mut requeued: Vec<VertexId> = ctx.take_requeue().iter().map(|t| t.start).collect();
        requeued.sort_unstable();
        assert_eq!(requeued, vec![7, 8]);
    }

    #[test]
    fn requeue_drains_once() {
        let ctx = RecoveryCtx::new(Arc::new(FaultPlan::benign(0)), 1);
        ctx.requeue_all(vec![task(1), task(2)]);
        assert_eq!(ctx.take_requeue().len(), 2);
        assert!(ctx.take_requeue().is_empty());
        assert_eq!(ctx.total_requeued(), 2);
    }
}
