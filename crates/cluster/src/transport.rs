//! The per-worker store transport.
//!
//! Every database access of a worker machine flows through one
//! [`Transport`], which owns the worker-side communication accounting:
//! bytes transferred, round trips issued, and how many of those round
//! trips were batched multi-gets. Centralising the counters here keeps
//! the rest of the runtime free of accounting code and guarantees the
//! per-worker sums reconcile with the store's own shard counters (the
//! `communication_accounting_is_consistent` test).

use benu_graph::{AdjSet, VertexId};
use benu_kvstore::KvStore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One worker's channel to the sharded store.
pub struct Transport {
    store: Arc<KvStore>,
    bytes: AtomicU64,
    requests: AtomicU64,
    batch_round_trips: AtomicU64,
}

impl Transport {
    /// Attaches a worker to the store.
    pub fn new(store: Arc<KvStore>) -> Self {
        Transport {
            store,
            bytes: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            batch_round_trips: AtomicU64::new(0),
        }
    }

    /// The attached store.
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Fetches one adjacency set (one round trip). `None` for unknown
    /// vertices — nothing is charged for a miss.
    pub fn fetch(&self, v: VertexId) -> Option<Arc<AdjSet>> {
        let adj = self.store.get(v)?;
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(adj.size_bytes() as u64, Ordering::Relaxed);
        Some(adj)
    }

    /// Fetches a batch in one round trip per touched shard. Slots of
    /// unknown vertices come back `None`.
    pub fn fetch_many(&self, vs: &[VertexId]) -> Vec<Option<Arc<AdjSet>>> {
        let batch = self.store.get_many(vs);
        self.requests
            .fetch_add(batch.round_trips, Ordering::Relaxed);
        self.batch_round_trips
            .fetch_add(batch.round_trips, Ordering::Relaxed);
        self.bytes.fetch_add(batch.bytes, Ordering::Relaxed);
        batch.values
    }

    /// Value bytes this worker has pulled over the wire.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Round trips this worker has issued (single gets plus one per shard
    /// touched by each batch).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// The subset of [`Transport::requests`] issued by batched multi-gets.
    pub fn batch_round_trips(&self) -> u64 {
        self.batch_round_trips.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benu_graph::gen;

    #[test]
    fn fetch_accounts_bytes_and_requests() {
        let g = gen::star(9);
        let t = Transport::new(Arc::new(KvStore::from_graph(&g, 2)));
        let adj = t.fetch(0).unwrap();
        assert_eq!(adj.len(), 9);
        assert_eq!(t.requests(), 1);
        assert_eq!(t.bytes(), 36);
        assert_eq!(t.batch_round_trips(), 0);
        assert!(t.fetch(100).is_none());
        assert_eq!(t.requests(), 1, "misses are free");
    }

    #[test]
    fn fetch_many_batches_round_trips() {
        let g = gen::cycle(8);
        let t = Transport::new(Arc::new(KvStore::from_graph(&g, 4)));
        let values = t.fetch_many(&[0, 4, 1]);
        assert!(values.iter().all(Option::is_some));
        assert_eq!(t.requests(), 2, "vertices 0 and 4 share a shard");
        assert_eq!(t.batch_round_trips(), 2);
        assert_eq!(t.bytes(), 3 * 8);
    }

    #[test]
    fn worker_counters_reconcile_with_store_counters() {
        let g = gen::barabasi_albert(50, 3, 2);
        let store = Arc::new(KvStore::from_graph(&g, 3));
        let t = Transport::new(Arc::clone(&store));
        t.fetch(1);
        t.fetch_many(&[2, 3, 4, 5]);
        let kv = store.stats();
        assert_eq!(t.bytes(), kv.bytes);
        assert_eq!(t.requests(), kv.requests);
    }
}
