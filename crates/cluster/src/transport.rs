//! The per-worker store transport.
//!
//! Every database access of a worker machine flows through one
//! [`Transport`], which owns the worker-side communication accounting:
//! bytes transferred, round trips issued, and how many of those round
//! trips were batched multi-gets. Centralising the counters here keeps
//! the rest of the runtime free of accounting code and guarantees the
//! per-worker sums reconcile with the store's own shard counters (the
//! `communication_accounting_is_consistent` test).
//!
//! A transport built with [`Transport::with_faults`] additionally fronts
//! the store with a [`benu_fault::FaultingStore`] and a
//! [`benu_fault::RetryPolicy`]: injected transient faults and timeouts
//! are retried with capped exponential backoff and deterministic jitter,
//! and only surface as a [`TransportError`] once the policy's attempts
//! are exhausted. Backoff waits, timeout waits and slow-shard latency
//! are **virtual time** — never slept, only charged into a thread-local penalty that
//! the worker folds into its busy-time accounting after each task (the
//! plan stays deterministic because no fault decision reads a clock).

use benu_fault::{FaultKind, FaultPlan, FaultingStore, RetryPolicy, StoreError};
use benu_graph::{AdjSet, VertexId};
use benu_kvstore::{CorruptValue, KvStore};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

thread_local! {
    /// Virtual latency (backoff + slow shards) charged to the task the
    /// current thread is executing; drained by
    /// [`Transport::take_task_penalty`] at each task boundary.
    static TASK_PENALTY_NANOS: Cell<u64> = const { Cell::new(0) };
}

/// A store request that kept failing after every retry the policy
/// allows — the transport's one unrecoverable condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransportError {
    /// The shard whose round trips kept failing.
    pub shard: usize,
    /// The vertex whose fetch (or whose shard-batch) failed.
    pub vertex: VertexId,
    /// How many attempts were spent before giving up.
    pub attempts: u32,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} unavailable for vertex {} after {} attempts",
            self.shard, self.vertex, self.attempts
        )
    }
}

impl std::error::Error for TransportError {}

/// Why a fetch failed, in the transport's error taxonomy:
/// [`FetchError::Unavailable`] is the retry-exhausted (or hopeless)
/// availability failure; [`FetchError::Corrupt`] means the bytes
/// arrived but failed to decode — permanent, since every replica
/// mirrors the same value, so it fails fast without touching the retry
/// budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchError {
    /// The shard kept refusing for longer than the retry policy allows.
    Unavailable(TransportError),
    /// The stored value decoded to garbage (see
    /// [`benu_kvstore::CorruptValue`]).
    Corrupt(CorruptValue),
}

impl FetchError {
    /// The availability view of the error, if that is what it is.
    pub fn as_unavailable(&self) -> Option<&TransportError> {
        match self {
            FetchError::Unavailable(err) => Some(err),
            FetchError::Corrupt(_) => None,
        }
    }

    /// The corruption view of the error, if that is what it is.
    pub fn as_corrupt(&self) -> Option<&CorruptValue> {
        match self {
            FetchError::Corrupt(err) => Some(err),
            FetchError::Unavailable(_) => None,
        }
    }
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::Unavailable(err) => err.fmt(f),
            FetchError::Corrupt(err) => err.fmt(f),
        }
    }
}

impl std::error::Error for FetchError {}

impl From<TransportError> for FetchError {
    fn from(err: TransportError) -> Self {
        FetchError::Unavailable(err)
    }
}

impl From<CorruptValue> for FetchError {
    fn from(err: CorruptValue) -> Self {
        FetchError::Corrupt(err)
    }
}

/// The fault-injection state of a chaos-enabled transport.
struct FaultState {
    store: FaultingStore,
    retry: RetryPolicy,
    transient: AtomicU64,
    timeouts: AtomicU64,
    retries: AtomicU64,
    backoff_nanos: AtomicU64,
    timeout_nanos: AtomicU64,
    slow_nanos: AtomicU64,
}

impl FaultState {
    /// Books an injected fault and, unless attempts are exhausted, the
    /// backoff before the next try. Returns `false` when the caller must
    /// give up.
    fn book_fault(&self, kind: FaultKind, key: u64, attempt: u32) -> bool {
        match kind {
            FaultKind::Transient => {
                self.transient.fetch_add(1, Ordering::Relaxed);
            }
            // Outages are intercepted by the fetch paths before any
            // booking: they are not retryable, so they never consume
            // retry budget or charge backoff.
            FaultKind::Outage => unreachable!("outages fail fast, not through the retry path"),
            FaultKind::Timeout => {
                // A timed-out round trip blocks for the plan's full
                // (virtual) timeout before the loss is detected, so the
                // wait is charged per attempt — even the final one.
                self.timeouts.fetch_add(1, Ordering::Relaxed);
                let wait = self.store.plan().timeout_wait().as_nanos() as u64;
                self.timeout_nanos.fetch_add(wait, Ordering::Relaxed);
                TASK_PENALTY_NANOS.with(|p| p.set(p.get() + wait));
            }
        }
        if attempt + 1 >= self.retry.max_attempts {
            return false;
        }
        self.retries.fetch_add(1, Ordering::Relaxed);
        let wait = self
            .retry
            .backoff(self.store.plan().seed(), key, attempt + 1);
        let nanos = wait.as_nanos() as u64;
        self.backoff_nanos.fetch_add(nanos, Ordering::Relaxed);
        TASK_PENALTY_NANOS.with(|p| p.set(p.get() + nanos));
        true
    }

    /// Charges the slow-shard penalty of a successful round trip.
    fn book_penalty(&self, penalty: Duration) {
        if penalty.is_zero() {
            return;
        }
        let nanos = penalty.as_nanos() as u64;
        self.slow_nanos.fetch_add(nanos, Ordering::Relaxed);
        TASK_PENALTY_NANOS.with(|p| p.set(p.get() + nanos));
    }
}

/// One worker's channel to the sharded store.
pub struct Transport {
    store: Arc<KvStore>,
    faults: Option<FaultState>,
    bytes: AtomicU64,
    requests: AtomicU64,
    batch_round_trips: AtomicU64,
}

impl Transport {
    /// Attaches a worker to the store (no fault injection).
    pub fn new(store: Arc<KvStore>) -> Self {
        Transport {
            store,
            faults: None,
            bytes: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            batch_round_trips: AtomicU64::new(0),
        }
    }

    /// Attaches a worker to the store behind `plan`, retrying injected
    /// faults with `retry`.
    pub fn with_faults(store: Arc<KvStore>, plan: Arc<FaultPlan>, retry: RetryPolicy) -> Self {
        retry.validate();
        Transport {
            faults: Some(FaultState {
                store: FaultingStore::new(Arc::clone(&store), plan),
                retry,
                transient: AtomicU64::new(0),
                timeouts: AtomicU64::new(0),
                retries: AtomicU64::new(0),
                backoff_nanos: AtomicU64::new(0),
                timeout_nanos: AtomicU64::new(0),
                slow_nanos: AtomicU64::new(0),
            }),
            store,
            bytes: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            batch_round_trips: AtomicU64::new(0),
        }
    }

    /// The attached store.
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Drains the virtual latency (backoff + slow shards) charged to the
    /// current thread since the last drain. Workers call this at each
    /// task boundary and fold the result into the task's duration.
    pub fn take_task_penalty() -> Duration {
        TASK_PENALTY_NANOS.with(|p| Duration::from_nanos(p.replace(0)))
    }

    /// Charges virtual latency to the current thread's task penalty.
    /// For layers that evaluate fault decisions themselves — e.g. a
    /// serving layer checking the plan's verdict in front of its own
    /// cache — but fold their backoff and timeout waits into the same
    /// virtual-time accounting the transport uses. Never slept.
    pub fn book_virtual(penalty: Duration) {
        if penalty.is_zero() {
            return;
        }
        TASK_PENALTY_NANOS.with(|p| p.set(p.get() + penalty.as_nanos() as u64));
    }

    fn account_single(&self, wire: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(wire, Ordering::Relaxed);
    }

    /// Fetches one adjacency set (one round trip). `Ok(None)` for unknown
    /// vertices — a permanent condition, never retried and never charged.
    /// Accounted bytes are **wire** bytes: the encoded value as stored,
    /// which with a compressing codec is smaller than the decoded set.
    ///
    /// # Errors
    ///
    /// [`FetchError::Unavailable`] when the shard's injected faults
    /// outlast the retry policy; [`FetchError::Corrupt`] when the value
    /// fails to decode (never retried — every replica mirrors the same
    /// bytes).
    pub fn fetch(&self, v: VertexId) -> Result<Option<Arc<AdjSet>>, FetchError> {
        let Some(faults) = &self.faults else {
            let Some((adj, wire)) = self.store.try_get_replica(v, 0)? else {
                return Ok(None);
            };
            self.account_single(wire);
            return Ok(Some(adj));
        };
        for attempt in 0..faults.retry.max_attempts {
            match faults.store.get(v, attempt) {
                Ok(Some((adj, wire))) => {
                    self.account_single(wire);
                    faults.book_penalty(faults.store.latency_penalty_routed(v, attempt));
                    return Ok(Some(adj));
                }
                Ok(None) => return Ok(None),
                // Every replica persistently dark: retrying cannot help,
                // so fail fast without touching the retry budget.
                Err(StoreError::Fault(fault)) if fault.kind == FaultKind::Outage => {
                    return Err(FetchError::Unavailable(TransportError {
                        shard: fault.shard,
                        vertex: v,
                        attempts: attempt + 1,
                    }));
                }
                Err(StoreError::Fault(fault)) => {
                    if !faults.book_fault(fault.kind, v as u64, attempt) {
                        return Err(FetchError::Unavailable(TransportError {
                            shard: fault.shard,
                            vertex: v,
                            attempts: faults.retry.max_attempts,
                        }));
                    }
                }
                // Corruption is permanent — replicas mirror the same
                // bytes, so retrying or failing over cannot help.
                Err(StoreError::Corrupt(err)) => return Err(FetchError::Corrupt(err)),
            }
        }
        unreachable!("retry loop returns on success or exhausted attempts")
    }

    /// Fetches a batch in one round trip per touched shard. Slots of
    /// unknown vertices come back `None`. A faulted batch fails as a
    /// unit and is retried as a unit.
    ///
    /// # Errors
    ///
    /// See [`Transport::fetch`]; the error names the first vertex routed
    /// to the failing shard.
    pub fn fetch_many(&self, vs: &[VertexId]) -> Result<Vec<Option<Arc<AdjSet>>>, FetchError> {
        let Some(faults) = &self.faults else {
            let batch = self.store.try_get_many_routed(vs, |_| 0)?;
            return Ok(self.account_batch(batch));
        };
        // The batch's deterministic retry key: the smallest vertex (the
        // same key the plan uses for its per-shard decisions).
        let key = vs.iter().copied().min().unwrap_or(0) as u64;
        for attempt in 0..faults.retry.max_attempts {
            match faults.store.get_many(vs, attempt) {
                Ok(batch) => {
                    faults.book_penalty(faults.store.batch_latency_penalty_routed(vs, attempt));
                    return Ok(self.account_batch(batch));
                }
                // A whole placement group is dark: hopeless this pass,
                // fail the batch fast.
                Err(StoreError::Fault(fault)) if fault.kind == FaultKind::Outage => {
                    return Err(FetchError::Unavailable(TransportError {
                        shard: fault.shard,
                        vertex: Self::batch_error_vertex(&self.store, vs, fault.shard),
                        attempts: attempt + 1,
                    }));
                }
                Err(StoreError::Fault(fault)) => {
                    if !faults.book_fault(fault.kind, key, attempt) {
                        return Err(FetchError::Unavailable(TransportError {
                            shard: fault.shard,
                            vertex: Self::batch_error_vertex(&self.store, vs, fault.shard),
                            attempts: faults.retry.max_attempts,
                        }));
                    }
                }
                Err(StoreError::Corrupt(err)) => return Err(FetchError::Corrupt(err)),
            }
        }
        unreachable!("retry loop returns on success or exhausted attempts")
    }

    /// The first vertex of `vs` whose placement involves `shard` — the
    /// representative named in a batch's [`TransportError`].
    fn batch_error_vertex(store: &KvStore, vs: &[VertexId], shard: usize) -> VertexId {
        vs.iter()
            .copied()
            .find(|&v| store.placement(v).any(|s| s == shard))
            .unwrap_or_default()
    }

    fn account_batch(&self, batch: benu_kvstore::BatchOutcome) -> Vec<Option<Arc<AdjSet>>> {
        self.requests
            .fetch_add(batch.round_trips, Ordering::Relaxed);
        self.batch_round_trips
            .fetch_add(batch.round_trips, Ordering::Relaxed);
        self.bytes.fetch_add(batch.bytes, Ordering::Relaxed);
        batch.values
    }

    /// Value bytes this worker has pulled over the wire.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Round trips this worker has issued (single gets plus one per shard
    /// touched by each batch). Faulted attempts transfer nothing and are
    /// not counted here — they appear in the fault counters instead.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// The subset of [`Transport::requests`] issued by batched multi-gets.
    pub fn batch_round_trips(&self) -> u64 {
        self.batch_round_trips.load(Ordering::Relaxed)
    }

    fn fault_counter(&self, pick: impl Fn(&FaultState) -> &AtomicU64) -> u64 {
        self.faults
            .as_ref()
            .map_or(0, |f| pick(f).load(Ordering::Relaxed))
    }

    /// Injected transient errors this worker absorbed.
    pub fn transient_faults(&self) -> u64 {
        self.fault_counter(|f| &f.transient)
    }

    /// Injected timeouts this worker absorbed.
    pub fn timeouts(&self) -> u64 {
        self.fault_counter(|f| &f.timeouts)
    }

    /// Retries this worker issued (one fewer than attempts per fault
    /// survived).
    pub fn retries(&self) -> u64 {
        self.fault_counter(|f| &f.retries)
    }

    /// Total virtual backoff charged into busy time.
    pub fn backoff_virtual(&self) -> Duration {
        Duration::from_nanos(self.fault_counter(|f| &f.backoff_nanos))
    }

    /// Total virtual timeout wait charged into busy time (one full
    /// [`FaultPlan::timeout_wait`] per injected timeout).
    pub fn timeout_virtual(&self) -> Duration {
        Duration::from_nanos(self.fault_counter(|f| &f.timeout_nanos))
    }

    /// Total virtual slow-shard latency charged into busy time.
    pub fn slow_virtual(&self) -> Duration {
        Duration::from_nanos(self.fault_counter(|f| &f.slow_nanos))
    }

    /// Advances the execution pass shard-outage decisions are evaluated
    /// against (1-based). Called by the runtime at pass barriers; a
    /// no-op on fault-free transports.
    pub fn set_pass(&self, pass: u32) {
        if let Some(faults) = &self.faults {
            faults.store.set_pass(pass);
        }
    }

    /// Times this worker's router stepped past a dead or faulted replica
    /// to try the next one in ring order.
    pub fn failovers(&self) -> u64 {
        self.faults
            .as_ref()
            .map_or(0, |f| f.store.failover_attempts())
    }

    /// Round trips this worker had served by a non-primary replica.
    pub fn failover_reads(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.store.failover_reads())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benu_graph::gen;

    #[test]
    fn fetch_accounts_bytes_and_requests() {
        let g = gen::star(9);
        let t = Transport::new(Arc::new(KvStore::from_graph(&g, 2)));
        let adj = t.fetch(0).unwrap().unwrap();
        assert_eq!(adj.len(), 9);
        assert_eq!(t.requests(), 1);
        assert_eq!(t.bytes(), 37, "wire bytes: 1 tag + 9 × u32");
        assert_eq!(t.batch_round_trips(), 0);
        assert!(t.fetch(100).unwrap().is_none());
        assert_eq!(t.requests(), 1, "misses are free");
    }

    #[test]
    fn fetch_many_batches_round_trips() {
        let g = gen::cycle(8);
        let t = Transport::new(Arc::new(KvStore::from_graph(&g, 4)));
        let values = t.fetch_many(&[0, 4, 1]).unwrap();
        assert!(values.iter().all(Option::is_some));
        assert_eq!(t.requests(), 2, "vertices 0 and 4 share a shard");
        assert_eq!(t.batch_round_trips(), 2);
        assert_eq!(t.bytes(), 3 * 9, "three values, each 1 tag + 2 × u32");
    }

    #[test]
    fn worker_counters_reconcile_with_store_counters() {
        let g = gen::barabasi_albert(50, 3, 2);
        let store = Arc::new(KvStore::from_graph(&g, 3));
        let t = Transport::new(Arc::clone(&store));
        t.fetch(1).unwrap();
        t.fetch_many(&[2, 3, 4, 5]).unwrap();
        let kv = store.stats();
        assert_eq!(t.bytes(), kv.bytes);
        assert_eq!(t.requests(), kv.requests);
    }

    #[test]
    fn faulting_transport_retries_to_success() {
        let g = gen::complete(16);
        let store = Arc::new(KvStore::from_graph(&g, 4));
        let plan = Arc::new(FaultPlan::builder(12).transient_rate(0.4).build());
        let t = Transport::with_faults(Arc::clone(&store), plan, RetryPolicy::default());
        let _ = Transport::take_task_penalty();
        for v in 0..16u32 {
            assert_eq!(t.fetch(v).unwrap().unwrap().len(), 15);
        }
        assert!(t.transient_faults() > 0, "rate 0.4 over 16 gets must fault");
        assert_eq!(t.retries(), t.transient_faults());
        assert!(t.backoff_virtual() > Duration::ZERO);
        assert_eq!(
            Transport::take_task_penalty(),
            t.backoff_virtual(),
            "backoff is charged to the calling thread"
        );
        // Accounting still reconciles: faulted attempts never reached
        // the store.
        assert_eq!(t.bytes(), store.stats().bytes);
        assert_eq!(t.requests(), store.stats().requests);
    }

    #[test]
    fn timeouts_charge_the_full_timeout_wait() {
        let g = gen::complete(16);
        let store = Arc::new(KvStore::from_graph(&g, 4));
        let wait = Duration::from_millis(25);
        let plan = Arc::new(
            FaultPlan::builder(8)
                .timeout_rate(0.4)
                .timeout_wait(wait)
                .build(),
        );
        let t = Transport::with_faults(store, plan, RetryPolicy::default());
        let _ = Transport::take_task_penalty();
        let wall = std::time::Instant::now();
        for v in 0..16u32 {
            assert!(t.fetch(v).unwrap().is_some());
        }
        let timeouts = t.timeouts();
        assert!(timeouts > 0, "rate 0.4 over 16 gets must time out");
        assert_eq!(
            t.timeout_virtual(),
            wait * timeouts as u32,
            "every timeout costs one full wait"
        );
        // The wait lands in the per-task penalty alongside the backoff,
        // and is never actually slept.
        assert_eq!(
            Transport::take_task_penalty(),
            t.timeout_virtual() + t.backoff_virtual()
        );
        assert!(wall.elapsed() < t.timeout_virtual());
    }

    #[test]
    fn exhausted_retries_surface_a_contextual_error() {
        let g = gen::complete(4);
        let store = Arc::new(KvStore::from_graph(&g, 1));
        let plan = Arc::new(FaultPlan::builder(0).transient_rate(0.995).build());
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let t = Transport::with_faults(store, plan, policy);
        let err = (0..4u32)
            .find_map(|v| t.fetch(v).err())
            .expect("rate 0.995 with 3 attempts must exhaust somewhere");
        assert!(err.to_string().contains("after 3 attempts"));
        let err = err
            .as_unavailable()
            .expect("exhaustion is an availability error");
        assert_eq!(err.attempts, 3);
        assert_eq!(err.shard, 0);
        let _ = Transport::take_task_penalty();
    }

    #[test]
    fn slow_shards_charge_virtual_latency_not_wall_time() {
        let g = gen::cycle(8);
        let store = Arc::new(KvStore::from_graph(&g, 4));
        let plan = Arc::new(
            FaultPlan::builder(1)
                .base_latency(Duration::from_millis(10))
                .slow_shard(0, 3.0)
                .build(),
        );
        let t = Transport::with_faults(store, plan, RetryPolicy::default());
        let _ = Transport::take_task_penalty();
        let wall = std::time::Instant::now();
        t.fetch(0).unwrap(); // shard 0: slow
        t.fetch(1).unwrap(); // shard 1: healthy
        t.fetch_many(&[2, 4]).unwrap(); // shards 2 and 0
                                        // 2 slow round trips × 10ms × (3 − 1) = 40ms of virtual latency.
        assert_eq!(t.slow_virtual(), Duration::from_millis(40));
        assert_eq!(Transport::take_task_penalty(), Duration::from_millis(40));
        assert!(
            wall.elapsed() < Duration::from_millis(40),
            "penalties must be charged, not slept"
        );
    }

    #[test]
    fn replicated_transport_rides_out_a_shard_outage() {
        let g = gen::complete(16);
        let store = Arc::new(KvStore::from_graph_replicated(&g, 4, 2));
        let plan = Arc::new(FaultPlan::builder(0).shard_outage(0, 1).build());
        let t = Transport::with_faults(Arc::clone(&store), plan, RetryPolicy::default());
        let _ = Transport::take_task_penalty();
        for v in 0..16u32 {
            assert_eq!(t.fetch(v).unwrap().unwrap().len(), 15);
        }
        assert_eq!(t.retries(), 0, "failover happens before the retry budget");
        assert_eq!(t.transient_faults(), 0);
        assert!(t.failovers() > 0);
        assert_eq!(
            t.failover_reads(),
            4,
            "the four shard-0 vertices are served by the mirror"
        );
        // Accounting reconciles: every serving round trip is real.
        assert_eq!(t.bytes(), store.stats().bytes);
        assert_eq!(t.requests(), store.stats().requests);
        assert_eq!(store.shard_stats(0).requests, 0, "the dark shard is silent");
    }

    #[test]
    fn unreplicated_outage_fails_fast_without_retries() {
        let g = gen::complete(8);
        let store = Arc::new(KvStore::from_graph(&g, 4));
        let plan = Arc::new(FaultPlan::builder(0).shard_outage(1, 1).build());
        let t = Transport::with_faults(store, plan, RetryPolicy::default());
        let err = t.fetch(1).unwrap_err();
        let err = err
            .as_unavailable()
            .expect("outage is an availability error");
        assert_eq!(err.shard, 1);
        assert_eq!(
            err.attempts, 1,
            "outages are hopeless — no retry budget spent"
        );
        assert_eq!(t.retries(), 0);
        assert_eq!(t.backoff_virtual(), Duration::ZERO);
        // Batches over the dark shard fail fast too, naming a vertex
        // placed on it.
        let err = t.fetch_many(&[0, 1, 2]).unwrap_err();
        let err = err.as_unavailable().unwrap();
        assert_eq!(err.shard, 1);
        assert_eq!(err.vertex, 1);
        let _ = Transport::take_task_penalty();
    }

    #[test]
    fn outage_onset_follows_set_pass() {
        let g = gen::complete(8);
        let store = Arc::new(KvStore::from_graph(&g, 4));
        let plan = Arc::new(FaultPlan::builder(0).shard_outage(2, 2).build());
        let t = Transport::with_faults(store, plan, RetryPolicy::default());
        assert!(t.fetch(2).is_ok(), "pass 1 predates the outage");
        t.set_pass(2);
        assert!(t.fetch(2).is_err());
        t.set_pass(1);
        assert!(t.fetch(2).is_ok(), "windowing is driven purely by the pass");
        let _ = Transport::take_task_penalty();
    }

    #[test]
    fn corrupt_values_fail_fast_as_their_own_error_kind() {
        let g = gen::cycle(6);
        let mut store = KvStore::from_graph_replicated(&g, 2, 2);
        assert!(store.corrupt_value(3));
        let store = Arc::new(store);
        // Plain transport: a structured error, not a panic.
        let t = Transport::new(Arc::clone(&store));
        let err = t.fetch(3).unwrap_err();
        let corrupt = err.as_corrupt().expect("decode failure is corruption");
        assert_eq!(corrupt.vertex, 3);
        assert!(err.as_unavailable().is_none());
        assert!(err.to_string().contains("corrupt value for vertex 3"));
        // Chaos transport: corruption never burns retry budget — every
        // replica mirrors the same bytes, so retrying cannot help.
        let chaos = Transport::with_faults(
            Arc::clone(&store),
            Arc::new(FaultPlan::benign(0)),
            RetryPolicy::default(),
        );
        assert!(chaos.fetch(3).unwrap_err().as_corrupt().is_some());
        assert_eq!(chaos.retries(), 0);
        // Batches surface the same taxonomy, and healthy keys still serve.
        assert!(t.fetch_many(&[0, 3]).unwrap_err().as_corrupt().is_some());
        assert!(t.fetch(0).unwrap().is_some());
        let _ = Transport::take_task_penalty();
    }

    #[test]
    fn benign_plan_transport_matches_plain_transport() {
        let g = gen::barabasi_albert(40, 3, 7);
        let store = Arc::new(KvStore::from_graph(&g, 2));
        let plain = Transport::new(Arc::clone(&store));
        let chaos = Transport::with_faults(
            Arc::clone(&store),
            Arc::new(FaultPlan::benign(0)),
            RetryPolicy::default(),
        );
        for v in 0..40u32 {
            assert_eq!(
                plain.fetch(v).unwrap().is_some(),
                chaos.fetch(v).unwrap().is_some()
            );
        }
        assert_eq!(plain.bytes(), chaos.bytes());
        assert_eq!(chaos.transient_faults() + chaos.timeouts(), 0);
        let _ = Transport::take_task_penalty();
    }
}
