//! The cache-aware communication upper bound of paper §V-A.
//!
//! With a database cache of capacity `C` per machine and `w` threads, let
//! `R` be the largest radius with `C ≥ w·H_G^R` (the cache can hold the
//! R-hop neighborhood of any vertex for every thread). Split the matching
//! order `O : u_{k1}, …, u_{kβ}, …, u_{kα}, …, u_{kn}` where the first `α`
//! vertices cover every pattern edge and the `r'`-hop pattern neighborhood
//! of `u_{kβ}` contains `u_{kβ}..u_{kα}` for some `r' ≤ R`. Then the
//! number of database queries is
//!
//! `O( Σ_{i=1..β} |R_G(P_i)|  +  |R_G(P_β)| · max_v |γ_G^{r'}(v)| )`
//!
//! and, when the cache exceeds the data graph, the tighter bound
//! `O(p·|V(G)|)` holds regardless of the pattern.

use benu_graph::neighborhood::{cacheable_radius, r_hop_vertex_count};
use benu_graph::Graph;
use benu_plan::cost::order_prefix_mask;
use benu_plan::{CardinalityEstimator, ExecutionPlan};

/// The modeled communication upper bound, in database queries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommBound {
    /// The bound on database queries.
    pub queries: f64,
    /// The cache radius `R` the capacity supports.
    pub radius: usize,
    /// The chosen split point `β` (1-based prefix length).
    pub beta: usize,
    /// True when the whole-graph `O(p·N)` bound applied.
    pub whole_graph: bool,
}

/// Computes the §V-A communication upper bound for running `plan` on `g`
/// with per-machine cache capacity `capacity_bytes`, `threads` working
/// threads per machine and `workers` machines.
pub fn communication_upper_bound(
    plan: &ExecutionPlan,
    g: &Graph,
    estimator: &dyn CardinalityEstimator,
    capacity_bytes: usize,
    threads: usize,
    workers: usize,
) -> CommBound {
    let n = g.num_vertices() as f64;
    // Whole-graph case: every worker faults each adjacency set at most
    // once.
    if capacity_bytes >= g.adjacency_bytes() {
        return CommBound {
            queries: workers as f64 * n,
            radius: usize::MAX,
            beta: 0,
            whole_graph: true,
        };
    }
    let order = &plan.matching_order;
    let pattern = &plan.pattern;
    let alpha = benu_pattern::cover::cover_prefix_len(pattern, order);
    let max_r = pattern.num_vertices(); // pattern radius bound
    let radius = cacheable_radius(g, capacity_bytes, threads, max_r, 64);

    // Hop distances within the pattern from each vertex (BFS).
    let dist_from = |src: usize| -> Vec<usize> {
        let nv = pattern.num_vertices();
        let mut dist = vec![usize::MAX; nv];
        let mut frontier = vec![src];
        dist[src] = 0;
        while let Some(u) = frontier.pop() {
            for w in pattern.neighbors(u) {
                if dist[w] > dist[u] + 1 {
                    dist[w] = dist[u] + 1;
                    frontier.push(w);
                }
            }
        }
        dist
    };

    // Try every split point β; keep the smallest bound among feasible
    // (r' ≤ R) choices. β = α is always feasible with r' = 0.
    let mut best: Option<CommBound> = None;
    // Precompute max_v |γ_G^{r}(v)| lazily per radius.
    let mut gamma_cache: Vec<Option<f64>> = vec![None; radius + 2];
    let mut max_gamma = |r: usize, g: &Graph| -> f64 {
        let r = r.min(radius);
        if let Some(v) = gamma_cache[r] {
            return v;
        }
        // Sample hubs: the maximizer is a hub in power-law graphs.
        let mut verts: Vec<_> = g.vertices().collect();
        verts.sort_unstable_by_key(|&v| std::cmp::Reverse(g.degree(v)));
        verts.truncate(64);
        let m = verts
            .into_iter()
            .map(|v| r_hop_vertex_count(g, v, r))
            .max()
            .unwrap_or(0) as f64;
        gamma_cache[r] = Some(m);
        m
    };

    for beta in 1..=alpha {
        let dist = dist_from(order[beta - 1]);
        let r_needed = order[beta - 1..alpha]
            .iter()
            .map(|&u| dist[u])
            .max()
            .unwrap_or(0);
        if r_needed > radius {
            continue;
        }
        // Σ_{i=1..β} |R(P_i)|.
        let mut prefix_cost = 0.0;
        for i in 1..=beta {
            let mask = order_prefix_mask(order, i);
            prefix_cost += estimator.estimate_pattern_subset(pattern, mask);
        }
        let r_beta = estimator.estimate_pattern_subset(pattern, order_prefix_mask(order, beta));
        let queries = prefix_cost + r_beta * max_gamma(r_needed, g);
        let candidate = CommBound {
            queries,
            radius,
            beta,
            whole_graph: false,
        };
        if best.is_none_or(|b| candidate.queries < b.queries) {
            best = Some(candidate);
        }
    }
    best.unwrap_or(CommBound {
        // No feasible split: fall back to the uncached plan cost.
        queries: benu_plan::cost::estimate_communication_cost(plan, estimator),
        radius,
        beta: alpha,
        whole_graph: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use benu_graph::gen;
    use benu_pattern::queries;
    use benu_plan::{GraphStatsEstimator, PlanBuilder};

    #[test]
    fn whole_graph_cache_gives_pn_bound() {
        let g = gen::barabasi_albert(200, 3, 1);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let est = GraphStatsEstimator::new(g.num_vertices(), g.num_edges());
        let bound = communication_upper_bound(&plan, &g, &est, usize::MAX, 2, 4);
        assert!(bound.whole_graph);
        assert_eq!(bound.queries, 4.0 * 200.0);
    }

    #[test]
    fn bigger_cache_never_worsens_the_bound() {
        let g = gen::barabasi_albert(300, 4, 5);
        let plan = PlanBuilder::new(&queries::q1()).best_plan();
        let est = GraphStatsEstimator::new(g.num_vertices(), g.num_edges());
        let small = communication_upper_bound(&plan, &g, &est, 1 << 10, 2, 4);
        let large = communication_upper_bound(&plan, &g, &est, 1 << 22, 2, 4);
        assert!(large.queries <= small.queries * 1.0001);
    }

    #[test]
    fn bound_is_finite_and_positive() {
        let g = gen::erdos_renyi_gnm(150, 600, 9);
        for (name, p) in queries::evaluation_queries() {
            let plan = PlanBuilder::new(&p).best_plan();
            let est = GraphStatsEstimator::new(g.num_vertices(), g.num_edges());
            let bound = communication_upper_bound(&plan, &g, &est, 1 << 16, 2, 4);
            assert!(bound.queries.is_finite() && bound.queries > 0.0, "{name}");
        }
    }
}
