//! Cluster configuration.

use crate::schedule::SchedulerKind;
use benu_fault::RetryPolicy;
use benu_kvstore::CodecKind;
use benu_plan::EstimatorKind;

/// How worker threads drive the execution engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Task-at-a-time depth-first backtracking (the paper's execution
    /// model; minimal memory, one store lookup per DBQ miss).
    #[default]
    Dfs,
    /// Memory-bounded BFS/DFS hybrid: each thread expands a frontier of
    /// partial embeddings breadth-first while the byte budget allows
    /// (batching sibling tasks' adjacency fetches into one deduplicated
    /// multi-get per level) and spills back to DFS when it doesn't.
    /// Match counts and sets are byte-identical to [`ExecMode::Dfs`].
    Hybrid,
}

impl ExecMode {
    /// Stable lower-case name (used in reports and CLI flags).
    pub fn name(&self) -> &'static str {
        match self {
            ExecMode::Dfs => "dfs",
            ExecMode::Hybrid => "hybrid",
        }
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ExecMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dfs" => Ok(ExecMode::Dfs),
            "hybrid" => Ok(ExecMode::Hybrid),
            other => Err(format!("unknown exec mode '{other}' (dfs|hybrid)")),
        }
    }
}

/// Shape and tuning of the simulated cluster. The defaults mirror the
/// paper's deployment scaled to a single machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterConfig {
    /// Number of logical worker machines (the paper uses 16).
    pub workers: usize,
    /// Working threads per worker (the paper uses 24).
    pub threads_per_worker: usize,
    /// Database-cache capacity per worker, in bytes (the paper gives each
    /// reducer 30 GB).
    pub cache_capacity_bytes: usize,
    /// Internal shard count of each worker's cache (contention tuning
    /// only).
    pub cache_shards: usize,
    /// Task-splitting degree threshold τ (paper: 500); 0 disables
    /// splitting. Ignored when [`ClusterConfig::tau_auto`] is set.
    pub tau: usize,
    /// Pick τ adaptively from the start-vertex degree distribution
    /// instead of using the static [`ClusterConfig::tau`]: the smallest
    /// threshold whose extra subtasks stay within a per-lane budget
    /// (journal refinement of paper §V-B), so hub-vertex skew stops
    /// serializing behind one worker without flooding the scheduler.
    /// The chosen value is reported as `RunOutcome::effective_tau`.
    pub tau_auto: bool,
    /// Run engines with pooled execution buffers (steady-state
    /// allocation-free hot loop). On by default; turning it off restores
    /// the allocate-per-instruction baseline for A/B measurement.
    pub pooled_buffers: bool,
    /// Per-thread triangle-cache capacity in entries.
    pub triangle_cache_entries: usize,
    /// Record per-task wall-clock durations (needed by the Fig. 9
    /// harness; off by default to keep runs lean).
    pub collect_task_times: bool,
    /// Task scheduling policy (static round-robin by default, matching
    /// the paper's even shuffle).
    pub scheduler: SchedulerKind,
    /// Prefetch each task's frontier (the start vertex's neighbourhood)
    /// in one batched round trip before executing it. Trades bytes for
    /// round trips; only active when the database cache is enabled.
    pub prefetch_frontier: bool,
    /// How transports retry injected transient store faults (capped
    /// exponential backoff with deterministic jitter). Only consulted
    /// when a fault plan is installed on the cluster.
    pub retry: RetryPolicy,
    /// Speculatively re-execute straggler tasks whose duration exceeds
    /// this busy-time quantile (e.g. `Some(0.95)`), taking the faster
    /// attempt's timing. `None` disables speculation. Speculative
    /// attempts never contribute matches, so counts stay exact.
    pub speculate_quantile: Option<f64>,
    /// Store replication factor `R`: every vertex's value lives on its
    /// primary shard plus the next `R − 1` shards in ring order, and
    /// reads fail over along that ring. `1` (the default) is the
    /// single-copy store; `R ≥ 2` survives whole-shard outages as long
    /// as one replica of every placement group remains. Fixed at graph
    /// load, like the shard count.
    pub replication: usize,
    /// How worker threads drive the engine: classic task-at-a-time DFS
    /// (the default) or the memory-bounded BFS/DFS hybrid with
    /// frontier-batched store reads.
    pub exec_mode: ExecMode,
    /// Per-worker frontier byte budget for [`ExecMode::Hybrid`] (split
    /// evenly across the worker's threads); `0` means unbounded. Ignored
    /// under [`ExecMode::Dfs`].
    pub memory_budget_bytes: usize,
    /// Wire codec for stored adjacency values. Fixed at graph load, like
    /// the shard count; every replica of a value carries the same bytes.
    /// [`CodecKind::RawU32`] (the default) stores ids verbatim;
    /// [`CodecKind::DeltaVarint`] delta-encodes the sorted lists, cutting
    /// `run.store.bytes` roughly in half on power-law graphs. Decoded
    /// sets are byte-identical across codecs.
    pub codec: CodecKind,
    /// Which cardinality model calibrates plan compilation through
    /// [`crate::Cluster::plan_builder`]: the paper's static Erdős–Rényi
    /// model (the default), the degree-moment Chung-Lu model computed
    /// from the resident degree array, or feedback-driven re-planning
    /// from a previous run's observed per-instruction cardinalities
    /// (Chung-Lu until an observation is supplied).
    pub estimator: EstimatorKind,
    /// Collect a per-start-vertex observed-cost profile
    /// ([`crate::CostProfile`]) during the run, exposed as
    /// `RunOutcome::cost_profile`. Installing it back via
    /// [`crate::Cluster::set_cost_profile`] switches task splitting and
    /// initial placement from degree-based `auto_tau` to observed-cost
    /// driven. DFS execution only (the hybrid engine reports batch-level
    /// metrics); off by default.
    pub collect_cost_profile: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: 4,
            threads_per_worker: 2,
            cache_capacity_bytes: 64 << 20,
            cache_shards: 8,
            tau: 500,
            tau_auto: false,
            pooled_buffers: true,
            triangle_cache_entries: 1 << 14,
            collect_task_times: false,
            scheduler: SchedulerKind::Static,
            prefetch_frontier: false,
            retry: RetryPolicy::default(),
            speculate_quantile: None,
            replication: 1,
            exec_mode: ExecMode::Dfs,
            memory_budget_bytes: 0,
            codec: CodecKind::RawU32,
            estimator: EstimatorKind::Er,
            collect_cost_profile: false,
        }
    }
}

impl ClusterConfig {
    /// Starts a builder from the defaults.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder(ClusterConfig::default())
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics on zero workers, threads or cache shards.
    pub fn validate(&self) {
        assert!(self.workers >= 1, "need at least one worker");
        assert!(self.threads_per_worker >= 1, "need at least one thread");
        assert!(self.cache_shards >= 1, "need at least one cache shard");
        self.retry.validate();
        assert!(
            (1..=self.workers).contains(&self.replication),
            "replication factor must be within 1..=workers (one shard per worker)"
        );
        if let Some(q) = self.speculate_quantile {
            assert!(
                (0.0..1.0).contains(&q),
                "speculation quantile must be in [0, 1)"
            );
        }
    }
}

/// Fluent builder for [`ClusterConfig`].
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfigBuilder(ClusterConfig);

impl ClusterConfigBuilder {
    /// Number of logical worker machines.
    pub fn workers(mut self, n: usize) -> Self {
        self.0.workers = n;
        self
    }

    /// Working threads per worker.
    pub fn threads_per_worker(mut self, n: usize) -> Self {
        self.0.threads_per_worker = n;
        self
    }

    /// Per-worker database-cache capacity in bytes.
    pub fn cache_capacity_bytes(mut self, n: usize) -> Self {
        self.0.cache_capacity_bytes = n;
        self
    }

    /// Internal cache shard count.
    pub fn cache_shards(mut self, n: usize) -> Self {
        self.0.cache_shards = n;
        self
    }

    /// Task-splitting threshold τ (0 disables splitting).
    pub fn tau(mut self, tau: usize) -> Self {
        self.0.tau = tau;
        self
    }

    /// Pick τ adaptively from the degree distribution (overrides
    /// [`ClusterConfigBuilder::tau`]).
    pub fn tau_auto(mut self, yes: bool) -> Self {
        self.0.tau_auto = yes;
        self
    }

    /// Run engines with pooled execution buffers (on by default).
    pub fn pooled_buffers(mut self, yes: bool) -> Self {
        self.0.pooled_buffers = yes;
        self
    }

    /// Per-thread triangle-cache entries.
    pub fn triangle_cache_entries(mut self, n: usize) -> Self {
        self.0.triangle_cache_entries = n;
        self
    }

    /// Record per-task durations.
    pub fn collect_task_times(mut self, yes: bool) -> Self {
        self.0.collect_task_times = yes;
        self
    }

    /// Task scheduling policy.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.0.scheduler = kind;
        self
    }

    /// Prefetch each task's frontier in one batched round trip.
    pub fn prefetch_frontier(mut self, yes: bool) -> Self {
        self.0.prefetch_frontier = yes;
        self
    }

    /// Retry policy for injected transient store faults.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.0.retry = policy;
        self
    }

    /// Busy-time quantile past which tasks are speculatively re-executed
    /// (`None` disables speculation).
    pub fn speculate_quantile(mut self, quantile: Option<f64>) -> Self {
        self.0.speculate_quantile = quantile;
        self
    }

    /// Store replication factor `R` (ring placement; `1` = single copy).
    pub fn replication(mut self, r: usize) -> Self {
        self.0.replication = r;
        self
    }

    /// Engine driving mode (DFS or the memory-bounded hybrid).
    pub fn exec_mode(mut self, mode: ExecMode) -> Self {
        self.0.exec_mode = mode;
        self
    }

    /// Per-worker frontier byte budget for hybrid execution (`0` =
    /// unbounded).
    pub fn memory_budget_bytes(mut self, n: usize) -> Self {
        self.0.memory_budget_bytes = n;
        self
    }

    /// Wire codec for stored adjacency values.
    pub fn codec(mut self, codec: CodecKind) -> Self {
        self.0.codec = codec;
        self
    }

    /// Cardinality model for plan compilation.
    pub fn estimator(mut self, kind: EstimatorKind) -> Self {
        self.0.estimator = kind;
        self
    }

    /// Collect the per-start-vertex observed-cost profile during runs.
    pub fn collect_cost_profile(mut self, yes: bool) -> Self {
        self.0.collect_cost_profile = yes;
        self
    }

    /// Finalises the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn build(self) -> ClusterConfig {
        self.0.validate();
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_overrides_defaults() {
        let c = ClusterConfig::builder()
            .workers(16)
            .threads_per_worker(24)
            .tau(500)
            .cache_capacity_bytes(30 << 30)
            .build();
        assert_eq!(c.workers, 16);
        assert_eq!(c.threads_per_worker, 24);
        assert_eq!(c.cache_capacity_bytes, 30 << 30);
    }

    // API-audit completeness: every public `ClusterConfig` field must be
    // settable through the builder. A fully-non-default config built
    // fluently must equal the same config written as a struct literal —
    // adding a field without a builder method breaks this test.
    #[test]
    fn builder_covers_every_public_field() {
        let retry = RetryPolicy {
            max_attempts: 7,
            ..RetryPolicy::default()
        };
        let built = ClusterConfig::builder()
            .workers(5)
            .threads_per_worker(3)
            .cache_capacity_bytes(1 << 22)
            .cache_shards(2)
            .tau(123)
            .tau_auto(true)
            .pooled_buffers(false)
            .triangle_cache_entries(64)
            .collect_task_times(true)
            .scheduler(SchedulerKind::WorkStealing)
            .prefetch_frontier(true)
            .retry(retry)
            .speculate_quantile(Some(0.9))
            .replication(2)
            .exec_mode(ExecMode::Hybrid)
            .memory_budget_bytes(1 << 20)
            .codec(CodecKind::DeltaVarint)
            .estimator(EstimatorKind::ChungLu)
            .collect_cost_profile(true)
            .build();
        let literal = ClusterConfig {
            workers: 5,
            threads_per_worker: 3,
            cache_capacity_bytes: 1 << 22,
            cache_shards: 2,
            tau: 123,
            tau_auto: true,
            pooled_buffers: false,
            triangle_cache_entries: 64,
            collect_task_times: true,
            scheduler: SchedulerKind::WorkStealing,
            prefetch_frontier: true,
            retry,
            speculate_quantile: Some(0.9),
            replication: 2,
            exec_mode: ExecMode::Hybrid,
            memory_budget_bytes: 1 << 20,
            codec: CodecKind::DeltaVarint,
            estimator: EstimatorKind::ChungLu,
            collect_cost_profile: true,
        };
        assert_eq!(built, literal);
        // Every field above differs from its default, so a builder
        // method silently dropping its write would fail the comparison.
        let d = ClusterConfig::default();
        assert_ne!(built.workers, d.workers);
        assert_ne!(built.threads_per_worker, d.threads_per_worker);
        assert_ne!(built.cache_capacity_bytes, d.cache_capacity_bytes);
        assert_ne!(built.cache_shards, d.cache_shards);
        assert_ne!(built.tau, d.tau);
        assert_ne!(built.tau_auto, d.tau_auto);
        assert_ne!(built.pooled_buffers, d.pooled_buffers);
        assert_ne!(built.triangle_cache_entries, d.triangle_cache_entries);
        assert_ne!(built.collect_task_times, d.collect_task_times);
        assert_ne!(built.scheduler, d.scheduler);
        assert_ne!(built.prefetch_frontier, d.prefetch_frontier);
        assert_ne!(built.retry, d.retry);
        assert_ne!(built.speculate_quantile, d.speculate_quantile);
        assert_ne!(built.replication, d.replication);
        assert_ne!(built.exec_mode, d.exec_mode);
        assert_ne!(built.memory_budget_bytes, d.memory_budget_bytes);
        assert_ne!(built.codec, d.codec);
        assert_ne!(built.estimator, d.estimator);
        assert_ne!(built.collect_cost_profile, d.collect_cost_profile);
    }

    #[test]
    fn exec_mode_round_trips_through_names() {
        assert_eq!(ExecMode::default(), ExecMode::Dfs);
        for mode in [ExecMode::Dfs, ExecMode::Hybrid] {
            assert_eq!(mode.name().parse::<ExecMode>().unwrap(), mode);
            assert_eq!(mode.to_string(), mode.name());
        }
        assert!("bfs".parse::<ExecMode>().is_err());
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn replication_beyond_worker_count_rejected() {
        ClusterConfig::builder().workers(2).replication(3).build();
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn zero_replication_rejected() {
        ClusterConfig::builder().replication(0).build();
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        ClusterConfig::builder().workers(0).build();
    }

    #[test]
    fn default_is_valid() {
        ClusterConfig::default().validate();
    }

    #[test]
    fn default_scheduler_is_the_papers_static_shuffle() {
        let c = ClusterConfig::default();
        assert_eq!(c.scheduler, SchedulerKind::Static);
        assert!(!c.prefetch_frontier);
        let ws = ClusterConfig::builder()
            .scheduler(SchedulerKind::WorkStealing)
            .prefetch_frontier(true)
            .build();
        assert_eq!(ws.scheduler, SchedulerKind::WorkStealing);
        assert!(ws.prefetch_frontier);
    }
}
