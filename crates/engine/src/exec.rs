//! The backtracking interpreter (paper Algorithm 1/2 with BENU plans).
//!
//! Execution walks the compiled instruction list; every `Foreach` opens a
//! nested loop realised as recursion. Two properties keep the hot path
//! allocation-free and faithful to the paper:
//!
//! * intersection targets write into per-register scratch buffers that are
//!   reused across executions (take/put-back around recursion);
//! * an empty intersection result aborts the current branch immediately —
//!   the "doomed-to-fail partial match" pruning that motivates on-demand
//!   shuffling.

use crate::compile::{CFilter, CInstr, COperand, CompiledPlan};
use crate::consumer::MatchConsumer;
use crate::expand;
use crate::source::DataSource;
use crate::task::SearchTask;
use benu_cache::{CliqueCache, TriangleCache};
use benu_graph::ops::{intersect_into, intersect_many_into};
use benu_graph::view;
use benu_graph::{AdjSet, AdjView, TotalOrder, VertexId};
use benu_plan::FilterOp;
use std::sync::Arc;

/// Marker for an unmapped pattern vertex.
pub(crate) const UNSET: VertexId = VertexId::MAX;

/// Default capacity of the per-thread triangle cache (entries).
pub const DEFAULT_TRIANGLE_CACHE_ENTRIES: usize = 1 << 14;

/// Per-run metrics accumulated by the engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TaskMetrics {
    /// Embeddings found (expanded count for compressed plans).
    pub matches: u64,
    /// Compressed codes emitted (zero for uncompressed plans).
    pub codes: u64,
    /// Bytes of compressed output (helve vertices + image-set entries,
    /// 4 bytes each); the "output size" lever of VCBC.
    pub code_bytes: u64,
    /// DBQ instruction executions (cache hits included).
    pub dbq_executions: u64,
    /// INT instruction executions.
    pub int_executions: u64,
    /// TRC instruction executions.
    pub trc_executions: u64,
    /// KCache (clique-cache, §IV-B extension) instruction executions.
    /// Counted separately from `trc_executions` so clique-cached plans do
    /// not inflate the triangle-cache numbers.
    pub kcache_executions: u64,
    /// Candidate vertices iterated by ENU (`Foreach`) loops — the raw
    /// backtracking branch count before label filtering.
    pub enu_candidates: u64,
    /// Per-instruction observed cardinalities, indexed by the compiled
    /// plan's instruction slot (`CInstr` and `Instruction` indices align
    /// one-to-one). Deterministic and cache/pooling-independent: cache
    /// hits record the same output sizes a cold execution would. Feeds
    /// [`benu_plan::FeedbackEstimator`].
    pub obs: benu_plan::PlanObs,
}

impl std::ops::AddAssign for TaskMetrics {
    fn add_assign(&mut self, rhs: Self) {
        self.matches += rhs.matches;
        self.codes += rhs.codes;
        self.code_bytes += rhs.code_bytes;
        self.dbq_executions += rhs.dbq_executions;
        self.int_executions += rhs.int_executions;
        self.trc_executions += rhs.trc_executions;
        self.kcache_executions += rhs.kcache_executions;
        self.enu_candidates += rhs.enu_candidates;
        self.obs += rhs.obs;
    }
}

impl TaskMetrics {
    /// Adds this accumulator into the registry's per-instruction-type
    /// counters (`engine.*`). Called once per merged batch — per worker
    /// thread or per run — never on the per-instruction hot path.
    pub fn record_into(&self, registry: &benu_obs::Registry) {
        registry.counter("engine.matches").add(self.matches);
        registry.counter("engine.codes").add(self.codes);
        registry.counter("engine.code_bytes").add(self.code_bytes);
        registry
            .counter("engine.dbq_executions")
            .add(self.dbq_executions);
        registry
            .counter("engine.int_executions")
            .add(self.int_executions);
        registry
            .counter("engine.trc_executions")
            .add(self.trc_executions);
        registry
            .counter("engine.kcache_executions")
            .add(self.kcache_executions);
        registry
            .counter("engine.enu_candidates")
            .add(self.enu_candidates);
        let (obs_candidates, obs_survivors) = self.obs.totals();
        registry
            .counter("engine.obs_candidates")
            .add(obs_candidates);
        registry.counter("engine.obs_survivors").add(obs_survivors);
    }
}

/// Effectiveness counters of the per-engine execution buffer pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `take` calls served by a recycled buffer (no allocation).
    pub hits: u64,
    /// `take` calls that allocated a fresh buffer (pool empty or
    /// pooling disabled).
    pub misses: u64,
    /// Buffers handed back for reuse.
    pub returns: u64,
}

impl std::ops::AddAssign for PoolStats {
    fn add_assign(&mut self, rhs: Self) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.returns += rhs.returns;
    }
}

/// A free-list of `Vec<VertexId>` buffers recycled across instructions
/// and tasks, so the steady-state hot loop performs no allocation: every
/// displaced `Slot::Buf` returns here instead of being dropped, and
/// every take reuses a previous buffer's capacity. Disabled, it hands
/// out fresh `Vec::new()`s and drops returns — the pre-pool baseline
/// the `hotpath` bench A/Bs against.
#[derive(Debug)]
struct BufferPool {
    free: Vec<Vec<VertexId>>,
    enabled: bool,
    stats: PoolStats,
}

impl BufferPool {
    fn new(enabled: bool) -> Self {
        BufferPool {
            free: Vec::new(),
            enabled,
            stats: PoolStats::default(),
        }
    }

    #[inline]
    fn enabled(&self) -> bool {
        self.enabled
    }

    fn take(&mut self) -> Vec<VertexId> {
        if !self.enabled {
            // Disabled pools are fully inert: no stats, always a fresh
            // allocation, so the unpooled A/B arm reports all-zero stats.
            return Vec::new();
        }
        if let Some(mut buf) = self.free.pop() {
            self.stats.hits += 1;
            buf.clear();
            return buf;
        }
        self.stats.misses += 1;
        Vec::new()
    }

    fn put(&mut self, buf: Vec<VertexId>) {
        if self.enabled && buf.capacity() > 0 {
            self.stats.returns += 1;
            self.free.push(buf);
        }
    }
}

/// Filter check as a free function over the borrowed pieces it actually
/// reads (`order`, the partial mapping `f`), so callers can run it while
/// other engine fields — a cache, the slot file — are mutably borrowed.
#[inline]
fn passes_filters(order: &TotalOrder, f: &[VertexId], x: VertexId, filters: &[CFilter]) -> bool {
    filters.iter().all(|fc| {
        let fv = f[fc.vertex];
        debug_assert_ne!(fv, UNSET, "filter references unmapped vertex");
        match fc.op {
            FilterOp::Less => order.less(x, fv),
            FilterOp::Greater => order.less(fv, x),
            FilterOp::NotEqual => x != fv,
        }
    })
}

/// A register slot holding a set value.
#[derive(Debug, Default)]
pub(crate) enum Slot {
    /// Not yet computed on this path.
    #[default]
    Empty,
    /// Owned intersection result (reusable buffer).
    Buf(Vec<VertexId>),
    /// Shared adjacency set from the data source.
    Adj(Arc<AdjSet>),
    /// Shared triangle set from the triangle cache.
    Tri(Arc<Vec<VertexId>>),
}

impl Slot {
    pub(crate) fn as_slice(&self) -> &[VertexId] {
        match self {
            Slot::Empty => panic!("read of undefined register (plan validated, so this is a bug)"),
            Slot::Buf(v) => v,
            Slot::Adj(a) => a.as_slice(),
            Slot::Tri(t) => t,
        }
    }

    /// The dual-representation borrow: adjacency slots expose their
    /// block sidecar (when the store built one) so intersections can
    /// dispatch to the block-wise kernels; owned buffers and triangle
    /// sets are slice-only.
    pub(crate) fn as_view(&self) -> AdjView<'_> {
        match self {
            Slot::Empty => panic!("read of undefined register (plan validated, so this is a bug)"),
            Slot::Buf(v) => AdjView::from_slice(v),
            Slot::Adj(a) => a.view(),
            Slot::Tri(t) => AdjView::from_slice(t),
        }
    }
}

/// Batched adjacency answers injected ahead of the data source by the
/// frontier driver ([`crate::frontier::FrontierEngine`]): while enabled,
/// a `GetAdj` whose data vertex is present in the map is served from it
/// instead of issuing a per-vertex source lookup. Disabled (the DFS
/// default), the hot path pays one predictable branch and nothing else.
#[derive(Debug, Default)]
pub(crate) struct AdjOverride {
    pub(crate) map: std::collections::HashMap<VertexId, Arc<AdjSet>>,
    pub(crate) enabled: bool,
}

/// How a straight-line segment of the plan ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum StraightEnd {
    /// An intersection came up empty or the start vertex failed its
    /// label: the partial match is doomed, backtrack.
    Pruned,
    /// The segment ran to the end of the plan (any `Report` executed).
    Done,
    /// Execution stopped *at* a `Foreach` (not executed); the pc of that
    /// instruction is returned so the caller decides how to iterate it —
    /// recursively (DFS) or by materialising the candidates into a
    /// frontier level (BFS).
    Foreach(usize),
}

/// A single-threaded executor bound to one compiled plan, one data source
/// and one total order. One engine per worker thread; the triangle cache
/// it owns is exactly the paper's per-thread TRC cache.
pub struct LocalEngine<'a, S: DataSource + ?Sized> {
    pub(crate) plan: &'a CompiledPlan,
    pub(crate) source: &'a S,
    order: &'a TotalOrder,
    tcache: TriangleCache,
    ccache: CliqueCache,
    key_buf: Vec<VertexId>,
    data_labels: Option<&'a [u32]>,
    label_scratch: Vec<Vec<VertexId>>,
    pub(crate) f: Vec<VertexId>,
    pub(crate) slots: Vec<Slot>,
    scratch: Vec<VertexId>,
    scratch2: Vec<VertexId>,
    expand_f: Vec<VertexId>,
    pool: BufferPool,
    pub(crate) adj_override: AdjOverride,
    /// Reusable operand-register index buffer (`Intersect`).
    operand_regs: Vec<usize>,
    /// Reusable smallest-first ordering buffer for `intersect_many_by`.
    order_buf: Vec<usize>,
}

impl<'a, S: DataSource + ?Sized> LocalEngine<'a, S> {
    /// Creates an engine with the default triangle-cache capacity.
    pub fn new(plan: &'a CompiledPlan, source: &'a S, order: &'a TotalOrder) -> Self {
        Self::with_triangle_cache(plan, source, order, DEFAULT_TRIANGLE_CACHE_ENTRIES)
    }

    /// Creates an engine with an explicit triangle-cache capacity
    /// (0 disables caching but TRC instructions still compute correctly).
    pub fn with_triangle_cache(
        plan: &'a CompiledPlan,
        source: &'a S,
        order: &'a TotalOrder,
        tcache_entries: usize,
    ) -> Self {
        // Pre-size the small index/key buffers from plan metadata so
        // even their first use allocates nothing mid-task.
        let mut max_key = 0usize;
        let mut max_arity = 0usize;
        for instr in &plan.instrs {
            match instr {
                CInstr::Intersect { operands, .. } => max_arity = max_arity.max(operands.len()),
                CInstr::KCache { verts, regs, .. } => {
                    max_key = max_key.max(verts.len());
                    max_arity = max_arity.max(regs.len());
                }
                _ => {}
            }
        }
        LocalEngine {
            plan,
            source,
            order,
            tcache: TriangleCache::new(tcache_entries),
            ccache: CliqueCache::new(tcache_entries),
            key_buf: Vec::with_capacity(max_key),
            data_labels: None,
            label_scratch: Vec::new(),
            f: vec![UNSET; plan.num_pattern_vertices],
            slots: (0..plan.num_slots).map(|_| Slot::Empty).collect(),
            scratch: Vec::new(),
            scratch2: Vec::new(),
            expand_f: vec![UNSET; plan.num_pattern_vertices],
            pool: BufferPool::new(true),
            adj_override: AdjOverride::default(),
            operand_regs: Vec::with_capacity(max_arity),
            order_buf: Vec::with_capacity(max_arity),
        }
    }

    /// Enables or disables the execution buffer pool (default: enabled).
    /// Disabled, every buffer fallback allocates and displaced buffers
    /// are dropped — the pre-pool baseline arm of the `hotpath` bench.
    /// The produced matches are byte-identical either way.
    pub fn with_pooling(mut self, enabled: bool) -> Self {
        self.pool = BufferPool::new(enabled);
        self
    }

    /// Buffer-pool effectiveness counters for this engine.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats
    }

    /// Attaches per-data-vertex labels (property-graph extension): a
    /// labeled pattern vertex only matches data vertices carrying the
    /// same label.
    ///
    /// # Panics
    ///
    /// Panics later at task execution if the plan is labeled and no data
    /// labels were provided.
    pub fn with_data_labels(mut self, labels: &'a [u32]) -> Self {
        self.data_labels = Some(labels);
        self
    }

    /// True when data vertex `x` is an admissible image of pattern vertex
    /// `u` under the label constraints.
    #[inline]
    pub(crate) fn label_ok(&self, u: usize, x: VertexId) -> bool {
        match self.plan.labels[u] {
            None => true,
            Some(need) => {
                let labels = self
                    .data_labels
                    .expect("labeled plan requires data labels (with_data_labels)");
                labels[x as usize] == need
            }
        }
    }

    /// Runs one local search task, reporting into `consumer`.
    pub fn run_task(&mut self, task: SearchTask, consumer: &mut dyn MatchConsumer) -> TaskMetrics {
        let mut metrics = TaskMetrics::default();
        self.f.fill(UNSET);
        if self.pool.enabled() {
            // Return the previous task's owned buffers to the pool: every
            // plan writes a register before reading it, so the slot file
            // carries no live state across tasks — only reusable capacity,
            // which the pool hands back to this task's first takes.
            self.recycle_slots();
        }
        self.step(0, &task, consumer, &mut metrics);
        metrics
    }

    fn recycle_slots(&mut self) {
        for slot in &mut self.slots {
            if matches!(slot, Slot::Buf(_)) {
                if let Slot::Buf(b) = std::mem::take(slot) {
                    self.pool.put(b);
                }
            }
        }
    }

    /// Hands a no-longer-shared buffer back to the pool (the frontier
    /// driver recycles thawed level buffers through here, keeping the
    /// BFS expansion pool-backed like the DFS slot file).
    pub(crate) fn pool_put(&mut self, buf: Vec<VertexId>) {
        self.pool.put(buf);
    }

    /// Runs an unsplit task for every data vertex (the sequential version
    /// of Algorithm 2's parallel loop).
    pub fn run_all_vertices(&mut self, consumer: &mut dyn MatchConsumer) -> TaskMetrics {
        let mut total = TaskMetrics::default();
        for v in 0..self.source.num_vertices() as VertexId {
            total += self.run_task(SearchTask::whole(v), consumer);
        }
        total
    }

    /// Triangle-cache statistics of this engine's thread.
    pub fn triangle_cache_stats(&self) -> benu_cache::CacheStats {
        self.tcache.stats()
    }

    /// Clique-cache statistics of this engine's thread (the §IV-B
    /// extension; all zeros unless the plan uses KCache instructions).
    pub fn clique_cache_stats(&self) -> benu_cache::CacheStats {
        self.ccache.stats()
    }

    fn passes_filters(&self, x: VertexId, filters: &[CFilter]) -> bool {
        passes_filters(self.order, &self.f, x, filters)
    }

    /// Stores `value` into the slot file, recycling any displaced owned
    /// buffer through the pool instead of dropping it.
    #[inline]
    pub(crate) fn set_slot(&mut self, target: usize, value: Slot) {
        if let Slot::Buf(b) = std::mem::replace(&mut self.slots[target], value) {
            self.pool.put(b);
        }
    }

    /// Executes instructions from `pc` to the end (recursing at each
    /// `Foreach`). Returns early when an intersection comes up empty.
    pub(crate) fn step(
        &mut self,
        pc: usize,
        task: &SearchTask,
        consumer: &mut dyn MatchConsumer,
        metrics: &mut TaskMetrics,
    ) {
        match self.exec_straight(pc, task, consumer, metrics) {
            StraightEnd::Pruned | StraightEnd::Done => {}
            StraightEnd::Foreach(fpc) => {
                let plan = self.plan;
                let CInstr::Foreach {
                    vertex,
                    source,
                    is_second,
                } = &plan.instrs[fpc]
                else {
                    unreachable!("exec_straight stops only at Foreach")
                };
                let vertex = *vertex;
                // Take the candidate set out of its slot for the
                // duration of the loop; nothing below reads it (its
                // only other possible reader is RES in compressed
                // plans, where this vertex has no Foreach at all).
                let slot = std::mem::take(&mut self.slots[*source]);
                let items = slot.as_slice();
                let range = match (is_second, task.split) {
                    (true, Some(split)) => split.range(items.len()),
                    _ => 0..items.len(),
                };
                // Iterate by index to keep `self` free for recursion.
                let considered = (range.end - range.start) as u64;
                metrics.enu_candidates += considered;
                let mut survivors = 0u64;
                for i in range {
                    let x = match &slot {
                        Slot::Buf(v) => v[i],
                        Slot::Adj(a) => a.as_slice()[i],
                        Slot::Tri(t) => t[i],
                        Slot::Empty => unreachable!(),
                    };
                    if !self.label_ok(vertex, x) {
                        continue;
                    }
                    survivors += 1;
                    self.f[vertex] = x;
                    self.step(fpc + 1, task, consumer, metrics);
                }
                self.f[vertex] = UNSET;
                self.slots[*source] = slot;
                if let Some(s) = metrics.obs.slot_mut(fpc) {
                    s.candidates += considered;
                    s.survivors += survivors;
                }
            }
        }
    }

    /// Executes the straight-line segment starting at `pc`: every
    /// instruction up to (but not including) the next `Foreach`, or to
    /// the end of the plan. This is the resumable core both execution
    /// strategies share — [`LocalEngine::step`] recurses at the returned
    /// `Foreach`, the frontier engine materialises its candidates
    /// breadth-first instead.
    pub(crate) fn exec_straight(
        &mut self,
        mut pc: usize,
        task: &SearchTask,
        consumer: &mut dyn MatchConsumer,
        metrics: &mut TaskMetrics,
    ) -> StraightEnd {
        // Copy the plan reference out of `self` so matching on
        // instructions does not hold a borrow of the whole engine.
        let plan = self.plan;
        while pc < plan.instrs.len() {
            match &plan.instrs[pc] {
                CInstr::Init { vertex } => {
                    if !self.label_ok(*vertex, task.start) {
                        return StraightEnd::Pruned; // the start vertex cannot host this task
                    }
                    self.f[*vertex] = task.start;
                }
                CInstr::GetAdj { vertex, target } => {
                    metrics.dbq_executions += 1;
                    let v = self.f[*vertex];
                    debug_assert_ne!(v, UNSET);
                    let adj = if self.adj_override.enabled {
                        match self.adj_override.map.get(&v) {
                            Some(a) => Arc::clone(a),
                            None => self.source.get_adj(v),
                        }
                    } else {
                        self.source.get_adj(v)
                    };
                    if let Some(s) = metrics.obs.slot_mut(pc) {
                        s.candidates += 1;
                        s.survivors += adj.as_slice().len() as u64;
                    }
                    self.set_slot(*target, Slot::Adj(adj));
                }
                CInstr::Intersect {
                    target,
                    operands,
                    filters,
                } => {
                    metrics.int_executions += 1;
                    let target = *target;
                    let mut buf = match std::mem::take(&mut self.slots[target]) {
                        Slot::Buf(b) => b,
                        _ => self.pool.take(),
                    };
                    self.compute_intersection(operands, filters, &mut buf);
                    let empty = buf.is_empty();
                    if let Some(s) = metrics.obs.slot_mut(pc) {
                        s.candidates += 1;
                        s.survivors += buf.len() as u64;
                    }
                    self.slots[target] = Slot::Buf(buf);
                    if empty {
                        return StraightEnd::Pruned; // failed partial match: backtrack
                    }
                }
                CInstr::TCache {
                    a,
                    b,
                    a_reg,
                    b_reg,
                    target,
                    filters,
                } => {
                    metrics.trc_executions += 1;
                    let (va, vb) = (self.f[*a], self.f[*b]);
                    let target = *target;
                    // The cache stores the raw triangle set; filters are
                    // applied per use because they depend on other
                    // mappings.
                    // Pooled engines intersect through the views (block
                    // kernels when a dense operand is present); the
                    // unpooled baseline keeps the scalar merge verbatim.
                    let pooled = self.pool.enabled();
                    let empty = if filters.is_empty() {
                        let (a_view, b_view) =
                            (self.slots[*a_reg].as_view(), self.slots[*b_reg].as_view());
                        let tri = self.tcache.get_or_compute(va, vb, || {
                            let mut out = Vec::new();
                            if pooled {
                                view::intersect_into(a_view, b_view, &mut out);
                            } else {
                                intersect_into(a_view.ids, b_view.ids, &mut out);
                            }
                            out
                        });
                        let empty = tri.is_empty();
                        if let Some(s) = metrics.obs.slot_mut(pc) {
                            s.candidates += 1;
                            s.survivors += tri.len() as u64;
                        }
                        self.set_slot(target, Slot::Tri(tri));
                        empty
                    } else {
                        // The filtered copy only reads the triangle set,
                        // so borrow it from the cache instead of cloning
                        // the Arc. Target never aliases an operand
                        // register (the Intersect arm relies on the same
                        // compile invariant), so the buffer can be taken
                        // up front.
                        let mut buf = match std::mem::take(&mut self.slots[target]) {
                            Slot::Buf(b) => b,
                            _ => self.pool.take(),
                        };
                        let (a_view, b_view) =
                            (self.slots[*a_reg].as_view(), self.slots[*b_reg].as_view());
                        let order = self.order;
                        let f = &self.f;
                        let empty = self.tcache.with_or_compute(
                            va,
                            vb,
                            || {
                                let mut out = Vec::new();
                                if pooled {
                                    view::intersect_into(a_view, b_view, &mut out);
                                } else {
                                    intersect_into(a_view.ids, b_view.ids, &mut out);
                                }
                                out
                            },
                            |tri| {
                                buf.clear();
                                for &x in tri {
                                    if passes_filters(order, f, x, filters) {
                                        buf.push(x);
                                    }
                                }
                                buf.is_empty()
                            },
                        );
                        if let Some(s) = metrics.obs.slot_mut(pc) {
                            s.candidates += 1;
                            s.survivors += buf.len() as u64;
                        }
                        self.slots[target] = Slot::Buf(buf);
                        empty
                    };
                    if empty {
                        return StraightEnd::Pruned;
                    }
                }
                CInstr::KCache {
                    verts,
                    regs,
                    target,
                    filters,
                } => {
                    metrics.kcache_executions += 1;
                    // The cache key is the sorted tuple of mapped data
                    // vertices — the clique instance's identity.
                    self.key_buf.clear();
                    self.key_buf.extend(verts.iter().map(|&v| self.f[v]));
                    self.key_buf.sort_unstable();
                    let target = *target;
                    let empty = if self.pool.enabled() {
                        // Pooled path: operands are addressed through the
                        // slot file by index (`intersect_many_by`), so no
                        // per-execution slice vector is materialised, and
                        // the miss closure reuses the engine's scratch
                        // and ordering buffers.
                        let mut scratch = std::mem::take(&mut self.scratch);
                        let mut order_buf = std::mem::take(&mut self.order_buf);
                        let empty = if filters.is_empty() {
                            let slots = &self.slots;
                            let clique_set = self.ccache.get_or_compute(&self.key_buf, || {
                                let mut out = Vec::new();
                                view::intersect_many_by(
                                    regs.len(),
                                    |i| slots[regs[i]].as_view(),
                                    &mut order_buf,
                                    &mut out,
                                    &mut scratch,
                                );
                                out
                            });
                            let empty = clique_set.is_empty();
                            if let Some(s) = metrics.obs.slot_mut(pc) {
                                s.candidates += 1;
                                s.survivors += clique_set.len() as u64;
                            }
                            self.set_slot(target, Slot::Tri(clique_set));
                            empty
                        } else {
                            let mut buf = match std::mem::take(&mut self.slots[target]) {
                                Slot::Buf(b) => b,
                                _ => self.pool.take(),
                            };
                            let slots = &self.slots;
                            let order = self.order;
                            let f = &self.f;
                            let empty = self.ccache.with_or_compute(
                                &self.key_buf,
                                || {
                                    let mut out = Vec::new();
                                    view::intersect_many_by(
                                        regs.len(),
                                        |i| slots[regs[i]].as_view(),
                                        &mut order_buf,
                                        &mut out,
                                        &mut scratch,
                                    );
                                    out
                                },
                                |set| {
                                    buf.clear();
                                    for &x in set {
                                        if passes_filters(order, f, x, filters) {
                                            buf.push(x);
                                        }
                                    }
                                    buf.is_empty()
                                },
                            );
                            if let Some(s) = metrics.obs.slot_mut(pc) {
                                s.candidates += 1;
                                s.survivors += buf.len() as u64;
                            }
                            self.slots[target] = Slot::Buf(buf);
                            empty
                        };
                        self.scratch = scratch;
                        self.order_buf = order_buf;
                        empty
                    } else {
                        // Baseline (pre-pool) path: a fresh operand slice
                        // vector and fresh intersection buffers per
                        // execution — kept verbatim as the A/B baseline.
                        let slices: Vec<&[VertexId]> =
                            regs.iter().map(|&r| self.slots[r].as_slice()).collect();
                        let key = std::mem::take(&mut self.key_buf);
                        let clique_set = self.ccache.get_or_compute(&key, || {
                            let mut out = Vec::new();
                            let mut scratch = Vec::new();
                            intersect_many_into(&slices, &mut out, &mut scratch);
                            out
                        });
                        self.key_buf = key;
                        if filters.is_empty() {
                            let empty = clique_set.is_empty();
                            if let Some(s) = metrics.obs.slot_mut(pc) {
                                s.candidates += 1;
                                s.survivors += clique_set.len() as u64;
                            }
                            self.slots[target] = Slot::Tri(clique_set);
                            empty
                        } else {
                            let mut buf = match std::mem::take(&mut self.slots[target]) {
                                Slot::Buf(b) => b,
                                _ => Vec::new(),
                            };
                            buf.clear();
                            for &x in clique_set.iter() {
                                if self.passes_filters(x, filters) {
                                    buf.push(x);
                                }
                            }
                            let empty = buf.is_empty();
                            if let Some(s) = metrics.obs.slot_mut(pc) {
                                s.candidates += 1;
                                s.survivors += buf.len() as u64;
                            }
                            self.slots[target] = Slot::Buf(buf);
                            empty
                        }
                    };
                    if empty {
                        return StraightEnd::Pruned;
                    }
                }
                CInstr::Foreach { .. } => {
                    // The caller owns loop strategy; everything from here
                    // on is the loop body.
                    return StraightEnd::Foreach(pc);
                }
                CInstr::Report => {
                    self.report(consumer, metrics);
                }
            }
            pc += 1;
        }
        StraightEnd::Done
    }

    fn compute_intersection(
        &mut self,
        operands: &[COperand],
        filters: &[CFilter],
        buf: &mut Vec<VertexId>,
    ) {
        buf.clear();
        if !self.pool.enabled() {
            // Baseline (pre-pool) path: materialise the operand slice
            // vector per execution — kept verbatim as the A/B baseline.
            let regs: Vec<&[VertexId]> = operands
                .iter()
                .filter_map(|op| match op {
                    COperand::Reg(r) => Some(self.slots[*r].as_slice()),
                    COperand::All => None,
                })
                .collect();
            match regs.len() {
                0 => {
                    // Pure V(G) scan with filters.
                    for x in 0..self.source.num_vertices() as VertexId {
                        if self.passes_filters(x, filters) {
                            buf.push(x);
                        }
                    }
                }
                1 => {
                    for &x in regs[0] {
                        if self.passes_filters(x, filters) {
                            buf.push(x);
                        }
                    }
                }
                _ => {
                    if filters.is_empty() {
                        let mut scratch = std::mem::take(&mut self.scratch);
                        intersect_many_into(&regs, buf, &mut scratch);
                        self.scratch = scratch;
                    } else {
                        let mut scratch = std::mem::take(&mut self.scratch);
                        let mut scratch2 = std::mem::take(&mut self.scratch2);
                        intersect_many_into(&regs, &mut scratch, &mut scratch2);
                        for &x in &scratch {
                            if self.passes_filters(x, filters) {
                                buf.push(x);
                            }
                        }
                        self.scratch = scratch;
                        self.scratch2 = scratch2;
                    }
                }
            }
            return;
        }
        // Pooled path: operand registers go into a reusable index buffer
        // and the kernels address the slot file through it, so no
        // per-execution `Vec<&[VertexId]>` exists.
        self.operand_regs.clear();
        for op in operands {
            if let COperand::Reg(r) = op {
                self.operand_regs.push(*r);
            }
        }
        match self.operand_regs.len() {
            0 => {
                // Pure V(G) scan with filters.
                let order = self.order;
                let f = &self.f;
                for x in 0..self.source.num_vertices() as VertexId {
                    if passes_filters(order, f, x, filters) {
                        buf.push(x);
                    }
                }
            }
            1 => {
                let slice = self.slots[self.operand_regs[0]].as_slice();
                let order = self.order;
                let f = &self.f;
                for &x in slice {
                    if passes_filters(order, f, x, filters) {
                        buf.push(x);
                    }
                }
            }
            k => {
                let mut scratch = std::mem::take(&mut self.scratch);
                let mut order_buf = std::mem::take(&mut self.order_buf);
                if filters.is_empty() {
                    let slots = &self.slots;
                    let oregs = &self.operand_regs;
                    view::intersect_many_by(
                        k,
                        |i| slots[oregs[i]].as_view(),
                        &mut order_buf,
                        buf,
                        &mut scratch,
                    );
                } else {
                    let mut scratch2 = std::mem::take(&mut self.scratch2);
                    {
                        let slots = &self.slots;
                        let oregs = &self.operand_regs;
                        view::intersect_many_by(
                            k,
                            |i| slots[oregs[i]].as_view(),
                            &mut order_buf,
                            &mut scratch,
                            &mut scratch2,
                        );
                    }
                    let order = self.order;
                    let f = &self.f;
                    for &x in &scratch {
                        if passes_filters(order, f, x, filters) {
                            buf.push(x);
                        }
                    }
                    self.scratch2 = scratch2;
                }
                self.scratch = scratch;
                self.order_buf = order_buf;
            }
        }
    }

    fn report(&mut self, consumer: &mut dyn MatchConsumer, metrics: &mut TaskMetrics) {
        let plan = self.plan;
        match &plan.expansion {
            None => {
                metrics.matches += 1;
                if consumer.needs_matches() {
                    consumer.on_match(&self.f);
                }
            }
            Some(info) => {
                // Label-filter the image sets of labeled non-cover
                // vertices into scratch buffers.
                let mut label_scratch = std::mem::take(&mut self.label_scratch);
                label_scratch.resize_with(info.non_cover.len(), Vec::new);
                let mut images: Vec<&[VertexId]> = Vec::with_capacity(info.image_reg.len());
                for (t, &r) in info.image_reg.iter().enumerate() {
                    let raw = self.slots[r].as_slice();
                    let u = info.non_cover[t];
                    if plan.labels[u].is_some() {
                        let buf = &mut label_scratch[t];
                        buf.clear();
                        for &x in raw {
                            if self.label_ok(u, x) {
                                buf.push(x);
                            }
                        }
                    }
                }
                for (t, &r) in info.image_reg.iter().enumerate() {
                    let u = info.non_cover[t];
                    if plan.labels[u].is_some() {
                        images.push(&label_scratch[t]);
                    } else {
                        images.push(self.slots[r].as_slice());
                    }
                }
                // Instruction-level pruning already rejects empty image
                // sets, so every emitted code encodes ≥ 0 embeddings.
                let count = expand::count_code_embeddings(info, &images, self.order);
                if count == 0 {
                    return;
                }
                metrics.codes += 1;
                metrics.matches += count;
                let helve_len = plan.num_pattern_vertices - info.non_cover.len();
                let image_entries: usize = images.iter().map(|s| s.len()).sum();
                metrics.code_bytes += (4 * (helve_len + image_entries)) as u64;
                if consumer.needs_matches() {
                    self.expand_f.copy_from_slice(&self.f);
                    expand::expand_code(info, &images, self.order, &mut self.expand_f, &mut |f| {
                        consumer.on_match(f)
                    });
                }
                drop(images);
                self.label_scratch = label_scratch;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::CompiledPlan;
    use crate::consumer::{CollectingConsumer, CountingConsumer};
    use crate::source::InMemorySource;
    use benu_graph::{gen, Graph};
    use benu_pattern::queries;
    use benu_plan::PlanBuilder;

    fn count(pattern: &benu_pattern::Pattern, g: &Graph) -> u64 {
        let plan = PlanBuilder::new(pattern).best_plan();
        crate::count_embeddings(&plan, g)
    }

    #[test]
    fn triangles_in_k5() {
        assert_eq!(count(&queries::triangle(), &gen::complete(5)), 10);
    }

    #[test]
    fn k4_in_k6() {
        assert_eq!(count(&queries::clique(4), &gen::complete(6)), 15); // C(6,4)
    }

    #[test]
    fn squares_in_k4() {
        // K4 contains 3 distinct 4-cycles.
        assert_eq!(count(&queries::square(), &gen::complete(4)), 3);
    }

    #[test]
    fn cycle5_in_c5_is_unique() {
        assert_eq!(count(&queries::q5(), &gen::cycle(5)), 1);
    }

    #[test]
    fn no_triangles_in_bipartite_grid() {
        assert_eq!(count(&queries::triangle(), &gen::grid(4, 4)), 0);
    }

    #[test]
    fn demo_pattern_is_found_in_demo_graph() {
        let g = Graph::from_edges(queries::demo_data_edges());
        let p = queries::demo_pattern();
        let n = count(&p, &g);
        assert!(n >= 1, "the paper's f' match must be found");
    }

    #[test]
    fn compressed_and_uncompressed_counts_agree() {
        let g = gen::erdos_renyi_gnm(60, 250, 3);
        for (name, p) in queries::catalogue() {
            let plain = PlanBuilder::new(&p).best_plan();
            let compressed = PlanBuilder::new(&p).compressed(true).best_plan();
            assert_eq!(
                crate::count_embeddings(&plain, &g),
                crate::count_embeddings(&compressed, &g),
                "{name}: VCBC changed the embedding count"
            );
        }
    }

    #[test]
    fn compressed_expansion_yields_same_match_set() {
        let g = gen::erdos_renyi_gnm(40, 140, 8);
        let p = queries::q1();
        let plain = PlanBuilder::new(&p).best_plan();
        let compressed = PlanBuilder::new(&p).compressed(true).best_plan();
        assert_eq!(
            crate::collect_embeddings(&plain, &g),
            crate::collect_embeddings(&compressed, &g)
        );
    }

    #[test]
    fn split_tasks_partition_the_work() {
        let g = gen::barabasi_albert(120, 4, 5);
        let p = queries::triangle();
        let plan = PlanBuilder::new(&p).best_plan();
        let compiled = CompiledPlan::compile(&plan);
        let source = InMemorySource::from_graph(&g);
        let order = benu_graph::TotalOrder::new(&g);

        // Whole-graph count via unsplit tasks.
        let mut engine = LocalEngine::new(&compiled, &source, &order);
        let mut c = CountingConsumer::default();
        let whole = engine.run_all_vertices(&mut c).matches;

        // Same count via split tasks with τ = 5.
        let tasks = crate::task::generate_tasks(&g, 5, compiled.second_adjacent);
        assert!(tasks.len() > g.num_vertices(), "hubs actually split");
        let mut split_total = 0u64;
        for t in tasks {
            split_total += engine.run_task(t, &mut c).matches;
        }
        assert_eq!(whole, split_total);
    }

    #[test]
    fn metrics_count_instruction_executions() {
        let g = gen::complete(4);
        let p = queries::triangle();
        let plan = PlanBuilder::new(&p)
            .optimizations(benu_plan::optimize::OptimizeOptions::none())
            .matching_order(vec![0, 1, 2])
            .build();
        let compiled = CompiledPlan::compile(&plan);
        let source = InMemorySource::from_graph(&g);
        let order = benu_graph::TotalOrder::new(&g);
        let mut engine = LocalEngine::new(&compiled, &source, &order);
        let mut c = CountingConsumer::default();
        let m = engine.run_all_vertices(&mut c);
        assert_eq!(m.matches, 4); // 4 triangles in K4
        assert!(m.dbq_executions > 0);
        assert!(m.int_executions > 0);
        assert!(
            m.enu_candidates >= m.matches,
            "every match consumed at least one ENU candidate"
        );
    }

    #[test]
    fn metrics_record_into_registry_counters() {
        let g = gen::complete(5);
        let p = queries::triangle();
        let plan = PlanBuilder::new(&p).best_plan();
        let compiled = CompiledPlan::compile(&plan);
        let source = InMemorySource::from_graph(&g);
        let order = benu_graph::TotalOrder::new(&g);
        let mut engine = LocalEngine::new(&compiled, &source, &order);
        let mut c = CountingConsumer::default();
        let m = engine.run_all_vertices(&mut c);
        let registry = benu_obs::Registry::new();
        m.record_into(&registry);
        assert_eq!(registry.counter("engine.matches").get(), m.matches);
        assert_eq!(
            registry.counter("engine.dbq_executions").get(),
            m.dbq_executions
        );
        assert_eq!(
            registry.counter("engine.enu_candidates").get(),
            m.enu_candidates
        );
    }

    #[test]
    fn triangle_cache_hits_across_tasks() {
        let g = gen::complete(8);
        // The demo pattern's plan nests TCache(f1, f5) inside the loop
        // over f3, so the same (f1, f5) key recurs across branches — the
        // intra-task reuse Optimization 3 exists for.
        let p = queries::demo_pattern();
        let plan = PlanBuilder::new(&p)
            .matching_order(vec![0, 2, 4, 1, 5, 3])
            .build();
        let compiled = CompiledPlan::compile(&plan);
        assert!(
            compiled
                .kind_counts()
                .contains_key(&benu_plan::ir::InstrKind::Trc),
            "the demo plan uses the triangle cache"
        );
        let source = InMemorySource::from_graph(&g);
        let order = benu_graph::TotalOrder::new(&g);
        let mut engine = LocalEngine::new(&compiled, &source, &order);
        let mut c = CountingConsumer::default();
        engine.run_all_vertices(&mut c);
        assert!(engine.triangle_cache_stats().hits > 0);
    }

    #[test]
    fn clique_cache_extension_preserves_counts() {
        use benu_plan::optimize::OptimizeOptions;
        let g = gen::chung_lu_power_law(benu_graph::gen::PowerLawConfig {
            n: 60,
            m: 260,
            gamma: 2.3,
            clustering: 0.5,
            seed: 41,
        });
        for (name, p) in [
            ("clique4", queries::clique(4)),
            ("clique5", queries::clique(5)),
            ("q2", queries::q2()),
            ("q4", queries::q4()),
            ("q9", queries::q9()),
        ] {
            let base = PlanBuilder::new(&p).best_plan();
            let expected = crate::count_embeddings(&base, &g);
            let extended = PlanBuilder::new(&p)
                .matching_order(base.matching_order.clone())
                .optimizations(OptimizeOptions::all_with_clique_cache())
                .build();
            assert_eq!(
                crate::count_embeddings(&extended, &g),
                expected,
                "{name}: clique cache changed the count"
            );
        }
    }

    #[test]
    fn clique_cache_stats_reported() {
        use benu_plan::optimize::OptimizeOptions;
        let g = gen::complete(10);
        let p = queries::clique(5);
        let plan = PlanBuilder::new(&p)
            .matching_order(vec![0, 1, 2, 3, 4])
            .optimizations(OptimizeOptions::all_with_clique_cache())
            .build();
        let compiled = CompiledPlan::compile(&plan);
        let source = InMemorySource::from_graph(&g);
        let order = benu_graph::TotalOrder::new(&g);
        let mut engine = LocalEngine::new(&compiled, &source, &order);
        let mut c = CountingConsumer::default();
        let m = engine.run_all_vertices(&mut c);
        assert_eq!(m.matches, 252); // C(10,5)
        let stats = engine.clique_cache_stats();
        assert!(stats.misses > 0, "KCache instructions executed");
    }

    #[test]
    fn collecting_consumer_sees_expanded_matches() {
        let g = gen::complete(5);
        let p = queries::triangle();
        let plan = PlanBuilder::new(&p).compressed(true).best_plan();
        let compiled = CompiledPlan::compile(&plan);
        let source = InMemorySource::from_graph(&g);
        let order = benu_graph::TotalOrder::new(&g);
        let mut engine = LocalEngine::new(&compiled, &source, &order);
        let mut c = CollectingConsumer::default();
        let m = engine.run_all_vertices(&mut c);
        assert_eq!(m.matches, 10);
        assert_eq!(c.matches().len(), 10);
        assert!(m.codes > 0 && m.codes <= 10, "codes compress the output");
        for matched in c.matches() {
            // Every reported triple really is a triangle.
            assert!(g.has_edge(matched[0], matched[1]));
            assert!(g.has_edge(matched[1], matched[2]));
            assert!(g.has_edge(matched[0], matched[2]));
        }
    }

    #[test]
    fn pooled_buffers_are_reused_across_tasks() {
        let g = gen::erdos_renyi_gnm(60, 250, 3);
        let p = queries::q5();
        let plan = PlanBuilder::new(&p).best_plan();
        let compiled = CompiledPlan::compile(&plan);
        let source = InMemorySource::from_graph(&g);
        let order = benu_graph::TotalOrder::new(&g);
        let mut engine = LocalEngine::new(&compiled, &source, &order);
        let mut c = CountingConsumer::default();
        engine.run_all_vertices(&mut c);
        let warm = engine.pool_stats();
        assert!(
            warm.hits > 0,
            "buffers must cycle through the pool: {warm:?}"
        );
        assert!(warm.returns > 0, "task boundaries return buffers: {warm:?}");
        // Steady state: a second pass over the same tasks allocates no new
        // buffers — every take is a pool hit.
        engine.run_all_vertices(&mut c);
        let steady = engine.pool_stats();
        assert_eq!(
            steady.misses, warm.misses,
            "steady-state takes must all be pool hits"
        );
        assert!(steady.hits > warm.hits);
    }

    #[test]
    fn pooled_and_unpooled_runs_are_byte_identical() {
        let g = gen::erdos_renyi_gnm(50, 200, 7);
        let mut plans = vec![
            ("q5", PlanBuilder::new(&queries::q5()).best_plan()),
            (
                "triangle/compressed",
                PlanBuilder::new(&queries::triangle())
                    .compressed(true)
                    .best_plan(),
            ),
        ];
        {
            use benu_plan::optimize::OptimizeOptions;
            let p = queries::clique(4);
            let base = PlanBuilder::new(&p).best_plan();
            plans.push((
                "clique4/kcache",
                PlanBuilder::new(&p)
                    .matching_order(base.matching_order.clone())
                    .optimizations(OptimizeOptions::all_with_clique_cache())
                    .build(),
            ));
        }
        for (name, plan) in plans {
            let compiled = CompiledPlan::compile(&plan);
            let source = InMemorySource::from_graph(&g);
            let order = benu_graph::TotalOrder::new(&g);

            let mut pooled = LocalEngine::new(&compiled, &source, &order).with_pooling(true);
            let mut cp = CollectingConsumer::default();
            let mp = pooled.run_all_vertices(&mut cp);

            let mut unpooled = LocalEngine::new(&compiled, &source, &order).with_pooling(false);
            let mut cu = CollectingConsumer::default();
            let mu = unpooled.run_all_vertices(&mut cu);

            assert_eq!(mp, mu, "{name}: metrics diverge pooled vs unpooled");
            let mut ep = cp.into_matches();
            let mut eu = cu.into_matches();
            ep.sort_unstable();
            eu.sort_unstable();
            assert_eq!(ep, eu, "{name}: embeddings diverge pooled vs unpooled");
            assert_eq!(
                unpooled.pool_stats(),
                PoolStats::default(),
                "{name}: unpooled engine must never touch the pool"
            );
        }
    }

    #[test]
    fn block_kernels_engage_on_dense_graphs_and_stay_byte_identical() {
        // Hub degrees far past DENSE_BLOCK_THRESHOLD, so the pooled
        // engine's intersections actually cross the slice×bitset and
        // bitset×bitset kernels while the unpooled baseline stays on the
        // scalar merge — the representation crossing must be invisible.
        let g = gen::barabasi_albert(120, 20, 17);
        let source = InMemorySource::from_graph(&g);
        let dense = (0..g.num_vertices() as VertexId)
            .filter(|&v| source.get_adj(v).has_blocks())
            .count();
        assert!(dense > 0, "no vertex reached the block threshold");
        for (name, plan) in [
            (
                "triangle",
                PlanBuilder::new(&queries::triangle()).best_plan(),
            ),
            ("clique4", PlanBuilder::new(&queries::clique(4)).best_plan()),
        ] {
            let compiled = CompiledPlan::compile(&plan);
            let order = benu_graph::TotalOrder::new(&g);
            let mut pooled = LocalEngine::new(&compiled, &source, &order).with_pooling(true);
            let mut cp = CollectingConsumer::default();
            let mp = pooled.run_all_vertices(&mut cp);
            let mut unpooled = LocalEngine::new(&compiled, &source, &order).with_pooling(false);
            let mut cu = CollectingConsumer::default();
            let mu = unpooled.run_all_vertices(&mut cu);
            assert_eq!(mp, mu, "{name}: metrics diverge across kernels");
            let mut ep = cp.into_matches();
            let mut eu = cu.into_matches();
            ep.sort_unstable();
            eu.sort_unstable();
            assert_eq!(ep, eu, "{name}: block kernels changed the match set");
        }
    }

    #[test]
    fn kcache_has_its_own_counter() {
        use benu_plan::optimize::OptimizeOptions;
        let g = gen::complete(10);
        let p = queries::clique(5);
        let plan = PlanBuilder::new(&p)
            .matching_order(vec![0, 1, 2, 3, 4])
            .optimizations(OptimizeOptions::all_with_clique_cache())
            .build();
        let compiled = CompiledPlan::compile(&plan);
        let source = InMemorySource::from_graph(&g);
        let order = benu_graph::TotalOrder::new(&g);
        let mut engine = LocalEngine::new(&compiled, &source, &order);
        let mut c = CountingConsumer::default();
        let m = engine.run_all_vertices(&mut c);
        assert!(
            m.kcache_executions > 0,
            "clique-cached plan must count KCache executions"
        );

        // A plan with no clique cache must leave the counter at zero even
        // when the triangle cache is busy (the misattribution this fixes).
        let plan2 = PlanBuilder::new(&queries::demo_pattern())
            .matching_order(vec![0, 2, 4, 1, 5, 3])
            .build();
        let compiled2 = CompiledPlan::compile(&plan2);
        let g2 = gen::complete(8);
        let source2 = InMemorySource::from_graph(&g2);
        let order2 = benu_graph::TotalOrder::new(&g2);
        let mut engine2 = LocalEngine::new(&compiled2, &source2, &order2);
        let m2 = engine2.run_all_vertices(&mut c);
        assert!(m2.trc_executions > 0);
        assert_eq!(m2.kcache_executions, 0);

        let registry = benu_obs::Registry::new();
        m.record_into(&registry);
        assert_eq!(
            registry.counter("engine.kcache_executions").get(),
            m.kcache_executions
        );
        assert_eq!(
            registry.counter("engine.trc_executions").get(),
            m.trc_executions
        );
    }
}
