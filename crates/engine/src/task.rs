//! Local search tasks and task splitting (paper §V-B).
//!
//! BENU generates one task per data vertex; the task enumerates every
//! match whose start pattern vertex maps to that data vertex. Power-law
//! degree distributions make a handful of hub tasks dominate the runtime,
//! so tasks whose start degree exceeds a threshold `τ` are split: the
//! candidate set of the *second* pattern vertex is divided into
//! `⌈|C|/τ⌉` equal-sized contiguous ranges, one per subtask.

use benu_graph::{Graph, VertexId};

/// Which slice of the second pattern vertex's candidate set a subtask
/// owns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SplitSpec {
    /// This subtask's index in `0..total`.
    pub index: u32,
    /// Total number of subtasks the parent task was split into (≥ 2).
    pub total: u32,
}

impl SplitSpec {
    /// The half-open subrange of a candidate set of length `len` that this
    /// subtask enumerates. Ranges are contiguous, non-overlapping, cover
    /// `0..len`, and differ in size by at most one element.
    pub fn range(&self, len: usize) -> std::ops::Range<usize> {
        let total = self.total as usize;
        let index = self.index as usize;
        let base = len / total;
        let extra = len % total;
        let lo = index * base + index.min(extra);
        let hi = lo + base + usize::from(index < extra);
        lo..hi.min(len)
    }
}

/// One local search task: enumerate all matches with `f_{k1} = start`,
/// optionally restricted to a slice of the second-level candidates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SearchTask {
    /// The data vertex the first pattern vertex is mapped to.
    pub start: VertexId,
    /// Task-splitting restriction, if the parent task was split.
    pub split: Option<SplitSpec>,
}

impl SearchTask {
    /// An unsplit task.
    pub fn whole(start: VertexId) -> Self {
        SearchTask { start, split: None }
    }
}

/// Generates the task list for a data graph with task splitting at
/// degree threshold `tau` (paper: τ = 500). `second_adjacent` says
/// whether the second pattern vertex is adjacent to the first in the
/// pattern — if so the second-level candidate set size is bounded by the
/// start degree, otherwise by `|V(G)|`.
///
/// Passing `tau = 0` disables splitting.
pub fn generate_tasks(g: &Graph, tau: usize, second_adjacent: bool) -> Vec<SearchTask> {
    let degrees: Vec<u32> = g.vertices().map(|v| g.degree(v) as u32).collect();
    generate_tasks_from_degrees(&degrees, tau, second_adjacent)
}

/// [`generate_tasks`] over a precomputed degree array (`degrees[v]` is
/// the degree of vertex `v`); the cluster runtime keeps this array
/// resident so task generation never re-touches the graph. This is the
/// single implementation of the §V-B split arithmetic — the `Graph`
/// entry point above delegates here, so the split predicate cannot
/// drift between the local and cluster runtimes.
pub fn generate_tasks_from_degrees(
    degrees: &[u32],
    tau: usize,
    second_adjacent: bool,
) -> Vec<SearchTask> {
    let n = degrees.len();
    let mut tasks = Vec::with_capacity(n);
    for (v, &d) in degrees.iter().enumerate() {
        let degree = d as usize;
        let candidate_bound = if second_adjacent { degree } else { n };
        if tau > 0 && degree >= tau && candidate_bound > tau {
            let total = subtask_total(candidate_bound, tau);
            for index in 0..total {
                tasks.push(SearchTask {
                    start: v as VertexId,
                    split: Some(SplitSpec { index, total }),
                });
            }
        } else {
            tasks.push(SearchTask::whole(v as VertexId));
        }
    }
    tasks
}

/// Number of subtasks a candidate bound splits into at threshold `tau`.
///
/// # Panics
///
/// Panics if the count does not fit `u32` (an `as` cast here would
/// silently truncate and drop candidate ranges).
fn subtask_total(candidate_bound: usize, tau: usize) -> u32 {
    u32::try_from(candidate_bound.div_ceil(tau))
        .expect("subtask count overflows u32 — raise the split threshold τ")
}

/// How many extra subtasks per execution lane the adaptive threshold
/// targets (a lane is one worker thread). Keeping a handful of splits
/// per lane balances hub-vertex skew without flooding the scheduler.
pub const AUTO_TAU_EXTRA_PER_LANE: usize = 4;

/// Picks a task-splitting threshold τ from the start-vertex degree
/// distribution (journal refinement of paper §V-B): the smallest τ whose
/// total *extra* subtasks — Σ over split vertices of `⌈bound/τ⌉ − 1` —
/// stays within `lanes × AUTO_TAU_EXTRA_PER_LANE`. Smaller τ splits hub
/// tasks finer (better balance); the budget caps the scheduling overhead
/// that buys. The extra-subtask count is monotone non-increasing in τ,
/// so a binary search finds the frontier exactly; the choice is a pure
/// function of `(degrees, lanes, second_adjacent)` and therefore
/// deterministic across runs.
pub fn auto_tau(degrees: &[u32], lanes: usize, second_adjacent: bool) -> usize {
    let n = degrees.len();
    let budget = lanes.max(1) * AUTO_TAU_EXTRA_PER_LANE;
    let extra = |tau: usize| -> usize {
        degrees
            .iter()
            .map(|&d| {
                let degree = d as usize;
                let bound = if second_adjacent { degree } else { n };
                if degree >= tau && bound > tau {
                    bound.div_ceil(tau) - 1
                } else {
                    0
                }
            })
            .sum()
    };
    // At τ = max bound nothing splits (extra = 0 ≤ budget), so the
    // search interval always contains a feasible point.
    let max_bound = if second_adjacent {
        degrees.iter().copied().max().unwrap_or(0) as usize
    } else {
        n
    };
    let (mut lo, mut hi) = (1usize, max_bound.max(1));
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if extra(mid) <= budget {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use benu_graph::gen;

    #[test]
    fn ranges_partition_exactly() {
        for len in [0usize, 1, 7, 100, 101, 1024] {
            for total in [2u32, 3, 7, 16] {
                let mut covered = 0usize;
                let mut prev_end = 0usize;
                for index in 0..total {
                    let r = SplitSpec { index, total }.range(len);
                    assert_eq!(r.start, prev_end, "len {len} total {total}");
                    prev_end = r.end;
                    covered += r.len();
                }
                assert_eq!(prev_end, len);
                assert_eq!(covered, len);
            }
        }
    }

    #[test]
    fn ranges_are_balanced() {
        let total = 7u32;
        let sizes: Vec<usize> = (0..total)
            .map(|index| SplitSpec { index, total }.range(100).len())
            .collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1);
    }

    #[test]
    fn splitting_respects_threshold() {
        // Star: centre has degree 50, leaves degree 1.
        let g = gen::star(50);
        let tasks = generate_tasks(&g, 10, true);
        let centre_tasks: Vec<_> = tasks.iter().filter(|t| t.start == 0).collect();
        assert_eq!(centre_tasks.len(), 5); // ceil(50 / 10)
        assert!(centre_tasks.iter().all(|t| t.split.is_some()));
        let leaf_tasks: Vec<_> = tasks.iter().filter(|t| t.start == 1).collect();
        assert_eq!(leaf_tasks.len(), 1);
        assert!(leaf_tasks[0].split.is_none());
    }

    #[test]
    fn non_adjacent_second_vertex_splits_by_graph_size() {
        let g = gen::star(50); // 51 vertices
        let tasks = generate_tasks(&g, 10, false);
        let centre_tasks = tasks.iter().filter(|t| t.start == 0).count();
        assert_eq!(centre_tasks, 51usize.div_ceil(10));
    }

    #[test]
    fn zero_tau_disables_splitting() {
        let g = gen::star(50);
        let tasks = generate_tasks(&g, 0, true);
        assert_eq!(tasks.len(), g.num_vertices());
        assert!(tasks.iter().all(|t| t.split.is_none()));
    }

    /// The §V-B audit: for degrees straddling every τ boundary, the
    /// generated subtask ranges must exactly partition the unsplit
    /// candidate range — no gap, no overlap, no truncation — and the
    /// split predicate must fire exactly when `degree ≥ τ ∧ bound > τ`.
    #[test]
    fn split_tasks_partition_the_candidate_range_at_tau_boundaries() {
        for tau in [2usize, 5, 7, 16, 500] {
            let boundary_degrees = [
                tau - 1,
                tau,
                tau + 1,
                2 * tau - 1,
                2 * tau,
                2 * tau + 1,
                7 * tau + 3,
            ];
            for &degree in &boundary_degrees {
                for second_adjacent in [true, false] {
                    // Vertex 0 carries the probed degree; padding vertices
                    // set |V(G)| (the non-adjacent bound) above τ.
                    let mut degrees = vec![0u32; tau + 2];
                    degrees[0] = degree as u32;
                    let n = degrees.len();
                    let bound = if second_adjacent { degree } else { n };
                    let tasks = generate_tasks_from_degrees(&degrees, tau, second_adjacent);
                    let mine: Vec<&SearchTask> = tasks.iter().filter(|t| t.start == 0).collect();
                    let should_split = degree >= tau && bound > tau;
                    if !should_split {
                        assert_eq!(mine.len(), 1, "τ={tau} degree={degree}");
                        assert!(mine[0].split.is_none());
                        continue;
                    }
                    let total = bound.div_ceil(tau) as u32;
                    assert_eq!(mine.len(), total as usize, "τ={tau} degree={degree}");
                    let mut covered = 0usize;
                    for (i, t) in mine.iter().enumerate() {
                        let split = t.split.expect("split task carries its spec");
                        assert_eq!(split.index, i as u32);
                        assert_eq!(split.total, total);
                        let r = split.range(bound);
                        assert_eq!(
                            r.start, covered,
                            "gap or overlap at τ={tau} degree={degree} index={i}"
                        );
                        covered = r.end;
                    }
                    assert_eq!(
                        covered, bound,
                        "subtasks must cover the whole range (τ={tau} degree={degree})"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "overflows u32")]
    fn subtask_total_refuses_silent_truncation() {
        // (u32::MAX + 1) subtasks cannot be represented; the old `as u32`
        // cast silently wrapped here and dropped candidate ranges.
        subtask_total(u32::MAX as usize + 1, 1);
    }

    #[test]
    fn auto_tau_is_deterministic_and_respects_the_budget() {
        let g = gen::barabasi_albert(2000, 4, 9);
        let degrees: Vec<u32> = g.vertices().map(|v| g.degree(v) as u32).collect();
        for lanes in [1usize, 4, 16] {
            let tau = auto_tau(&degrees, lanes, true);
            assert_eq!(tau, auto_tau(&degrees, lanes, true), "must be pure");
            assert!(tau >= 1);
            let base = generate_tasks_from_degrees(&degrees, 0, true).len();
            let split = generate_tasks_from_degrees(&degrees, tau, true).len();
            assert!(
                split - base <= lanes * AUTO_TAU_EXTRA_PER_LANE,
                "lanes={lanes}: {} extra subtasks exceed the budget",
                split - base
            );
        }
        // More lanes can only split finer (τ non-increasing in lanes).
        assert!(auto_tau(&degrees, 16, true) <= auto_tau(&degrees, 1, true));
    }

    #[test]
    fn auto_tau_splits_the_hub_of_a_star() {
        // Star hub: one degree-400 vertex among degree-1 leaves. The
        // adaptive threshold must split the hub into roughly the budget
        // of extra subtasks instead of leaving it whole.
        let g = gen::star(400);
        let degrees: Vec<u32> = g.vertices().map(|v| g.degree(v) as u32).collect();
        let lanes = 4;
        let tau = auto_tau(&degrees, lanes, true);
        let tasks = generate_tasks_from_degrees(&degrees, tau, true);
        let hub_tasks = tasks.iter().filter(|t| t.start == 0).count();
        let budget = lanes * AUTO_TAU_EXTRA_PER_LANE;
        assert!(hub_tasks > 1, "the hub must split (τ={tau})");
        assert!(
            hub_tasks <= budget + 1,
            "hub split into {hub_tasks} subtasks, budget is {budget} extra"
        );
        // Exactness: split and unsplit task lists enumerate the same work.
        let plan = benu_plan::PlanBuilder::new(&benu_pattern::queries::triangle()).best_plan();
        let compiled = crate::CompiledPlan::compile(&plan);
        let source = crate::InMemorySource::from_graph(&g);
        let order = benu_graph::TotalOrder::new(&g);
        let mut engine = crate::LocalEngine::new(&compiled, &source, &order);
        let mut c = crate::CountingConsumer::default();
        let whole = engine.run_all_vertices(&mut c).matches;
        let mut split_total = 0u64;
        for t in generate_tasks_from_degrees(&degrees, tau, compiled.second_adjacent) {
            split_total += engine.run_task(t, &mut c).matches;
        }
        assert_eq!(whole, split_total, "adaptive τ changed the count");
    }

    /// The audit for `auto_tau`'s internal extra-subtask estimate: its
    /// closure (`⌈bound/τ⌉ − 1` where `degree ≥ τ ∧ bound > τ`) must
    /// agree with what `generate_tasks_from_degrees` actually emits, at
    /// the τ boundary and under both `second_adjacent` arms. If the two
    /// predicates drifted, the chosen τ could blow the scheduling budget
    /// or leave hubs unsplit.
    #[test]
    fn auto_tau_estimate_matches_actual_partition_at_the_boundary() {
        // Mirrors auto_tau's internal closure exactly.
        let estimate = |degrees: &[u32], tau: usize, second_adjacent: bool| -> usize {
            let n = degrees.len();
            degrees
                .iter()
                .map(|&d| {
                    let degree = d as usize;
                    let bound = if second_adjacent { degree } else { n };
                    if degree >= tau && bound > tau {
                        bound.div_ceil(tau) - 1
                    } else {
                        0
                    }
                })
                .sum()
        };
        let actual = |degrees: &[u32], tau: usize, second_adjacent: bool| -> usize {
            generate_tasks_from_degrees(degrees, tau, second_adjacent).len() - degrees.len()
        };
        for tau in [2usize, 5, 16, 500] {
            for second_adjacent in [true, false] {
                // Degree mixes straddling the boundary, including n vs τ
                // interactions for the non-adjacent bound (n = len).
                let cases: Vec<Vec<u32>> = vec![
                    vec![0; tau],                    // n == τ: nothing splits
                    vec![0; tau + 1],                // n == τ+1: bound n just over
                    vec![tau as u32; tau + 1],       // every degree at τ
                    vec![(tau - 1) as u32; tau + 2], // degrees just under τ
                    {
                        let mut d = vec![1u32; 2 * tau + 1]; // one hub far over τ
                        d[0] = (7 * tau + 3) as u32;
                        d
                    },
                    {
                        let mut d = vec![0u32; tau + 2]; // boundary sweep
                        d[0] = (tau - 1) as u32;
                        d[1] = tau as u32;
                        d[2] = (tau + 1) as u32;
                        d
                    },
                ];
                for degrees in &cases {
                    assert_eq!(
                        estimate(degrees, tau, second_adjacent),
                        actual(degrees, tau, second_adjacent),
                        "τ={tau} second_adjacent={second_adjacent} degrees={degrees:?}"
                    );
                }
            }
        }
        // And on a power-law degree distribution at the auto-chosen τ
        // itself, for both arms.
        let g = gen::barabasi_albert(1500, 4, 13);
        let degrees: Vec<u32> = g.vertices().map(|v| g.degree(v) as u32).collect();
        for second_adjacent in [true, false] {
            for lanes in [1usize, 8] {
                let tau = auto_tau(&degrees, lanes, second_adjacent);
                let est = estimate(&degrees, tau, second_adjacent);
                assert_eq!(est, actual(&degrees, tau, second_adjacent));
                assert!(est <= lanes * AUTO_TAU_EXTRA_PER_LANE);
            }
        }
    }

    #[test]
    fn task_count_grows_only_slightly() {
        // Paper Exp-4: 3.07M → 3.12M tasks. On a power-law mini graph,
        // splitting should add a small fraction of extra tasks.
        let g = gen::barabasi_albert(2000, 4, 9);
        let unsplit = generate_tasks(&g, 0, true).len();
        let split = generate_tasks(&g, 50, true).len();
        assert!(split > unsplit);
        assert!((split as f64) < (unsplit as f64) * 1.5);
    }
}
