//! Local search tasks and task splitting (paper §V-B).
//!
//! BENU generates one task per data vertex; the task enumerates every
//! match whose start pattern vertex maps to that data vertex. Power-law
//! degree distributions make a handful of hub tasks dominate the runtime,
//! so tasks whose start degree exceeds a threshold `τ` are split: the
//! candidate set of the *second* pattern vertex is divided into
//! `⌈|C|/τ⌉` equal-sized contiguous ranges, one per subtask.

use benu_graph::{Graph, VertexId};

/// Which slice of the second pattern vertex's candidate set a subtask
/// owns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SplitSpec {
    /// This subtask's index in `0..total`.
    pub index: u32,
    /// Total number of subtasks the parent task was split into (≥ 2).
    pub total: u32,
}

impl SplitSpec {
    /// The half-open subrange of a candidate set of length `len` that this
    /// subtask enumerates. Ranges are contiguous, non-overlapping, cover
    /// `0..len`, and differ in size by at most one element.
    pub fn range(&self, len: usize) -> std::ops::Range<usize> {
        let total = self.total as usize;
        let index = self.index as usize;
        let base = len / total;
        let extra = len % total;
        let lo = index * base + index.min(extra);
        let hi = lo + base + usize::from(index < extra);
        lo..hi.min(len)
    }
}

/// One local search task: enumerate all matches with `f_{k1} = start`,
/// optionally restricted to a slice of the second-level candidates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SearchTask {
    /// The data vertex the first pattern vertex is mapped to.
    pub start: VertexId,
    /// Task-splitting restriction, if the parent task was split.
    pub split: Option<SplitSpec>,
}

impl SearchTask {
    /// An unsplit task.
    pub fn whole(start: VertexId) -> Self {
        SearchTask { start, split: None }
    }
}

/// Generates the task list for a data graph with task splitting at
/// degree threshold `tau` (paper: τ = 500). `second_adjacent` says
/// whether the second pattern vertex is adjacent to the first in the
/// pattern — if so the second-level candidate set size is bounded by the
/// start degree, otherwise by `|V(G)|`.
///
/// Passing `tau = 0` disables splitting.
pub fn generate_tasks(g: &Graph, tau: usize, second_adjacent: bool) -> Vec<SearchTask> {
    let mut tasks = Vec::with_capacity(g.num_vertices());
    for v in g.vertices() {
        let candidate_bound = if second_adjacent {
            g.degree(v)
        } else {
            g.num_vertices()
        };
        if tau > 0 && g.degree(v) >= tau && candidate_bound > tau {
            let total = candidate_bound.div_ceil(tau) as u32;
            for index in 0..total {
                tasks.push(SearchTask {
                    start: v,
                    split: Some(SplitSpec { index, total }),
                });
            }
        } else {
            tasks.push(SearchTask::whole(v));
        }
    }
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;
    use benu_graph::gen;

    #[test]
    fn ranges_partition_exactly() {
        for len in [0usize, 1, 7, 100, 101, 1024] {
            for total in [2u32, 3, 7, 16] {
                let mut covered = 0usize;
                let mut prev_end = 0usize;
                for index in 0..total {
                    let r = SplitSpec { index, total }.range(len);
                    assert_eq!(r.start, prev_end, "len {len} total {total}");
                    prev_end = r.end;
                    covered += r.len();
                }
                assert_eq!(prev_end, len);
                assert_eq!(covered, len);
            }
        }
    }

    #[test]
    fn ranges_are_balanced() {
        let total = 7u32;
        let sizes: Vec<usize> = (0..total)
            .map(|index| SplitSpec { index, total }.range(100).len())
            .collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1);
    }

    #[test]
    fn splitting_respects_threshold() {
        // Star: centre has degree 50, leaves degree 1.
        let g = gen::star(50);
        let tasks = generate_tasks(&g, 10, true);
        let centre_tasks: Vec<_> = tasks.iter().filter(|t| t.start == 0).collect();
        assert_eq!(centre_tasks.len(), 5); // ceil(50 / 10)
        assert!(centre_tasks.iter().all(|t| t.split.is_some()));
        let leaf_tasks: Vec<_> = tasks.iter().filter(|t| t.start == 1).collect();
        assert_eq!(leaf_tasks.len(), 1);
        assert!(leaf_tasks[0].split.is_none());
    }

    #[test]
    fn non_adjacent_second_vertex_splits_by_graph_size() {
        let g = gen::star(50); // 51 vertices
        let tasks = generate_tasks(&g, 10, false);
        let centre_tasks = tasks.iter().filter(|t| t.start == 0).count();
        assert_eq!(centre_tasks, 51usize.div_ceil(10));
    }

    #[test]
    fn zero_tau_disables_splitting() {
        let g = gen::star(50);
        let tasks = generate_tasks(&g, 0, true);
        assert_eq!(tasks.len(), g.num_vertices());
        assert!(tasks.iter().all(|t| t.split.is_none()));
    }

    #[test]
    fn task_count_grows_only_slightly() {
        // Paper Exp-4: 3.07M → 3.12M tasks. On a power-law mini graph,
        // splitting should add a small fraction of extra tasks.
        let g = gen::barabasi_albert(2000, 4, 9);
        let unsplit = generate_tasks(&g, 0, true).len();
        let split = generate_tasks(&g, 50, true).len();
        assert!(split > unsplit);
        assert!((split as f64) < (unsplit as f64) * 1.5);
    }
}
