//! Match consumers — where RES instructions deliver their results.

use benu_graph::VertexId;

/// Receives matches from the engine.
///
/// For VCBC-compressed plans the engine always counts embeddings; it only
/// pays the expansion cost (materialising each full embedding) when
/// [`MatchConsumer::needs_matches`] returns true.
pub trait MatchConsumer {
    /// Called once per (expanded) match; `f[i]` is the data vertex mapped
    /// to pattern vertex `i`.
    fn on_match(&mut self, f: &[VertexId]);

    /// Whether full embeddings must be materialised. Counting-only
    /// consumers return false and rely on the engine's metrics.
    fn needs_matches(&self) -> bool {
        true
    }
}

/// Counts matches without materialising them (the engine's metrics carry
/// the counts; this consumer simply opts out of expansion).
#[derive(Clone, Copy, Debug, Default)]
pub struct CountingConsumer {
    /// Number of `on_match` calls received (zero for compressed plans —
    /// read the engine metrics instead).
    pub direct_calls: u64,
}

impl MatchConsumer for CountingConsumer {
    fn on_match(&mut self, _f: &[VertexId]) {
        self.direct_calls += 1;
    }

    fn needs_matches(&self) -> bool {
        false
    }
}

/// Collects every match into memory. Intended for tests and small runs.
#[derive(Clone, Debug, Default)]
pub struct CollectingConsumer {
    matches: Vec<Vec<VertexId>>,
}

impl CollectingConsumer {
    /// The collected matches.
    pub fn matches(&self) -> &[Vec<VertexId>] {
        &self.matches
    }

    /// Consumes the collector.
    pub fn into_matches(self) -> Vec<Vec<VertexId>> {
        self.matches
    }
}

impl MatchConsumer for CollectingConsumer {
    fn on_match(&mut self, f: &[VertexId]) {
        self.matches.push(f.to_vec());
    }
}

/// Adapts a closure into a consumer.
pub struct FnConsumer<F: FnMut(&[VertexId])>(pub F);

impl<F: FnMut(&[VertexId])> MatchConsumer for FnConsumer<F> {
    fn on_match(&mut self, f: &[VertexId]) {
        (self.0)(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collecting_consumer_stores_matches() {
        let mut c = CollectingConsumer::default();
        c.on_match(&[1, 2, 3]);
        c.on_match(&[4, 5, 6]);
        assert_eq!(c.matches().len(), 2);
        assert!(c.needs_matches());
    }

    #[test]
    fn counting_consumer_skips_expansion() {
        let c = CountingConsumer::default();
        assert!(!c.needs_matches());
    }

    #[test]
    fn fn_consumer_invokes_closure() {
        let mut seen = 0;
        {
            let mut c = FnConsumer(|f: &[VertexId]| seen += f.len());
            c.on_match(&[9, 9]);
        }
        assert_eq!(seen, 2);
    }
}
