//! An independent brute-force enumerator used to verify the plan compiler
//! and the engine.
//!
//! It implements Algorithm 1 directly on the graph — no execution plans,
//! no caches, no intersection kernels — so a disagreement with the engine
//! localises the bug to the plan machinery. Exponential in the pattern
//! size; use on small graphs only.

use benu_graph::{Graph, TotalOrder, VertexId};
use benu_pattern::{Pattern, SymmetryBreaking};

/// Enumerates every match of `pattern` in `g` satisfying the
/// symmetry-breaking constraints, sorted lexicographically. Each match is
/// indexed by pattern vertex.
pub fn enumerate(g: &Graph, pattern: &Pattern, symmetry: &SymmetryBreaking) -> Vec<Vec<VertexId>> {
    enumerate_labeled(g, pattern, symmetry, None)
}

/// Label-aware variant: when `data_labels` is given and the pattern is
/// labeled, a pattern vertex only maps to data vertices with its label.
pub fn enumerate_labeled(
    g: &Graph,
    pattern: &Pattern,
    symmetry: &SymmetryBreaking,
    data_labels: Option<&[u32]>,
) -> Vec<Vec<VertexId>> {
    let order = TotalOrder::new(g);
    let n = pattern.num_vertices();
    let mut f: Vec<VertexId> = vec![VertexId::MAX; n];
    let mut out = Vec::new();
    backtrack(
        g,
        pattern,
        symmetry,
        &order,
        data_labels,
        &mut f,
        0,
        &mut out,
    );
    out.sort_unstable();
    out
}

/// Counts matches without materialising them.
pub fn count(g: &Graph, pattern: &Pattern, symmetry: &SymmetryBreaking) -> u64 {
    enumerate(g, pattern, symmetry).len() as u64
}

/// Counts matches with the symmetry-breaking order computed from the
/// pattern — i.e. the number of subgraphs of `g` isomorphic to `pattern`.
pub fn count_subgraphs(g: &Graph, pattern: &Pattern) -> u64 {
    count(g, pattern, &SymmetryBreaking::compute(pattern))
}

/// Label-aware subgraph count.
pub fn count_subgraphs_labeled(g: &Graph, pattern: &Pattern, data_labels: &[u32]) -> u64 {
    enumerate_labeled(
        g,
        pattern,
        &SymmetryBreaking::compute(pattern),
        Some(data_labels),
    )
    .len() as u64
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    g: &Graph,
    pattern: &Pattern,
    symmetry: &SymmetryBreaking,
    order: &TotalOrder,
    data_labels: Option<&[u32]>,
    f: &mut Vec<VertexId>,
    u: usize,
    out: &mut Vec<Vec<VertexId>>,
) {
    let n = pattern.num_vertices();
    if u == n {
        out.push(f.clone());
        return;
    }
    'cand: for v in g.vertices() {
        // Injectivity.
        if f[..u].contains(&v) {
            continue;
        }
        // Label constraint (property-graph extension).
        if let (Some(need), Some(labels)) = (pattern.label(u), data_labels) {
            if labels[v as usize] != need {
                continue;
            }
        }
        // Match condition against already-mapped neighbours.
        for w in pattern.neighbors(u) {
            if w < u && !g.has_edge(f[w], v) {
                continue 'cand;
            }
        }
        // Symmetry-breaking partial order.
        for (w, &fw) in f.iter().enumerate().take(u) {
            match symmetry.between(w, u) {
                Some(true) if !order.less(fw, v) => continue 'cand,
                Some(false) if !order.less(v, fw) => continue 'cand,
                _ => {}
            }
        }
        f[u] = v;
        backtrack(g, pattern, symmetry, order, data_labels, f, u + 1, out);
        f[u] = VertexId::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benu_graph::gen;
    use benu_pattern::automorphism::automorphism_count;
    use benu_pattern::queries;

    #[test]
    fn triangle_count_matches_formula() {
        assert_eq!(count_subgraphs(&gen::complete(6), &queries::triangle()), 20);
        // C(6,3)
    }

    #[test]
    fn without_symmetry_each_subgraph_counted_aut_times() {
        let g = gen::erdos_renyi_gnm(20, 60, 4);
        for (name, p) in [
            ("triangle", queries::triangle()),
            ("square", queries::square()),
        ] {
            let with = count(&g, &p, &SymmetryBreaking::compute(&p));
            let without = count(&g, &p, &SymmetryBreaking::none());
            assert_eq!(
                without,
                with * automorphism_count(&p) as u64,
                "{name}: |Aut| duplication factor"
            );
        }
    }

    #[test]
    fn matches_respect_pattern_edges() {
        let g = gen::erdos_renyi_gnm(15, 40, 2);
        let p = queries::q1();
        for m in enumerate(&g, &p, &SymmetryBreaking::compute(&p)) {
            for (a, b) in p.edges() {
                assert!(g.has_edge(m[a], m[b]));
            }
            let mut sorted = m.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), m.len(), "injective");
        }
    }

    #[test]
    fn engine_agrees_with_reference_on_catalogue() {
        let g = gen::erdos_renyi_gnm(30, 100, 77);
        for (name, p) in queries::catalogue() {
            let expected = count_subgraphs(&g, &p);
            let plan = benu_plan::PlanBuilder::new(&p).best_plan();
            let got = crate::count_embeddings(&plan, &g);
            assert_eq!(got, expected, "{name}: engine vs brute force");
        }
    }

    #[test]
    fn engine_agrees_with_reference_on_clustered_graph() {
        // Triangle-rich graph exercises the TRC instructions heavily.
        let g = gen::chung_lu_power_law(benu_graph::gen::PowerLawConfig {
            n: 60,
            m: 240,
            gamma: 2.3,
            clustering: 0.4,
            seed: 5,
        });
        for (name, p) in queries::evaluation_queries() {
            let expected = count_subgraphs(&g, &p);
            let plan = benu_plan::PlanBuilder::new(&p).compressed(true).best_plan();
            let got = crate::count_embeddings(&plan, &g);
            assert_eq!(got, expected, "{name}: compressed engine vs brute force");
        }
    }

    #[test]
    fn engine_matches_reference_match_sets_exactly() {
        let g = gen::erdos_renyi_gnm(25, 80, 11);
        for (name, p) in [("q1", queries::q1()), ("demo", queries::demo_pattern())] {
            let sb = SymmetryBreaking::compute(&p);
            let expected = enumerate(&g, &p, &sb);
            let plan = benu_plan::PlanBuilder::new(&p).best_plan();
            let got = crate::collect_embeddings(&plan, &g);
            assert_eq!(got, expected, "{name}: full match sets");
        }
    }
}
