//! Adjacency-set data sources for the engine.
//!
//! A `GetAdj` (DBQ) instruction resolves through a [`DataSource`]. Two
//! implementations are provided:
//!
//! * [`InMemorySource`] — the whole graph pinned in memory, no accounting;
//!   used by tests, examples and the single-machine baselines.
//! * [`KvSource`] — the paper's architecture: a shared [`DbCache`] in
//!   front of the sharded [`KvStore`]; every cache miss is a counted
//!   database query (the communication-cost metric).

use benu_cache::DbCache;
use benu_graph::{AdjSet, Graph, VertexId};
use benu_kvstore::KvStore;
use std::sync::Arc;

/// Resolves adjacency sets for DBQ instructions. Implementations must be
/// shareable across worker threads.
pub trait DataSource: Sync {
    /// Number of vertices in the data graph (`V(G)` for `AllVertices`
    /// operands).
    fn num_vertices(&self) -> usize;

    /// The adjacency set of `v`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `v` is not a vertex of the data graph
    /// (plans only query mapped vertices, which always exist).
    fn get_adj(&self, v: VertexId) -> Arc<AdjSet>;
}

/// The whole data graph resident in memory as shared adjacency sets.
#[derive(Debug)]
pub struct InMemorySource {
    adj: Vec<Arc<AdjSet>>,
}

impl InMemorySource {
    /// Materialises every adjacency set of `g`.
    pub fn from_graph(g: &Graph) -> Self {
        InMemorySource {
            adj: g.vertices().map(|v| Arc::new(g.adj_set(v))).collect(),
        }
    }
}

impl DataSource for InMemorySource {
    fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    fn get_adj(&self, v: VertexId) -> Arc<AdjSet> {
        Arc::clone(&self.adj[v as usize])
    }
}

/// The distributed-database stack: per-machine cache over the sharded
/// store.
pub struct KvSource {
    store: Arc<KvStore>,
    cache: Arc<DbCache>,
}

impl KvSource {
    /// Fronts `store` with `cache`.
    pub fn new(store: Arc<KvStore>, cache: Arc<DbCache>) -> Self {
        KvSource { store, cache }
    }

    /// The cache (for stats inspection).
    pub fn cache(&self) -> &DbCache {
        &self.cache
    }

    /// The store (for stats inspection).
    pub fn store(&self) -> &KvStore {
        &self.store
    }
}

impl DataSource for KvSource {
    fn num_vertices(&self) -> usize {
        self.store.num_vertices()
    }

    fn get_adj(&self, v: VertexId) -> Arc<AdjSet> {
        let store = &self.store;
        self.cache
            .get_or_fetch(v, || {
                store
                    .get(v)
                    .ok_or_else(|| format!("vertex {v} missing from KV store"))
            })
            .expect("data graph vertex must exist in the store")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benu_graph::gen;

    #[test]
    fn in_memory_source_matches_graph() {
        let g = gen::cycle(6);
        let src = InMemorySource::from_graph(&g);
        assert_eq!(src.num_vertices(), 6);
        for v in g.vertices() {
            assert_eq!(src.get_adj(v).as_slice(), g.neighbors(v));
        }
    }

    #[test]
    fn kv_source_counts_misses_only() {
        let g = gen::complete(5);
        let store = Arc::new(KvStore::from_graph(&g, 2));
        let cache = Arc::new(DbCache::new(1 << 16, 2));
        let src = KvSource::new(Arc::clone(&store), Arc::clone(&cache));
        for _ in 0..3 {
            src.get_adj(0);
        }
        assert_eq!(store.stats().requests, 1, "two hits served by the cache");
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn kv_source_with_disabled_cache_hits_store_every_time() {
        let g = gen::complete(4);
        let store = Arc::new(KvStore::from_graph(&g, 1));
        let cache = Arc::new(DbCache::new(0, 1));
        let src = KvSource::new(Arc::clone(&store), cache);
        src.get_adj(1);
        src.get_adj(1);
        assert_eq!(store.stats().requests, 2);
    }
}
