//! Adjacency-set data sources for the engine.
//!
//! A `GetAdj` (DBQ) instruction resolves through a [`DataSource`]. Two
//! implementations are provided:
//!
//! * [`InMemorySource`] — the whole graph pinned in memory, no accounting;
//!   used by tests, examples and the single-machine baselines.
//! * [`KvSource`] — the paper's architecture: a shared [`DbCache`] in
//!   front of the sharded [`KvStore`]; every cache miss is a counted
//!   database query (the communication-cost metric).

use benu_cache::DbCache;
use benu_graph::{AdjSet, Graph, VertexId};
use benu_kvstore::KvStore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Resolves adjacency sets for DBQ instructions. Implementations must be
/// shareable across worker threads.
pub trait DataSource: Sync {
    /// Number of vertices in the data graph (`V(G)` for `AllVertices`
    /// operands).
    fn num_vertices(&self) -> usize;

    /// The adjacency set of `v`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `v` is not a vertex of the data graph
    /// (plans only query mapped vertices, which always exist).
    fn get_adj(&self, v: VertexId) -> Arc<AdjSet>;

    /// The adjacency sets of `vs`, in order. The default resolves each
    /// vertex with [`DataSource::get_adj`]; batched backends override this
    /// to group the lookups into fewer round trips (e.g. one per store
    /// shard), which is how frontier prefetching stays cheap.
    fn get_adj_batch(&self, vs: &[VertexId]) -> Vec<Arc<AdjSet>> {
        vs.iter().map(|&v| self.get_adj(v)).collect()
    }
}

/// The whole data graph resident in memory as shared adjacency sets.
#[derive(Debug)]
pub struct InMemorySource {
    adj: Vec<Arc<AdjSet>>,
}

impl InMemorySource {
    /// Materialises every adjacency set of `g`, building the bitset-block
    /// sidecar for dense vertices (the same per-vertex representation
    /// decision the distributed store makes at decode time).
    pub fn from_graph(g: &Graph) -> Self {
        InMemorySource {
            adj: g
                .vertices()
                .map(|v| Arc::new(g.adj_set(v).with_blocks(benu_graph::DENSE_BLOCK_THRESHOLD)))
                .collect(),
        }
    }
}

impl DataSource for InMemorySource {
    fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    fn get_adj(&self, v: VertexId) -> Arc<AdjSet> {
        Arc::clone(&self.adj[v as usize])
    }
}

/// The distributed-database stack: per-machine cache over the sharded
/// store.
///
/// A vertex the store does not hold is *not* a panic: both the single-get
/// and the batched path record it in a first-missing slot (mirroring the
/// cluster worker's structured `MissingVertex` error path) and answer
/// with an empty adjacency set, so a corrupted load degrades into a
/// checkable error instead of aborting the process mid-batch. Callers
/// that care must check [`KvSource::first_missing`] after a run.
pub struct KvSource {
    store: Arc<KvStore>,
    cache: Arc<DbCache>,
    /// First vertex observed missing (`MISSING_NONE` when clean).
    first_missing: AtomicU64,
}

const MISSING_NONE: u64 = u64::MAX;

impl KvSource {
    /// Fronts `store` with `cache`.
    pub fn new(store: Arc<KvStore>, cache: Arc<DbCache>) -> Self {
        KvSource {
            store,
            cache,
            first_missing: AtomicU64::new(MISSING_NONE),
        }
    }

    /// The cache (for stats inspection).
    pub fn cache(&self) -> &DbCache {
        &self.cache
    }

    /// The store (for stats inspection).
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// The first vertex any lookup found missing from the store, if any.
    /// Single-get and batched lookups share this path, so prefetch-style
    /// batching cannot change how corruption surfaces.
    pub fn first_missing(&self) -> Option<VertexId> {
        match self.first_missing.load(Ordering::Acquire) {
            MISSING_NONE => None,
            v => Some(v as VertexId),
        }
    }

    /// Shared missing-vertex path: record the first offender, answer an
    /// empty set.
    fn missing(&self, v: VertexId) -> Arc<AdjSet> {
        let _ = self.first_missing.compare_exchange(
            MISSING_NONE,
            v as u64,
            Ordering::AcqRel,
            Ordering::Relaxed,
        );
        Arc::new(AdjSet::new())
    }
}

impl DataSource for KvSource {
    fn num_vertices(&self) -> usize {
        self.store.num_vertices()
    }

    fn get_adj(&self, v: VertexId) -> Arc<AdjSet> {
        let store = &self.store;
        match self.cache.get_or_fetch(v, || store.get(v).ok_or(())) {
            Ok(adj) => adj,
            Err(()) => self.missing(v),
        }
    }

    fn get_adj_batch(&self, vs: &[VertexId]) -> Vec<Arc<AdjSet>> {
        let mut out: Vec<Option<Arc<AdjSet>>> = vec![None; vs.len()];
        let mut missing_slots = Vec::new();
        let mut missing_keys = Vec::new();
        for (i, &v) in vs.iter().enumerate() {
            match self.cache.get(v) {
                Some(adj) => out[i] = Some(adj),
                None => {
                    missing_slots.push(i);
                    missing_keys.push(v);
                }
            }
        }
        if !missing_keys.is_empty() {
            let batch = self.store.get_many(&missing_keys);
            for (j, value) in batch.values.into_iter().enumerate() {
                out[missing_slots[j]] = Some(match value {
                    Some(adj) => {
                        self.cache.insert(missing_keys[j], Arc::clone(&adj));
                        adj
                    }
                    None => self.missing(missing_keys[j]),
                });
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every slot filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benu_graph::gen;

    #[test]
    fn in_memory_source_matches_graph() {
        let g = gen::cycle(6);
        let src = InMemorySource::from_graph(&g);
        assert_eq!(src.num_vertices(), 6);
        for v in g.vertices() {
            assert_eq!(src.get_adj(v).as_slice(), g.neighbors(v));
        }
    }

    #[test]
    fn kv_source_counts_misses_only() {
        let g = gen::complete(5);
        let store = Arc::new(KvStore::from_graph(&g, 2));
        let cache = Arc::new(DbCache::new(1 << 16, 2));
        let src = KvSource::new(Arc::clone(&store), Arc::clone(&cache));
        for _ in 0..3 {
            src.get_adj(0);
        }
        assert_eq!(store.stats().requests, 1, "two hits served by the cache");
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn kv_source_batch_groups_round_trips_and_warms_the_cache() {
        let g = gen::complete(6);
        let store = Arc::new(KvStore::from_graph(&g, 3));
        let cache = Arc::new(DbCache::new(1 << 16, 2));
        let src = KvSource::new(Arc::clone(&store), Arc::clone(&cache));
        let all: Vec<VertexId> = g.vertices().collect();
        let sets = src.get_adj_batch(&all);
        for (&v, adj) in all.iter().zip(&sets) {
            assert_eq!(adj.as_slice(), g.neighbors(v));
        }
        let cold = store.stats();
        assert_eq!(cold.requests, 3, "one round trip per touched shard");
        assert_eq!(cold.keys, 6);
        // A second batch is fully served by the cache.
        src.get_adj_batch(&all);
        assert_eq!(store.stats().requests, cold.requests);
    }

    #[test]
    fn kv_source_batch_with_repeated_ids_stays_aligned_and_dedups() {
        let g = gen::complete(6);
        let store = Arc::new(KvStore::from_graph(&g, 3));
        // Cache disabled: every occurrence reaches the store's batch path.
        let src = KvSource::new(Arc::clone(&store), Arc::new(DbCache::new(0, 1)));
        let keys = [5u32, 2, 5, 5, 2, 0];
        let sets = src.get_adj_batch(&keys);
        for (i, &v) in keys.iter().enumerate() {
            assert_eq!(
                sets[i].as_slice(),
                g.neighbors(v),
                "slot {i} must still hold vertex {v}"
            );
        }
        let stats = store.stats();
        assert_eq!(stats.keys, 3, "hub repeats are served once");
        assert_eq!(stats.deduped_keys, 3, "saved lookups are counted");
    }

    #[test]
    fn default_batch_matches_single_gets() {
        let g = gen::cycle(5);
        let src = InMemorySource::from_graph(&g);
        let sets = src.get_adj_batch(&[4, 0, 2]);
        assert_eq!(sets[0].as_slice(), g.neighbors(4));
        assert_eq!(sets[1].as_slice(), g.neighbors(0));
        assert_eq!(sets[2].as_slice(), g.neighbors(2));
    }

    #[test]
    fn missing_vertex_is_structured_not_a_panic_in_both_paths() {
        let g = gen::complete(6);
        let mut store = KvStore::from_graph(&g, 3);
        assert!(store.remove_vertex(4), "corrupt the store");
        let store = Arc::new(store);

        // Single-get path.
        let src = KvSource::new(Arc::clone(&store), Arc::new(DbCache::new(1 << 16, 2)));
        assert!(src.first_missing().is_none());
        let adj = src.get_adj(4);
        assert!(adj.is_empty(), "missing vertex answers the empty set");
        assert_eq!(src.first_missing(), Some(4));

        // Batched path: identical behaviour, same structured surface.
        let src2 = KvSource::new(Arc::clone(&store), Arc::new(DbCache::new(1 << 16, 2)));
        let sets = src2.get_adj_batch(&[0, 4, 5]);
        assert_eq!(sets[0].as_slice(), g.neighbors(0));
        assert!(sets[1].is_empty());
        assert_eq!(sets[2].as_slice(), g.neighbors(5));
        assert_eq!(src2.first_missing(), Some(4));

        // The first offender is kept, later ones don't overwrite it.
        src2.get_adj(4);
        assert_eq!(src2.first_missing(), Some(4));
    }

    #[test]
    fn kv_source_with_disabled_cache_hits_store_every_time() {
        let g = gen::complete(4);
        let store = Arc::new(KvStore::from_graph(&g, 1));
        let cache = Arc::new(DbCache::new(0, 1));
        let src = KvSource::new(Arc::clone(&store), cache);
        src.get_adj(1);
        src.get_adj(1);
        assert_eq!(store.stats().requests, 2);
    }
}
