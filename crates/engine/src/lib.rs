//! The BENU execution engine.
//!
//! A [`LocalEngine`] interprets a compiled execution plan for one *local
//! search task* at a time (paper Algorithm 2, lines 4–8): it maps the
//! task's start vertex to the first pattern vertex and drives the
//! backtracking search, querying adjacency sets through a [`DataSource`]
//! (typically the distributed store fronted by the per-machine database
//! cache) and reporting matches or VCBC-compressed codes to a
//! [`MatchConsumer`].
//!
//! Modules:
//!
//! * [`compile`] — lowers an [`benu_plan::ExecutionPlan`] into a dense
//!   register machine.
//! * [`exec`] — the backtracking interpreter with its failure-pruning
//!   (empty candidate set ⇒ immediate backtrack).
//! * [`source`] — data sources: an in-memory graph and the KV-store +
//!   DB-cache stack of the paper's architecture.
//! * [`consumer`] — match consumers (counting, collecting, callbacks).
//! * [`frontier`] — the memory-bounded BFS/DFS hybrid driver with
//!   frontier-batched store reads.
//! * [`expand`] — VCBC code expansion and embedding counting.
//! * [`task`] — local search tasks and the task-splitting arithmetic
//!   (§V-B).
//! * [`mod@reference`] — an independent brute-force enumerator used to verify
//!   every other component.

pub mod compile;
pub mod consumer;
pub mod exec;
pub mod expand;
pub mod frontier;
pub mod reference;
pub mod source;
pub mod task;

pub use compile::CompiledPlan;
pub use consumer::{CollectingConsumer, CountingConsumer, FnConsumer, MatchConsumer};
pub use exec::{LocalEngine, PoolStats, TaskMetrics};
pub use frontier::{FrontierEngine, FrontierStats, MemoryBudget};
pub use source::{DataSource, InMemorySource, KvSource};
pub use task::{SearchTask, SplitSpec};

use benu_graph::{Graph, TotalOrder};
use benu_plan::ExecutionPlan;

/// Convenience: counts all embeddings of `plan` in `g` on a single thread
/// with an in-memory source. The workhorse of tests and examples.
pub fn count_embeddings(plan: &ExecutionPlan, g: &Graph) -> u64 {
    let compiled = CompiledPlan::compile(plan);
    let source = InMemorySource::from_graph(g);
    let order = TotalOrder::new(g);
    let mut engine = LocalEngine::new(&compiled, &source, &order);
    let mut consumer = CountingConsumer::default();
    let metrics = engine.run_all_vertices(&mut consumer);
    metrics.matches
}

/// Convenience: counts embeddings of a *labeled* plan in `g` where
/// `data_labels[v]` is the label of data vertex `v` (property-graph
/// extension).
pub fn count_labeled_embeddings(plan: &ExecutionPlan, g: &Graph, data_labels: &[u32]) -> u64 {
    let compiled = CompiledPlan::compile(plan);
    let source = InMemorySource::from_graph(g);
    let order = TotalOrder::new(g);
    let mut engine = LocalEngine::new(&compiled, &source, &order).with_data_labels(data_labels);
    let mut consumer = CountingConsumer::default();
    engine.run_all_vertices(&mut consumer).matches
}

/// Convenience: collects all embeddings of `plan` in `g`, each as a
/// `Vec` indexed by pattern vertex.
pub fn collect_embeddings(plan: &ExecutionPlan, g: &Graph) -> Vec<Vec<benu_graph::VertexId>> {
    let compiled = CompiledPlan::compile(plan);
    let source = InMemorySource::from_graph(g);
    let order = TotalOrder::new(g);
    let mut engine = LocalEngine::new(&compiled, &source, &order);
    let mut consumer = CollectingConsumer::default();
    engine.run_all_vertices(&mut consumer);
    let mut out = consumer.into_matches();
    out.sort_unstable();
    out
}
