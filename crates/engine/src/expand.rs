//! VCBC code expansion: turning `(helve, conditional image sets)` codes
//! back into embeddings, or just counting them.
//!
//! The plan compiler drops two kinds of constraints when it removes a
//! non-cover vertex's ENU instruction: injectivity *between non-cover
//! vertices* and symmetry-breaking order *between non-cover vertices*
//! (constraints against cover vertices stay baked into the image-set
//! filters). Expansion re-applies them.
//!
//! Counting uses two fast paths before falling back to backtracking:
//!
//! * disjoint constraint components multiply independently;
//! * a component whose image sets are all identical counts as a falling
//!   factorial (injectivity only) or a binomial coefficient (full order
//!   chain) — the common cases produced by syntactically-equivalent
//!   pattern vertices such as star leaves or clique tails.

use crate::compile::ExpansionInfo;
use benu_graph::ops::intersect_count;
use benu_graph::{TotalOrder, VertexId};

/// Counts the embeddings encoded by one compressed code whose image sets
/// are `images[t]` for `info.non_cover[t]`.
pub fn count_code_embeddings(
    info: &ExpansionInfo,
    images: &[&[VertexId]],
    order: &TotalOrder,
) -> u64 {
    let t = info.non_cover.len();
    if t == 0 {
        return 1;
    }
    if images.iter().any(|s| s.is_empty()) {
        return 0;
    }
    // Partition positions into components connected by "may interact":
    // overlapping image sets or an order constraint.
    let mut comp = (0..t).collect::<Vec<usize>>();
    for a in 0..t {
        for b in (a + 1)..t {
            let interacting =
                info.pair_order[a][b].is_some() || intersect_count(images[a], images[b]) > 0;
            if interacting {
                let (ra, rb) = (root(&mut comp, a), root(&mut comp, b));
                if ra != rb {
                    comp[ra.max(rb)] = ra.min(rb);
                }
            }
        }
    }
    let mut total = 1u64;
    for c in 0..t {
        if root(&mut comp, c) != c {
            continue;
        }
        let members: Vec<usize> = (0..t).filter(|&x| root(&mut comp, x) == c).collect();
        total = total.saturating_mul(count_component(info, images, order, &members));
    }
    total
}

fn root(comp: &mut [usize], mut x: usize) -> usize {
    while comp[x] != x {
        comp[x] = comp[comp[x]];
        x = comp[x];
    }
    x
}

fn count_component(
    info: &ExpansionInfo,
    images: &[&[VertexId]],
    order: &TotalOrder,
    members: &[usize],
) -> u64 {
    let k = members.len();
    if k == 1 {
        return images[members[0]].len() as u64;
    }
    // Fast path: identical sets.
    let first = images[members[0]];
    let identical = members[1..].iter().all(|&m| images[m] == first);
    if identical {
        let s = first.len() as u64;
        if s < k as u64 {
            return 0;
        }
        let all_chained = members.iter().enumerate().all(|(i, &a)| {
            members[i + 1..]
                .iter()
                .all(|&b| info.pair_order[a.min(b)][a.max(b)].is_some())
        });
        if all_chained {
            // Any assignment order is forced: C(s, k) choices.
            return binomial(s, k as u64);
        }
        let none_chained = members.iter().enumerate().all(|(i, &a)| {
            members[i + 1..]
                .iter()
                .all(|&b| info.pair_order[a.min(b)][a.max(b)].is_none())
        });
        if none_chained {
            // Injectivity only: falling factorial.
            return (0..k as u64).map(|i| s - i).product();
        }
    }
    // Injectivity-only components count in closed form via
    // inclusion–exclusion over set partitions — crucial for dense
    // workloads where per-code embedding counts reach billions.
    let unordered = members.iter().enumerate().all(|(i, &a)| {
        members[i + 1..]
            .iter()
            .all(|&b| info.pair_order[a.min(b)][a.max(b)].is_none())
    });
    if unordered && k <= 6 {
        return count_injective_inclusion_exclusion(images, members);
    }
    // General case: backtracking over the (small) component.
    let mut chosen: Vec<VertexId> = Vec::with_capacity(k);
    count_backtrack(info, images, order, members, &mut chosen)
}

/// Counts injective systems of representatives of the member image sets
/// by inclusion–exclusion over set partitions:
/// `Σ_partitions Π_blocks (−1)^{|B|−1} (|B|−1)! · |∩_{i∈B} C_i|`.
/// Exact for any overlap structure; cost is `O(2^k)` subset
/// intersections plus `Bell(k)` partition terms — independent of the
/// (possibly astronomical) embedding count.
fn count_injective_inclusion_exclusion(images: &[&[VertexId]], members: &[usize]) -> u64 {
    let k = members.len();
    // |∩_{i∈S} C_i| for every non-empty subset mask S.
    let mut subset_size = vec![0i128; 1 << k];
    let mut scratch: Vec<VertexId> = Vec::new();
    let mut tmp: Vec<VertexId> = Vec::new();
    let mut cache: Vec<Option<Vec<VertexId>>> = vec![None; 1 << k];
    for mask in 1usize..(1 << k) {
        if mask.count_ones() == 1 {
            let i = mask.trailing_zeros() as usize;
            subset_size[mask] = images[members[i]].len() as i128;
            cache[mask] = Some(images[members[i]].to_vec());
            continue;
        }
        let low = mask & mask.wrapping_neg();
        let rest = mask ^ low;
        let low_set = cache[low].as_ref().expect("singleton cached");
        let rest_set = cache[rest].as_ref().expect("smaller mask cached");
        benu_graph::ops::intersect_into(low_set, rest_set, &mut scratch);
        std::mem::swap(&mut scratch, &mut tmp);
        subset_size[mask] = tmp.len() as i128;
        cache[mask] = Some(std::mem::take(&mut tmp));
    }
    // Enumerate set partitions of {0..k} (restricted growth strings).
    let mut total: i128 = 0;
    let mut blocks: Vec<usize> = Vec::new(); // block masks
    fn rec(pos: usize, k: usize, blocks: &mut Vec<usize>, subset_size: &[i128], total: &mut i128) {
        if pos == k {
            let mut term: i128 = 1;
            for &b in blocks.iter() {
                let sz = b.count_ones() as i128;
                let mut factorial = 1i128;
                for f in 1..sz {
                    factorial *= f;
                }
                let sign = if (sz - 1) % 2 == 0 { 1 } else { -1 };
                term *= sign * factorial * subset_size[b];
            }
            *total += term;
            return;
        }
        for i in 0..blocks.len() {
            blocks[i] |= 1 << pos;
            rec(pos + 1, k, blocks, subset_size, total);
            blocks[i] &= !(1 << pos);
        }
        blocks.push(1 << pos);
        rec(pos + 1, k, blocks, subset_size, total);
        blocks.pop();
    }
    rec(0, k, &mut blocks, &subset_size, &mut total);
    total.max(0) as u64
}

fn count_backtrack(
    info: &ExpansionInfo,
    images: &[&[VertexId]],
    order: &TotalOrder,
    members: &[usize],
    chosen: &mut Vec<VertexId>,
) -> u64 {
    let depth = chosen.len();
    if depth == members.len() {
        return 1;
    }
    let cur = members[depth];
    let mut count = 0;
    'cand: for &x in images[cur] {
        for (prev_depth, &y) in chosen.iter().enumerate() {
            let prev = members[prev_depth];
            if x == y {
                continue 'cand;
            }
            let (a, b) = (prev.min(cur), prev.max(cur));
            match info.pair_order[a][b] {
                Some(true) => {
                    // non_cover[a] ≺ non_cover[b] required.
                    let (va, vb) = if prev < cur { (y, x) } else { (x, y) };
                    if !order.less(va, vb) {
                        continue 'cand;
                    }
                }
                Some(false) => {
                    let (va, vb) = if prev < cur { (y, x) } else { (x, y) };
                    if !order.less(vb, va) {
                        continue 'cand;
                    }
                }
                None => {}
            }
        }
        chosen.push(x);
        count += count_backtrack(info, images, order, members, chosen);
        chosen.pop();
    }
    count
}

/// Enumerates the embeddings of one code, writing each non-cover mapping
/// into `f` and invoking `emit` (cover vertices must already be set in
/// `f`).
pub fn expand_code(
    info: &ExpansionInfo,
    images: &[&[VertexId]],
    order: &TotalOrder,
    f: &mut [VertexId],
    emit: &mut dyn FnMut(&[VertexId]),
) {
    expand_rec(info, images, order, f, 0, emit);
}

fn expand_rec(
    info: &ExpansionInfo,
    images: &[&[VertexId]],
    order: &TotalOrder,
    f: &mut [VertexId],
    depth: usize,
    emit: &mut dyn FnMut(&[VertexId]),
) {
    if depth == info.non_cover.len() {
        emit(f);
        return;
    }
    let cur_vertex = info.non_cover[depth];
    'cand: for &x in images[depth] {
        for prev_depth in 0..depth {
            let prev_vertex = info.non_cover[prev_depth];
            let y = f[prev_vertex];
            if x == y {
                continue 'cand;
            }
            let (a, b) = (prev_depth.min(depth), prev_depth.max(depth));
            if let Some(req) = info.pair_order[a][b] {
                let (va, vb) = if a == prev_depth { (y, x) } else { (x, y) };
                let holds = if req {
                    order.less(va, vb)
                } else {
                    order.less(vb, va)
                };
                if !holds {
                    continue 'cand;
                }
            }
        }
        f[cur_vertex] = x;
        expand_rec(info, images, order, f, depth + 1, emit);
    }
    f[cur_vertex] = VertexId::MAX;
}

/// Binomial coefficient `C(n, k)` with saturation.
fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u64 = 1;
    for i in 0..k {
        result = result.saturating_mul(n - i) / (i + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(non_cover: Vec<usize>, pairs: &[(usize, usize, Option<bool>)]) -> ExpansionInfo {
        let t = non_cover.len();
        let mut pair_order = vec![vec![None; t]; t];
        for &(a, b, ord) in pairs {
            pair_order[a][b] = ord;
        }
        ExpansionInfo {
            non_cover,
            image_reg: vec![0; t],
            pair_order,
        }
    }

    fn identity_order(n: usize) -> TotalOrder {
        TotalOrder::identity(n)
    }

    #[test]
    fn disjoint_sets_multiply() {
        let i = info(vec![0, 1], &[]);
        let order = identity_order(10);
        let a: Vec<u32> = vec![1, 2, 3];
        let b: Vec<u32> = vec![7, 8];
        assert_eq!(count_code_embeddings(&i, &[&a, &b], &order), 6);
    }

    #[test]
    fn identical_sets_injectivity_only_is_falling_factorial() {
        let i = info(vec![0, 1, 2], &[]);
        let order = identity_order(10);
        let s: Vec<u32> = vec![1, 2, 3, 4];
        assert_eq!(count_code_embeddings(&i, &[&s, &s, &s], &order), 4 * 3 * 2);
    }

    #[test]
    fn identical_sets_full_chain_is_binomial() {
        let i = info(
            vec![0, 1, 2],
            &[(0, 1, Some(true)), (0, 2, Some(true)), (1, 2, Some(true))],
        );
        let order = identity_order(10);
        let s: Vec<u32> = vec![1, 2, 3, 4, 5];
        assert_eq!(count_code_embeddings(&i, &[&s, &s, &s], &order), 10); // C(5,3)
    }

    #[test]
    fn empty_image_set_counts_zero() {
        let i = info(vec![0, 1], &[]);
        let order = identity_order(4);
        let a: Vec<u32> = vec![1];
        let b: Vec<u32> = vec![];
        assert_eq!(count_code_embeddings(&i, &[&a, &b], &order), 0);
    }

    #[test]
    fn partial_overlap_counts_by_backtracking() {
        let i = info(vec![0, 1], &[]);
        let order = identity_order(10);
        let a: Vec<u32> = vec![1, 2];
        let b: Vec<u32> = vec![2, 3];
        // pairs: (1,2),(1,3),(2,3) — (2,2) excluded.
        assert_eq!(count_code_embeddings(&i, &[&a, &b], &order), 3);
    }

    #[test]
    fn order_constraint_halves_symmetric_pairs() {
        let i = info(vec![0, 1], &[(0, 1, Some(true))]);
        let order = identity_order(10);
        let s: Vec<u32> = vec![1, 2, 3];
        // {a < b}: C(3,2) = 3 of the 6 injective pairs.
        assert_eq!(count_code_embeddings(&i, &[&s, &s], &order), 3);
    }

    #[test]
    fn expansion_enumerates_exactly_counted_embeddings() {
        let i = info(vec![0, 2], &[(0, 1, Some(true))]);
        let order = identity_order(10);
        let a: Vec<u32> = vec![1, 2, 4];
        let b: Vec<u32> = vec![2, 4];
        let count = count_code_embeddings(&i, &[&a, &b], &order);
        let mut f = vec![u32::MAX; 3];
        f[1] = 9; // pretend cover vertex
        let mut seen = Vec::new();
        expand_code(&i, &[&a, &b], &order, &mut f, &mut |f| {
            seen.push(f.to_vec())
        });
        assert_eq!(seen.len() as u64, count);
        // Every emitted embedding respects injectivity.
        for m in &seen {
            assert_ne!(m[0], m[2]);
        }
    }

    #[test]
    fn reversed_order_constraint_respected() {
        let i = info(vec![0, 1], &[(0, 1, Some(false))]); // f[1] ≺ f[0]
        let order = identity_order(10);
        let a: Vec<u32> = vec![1, 2, 3];
        assert_eq!(count_code_embeddings(&i, &[&a, &a], &order), 3);
        let mut f = vec![u32::MAX; 2];
        let mut seen = Vec::new();
        expand_code(&i, &[&a, &a], &order, &mut f, &mut |f| {
            seen.push(f.to_vec())
        });
        assert!(seen.iter().all(|m| m[1] < m[0]));
    }

    #[test]
    fn inclusion_exclusion_matches_backtracking() {
        // Deterministic pseudo-random overlapping sets, injectivity only.
        let mut state = 0xDEAD_BEEFu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for t in 2..=4usize {
            for _case in 0..30 {
                let sets: Vec<Vec<u32>> = (0..t)
                    .map(|_| {
                        let len = (next() % 6) as usize;
                        let mut v: Vec<u32> = (0..len).map(|_| (next() % 10) as u32).collect();
                        v.sort_unstable();
                        v.dedup();
                        v
                    })
                    .collect();
                let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
                let i = info((0..t).collect(), &[]);
                let order = identity_order(10);
                let via_ie = count_code_embeddings(&i, &slices, &order);
                // Direct backtracking for the ground truth.
                let mut chosen = Vec::new();
                let members: Vec<usize> = (0..t).collect();
                let truth = if slices.iter().any(|s| s.is_empty()) {
                    0
                } else {
                    super::count_backtrack(&i, &slices, &order, &members, &mut chosen)
                };
                assert_eq!(via_ie, truth, "sets {sets:?}");
            }
        }
    }

    #[test]
    fn binomial_is_exact() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(52, 5), 2_598_960);
    }
}
