//! Memory-bounded BFS/DFS hybrid execution (HUGE-style, see PAPERS.md).
//!
//! The DFS interpreter in [`exec`](crate::exec) touches the store one
//! `GetAdj` at a time, so batching only ever amortises round trips
//! *within* one task's prefetch. The [`FrontierEngine`] instead expands a
//! whole batch of tasks level-synchronously: it keeps a *frontier* of
//! partial embeddings per pattern depth, gathers every adjacency set the
//! next straight-line segment will query across the entire frontier, and
//! issues **one deduplicated [`DataSource::get_adj_batch`] per expansion
//! level** — sibling tasks share hub-vertex fetches. The fetched sets are
//! injected into the engine's adjacency override, so the per-instruction
//! execution (and therefore every [`TaskMetrics`] counter and every
//! reported match) is byte-identical to DFS; only the *order* of subtree
//! exploration and the grouping of store reads change.
//!
//! Frontier state is charged against a [`MemoryBudget`]. When the charge
//! exceeds the budget the engine *spills*: it stops materialising new
//! levels and drains every outstanding entry with the ordinary recursive
//! DFS step machinery. A spill therefore degrades throughput to
//! the DFS baseline but can never abort, and — crucially for crash
//! recovery — a batch always runs to completion before any of its tasks
//! is booked with the `RecoveryCtx`, so spills land on task boundaries
//! and whole-task requeueing stays sound.
//!
//! Frozen intermediate buffers are pool-backed: level snapshots freeze
//! the engine's owned `Slot::Buf` registers into shared `Arc`s, and at
//! batch end every buffer that is no longer shared thaws back into the
//! engine's buffer pool.

use crate::compile::{CInstr, CompiledPlan};
use crate::consumer::MatchConsumer;
use crate::exec::{LocalEngine, PoolStats, Slot, StraightEnd, TaskMetrics, UNSET};
use crate::source::DataSource;
use crate::task::SearchTask;
use benu_graph::{AdjSet, VertexId};
use std::sync::Arc;

/// Fixed byte charge per frontier entry (the entry struct, its `Arc`
/// and allocator slack), on top of the mapping array's payload.
const ENTRY_OVERHEAD: usize = 48;
/// Fixed byte charge per level snapshot plus a per-slot share for the
/// slot vector itself.
const SNAPSHOT_OVERHEAD: usize = 48;
const SLOT_OVERHEAD: usize = 16;

/// A byte budget for frontier state. `0` means unbounded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryBudget {
    limit: usize,
}

impl MemoryBudget {
    /// A budget of `limit` bytes; `0` means unbounded.
    pub fn bytes(limit: usize) -> Self {
        MemoryBudget { limit }
    }

    /// No limit: the frontier never spills.
    pub fn unbounded() -> Self {
        MemoryBudget { limit: 0 }
    }

    /// The configured limit in bytes (`0` = unbounded).
    pub fn limit_bytes(&self) -> usize {
        self.limit
    }

    /// True when `used` bytes exceed the budget.
    pub fn exceeded(&self, used: usize) -> bool {
        self.limit != 0 && used > self.limit
    }
}

/// What the hybrid engine did with its memory: how often it expanded a
/// frontier level with a batched read, how often the budget forced a
/// spill back to DFS, and the largest frontier it ever held.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrontierStats {
    /// Frontier levels expanded with one deduplicated batched fetch.
    pub expansions: u64,
    /// Task batches that exceeded the budget and drained via DFS.
    pub spill_events: u64,
    /// High-water mark of charged frontier bytes.
    pub peak_bytes: u64,
}

impl std::ops::AddAssign for FrontierStats {
    fn add_assign(&mut self, rhs: Self) {
        self.expansions += rhs.expansions;
        self.spill_events += rhs.spill_events;
        self.peak_bytes = self.peak_bytes.max(rhs.peak_bytes);
    }
}

/// A frozen register value shared across a level's sibling entries.
#[derive(Clone, Debug, Default)]
enum FrSlot {
    #[default]
    Empty,
    /// Shared adjacency set (cheap `Arc` pass-through, never charged).
    Adj(Arc<AdjSet>),
    /// A frozen set buffer: either an owned intersection result promoted
    /// to an `Arc` at freeze time (charged, thawed back into the pool at
    /// batch end) or a shared triangle/clique set passing through.
    Frozen(Arc<Vec<VertexId>>),
}

impl FrSlot {
    fn as_slice(&self) -> &[VertexId] {
        match self {
            FrSlot::Empty => panic!("read of undefined frontier register"),
            FrSlot::Adj(a) => a.as_slice(),
            FrSlot::Frozen(v) => v,
        }
    }
}

/// The register file of one frontier level, shared by every child entry
/// forked from the same parent.
#[derive(Debug)]
struct Snapshot {
    slots: Vec<FrSlot>,
}

/// One partial embedding awaiting expansion: a full mapping array plus
/// the shared registers it resumes from. Its depth is implicit — all
/// entries of a level share the same resume pc.
#[derive(Debug)]
struct Entry {
    task_idx: u32,
    f: Vec<VertexId>,
    snap: Arc<Snapshot>,
}

/// Breadth-first driver over a [`LocalEngine`]: executes batches of
/// search tasks level-synchronously with one deduplicated batched store
/// read per expansion level, spilling to plain DFS when the
/// [`MemoryBudget`] is exceeded. Produces byte-identical matches and
/// [`TaskMetrics`] to running each task through [`LocalEngine::run_task`].
pub struct FrontierEngine<'a, S: DataSource + ?Sized> {
    engine: LocalEngine<'a, S>,
    budget: MemoryBudget,
    stats: FrontierStats,
}

impl<'a, S: DataSource + ?Sized> FrontierEngine<'a, S> {
    /// Wraps a configured engine (pooling, labels, cache capacities are
    /// inherited) with a frontier byte budget.
    pub fn new(engine: LocalEngine<'a, S>, budget: MemoryBudget) -> Self {
        FrontierEngine {
            engine,
            budget,
            stats: FrontierStats::default(),
        }
    }

    /// Cumulative frontier counters of this engine.
    pub fn stats(&self) -> FrontierStats {
        self.stats
    }

    /// Buffer-pool counters of the wrapped engine.
    pub fn pool_stats(&self) -> PoolStats {
        self.engine.pool_stats()
    }

    /// Triangle-cache statistics of the wrapped engine.
    pub fn triangle_cache_stats(&self) -> benu_cache::CacheStats {
        self.engine.triangle_cache_stats()
    }

    /// Clique-cache statistics of the wrapped engine.
    pub fn clique_cache_stats(&self) -> benu_cache::CacheStats {
        self.engine.clique_cache_stats()
    }

    /// Unwraps the inner engine.
    pub fn into_inner(self) -> LocalEngine<'a, S> {
        self.engine
    }

    /// Runs a batch of tasks breadth-first and reports into `consumer`.
    ///
    /// The batch always runs to completion (spilling to DFS under memory
    /// pressure rather than failing), so callers may book every task as
    /// done afterwards — the spill boundary is always a task boundary.
    pub fn run_batch(
        &mut self,
        tasks: &[SearchTask],
        consumer: &mut dyn MatchConsumer,
    ) -> TaskMetrics {
        let mut metrics = TaskMetrics::default();
        if tasks.is_empty() {
            return metrics;
        }
        let plan = self.engine.plan;
        let root_snap = Arc::new(Snapshot {
            slots: vec![FrSlot::Empty; plan.num_slots],
        });
        // Snapshots stay alive until the batch completes so child levels
        // can share ancestor registers; thawed back into the pool below.
        let mut arena: Vec<Arc<Snapshot>> = vec![Arc::clone(&root_snap)];
        let entry_cost =
            plan.num_pattern_vertices * std::mem::size_of::<VertexId>() + ENTRY_OVERHEAD;
        let snap_cost = SNAPSHOT_OVERHEAD + plan.num_slots * SLOT_OVERHEAD;
        let mut used_bytes = 0usize;
        let mut spilled = false;

        let mut entries: Vec<Entry> = tasks
            .iter()
            .enumerate()
            .map(|(i, _)| Entry {
                task_idx: i as u32,
                f: vec![UNSET; plan.num_pattern_vertices],
                snap: Arc::clone(&root_snap),
            })
            .collect();
        used_bytes += entries.len() * entry_cost;
        let mut pc = 0usize;

        while !entries.is_empty() {
            // One deduplicated batched fetch for everything the segment
            // at `pc` will ask the store for, across the whole frontier.
            let seg_gets = segment_getadj(plan, pc);
            if !seg_gets.is_empty() {
                let mut wanted: Vec<VertexId> = Vec::new();
                for e in &entries {
                    let start = tasks[e.task_idx as usize].start;
                    for &pv in &seg_gets {
                        if e.f[pv] != UNSET {
                            wanted.push(e.f[pv]);
                        } else if pv == plan.start_vertex && self.engine.label_ok(pv, start) {
                            // Root level: `Init` will map the start vertex
                            // before the segment's `GetAdj` reads it.
                            wanted.push(start);
                        }
                    }
                }
                wanted.sort_unstable();
                wanted.dedup();
                if !wanted.is_empty() {
                    self.stats.expansions += 1;
                    let sets = self.engine.source.get_adj_batch(&wanted);
                    self.engine.adj_override.map.clear();
                    self.engine
                        .adj_override
                        .map
                        .extend(wanted.into_iter().zip(sets));
                    self.engine.adj_override.enabled = true;
                }
            }

            let mut next: Vec<Entry> = Vec::new();
            let mut next_pc = pc;
            for e in std::mem::take(&mut entries) {
                let task = tasks[e.task_idx as usize];
                self.load(&e);
                if spilled {
                    // Over budget: drain this entry's whole subtree with
                    // the recursive DFS engine. The batched fetch above
                    // still served this level's reads.
                    self.engine.step(pc, &task, consumer, &mut metrics);
                    continue;
                }
                match self.engine.exec_straight(pc, &task, consumer, &mut metrics) {
                    StraightEnd::Pruned | StraightEnd::Done => {}
                    StraightEnd::Foreach(fpc) => {
                        if !expand_worthwhile(plan, fpc) {
                            // The loop body is fetch-free (typically just
                            // `Report`): iterate it in place instead of
                            // materialising one entry per final candidate.
                            self.engine.step(fpc, &task, consumer, &mut metrics);
                            continue;
                        }
                        let (snap, owned) = self.freeze();
                        used_bytes += owned + snap_cost;
                        let snap = Arc::new(snap);
                        arena.push(Arc::clone(&snap));
                        let CInstr::Foreach {
                            vertex,
                            source,
                            is_second,
                        } = &plan.instrs[fpc]
                        else {
                            unreachable!("exec_straight stops only at Foreach")
                        };
                        let items = snap.slots[*source].as_slice();
                        let range = match (is_second, task.split) {
                            (true, Some(split)) => split.range(items.len()),
                            _ => 0..items.len(),
                        };
                        let considered = (range.end - range.start) as u64;
                        metrics.enu_candidates += considered;
                        let mut survivors = 0u64;
                        for i in range.clone() {
                            let x = items[i];
                            if !self.engine.label_ok(*vertex, x) {
                                continue;
                            }
                            survivors += 1;
                            let mut f = self.engine.f.clone();
                            f[*vertex] = x;
                            used_bytes += entry_cost;
                            next.push(Entry {
                                task_idx: e.task_idx,
                                f,
                                snap: Arc::clone(&snap),
                            });
                        }
                        // Mirror the DFS engine's per-slot observation so
                        // frontier and DFS metrics stay byte-identical.
                        if let Some(s) = metrics.obs.slot_mut(fpc) {
                            s.candidates += considered;
                            s.survivors += survivors;
                        }
                        next_pc = fpc + 1;
                        if !spilled && self.budget.exceeded(used_bytes) {
                            spilled = true;
                            self.stats.spill_events += 1;
                        }
                    }
                }
            }
            self.stats.peak_bytes = self.stats.peak_bytes.max(used_bytes as u64);
            entries = next;
            pc = next_pc;
        }

        self.engine.adj_override.enabled = false;
        self.engine.adj_override.map.clear();
        // Thaw: every frozen buffer nobody shares any more goes back to
        // the engine's pool. Child snapshots hold clones of ancestor
        // arcs, so popping newest-first releases them in one sweep.
        while let Some(snap) = arena.pop() {
            if let Ok(snap) = Arc::try_unwrap(snap) {
                for slot in snap.slots {
                    if let FrSlot::Frozen(buf) = slot {
                        if let Ok(buf) = Arc::try_unwrap(buf) {
                            self.engine.pool_put(buf);
                        }
                    }
                }
            }
        }
        metrics
    }

    /// Restores an entry's execution state into the engine.
    fn load(&mut self, e: &Entry) {
        self.engine.f.copy_from_slice(&e.f);
        for (i, fs) in e.snap.slots.iter().enumerate() {
            let value = match fs {
                FrSlot::Empty => Slot::Empty,
                FrSlot::Adj(a) => Slot::Adj(Arc::clone(a)),
                FrSlot::Frozen(v) => Slot::Tri(Arc::clone(v)),
            };
            // `set_slot` recycles any displaced owned buffer.
            self.engine.set_slot(i, value);
        }
    }

    /// Freezes the engine's register file into a shareable snapshot,
    /// returning it with the bytes newly charged for promoted buffers.
    fn freeze(&mut self) -> (Snapshot, usize) {
        let mut owned = 0usize;
        let slots = self
            .engine
            .slots
            .iter_mut()
            .map(|s| match std::mem::take(s) {
                Slot::Empty => FrSlot::Empty,
                Slot::Adj(a) => FrSlot::Adj(a),
                Slot::Tri(t) => FrSlot::Frozen(t),
                Slot::Buf(v) => {
                    owned += v.len() * std::mem::size_of::<VertexId>();
                    FrSlot::Frozen(Arc::new(v))
                }
            })
            .collect();
        (Snapshot { slots }, owned)
    }
}

/// Pattern vertices whose adjacency the straight-line segment starting
/// at `pc` fetches.
fn segment_getadj(plan: &CompiledPlan, pc: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for instr in &plan.instrs[pc..] {
        match instr {
            CInstr::GetAdj { vertex, .. } => out.push(*vertex),
            CInstr::Foreach { .. } => break,
            _ => {}
        }
    }
    out
}

/// True when materialising the candidates of the `Foreach` at `fpc` as a
/// frontier level can save store traffic: the loop body either fetches
/// adjacency itself or opens a deeper loop that will. A fetch-free body
/// (the innermost level of uncompressed plans — just `Report`) is
/// cheaper to run in place.
fn expand_worthwhile(plan: &CompiledPlan, fpc: usize) -> bool {
    plan.instrs[fpc + 1..]
        .iter()
        .any(|i| matches!(i, CInstr::Foreach { .. } | CInstr::GetAdj { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::CompiledPlan;
    use crate::consumer::{CollectingConsumer, CountingConsumer};
    use crate::source::{InMemorySource, KvSource};
    use benu_cache::DbCache;
    use benu_graph::{gen, Graph, TotalOrder};
    use benu_kvstore::KvStore;
    use benu_pattern::queries;
    use benu_plan::PlanBuilder;

    fn catalogue_plans() -> Vec<(&'static str, benu_plan::ExecutionPlan)> {
        use benu_plan::optimize::OptimizeOptions;
        let clique4 = queries::clique(4);
        let base = PlanBuilder::new(&clique4).best_plan();
        vec![
            ("q5", PlanBuilder::new(&queries::q5()).best_plan()),
            (
                "triangle/compressed",
                PlanBuilder::new(&queries::triangle())
                    .compressed(true)
                    .best_plan(),
            ),
            (
                "clique4/kcache",
                PlanBuilder::new(&clique4)
                    .matching_order(base.matching_order.clone())
                    .optimizations(OptimizeOptions::all_with_clique_cache())
                    .build(),
            ),
        ]
    }

    fn dfs_run(
        compiled: &CompiledPlan,
        g: &Graph,
        tasks: &[SearchTask],
    ) -> (TaskMetrics, Vec<Vec<VertexId>>) {
        let source = InMemorySource::from_graph(g);
        let order = TotalOrder::new(g);
        let mut engine = LocalEngine::new(compiled, &source, &order);
        let mut c = CollectingConsumer::default();
        let mut total = TaskMetrics::default();
        for &t in tasks {
            total += engine.run_task(t, &mut c);
        }
        let mut m = c.into_matches();
        m.sort_unstable();
        (total, m)
    }

    fn frontier_run(
        compiled: &CompiledPlan,
        g: &Graph,
        tasks: &[SearchTask],
        budget: MemoryBudget,
    ) -> (TaskMetrics, Vec<Vec<VertexId>>, FrontierStats) {
        let source = InMemorySource::from_graph(g);
        let order = TotalOrder::new(g);
        let engine = LocalEngine::new(compiled, &source, &order);
        let mut fe = FrontierEngine::new(engine, budget);
        let mut c = CollectingConsumer::default();
        let metrics = fe.run_batch(tasks, &mut c);
        let mut m = c.into_matches();
        m.sort_unstable();
        (metrics, m, fe.stats())
    }

    #[test]
    fn frontier_is_byte_identical_to_dfs_across_budgets() {
        let g = gen::erdos_renyi_gnm(50, 200, 7);
        for (name, plan) in catalogue_plans() {
            let compiled = CompiledPlan::compile(&plan);
            let tasks = crate::task::generate_tasks(&g, 5, compiled.second_adjacent);
            let (dm, dmatches) = dfs_run(&compiled, &g, &tasks);
            for (label, budget) in [
                ("unbounded", MemoryBudget::unbounded()),
                ("medium", MemoryBudget::bytes(64 << 10)),
                ("tiny", MemoryBudget::bytes(256)),
            ] {
                let (fm, fmatches, stats) = frontier_run(&compiled, &g, &tasks, budget);
                assert_eq!(fm, dm, "{name}/{label}: metrics diverge from DFS");
                assert_eq!(fmatches, dmatches, "{name}/{label}: match sets diverge");
                if budget.limit_bytes() == 0 {
                    assert_eq!(stats.spill_events, 0, "{name}: unbounded must not spill");
                }
            }
        }
    }

    #[test]
    fn tiny_budget_spills_but_completes() {
        let g = gen::barabasi_albert(120, 4, 5);
        let plan = PlanBuilder::new(&queries::q5()).best_plan();
        let compiled = CompiledPlan::compile(&plan);
        let tasks = crate::task::generate_tasks(&g, 5, compiled.second_adjacent);
        let (dm, dmatches) = dfs_run(&compiled, &g, &tasks);
        let (fm, fmatches, stats) = frontier_run(&compiled, &g, &tasks, MemoryBudget::bytes(512));
        assert!(stats.spill_events > 0, "512 B must force a spill");
        assert!(stats.peak_bytes > 0);
        assert_eq!(fm, dm);
        assert_eq!(fmatches, dmatches);
    }

    #[test]
    fn frontier_replay_is_deterministic() {
        let g = gen::barabasi_albert(100, 3, 9);
        let plan = PlanBuilder::new(&queries::q5()).best_plan();
        let compiled = CompiledPlan::compile(&plan);
        let tasks = crate::task::generate_tasks(&g, 5, compiled.second_adjacent);
        let budget = MemoryBudget::bytes(8 << 10);
        let (m1, x1, s1) = frontier_run(&compiled, &g, &tasks, budget);
        let (m2, x2, s2) = frontier_run(&compiled, &g, &tasks, budget);
        assert_eq!(m1, m2);
        assert_eq!(x1, x2);
        assert_eq!(s1, s2, "frontier/spill report must replay identically");
    }

    #[test]
    fn labeled_plans_agree_with_dfs() {
        let g = gen::erdos_renyi_gnm(40, 160, 11);
        let data_labels: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 3).collect();
        let p = queries::triangle().with_labels(vec![0, 1, 2]);
        let plan = PlanBuilder::new(&p).best_plan();
        let compiled = CompiledPlan::compile(&plan);
        let tasks = crate::task::generate_tasks(&g, 0, compiled.second_adjacent);

        let source = InMemorySource::from_graph(&g);
        let order = TotalOrder::new(&g);
        let mut dfs = LocalEngine::new(&compiled, &source, &order).with_data_labels(&data_labels);
        let mut cd = CountingConsumer::default();
        let mut dm = TaskMetrics::default();
        for &t in &tasks {
            dm += dfs.run_task(t, &mut cd);
        }

        let engine = LocalEngine::new(&compiled, &source, &order).with_data_labels(&data_labels);
        let mut fe = FrontierEngine::new(engine, MemoryBudget::unbounded());
        let mut cf = CountingConsumer::default();
        let fm = fe.run_batch(&tasks, &mut cf);
        assert_eq!(fm, dm, "labeled metrics diverge");
    }

    #[test]
    fn frontier_batches_cut_store_round_trips() {
        let g = gen::barabasi_albert(150, 4, 3);
        let plan = PlanBuilder::new(&queries::q5()).best_plan();
        let compiled = CompiledPlan::compile(&plan);
        let order = TotalOrder::new(&g);
        let tasks = crate::task::generate_tasks(&g, 0, compiled.second_adjacent);

        let dfs_store = Arc::new(KvStore::from_graph(&g, 4));
        let dfs_src = KvSource::new(Arc::clone(&dfs_store), Arc::new(DbCache::new(0, 1)));
        let mut dfs = LocalEngine::new(&compiled, &dfs_src, &order);
        let mut cd = CountingConsumer::default();
        let mut dm = TaskMetrics::default();
        for &t in &tasks {
            dm += dfs.run_task(t, &mut cd);
        }

        let fr_store = Arc::new(KvStore::from_graph(&g, 4));
        let fr_src = KvSource::new(Arc::clone(&fr_store), Arc::new(DbCache::new(0, 1)));
        let engine = LocalEngine::new(&compiled, &fr_src, &order);
        let mut fe = FrontierEngine::new(engine, MemoryBudget::unbounded());
        let mut cf = CountingConsumer::default();
        let fm = fe.run_batch(&tasks, &mut cf);

        assert_eq!(fm, dm, "kv-backed frontier diverges from DFS");
        let (d, f) = (dfs_store.stats(), fr_store.stats());
        assert!(
            f.requests < d.requests / 4,
            "batching should collapse round trips: dfs {} vs frontier {}",
            d.requests,
            f.requests
        );
        assert!(
            f.keys <= d.keys,
            "deduplicated levels fetch no more keys than DFS"
        );
    }

    #[test]
    fn pool_backed_buffers_thaw_at_batch_end() {
        let g = gen::erdos_renyi_gnm(60, 250, 3);
        let plan = PlanBuilder::new(&queries::q5()).best_plan();
        let compiled = CompiledPlan::compile(&plan);
        let source = InMemorySource::from_graph(&g);
        let order = TotalOrder::new(&g);
        let engine = LocalEngine::new(&compiled, &source, &order);
        let mut fe = FrontierEngine::new(engine, MemoryBudget::unbounded());
        let tasks = crate::task::generate_tasks(&g, 0, compiled.second_adjacent);
        let mut c = CountingConsumer::default();
        fe.run_batch(&tasks, &mut c);
        let warm = fe.pool_stats();
        assert!(warm.returns > 0, "thaw must return buffers: {warm:?}");
        // A second batch reuses the thawed capacity instead of allocating.
        fe.run_batch(&tasks, &mut c);
        let steady = fe.pool_stats();
        assert!(steady.hits > warm.hits, "thawed buffers must be reused");
    }
}
