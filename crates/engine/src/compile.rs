//! Lowers an [`ExecutionPlan`] to a dense register machine.
//!
//! Symbolic set variables (`A_i`, `C_i`, `T_j`) become indices into a flat
//! slot file; pattern-vertex mappings `f_i` live in their own array. The
//! compiled form also precomputes everything the VCBC expansion step needs
//! (which registers hold image sets, and the pairwise constraints between
//! non-cover vertices).

use benu_plan::ir::InstrKind;
use benu_plan::{ExecutionPlan, FilterOp, Instruction, ResultItem, SetVar};
use std::collections::HashMap;

/// A compiled filter condition against `f[vertex]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CFilter {
    /// Comparison operator.
    pub op: FilterOp,
    /// Pattern vertex whose mapping is compared against.
    pub vertex: usize,
}

/// An operand of a compiled intersection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum COperand {
    /// A set register.
    Reg(usize),
    /// The data graph's full vertex set.
    All,
}

/// A compiled instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum CInstr {
    /// `f[vertex] := task.start`.
    Init { vertex: usize },
    /// `slot[target] := source.get_adj(f[vertex])`.
    GetAdj { vertex: usize, target: usize },
    /// `slot[target] := ∩ operands, filtered`.
    Intersect {
        target: usize,
        operands: Vec<COperand>,
        filters: Vec<CFilter>,
    },
    /// Loop `f[vertex]` over `slot[source]`; `is_second` marks the
    /// split-point enumeration of the second pattern vertex.
    Foreach {
        vertex: usize,
        source: usize,
        is_second: bool,
    },
    /// Triangle-cached `slot[target] := Γ(f[a]) ∩ Γ(f[b])`, filtered.
    TCache {
        a: usize,
        b: usize,
        a_reg: usize,
        b_reg: usize,
        target: usize,
        filters: Vec<CFilter>,
    },
    /// Clique-cached `slot[target] := ∩_v Γ(f[v])`, filtered (the §IV-B
    /// future-work extension).
    KCache {
        verts: Vec<usize>,
        regs: Vec<usize>,
        target: usize,
        filters: Vec<CFilter>,
    },
    /// Emit a match (or compressed code).
    Report,
}

/// What the RES instruction emits, per pattern vertex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CReportItem {
    /// The mapped vertex `f[v]`.
    Vertex(usize),
    /// The image-set register (compressed plans).
    ImageSet(usize),
}

/// Precomputed VCBC expansion data.
#[derive(Clone, Debug, PartialEq)]
pub struct ExpansionInfo {
    /// Non-cover pattern vertices in matching order.
    pub non_cover: Vec<usize>,
    /// `image_reg[t]` — slot of the image set of `non_cover[t]`.
    pub image_reg: Vec<usize>,
    /// `ordered[t1][t2]` (t1 < t2): `Some(true)` requires
    /// `f[non_cover[t1]] ≺ f[non_cover[t2]]`, `Some(false)` the reverse,
    /// `None` only injectivity.
    pub pair_order: Vec<Vec<Option<bool>>>,
}

/// A plan lowered to the register machine.
#[derive(Clone, Debug)]
pub struct CompiledPlan {
    /// Compiled instruction list.
    pub instrs: Vec<CInstr>,
    /// Number of pattern vertices.
    pub num_pattern_vertices: usize,
    /// Number of set registers.
    pub num_slots: usize,
    /// The pattern vertex mapped to the task start vertex.
    pub start_vertex: usize,
    /// The second pattern vertex in the matching order (split point), if
    /// the plan enumerates more than one level.
    pub second_vertex: Option<usize>,
    /// Whether the second pattern vertex is adjacent to the first (drives
    /// the subtask-count formula in task generation).
    pub second_adjacent: bool,
    /// RES layout, one item per pattern vertex.
    pub report_items: Vec<CReportItem>,
    /// Present iff the plan is VCBC-compressed.
    pub expansion: Option<ExpansionInfo>,
    /// Per-pattern-vertex label constraints (property-graph extension);
    /// empty labels mean the unlabeled semantics of the paper.
    pub labels: Vec<Option<u32>>,
}

impl CompiledPlan {
    /// Compiles a validated plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails validation.
    pub fn compile(plan: &ExecutionPlan) -> Self {
        plan.validate().expect("plan must be well-formed");
        let mut reg_of: HashMap<SetVar, usize> = HashMap::new();
        let alloc = |v: SetVar, reg_of: &mut HashMap<SetVar, usize>| -> usize {
            let next = reg_of.len();
            *reg_of.entry(v).or_insert(next)
        };

        let mut instrs = Vec::with_capacity(plan.instructions.len());
        let mut report_items = Vec::new();
        for instr in &plan.instructions {
            match instr {
                Instruction::Init { vertex } => instrs.push(CInstr::Init { vertex: *vertex }),
                Instruction::GetAdj { vertex } => {
                    let target = alloc(SetVar::Adj(*vertex), &mut reg_of);
                    instrs.push(CInstr::GetAdj {
                        vertex: *vertex,
                        target,
                    });
                }
                Instruction::Intersect {
                    target,
                    operands,
                    filters,
                } => {
                    let operands = operands
                        .iter()
                        .map(|&op| match op {
                            SetVar::AllVertices => COperand::All,
                            other => COperand::Reg(
                                *reg_of.get(&other).expect("operand defined before use"),
                            ),
                        })
                        .collect();
                    let target = alloc(*target, &mut reg_of);
                    instrs.push(CInstr::Intersect {
                        target,
                        operands,
                        filters: filters
                            .iter()
                            .map(|f| CFilter {
                                op: f.op,
                                vertex: f.vertex,
                            })
                            .collect(),
                    });
                }
                Instruction::Foreach { vertex, source } => {
                    let source = *reg_of.get(source).expect("source defined before use");
                    instrs.push(CInstr::Foreach {
                        vertex: *vertex,
                        source,
                        is_second: Some(*vertex) == plan.matching_order.get(1).copied(),
                    });
                }
                Instruction::TCache {
                    target,
                    a,
                    b,
                    filters,
                } => {
                    let a_reg = *reg_of.get(&SetVar::Adj(*a)).expect("A_a defined");
                    let b_reg = *reg_of.get(&SetVar::Adj(*b)).expect("A_b defined");
                    let target = alloc(*target, &mut reg_of);
                    instrs.push(CInstr::TCache {
                        a: *a,
                        b: *b,
                        a_reg,
                        b_reg,
                        target,
                        filters: filters
                            .iter()
                            .map(|f| CFilter {
                                op: f.op,
                                vertex: f.vertex,
                            })
                            .collect(),
                    });
                }
                Instruction::KCache {
                    target,
                    verts,
                    filters,
                } => {
                    let regs: Vec<usize> = verts
                        .iter()
                        .map(|&v| *reg_of.get(&SetVar::Adj(v)).expect("A_v defined"))
                        .collect();
                    let target = alloc(*target, &mut reg_of);
                    instrs.push(CInstr::KCache {
                        verts: verts.clone(),
                        regs,
                        target,
                        filters: filters
                            .iter()
                            .map(|f| CFilter {
                                op: f.op,
                                vertex: f.vertex,
                            })
                            .collect(),
                    });
                }
                Instruction::ReportMatch { items } => {
                    report_items = items
                        .iter()
                        .map(|it| match it {
                            ResultItem::Vertex(v) => CReportItem::Vertex(*v),
                            ResultItem::ImageSet(s) => CReportItem::ImageSet(
                                *reg_of.get(s).expect("image set defined before RES"),
                            ),
                        })
                        .collect();
                    instrs.push(CInstr::Report);
                }
            }
        }

        let expansion = plan.compressed.then(|| {
            let k = benu_pattern::cover::cover_prefix_len(&plan.pattern, &plan.matching_order);
            let non_cover: Vec<usize> = plan.matching_order[k..].to_vec();
            let image_reg: Vec<usize> = non_cover
                .iter()
                .map(|&v| match report_items[v] {
                    CReportItem::ImageSet(reg) => reg,
                    CReportItem::Vertex(_) => {
                        unreachable!("non-cover vertex reported as a plain vertex")
                    }
                })
                .collect();
            let t = non_cover.len();
            let mut pair_order = vec![vec![None; t]; t];
            for (t1, &a) in non_cover.iter().enumerate() {
                for (t2, &b) in non_cover.iter().enumerate().skip(t1 + 1) {
                    pair_order[t1][t2] = plan.symmetry.between(a, b);
                }
            }
            ExpansionInfo {
                non_cover,
                image_reg,
                pair_order,
            }
        });

        let second_vertex = plan.instructions.iter().find_map(|i| match i {
            Instruction::Foreach { vertex, .. }
                if Some(*vertex) == plan.matching_order.get(1).copied() =>
            {
                Some(*vertex)
            }
            _ => None,
        });
        let second_adjacent = plan
            .matching_order
            .get(1)
            .is_some_and(|&u| plan.pattern.has_edge(plan.matching_order[0], u));

        let labels = (0..plan.pattern.num_vertices())
            .map(|u| plan.pattern.label(u))
            .collect();
        CompiledPlan {
            instrs,
            labels,
            num_pattern_vertices: plan.pattern.num_vertices(),
            num_slots: reg_of.len(),
            start_vertex: plan.start_vertex(),
            second_vertex,
            second_adjacent,
            report_items,
            expansion,
        }
    }

    /// True when any pattern vertex carries a label constraint.
    pub fn is_labeled(&self) -> bool {
        self.labels.iter().any(|l| l.is_some())
    }

    /// Number of enumeration levels.
    pub fn num_levels(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| matches!(i, CInstr::Foreach { .. }))
            .count()
    }

    /// Instruction-kind histogram (diagnostics).
    pub fn kind_counts(&self) -> HashMap<InstrKind, usize> {
        let mut counts = HashMap::new();
        for i in &self.instrs {
            let kind = match i {
                CInstr::Init { .. } => InstrKind::Ini,
                CInstr::GetAdj { .. } => InstrKind::Dbq,
                CInstr::Intersect { .. } => InstrKind::Int,
                CInstr::Foreach { .. } => InstrKind::Enu,
                CInstr::TCache { .. } | CInstr::KCache { .. } => InstrKind::Trc,
                CInstr::Report => InstrKind::Res,
            };
            *counts.entry(kind).or_insert(0) += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benu_pattern::queries;
    use benu_plan::PlanBuilder;

    #[test]
    fn compiles_demo_plan() {
        let p = queries::demo_pattern();
        let plan = PlanBuilder::new(&p)
            .matching_order(vec![0, 2, 4, 1, 5, 3])
            .build();
        let c = CompiledPlan::compile(&plan);
        assert_eq!(c.num_pattern_vertices, 6);
        assert_eq!(c.start_vertex, 0);
        assert_eq!(c.second_vertex, Some(2));
        assert!(c.second_adjacent);
        assert_eq!(c.num_levels(), 5);
        assert!(c.expansion.is_none());
        assert!(matches!(c.instrs.last(), Some(CInstr::Report)));
    }

    #[test]
    fn compressed_plan_exposes_expansion_info() {
        let p = queries::demo_pattern();
        let plan = PlanBuilder::new(&p)
            .matching_order(vec![0, 2, 4, 1, 5, 3])
            .compressed(true)
            .build();
        let c = CompiledPlan::compile(&plan);
        let exp = c.expansion.as_ref().unwrap();
        assert_eq!(exp.non_cover, vec![1, 5, 3]);
        assert_eq!(exp.image_reg.len(), 3);
        assert_eq!(c.num_levels(), 2);
    }

    #[test]
    fn second_flag_marks_exactly_one_foreach() {
        let p = queries::q4();
        let plan = PlanBuilder::new(&p).best_plan();
        let c = CompiledPlan::compile(&plan);
        let second_count = c
            .instrs
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    CInstr::Foreach {
                        is_second: true,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(second_count, 1);
    }

    #[test]
    fn register_indices_are_dense() {
        let p = queries::q9();
        let plan = PlanBuilder::new(&p).best_plan();
        let c = CompiledPlan::compile(&plan);
        let mut seen = vec![false; c.num_slots];
        for i in &c.instrs {
            match i {
                CInstr::GetAdj { target, .. }
                | CInstr::Intersect { target, .. }
                | CInstr::TCache { target, .. }
                | CInstr::KCache { target, .. } => seen[*target] = true,
                _ => {}
            }
        }
        assert!(seen.iter().all(|&s| s), "every slot is defined somewhere");
    }
}
