//! The unified report tree.
//!
//! A [`Report`] is an insertion-ordered mapping from string keys to
//! [`Value`]s; a value can itself be a nested tree, so a whole run's
//! measurements — store stats, cache tiers, per-worker counters, trace
//! events — merge into one structure with one serialisation surface
//! (`benu-bench::json` renders it canonically). Insertion order is
//! preserved so the emitting layer controls field order and snapshots
//! stay byte-stable.

/// One value in a [`Report`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// An unsigned integer (counters, counts, bytes).
    UInt(u64),
    /// A signed integer (gauges, deltas).
    Int(i64),
    /// A float (ratios, means, seconds).
    Float(f64),
    /// A string (names, labels).
    Str(String),
    /// An ordered list.
    List(Vec<Value>),
    /// A nested report subtree.
    Tree(Report),
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::UInt(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Report> for Value {
    fn from(v: Report) -> Self {
        Value::Tree(v)
    }
}

/// An insertion-ordered key → [`Value`] tree. Setting an existing key
/// overwrites in place (order unchanged).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    entries: Vec<(String, Value)>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Sets `key` to `value`, overwriting in place if present.
    pub fn set(&mut self, key: &str, value: impl Into<Value>) {
        let value = value.into();
        if let Some(entry) = self.entries.iter_mut().find(|(k, _)| k == key) {
            entry.1 = value;
        } else {
            self.entries.push((key.to_string(), value));
        }
    }

    /// Sets `key` to a nested subtree.
    pub fn set_tree(&mut self, key: &str, tree: Report) {
        self.set(key, Value::Tree(tree));
    }

    /// The value at `key`, if any.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The subtree at `key`, if it is a tree.
    pub fn get_tree(&self, key: &str) -> Option<&Report> {
        match self.get(key) {
            Some(Value::Tree(t)) => Some(t),
            _ => None,
        }
    }

    /// The value at a `/`-separated path through nested trees
    /// (e.g. `"store/requests"`).
    pub fn get_path(&self, path: &str) -> Option<&Value> {
        let mut parts = path.split('/');
        let first = parts.next()?;
        let mut value = self.get(first)?;
        for part in parts {
            match value {
                Value::Tree(t) => value = t.get(part)?,
                _ => return None,
            }
        }
        Some(value)
    }

    /// The value at `path` as `u64`, if it is a `UInt`.
    pub fn get_u64(&self, path: &str) -> Option<u64> {
        match self.get_path(path)? {
            Value::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value at `path` as `f64`, if numeric.
    pub fn get_f64(&self, path: &str) -> Option<f64> {
        match self.get_path(path)? {
            Value::Float(f) => Some(*f),
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(String, Value)> {
        self.entries.iter()
    }

    /// Number of top-level entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the report has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges `other`'s entries into `self` (overwriting shared keys in
    /// place, appending new ones).
    pub fn merge(&mut self, other: Report) {
        for (k, v) in other.entries {
            self.set(&k, v);
        }
    }
}

impl<'a> IntoIterator for &'a Report {
    type Item = &'a (String, Value);
    type IntoIter = std::slice::Iter<'a, (String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_order_is_preserved_and_overwrite_is_in_place() {
        let mut r = Report::new();
        r.set("z", 1u64);
        r.set("a", 2u64);
        r.set("m", "mid");
        r.set("z", 9u64); // overwrite must not move "z" to the back
        let keys: Vec<&str> = r.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
        assert_eq!(r.get_u64("z"), Some(9));
    }

    #[test]
    fn nested_path_lookup() {
        let mut store = Report::new();
        store.set("requests", 42u64);
        store.set("mean_value_bytes", 12.5);
        let mut root = Report::new();
        root.set_tree("store", store);
        assert_eq!(root.get_u64("store/requests"), Some(42));
        assert_eq!(root.get_f64("store/mean_value_bytes"), Some(12.5));
        assert_eq!(root.get_path("store/missing"), None);
        assert_eq!(root.get_path("nope/requests"), None);
        assert!(root.get_tree("store").is_some());
    }

    #[test]
    fn merge_overwrites_shared_keys_and_appends_new() {
        let mut a = Report::new();
        a.set("x", 1u64);
        a.set("y", 2u64);
        let mut b = Report::new();
        b.set("y", 20u64);
        b.set("z", 30u64);
        a.merge(b);
        let keys: Vec<&str> = a.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["x", "y", "z"]);
        assert_eq!(a.get_u64("y"), Some(20));
    }
}
