//! Span-based phase tracing on a virtual clock.
//!
//! The cluster runtime already accounts fault-injected delays as
//! *virtual* time (deterministic nanoseconds charged, never slept) so a
//! seeded faulted run replays exactly. Tracing follows the same rule: a
//! [`Tracer`] stamps every span enter/exit with a monotonically advanced
//! [`VirtualClock`] reading plus a sequence number — never the wall
//! clock — so the trace of a seeded run is byte-identical across
//! executions. Wall durations, when interesting, belong in wall-flagged
//! registry histograms, not in the trace.
//!
//! Spans are scoped via [`SpanGuard`] (RAII: exit recorded on drop) and
//! are intended for coordinator-thread phases — store load, plan
//! compile, task generation, enumeration passes, recovery passes — not
//! for per-task hot paths (those use counters).

use crate::report::{Report, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A deterministic clock: advanced explicitly by virtual nanoseconds
/// (fault penalties, logical phase ticks), never by the wall clock.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// A clock at zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Advances the clock by `nanos` virtual nanoseconds.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// The current virtual time in nanoseconds.
    pub fn now(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }
}

/// One trace event: a span boundary on the virtual clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (total order of recording).
    pub seq: u64,
    /// Virtual-clock reading when recorded.
    pub virtual_nanos: u64,
    /// Span name (e.g. `"pass.0"`, `"store_load"`).
    pub span: String,
    /// `true` for span enter, `false` for exit.
    pub enter: bool,
}

/// Records span enter/exit events stamped with sequence numbers and
/// virtual time. Cheap enough for phase granularity; not meant for
/// per-task hot paths.
#[derive(Debug, Default)]
pub struct Tracer {
    clock: VirtualClock,
    seq: AtomicU64,
    events: Mutex<Vec<TraceEvent>>,
}

impl Tracer {
    /// A tracer with a zeroed clock and empty event log.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// The tracer's virtual clock (advance it with deterministic
    /// penalties; it is shared with the spans).
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    fn record(&self, span: &str, enter: bool) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let event = TraceEvent {
            seq,
            virtual_nanos: self.clock.now(),
            span: span.to_string(),
            enter,
        };
        self.events.lock().expect("tracer poisoned").push(event);
    }

    /// Enters a span; the returned guard records the exit on drop.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        self.record(name, true);
        SpanGuard {
            tracer: self,
            name: name.to_string(),
        }
    }

    /// A copy of all recorded events, in sequence order.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = self.events.lock().expect("tracer poisoned").clone();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// The trace as a [`Report`] list: each event is
    /// `[seq, virtual_nanos, span, enter]`.
    pub fn to_report(&self) -> Report {
        let mut report = Report::new();
        report.set(
            "events",
            Value::List(
                self.events()
                    .into_iter()
                    .map(|e| {
                        Value::List(vec![
                            Value::UInt(e.seq),
                            Value::UInt(e.virtual_nanos),
                            Value::Str(e.span),
                            Value::Bool(e.enter),
                        ])
                    })
                    .collect(),
            ),
        );
        report
    }
}

/// RAII guard for an open span; records the exit event when dropped.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    name: String,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.tracer.record(&self.name, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_exit_on_drop() {
        let t = Tracer::new();
        {
            let _outer = t.span("run");
            t.clock().advance(100);
            {
                let _inner = t.span("pass.0");
                t.clock().advance(50);
            }
        }
        let events = t.events();
        assert_eq!(events.len(), 4);
        assert_eq!(
            events
                .iter()
                .map(|e| (e.span.as_str(), e.enter, e.virtual_nanos))
                .collect::<Vec<_>>(),
            vec![
                ("run", true, 0),
                ("pass.0", true, 100),
                ("pass.0", false, 150),
                ("run", false, 150),
            ]
        );
        // Sequence numbers are a total order starting at 0.
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn trace_is_deterministic_without_wall_clock() {
        let run = || {
            let t = Tracer::new();
            let _a = t.span("store_load");
            t.clock().advance(7);
            drop(_a);
            let _b = t.span("enumeration");
            t.clock().advance(13);
            drop(_b);
            t.to_report()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn to_report_encodes_events_as_lists() {
        let t = Tracer::new();
        drop(t.span("x"));
        let report = t.to_report();
        match report.get("events") {
            Some(Value::List(events)) => {
                assert_eq!(events.len(), 2);
                match &events[0] {
                    Value::List(fields) => {
                        assert_eq!(fields[0], Value::UInt(0));
                        assert_eq!(fields[2], Value::Str("x".to_string()));
                        assert_eq!(fields[3], Value::Bool(true));
                    }
                    other => panic!("expected list, got {other:?}"),
                }
            }
            other => panic!("expected events list, got {other:?}"),
        }
    }
}
