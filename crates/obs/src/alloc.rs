//! Heap-allocation counters for performance measurement.
//!
//! The hotpath bench's "steady-state allocations per task ≈ 0" claim
//! needs an observable, not an assertion: a [`CountingAllocator`] wraps
//! the system allocator and counts every allocation event and requested
//! byte. A bench binary installs it once:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: benu_obs::alloc::CountingAllocator =
//!     benu_obs::alloc::CountingAllocator::new();
//! ```
//!
//! and brackets the measured region with [`CountingAllocator::snapshot`]
//! / [`AllocSnapshot::delta_since`]. Counting is two relaxed atomic adds
//! per allocation — cheap enough that the A/B arms of a bench can both
//! run under it, keeping the comparison fair. This module is deliberately
//! independent of the `noop` feature: it measures the *engine's* memory
//! behaviour, not the observability layer's, so compiling recording out
//! must not disable it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`GlobalAlloc`] wrapper over [`System`] that counts allocation
/// events and requested bytes. `const`-constructible so it can be a
/// `#[global_allocator]` static.
#[derive(Debug)]
pub struct CountingAllocator {
    allocs: AtomicU64,
    bytes: AtomicU64,
}

impl CountingAllocator {
    /// A fresh counter (all zeros).
    pub const fn new() -> Self {
        CountingAllocator {
            allocs: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// The counters right now. Monotonic; subtract two snapshots with
    /// [`AllocSnapshot::delta_since`] to meter a region.
    pub fn snapshot(&self) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: delegates every allocation verbatim to `System`; the counter
// updates have no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growing realloc is a fresh reservation of the delta; shrinks
        // and no-ops cost nothing new.
        if new_size > layout.size() {
            self.allocs.fetch_add(1, Ordering::Relaxed);
            self.bytes
                .fetch_add((new_size - layout.size()) as u64, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

/// A point-in-time reading of a [`CountingAllocator`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocation events (allocs, zeroed allocs, and growing reallocs).
    pub allocs: u64,
    /// Bytes requested from the allocator.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// What was allocated between `earlier` and `self`.
    pub fn delta_since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_events_and_bytes_through_the_trait() {
        let counter = CountingAllocator::new();
        let layout = Layout::from_size_align(256, 8).unwrap();
        // Drive the GlobalAlloc impl directly — installing a second
        // global allocator inside a test process is not possible.
        unsafe {
            let p = counter.alloc(layout);
            assert!(!p.is_null());
            let p = counter.realloc(p, layout, 512);
            assert!(!p.is_null());
            let grown = Layout::from_size_align(512, 8).unwrap();
            let p = counter.realloc(p, grown, 128); // shrink: free
            assert!(!p.is_null());
            let shrunk = Layout::from_size_align(128, 8).unwrap();
            counter.dealloc(p, shrunk);
        }
        let snap = counter.snapshot();
        assert_eq!(snap.allocs, 2, "alloc + growing realloc");
        assert_eq!(snap.bytes, 256 + 256, "initial size + growth delta");
    }

    #[test]
    fn delta_between_snapshots_meters_a_region() {
        let counter = CountingAllocator::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        let before = counter.snapshot();
        unsafe {
            let p = counter.alloc_zeroed(layout);
            counter.dealloc(p, layout);
        }
        let delta = counter.snapshot().delta_since(&before);
        assert_eq!(
            delta,
            AllocSnapshot {
                allocs: 1,
                bytes: 64
            }
        );
        // Monotonic counters never go negative across reordered reads.
        assert_eq!(before.delta_since(&counter.snapshot()).allocs, 0);
    }
}
