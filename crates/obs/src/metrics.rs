//! The lock-light metrics registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`s
//! registered once by name; the hot path never touches the registry lock
//! again. Counters are sharded across cache-padded atomic cells indexed
//! by a per-thread slot, so a busy increment is one `Relaxed` atomic add
//! with no cross-thread cache-line ping-pong; aggregation sums the shards
//! on demand at snapshot time.
//!
//! Metrics registered through the `*_wall` constructors are flagged as
//! wall-clock-derived (latencies, busy times): they are reported in full
//! snapshots but excluded from *deterministic* snapshots, which must be
//! byte-identical across two executions of the same seeded run.

use crate::report::{Report, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of per-thread counter shards. A power of two; more shards trade
/// memory for less false sharing under high thread counts.
const COUNTER_SHARDS: usize = 16;

/// Number of histogram buckets: bucket `i` counts values in
/// `[2^(i-1), 2^i)` (bucket 0 holds zero), which covers the full `u64`
/// range with a fixed-size array and a branch-free index.
const HISTOGRAM_BUCKETS: usize = 65;

/// One cache-line-padded atomic cell (avoids false sharing between
/// shards that land in the same line).
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

#[cfg_attr(feature = "noop", allow(dead_code))]
static NEXT_THREAD_SLOT: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// This thread's counter shard, assigned round-robin at first use.
    static THREAD_SLOT: usize =
        NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed) as usize % COUNTER_SHARDS;
}

/// A monotonic counter, sharded per thread. Increments are one relaxed
/// atomic add; reads aggregate the shards.
#[derive(Debug, Default)]
pub struct Counter {
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl Counter {
    /// A detached counter (not in any registry).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n` to this thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "noop"))]
        THREAD_SLOT.with(|&slot| {
            self.shards[slot].0.fetch_add(n, Ordering::Relaxed);
        });
        #[cfg(feature = "noop")]
        let _ = n;
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The aggregated count across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A last-write-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A detached gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        #[cfg(not(feature = "noop"))]
        self.0.store(v, Ordering::Relaxed);
        #[cfg(feature = "noop")]
        let _ = v;
    }

    /// Adds to the gauge.
    #[inline]
    pub fn add(&self, v: i64) {
        #[cfg(not(feature = "noop"))]
        self.0.fetch_add(v, Ordering::Relaxed);
        #[cfg(feature = "noop")]
        let _ = v;
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket power-of-two histogram over `u64` samples: bucket 0
/// counts zeros, bucket `i ≥ 1` counts `[2^(i-1), 2^i)`. Recording is
/// three relaxed atomic adds (bucket, sum, count) with a branch-free
/// bucket index.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); HISTOGRAM_BUCKETS].map(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A detached histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index of `v`: 0 for 0, else `65 − leading_zeros(v)`
    /// clamped into range — i.e. one bucket per power of two.
    #[cfg_attr(feature = "noop", allow(dead_code))]
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(not(feature = "noop"))]
        {
            self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
        }
        #[cfg(feature = "noop")]
        let _ = v;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample, 0.0 when empty (the workspace ratio convention).
    pub fn mean(&self) -> f64 {
        crate::safe_ratio(self.sum() as f64, self.count() as f64)
    }

    /// The non-empty buckets as `(upper_bound_exclusive, count)` pairs;
    /// the last bucket's bound saturates at `u64::MAX`.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| {
                    let bound = if i == 0 {
                        1
                    } else {
                        1u64.checked_shl(i as u32).unwrap_or(u64::MAX)
                    };
                    (bound, n)
                })
            })
            .collect()
    }
}

/// The value of one metric in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// An aggregated counter.
    Counter(u64),
    /// A gauge reading.
    Gauge(i64),
    /// A histogram: sample count, sample sum, and the non-empty
    /// `(upper_bound, count)` buckets.
    Histogram {
        /// Number of samples.
        count: u64,
        /// Sum of samples.
        sum: u64,
        /// Non-empty buckets as `(upper_bound_exclusive, count)`.
        buckets: Vec<(u64, u64)>,
    },
}

/// A point-in-time, name-sorted view of every registered metric.
pub type MetricsSnapshot = BTreeMap<String, MetricValue>;

/// Converts a snapshot into a [`Report`] subtree (one entry per metric,
/// name-sorted, histograms as `{count, sum, mean, buckets}`).
pub fn snapshot_report(snapshot: &MetricsSnapshot) -> Report {
    let mut report = Report::new();
    for (name, value) in snapshot {
        match value {
            MetricValue::Counter(n) => report.set(name, *n),
            MetricValue::Gauge(v) => report.set(name, *v),
            MetricValue::Histogram {
                count,
                sum,
                buckets,
            } => {
                let mut h = Report::new();
                h.set("count", *count);
                h.set("sum", *sum);
                h.set("mean", crate::safe_ratio(*sum as f64, *count as f64));
                h.set(
                    "buckets",
                    Value::List(
                        buckets
                            .iter()
                            .map(|&(bound, n)| {
                                Value::List(vec![Value::UInt(bound), Value::UInt(n)])
                            })
                            .collect(),
                    ),
                );
                report.set_tree(name, h);
            }
        }
    }
    report
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, (Arc<Counter>, bool)>,
    gauges: BTreeMap<String, (Arc<Gauge>, bool)>,
    histograms: BTreeMap<String, (Arc<Histogram>, bool)>,
}

/// The named-metric registry. Registration takes the lock once per
/// (name, handle); recording through the returned handles is lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created on first use. Deterministic
    /// (included in deterministic snapshots).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, false)
    }

    /// A wall-clock-derived counter (excluded from deterministic
    /// snapshots).
    pub fn counter_wall(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, true)
    }

    fn counter_with(&self, name: &str, wall: bool) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        Arc::clone(
            &inner
                .counters
                .entry(name.to_string())
                .or_insert_with(|| (Arc::new(Counter::new()), wall))
                .0,
        )
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, false)
    }

    /// A wall-clock-derived gauge (excluded from deterministic
    /// snapshots).
    pub fn gauge_wall(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, true)
    }

    fn gauge_with(&self, name: &str, wall: bool) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        Arc::clone(
            &inner
                .gauges
                .entry(name.to_string())
                .or_insert_with(|| (Arc::new(Gauge::new()), wall))
                .0,
        )
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, false)
    }

    /// A wall-clock-derived histogram (excluded from deterministic
    /// snapshots).
    pub fn histogram_wall(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, true)
    }

    fn histogram_with(&self, name: &str, wall: bool) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        Arc::clone(
            &inner
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| (Arc::new(Histogram::new()), wall))
                .0,
        )
    }

    /// A full snapshot of every metric, including wall-derived ones.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.snapshot_inner(true)
    }

    /// A snapshot containing only deterministic metrics — the view that
    /// must be byte-identical across two executions of the same seeded
    /// run.
    pub fn snapshot_deterministic(&self) -> MetricsSnapshot {
        self.snapshot_inner(false)
    }

    fn snapshot_inner(&self, include_wall: bool) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        let mut out = MetricsSnapshot::new();
        for (name, (c, wall)) in &inner.counters {
            if include_wall || !wall {
                out.insert(name.clone(), MetricValue::Counter(c.get()));
            }
        }
        for (name, (g, wall)) in &inner.gauges {
            if include_wall || !wall {
                out.insert(name.clone(), MetricValue::Gauge(g.get()));
            }
        }
        for (name, (h, wall)) in &inner.histograms {
            if include_wall || !wall {
                out.insert(
                    name.clone(),
                    MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        buckets: h.nonzero_buckets(),
                    },
                );
            }
        }
        out
    }
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    #[test]
    fn counter_aggregates_across_threads() {
        let c = Arc::new(Counter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(7);
        h.record(8);
        h.record(1 << 40);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 16 + (1 << 40));
        let buckets = h.nonzero_buckets();
        // 0 → bound 1; 1 → bound 2; 7 → bound 8; 8 → bound 16; 2^40 → bound 2^41.
        assert_eq!(buckets, vec![(1, 1), (2, 1), (8, 1), (16, 1), (1 << 41, 1)]);
        assert!((h.mean() - (h.sum() as f64 / 5.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_mean_is_zero_not_nan() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn registry_reuses_handles_by_name() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.counter("a").add(3);
        r.counter("b").inc();
        let snap = r.snapshot();
        assert_eq!(snap.get("a"), Some(&MetricValue::Counter(5)));
        assert_eq!(snap.get("b"), Some(&MetricValue::Counter(1)));
    }

    #[test]
    fn deterministic_snapshot_excludes_wall_metrics() {
        let r = Registry::new();
        r.counter("det").inc();
        r.counter_wall("wall").inc();
        r.histogram_wall("lat_nanos").record(123);
        r.gauge("g").set(-4);
        let full = r.snapshot();
        assert!(full.contains_key("wall"));
        assert!(full.contains_key("lat_nanos"));
        let det = r.snapshot_deterministic();
        assert!(det.contains_key("det"));
        assert!(det.contains_key("g"));
        assert!(!det.contains_key("wall"));
        assert!(!det.contains_key("lat_nanos"));
    }

    #[test]
    fn snapshot_report_is_name_sorted() {
        let r = Registry::new();
        r.counter("zz").inc();
        r.counter("aa").inc();
        r.histogram("hh").record(3);
        let report = snapshot_report(&r.snapshot());
        let keys: Vec<&str> = report.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["aa", "hh", "zz"]);
    }

    #[test]
    fn gauge_sets_and_adds() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }
}
