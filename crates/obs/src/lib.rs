//! Structured observability for the BENU runtime.
//!
//! The paper's evaluation (§VII) is entirely metric-driven — communication
//! cost, cache hit rates, task and straggler behaviour, per-phase timing —
//! and adaptive-runtime systems in the same space (HUGE, arXiv:2103.14294;
//! GNN-PE, arXiv:2511.09052) *drive* scheduling and memory decisions from
//! live metrics. This crate is the telemetry substrate those decisions
//! will read: every other workspace crate records into it, and one unified
//! [`report::Report`] tree is the single serialisation surface for
//! everything a run measured.
//!
//! Three pieces:
//!
//! * [`metrics`] — a lock-light registry of named [`metrics::Counter`]s
//!   (per-thread sharded; a hot-path increment is one relaxed atomic add
//!   on a cache-padded cell), [`metrics::Gauge`]s and fixed-bucket
//!   [`metrics::Histogram`]s. Metrics registered as *wall* (timing-
//!   derived) are excluded from deterministic snapshots.
//! * [`trace`] — span-based phase tracing (store load, plan compile, task
//!   generation, enumeration and recovery passes) stamped with a
//!   [`trace::VirtualClock`] instead of the wall clock, so a faulted run
//!   replayed from the same `benu-fault` seed produces a byte-identical
//!   trace.
//! * [`report`] — the insertion-ordered key/value tree every layer's
//!   measurements are merged into; `benu-bench` renders it with one
//!   canonical JSON encoding.
//!
//! The `noop` cargo feature compiles every recording call into an empty
//! inline function, giving a compiled-out baseline for overhead A/B runs
//! (`obs_overhead` bench bin); without the feature, recording is cheap
//! enough to stay on in production (< 3% on the fig9 enumeration
//! workload).

pub mod alloc;
pub mod metrics;
pub mod report;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, MetricValue, MetricsSnapshot, Registry};
pub use report::{Report, Value};
pub use trace::{SpanGuard, TraceEvent, Tracer, VirtualClock};

/// One observability hub for a run: the metrics registry every layer
/// records into plus the phase tracer. Shared by `Arc` between the
/// cluster, its store, its caches and the bench harness.
#[derive(Debug, Default)]
pub struct ObsHub {
    /// Named counters, gauges and histograms.
    pub registry: Registry,
    /// Phase spans on the virtual clock.
    pub tracer: Tracer,
}

/// Which metrics a report includes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReportMode {
    /// Everything, including wall-clock-derived metrics (latencies,
    /// busy times, elapsed). The default for human-facing output.
    #[default]
    Full,
    /// Only metrics that are pure functions of (input, seed, config) —
    /// the view that must be byte-identical across two executions of
    /// the same seeded run. Wall-flagged metrics and wall durations are
    /// excluded; *virtual* durations (fault penalties) stay, because
    /// they are deterministic.
    Deterministic,
}

impl ObsHub {
    /// A fresh hub with an empty registry and an empty trace.
    pub fn new() -> Self {
        ObsHub::default()
    }

    /// The hub's measurements as one report: a `metrics` subtree
    /// (name-sorted registry snapshot, wall metrics filtered per `mode`)
    /// and a `trace` subtree (the span events, always deterministic).
    pub fn report(&self, mode: ReportMode) -> Report {
        let snapshot = match mode {
            ReportMode::Full => self.registry.snapshot(),
            ReportMode::Deterministic => self.registry.snapshot_deterministic(),
        };
        let mut report = Report::new();
        report.set_tree("metrics", metrics::snapshot_report(&snapshot));
        report.set_tree("trace", self.tracer.to_report());
        report
    }
}

/// Whether this build actually records (`false` under the `noop`
/// feature). Bench binaries stamp this into their output so an A/B pair
/// of runs is self-describing.
#[inline]
pub const fn recording_enabled() -> bool {
    !cfg!(feature = "noop")
}

/// The one ratio convention of the whole workspace: `num / den` with the
/// zero-work guard every report helper shares — returns `0.0` (never NaN
/// or ∞) when the denominator is zero or the quotient is non-finite.
/// Downstream JSON and table writers rely on every reported ratio being
/// finite.
#[inline]
pub fn safe_ratio(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        return 0.0;
    }
    let ratio = num / den;
    if ratio.is_finite() {
        ratio
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safe_ratio_guards_zero_and_nonfinite() {
        assert_eq!(safe_ratio(1.0, 2.0), 0.5);
        assert_eq!(safe_ratio(0.0, 0.0), 0.0);
        assert_eq!(safe_ratio(5.0, 0.0), 0.0);
        assert_eq!(safe_ratio(f64::INFINITY, 2.0), 0.0);
        assert_eq!(safe_ratio(1.0, f64::NAN), 0.0);
        assert!(safe_ratio(f64::MAX, f64::MIN_POSITIVE).is_finite());
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn hub_is_shareable() {
        let hub = std::sync::Arc::new(ObsHub::new());
        let c = hub.registry.counter("x");
        c.add(3);
        assert_eq!(hub.registry.counter("x").get(), 3);
    }

    #[test]
    #[cfg(feature = "noop")]
    fn noop_recording_is_compiled_out() {
        let hub = ObsHub::new();
        hub.registry.counter("x").add(3);
        hub.registry.histogram("h").record(7);
        assert_eq!(hub.registry.counter("x").get(), 0);
        assert_eq!(hub.registry.histogram("h").count(), 0);
    }
}
