//! Property suite for `Pattern::canonical_hash()`.
//!
//! The plan cache of the serving layer keys compiled plans on the
//! canonical hash, so two properties carry the whole feature: every
//! member of an isomorphism class (random relabelings, automorphic
//! images) hashes identically, and non-isomorphic catalogue patterns
//! hash differently. Randomness is a seeded xorshift so the suite is a
//! deterministic replay.

use benu_pattern::{automorphism, queries, Pattern, PatternVertex};

/// Deterministic xorshift64* — no RNG dependency needed for a shuffle.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn permutation(&mut self, n: usize) -> Vec<PatternVertex> {
        let mut perm: Vec<PatternVertex> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (self.next() % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        perm
    }
}

/// The bundled patterns the issue names: q1–q6, cliques, stars.
fn suite() -> Vec<(String, Pattern)> {
    let mut out = vec![
        ("q1".to_string(), queries::q1()),
        ("q2".to_string(), queries::q2()),
        ("q3".to_string(), queries::q3()),
        ("q4".to_string(), queries::q4()),
        ("q5".to_string(), queries::q5()),
        ("q6".to_string(), queries::q6()),
    ];
    for k in 3..=6 {
        out.push((format!("clique{k}"), queries::clique(k)));
        out.push((format!("star{k}"), queries::star(k)));
    }
    out
}

#[test]
fn every_relabeling_hashes_identically() {
    let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
    for (name, p) in suite() {
        let expected_hash = p.canonical_hash();
        let expected_form = p.canonical_form().pattern;
        for round in 0..20 {
            let perm = rng.permutation(p.num_vertices());
            let image = p.relabeled(&perm);
            assert!(p.is_isomorphic(&image), "{name}: relabeling is an iso");
            assert_eq!(
                image.canonical_hash(),
                expected_hash,
                "{name} round {round}: relabeled image must hash identically"
            );
            assert_eq!(
                image.canonical_form().pattern,
                expected_form,
                "{name} round {round}: canonical forms must be byte-identical"
            );
        }
    }
}

#[test]
fn every_automorphic_image_hashes_identically() {
    for (name, p) in suite() {
        let expected = p.canonical_hash();
        for auto in automorphism::automorphisms(&p) {
            assert_eq!(
                p.relabeled(&auto).canonical_hash(),
                expected,
                "{name}: automorphic image must hash identically"
            );
        }
    }
}

#[test]
fn non_isomorphic_pairs_hash_differently() {
    let patterns = suite();
    for (i, (a_name, a)) in patterns.iter().enumerate() {
        for (b_name, b) in patterns.iter().skip(i + 1) {
            if a.is_isomorphic(b) {
                assert_eq!(
                    a.canonical_hash(),
                    b.canonical_hash(),
                    "{a_name} vs {b_name}: isomorphic duplicates in the suite must agree"
                );
            } else {
                assert_ne!(
                    a.canonical_hash(),
                    b.canonical_hash(),
                    "{a_name} vs {b_name}: non-isomorphic patterns must differ"
                );
            }
        }
    }
}

#[test]
fn placement_maps_canonical_embeddings_back() {
    // The serving layer relies on `placement` to translate embeddings of
    // the cached canonical plan into the submitted numbering.
    let mut rng = XorShift(42);
    for (name, p) in suite() {
        let perm = rng.permutation(p.num_vertices());
        let image = p.relabeled(&perm);
        let canon = image.canonical_form();
        assert!(
            canon.pattern.is_isomorphism_to(&image, &canon.placement),
            "{name}: placement must be an isomorphism canonical -> input"
        );
    }
}
