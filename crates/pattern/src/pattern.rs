//! The pattern graph `P`.
//!
//! Patterns are tiny (the paper never exceeds 10 vertices), so each vertex's
//! adjacency is a single `u64` bitmask row. Vertices are `0-based` in code;
//! the paper's `u1..un` map to `0..n-1`.

/// Index of a pattern vertex (`0 ..= 63`).
pub type PatternVertex = usize;

/// Maximum supported pattern size (bitmask rows are `u64`).
pub const MAX_PATTERN_VERTICES: usize = 64;

/// A small undirected simple graph stored as bitmask adjacency rows,
/// optionally vertex-labeled (the property-graph extension the paper
/// lists as future work: a labeled pattern vertex only matches data
/// vertices carrying the same label).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Pattern {
    n: usize,
    /// `rows[u]` has bit `v` set iff `(u, v) ∈ E(P)`.
    rows: Vec<u64>,
    /// Vertex labels; `None` for the unlabeled patterns of the paper.
    labels: Option<Vec<u32>>,
}

impl Pattern {
    /// Creates an edgeless pattern with `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds [`MAX_PATTERN_VERTICES`].
    pub fn empty(n: usize) -> Self {
        assert!(
            (1..=MAX_PATTERN_VERTICES).contains(&n),
            "pattern size {n} out of range"
        );
        Pattern {
            n,
            rows: vec![0; n],
            labels: None,
        }
    }

    /// Attaches vertex labels (property-graph extension). Automorphisms,
    /// syntactic equivalence and isomorphism checks become label-aware.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != n`.
    pub fn with_labels(mut self, labels: Vec<u32>) -> Self {
        assert_eq!(labels.len(), self.n, "one label per pattern vertex");
        self.labels = Some(labels);
        self
    }

    /// The label of `u`, if the pattern is labeled.
    pub fn label(&self, u: PatternVertex) -> Option<u32> {
        self.labels.as_ref().map(|l| l[u])
    }

    /// All labels, if the pattern is labeled.
    pub fn labels(&self) -> Option<&[u32]> {
        self.labels.as_deref()
    }

    /// True when the pattern carries vertex labels.
    pub fn is_labeled(&self) -> bool {
        self.labels.is_some()
    }

    /// Builds a pattern with `n` vertices from an undirected edge list.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or self-loops.
    pub fn from_edges(n: usize, edges: &[(PatternVertex, PatternVertex)]) -> Self {
        let mut p = Pattern::empty(n);
        for &(u, v) in edges {
            p.add_edge(u, v);
        }
        p
    }

    /// Adds an undirected edge.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or self-loops.
    pub fn add_edge(&mut self, u: PatternVertex, v: PatternVertex) {
        assert!(u < self.n && v < self.n, "edge ({u},{v}) out of range");
        assert_ne!(u, v, "self-loop on pattern vertex {u}");
        self.rows[u] |= 1 << v;
        self.rows[v] |= 1 << u;
    }

    /// Number of vertices `n = |V(P)|`.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges `m = |E(P)|`.
    pub fn num_edges(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.count_ones() as usize)
            .sum::<usize>()
            / 2
    }

    /// Degree of `u` in `P`.
    pub fn degree(&self, u: PatternVertex) -> usize {
        self.rows[u].count_ones() as usize
    }

    /// Edge membership test.
    pub fn has_edge(&self, u: PatternVertex, v: PatternVertex) -> bool {
        u < self.n && v < self.n && (self.rows[u] >> v) & 1 == 1
    }

    /// The adjacency row of `u` as a bitmask.
    pub fn neighbor_mask(&self, u: PatternVertex) -> u64 {
        self.rows[u]
    }

    /// Iterates the neighbours of `u` in ascending order.
    pub fn neighbors(&self, u: PatternVertex) -> impl Iterator<Item = PatternVertex> + '_ {
        BitIter(self.rows[u])
    }

    /// Iterates all undirected edges with `u < v` in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (PatternVertex, PatternVertex)> + '_ {
        (0..self.n).flat_map(move |u| {
            BitIter(self.rows[u] & !((1u128 << (u + 1)) - 1) as u64).map(move |v| (u, v))
        })
    }

    /// Iterates all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = PatternVertex> {
        0..self.n
    }

    /// The induced subgraph on the vertex subset given as a bitmask,
    /// *keeping original vertex indices* (vertices outside the mask become
    /// isolated and are excluded from edge/degree accounting by the
    /// caller). For a compact re-indexed copy use [`Pattern::induced`].
    pub fn induced_mask_edges(&self, mask: u64) -> usize {
        let mut m = 0usize;
        for u in BitIter(mask) {
            m += (self.rows[u] & mask).count_ones() as usize;
        }
        m / 2
    }

    /// The induced subgraph on `verts` with vertices re-indexed to
    /// `0..verts.len()` in the given order.
    ///
    /// # Panics
    ///
    /// Panics if `verts` contains duplicates or out-of-range indices.
    pub fn induced(&self, verts: &[PatternVertex]) -> Pattern {
        let mut p = Pattern::empty(verts.len().max(1));
        p.n = verts.len();
        p.rows.truncate(verts.len().max(1));
        if verts.is_empty() {
            p.rows.clear();
            return p;
        }
        let mut seen = 0u64;
        for &v in verts {
            assert!(v < self.n, "vertex {v} out of range");
            assert!(seen & (1 << v) == 0, "duplicate vertex {v}");
            seen |= 1 << v;
        }
        for (i, &u) in verts.iter().enumerate() {
            for (j, &v) in verts.iter().enumerate().skip(i + 1) {
                if self.has_edge(u, v) {
                    p.add_edge(i, j);
                }
            }
        }
        if let Some(labels) = &self.labels {
            p.labels = Some(verts.iter().map(|&v| labels[v]).collect());
        }
        p
    }

    /// True if the pattern is connected (single-vertex patterns count as
    /// connected).
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let full = if self.n == 64 {
            u64::MAX
        } else {
            (1u64 << self.n) - 1
        };
        self.component_of(0) == full
    }

    /// Bitmask of the connected component containing `start`.
    pub fn component_of(&self, start: PatternVertex) -> u64 {
        let mut comp = 1u64 << start;
        loop {
            let mut next = comp;
            for u in BitIter(comp) {
                next |= self.rows[u];
            }
            if next == comp {
                return comp;
            }
            comp = next;
        }
    }

    /// Connected components of the sub-vertex-set `mask`, each returned as
    /// a bitmask. Used by the cost model, which multiplies per-component
    /// match estimates for disconnected partial patterns.
    pub fn components_within(&self, mask: u64) -> Vec<u64> {
        let mut remaining = mask;
        let mut comps = Vec::new();
        while remaining != 0 {
            let start = remaining.trailing_zeros() as usize;
            let mut comp = 1u64 << start;
            loop {
                let mut next = comp;
                for u in BitIter(comp) {
                    next |= self.rows[u] & mask;
                }
                if next == comp {
                    break;
                }
                comp = next;
            }
            comps.push(comp);
            remaining &= !comp;
        }
        comps
    }

    /// Tests whether `perm` (a bijection `old -> new` of `0..n`) is an
    /// isomorphism from `self` onto `other`.
    pub fn is_isomorphism_to(&self, other: &Pattern, perm: &[PatternVertex]) -> bool {
        if self.n != other.n || perm.len() != self.n {
            return false;
        }
        self.edges().all(|(u, v)| other.has_edge(perm[u], perm[v]))
            && self.num_edges() == other.num_edges()
            && (0..self.n).all(|u| self.label(u) == other.label(perm[u]))
    }

    /// Checks graph isomorphism between two patterns by brute force over
    /// degree-compatible permutations. Intended for tests and the small
    /// pattern catalogue only.
    pub fn is_isomorphic(&self, other: &Pattern) -> bool {
        if self.n != other.n || self.num_edges() != other.num_edges() {
            return false;
        }
        let mut deg_a: Vec<usize> = self.vertices().map(|v| self.degree(v)).collect();
        let mut deg_b: Vec<usize> = other.vertices().map(|v| other.degree(v)).collect();
        deg_a.sort_unstable();
        deg_b.sort_unstable();
        if deg_a != deg_b {
            return false;
        }
        let mut perm: Vec<PatternVertex> = Vec::with_capacity(self.n);
        self.search_iso(other, &mut perm)
    }

    /// The pattern with vertices renumbered by `perm` (a bijection
    /// `old -> new` of `0..n`): edge `(u, v)` becomes
    /// `(perm[u], perm[v])`, labels follow their vertices. The result is
    /// isomorphic to `self` by construction — the property-test
    /// workhorse of [`crate::canonical`].
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn relabeled(&self, perm: &[PatternVertex]) -> Pattern {
        assert_eq!(perm.len(), self.n, "one image per vertex");
        let mut seen = 0u64;
        for &v in perm {
            assert!(v < self.n, "image {v} out of range");
            assert!(seen & (1 << v) == 0, "duplicate image {v}");
            seen |= 1 << v;
        }
        let edges: Vec<_> = self.edges().map(|(u, v)| (perm[u], perm[v])).collect();
        let mut p = Pattern::from_edges(self.n, &edges);
        if let Some(labels) = &self.labels {
            let mut new_labels = vec![0u32; self.n];
            for (u, &l) in labels.iter().enumerate() {
                new_labels[perm[u]] = l;
            }
            p.labels = Some(new_labels);
        }
        p
    }

    /// A hash equal across every member of this pattern's isomorphism
    /// class (relabelings, automorphic images) and — hash collisions
    /// aside — distinct across classes. See [`crate::canonical`].
    pub fn canonical_hash(&self) -> u64 {
        crate::canonical::canonical_hash(self)
    }

    /// The canonical representative of this pattern's isomorphism class
    /// plus the placement mapping back to this numbering. See
    /// [`crate::canonical`].
    pub fn canonical_form(&self) -> crate::canonical::CanonicalForm {
        crate::canonical::canonical_form(self)
    }

    fn search_iso(&self, other: &Pattern, perm: &mut Vec<PatternVertex>) -> bool {
        let u = perm.len();
        if u == self.n {
            return true;
        }
        let used: u64 = perm.iter().fold(0, |acc, &v| acc | (1 << v));
        for cand in other.vertices() {
            if used & (1 << cand) != 0
                || other.degree(cand) != self.degree(u)
                || other.label(cand) != self.label(u)
            {
                continue;
            }
            // Consistency with already-mapped vertices.
            let ok = (0..u).all(|w| self.has_edge(u, w) == other.has_edge(cand, perm[w]));
            if !ok {
                continue;
            }
            perm.push(cand);
            if self.search_iso(other, perm) {
                return true;
            }
            perm.pop();
        }
        false
    }
}

/// Iterator over set bit positions of a `u64`, ascending.
#[derive(Clone, Copy, Debug)]
pub struct BitIter(pub u64);

impl Iterator for BitIter {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let b = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Pattern {
        Pattern::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])
    }

    #[test]
    fn counts_and_degrees() {
        let p = square();
        assert_eq!(p.num_vertices(), 4);
        assert_eq!(p.num_edges(), 4);
        assert!(p.vertices().all(|v| p.degree(v) == 2));
    }

    #[test]
    fn edges_iterate_once_each() {
        let p = square();
        let edges: Vec<_> = p.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        Pattern::from_edges(2, &[(1, 1)]);
    }

    #[test]
    fn neighbors_sorted() {
        let p = Pattern::from_edges(4, &[(2, 0), (2, 3), (2, 1)]);
        let nbrs: Vec<_> = p.neighbors(2).collect();
        assert_eq!(nbrs, vec![0, 1, 3]);
    }

    #[test]
    fn induced_subgraph_reindexes() {
        let p = square();
        let sub = p.induced(&[1, 2, 3]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 2); // 1-2 and 2-3 survive
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(0, 2));
    }

    #[test]
    fn connectivity() {
        assert!(square().is_connected());
        let two = Pattern::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!two.is_connected());
        let comps = two.components_within(0b1111);
        assert_eq!(comps, vec![0b0011, 0b1100]);
        // Restricting the mask splits components further.
        let comps = two.components_within(0b0101);
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn isomorphism_detects_relabeling() {
        let a = square();
        // Same square with vertices relabeled.
        let b = Pattern::from_edges(4, &[(0, 2), (2, 1), (1, 3), (3, 0)]);
        assert!(a.is_isomorphic(&b));
        let c = Pattern::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 2)]); // path + chord, not a cycle
        assert!(!a.is_isomorphic(&c));
    }

    #[test]
    fn is_isomorphism_to_checks_specific_map() {
        let a = Pattern::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let b = a.clone();
        assert!(a.is_isomorphism_to(&b, &[1, 2, 0]));
        let path = Pattern::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(!path.is_isomorphism_to(&a, &[0, 1, 2]) || a.num_edges() == path.num_edges());
    }

    #[test]
    fn bit_iter_yields_ascending() {
        let bits: Vec<_> = BitIter(0b1010_0110).collect();
        assert_eq!(bits, vec![1, 2, 5, 7]);
        assert_eq!(BitIter(0).count(), 0);
    }

    #[test]
    fn induced_mask_edges_counts() {
        let p = square();
        assert_eq!(p.induced_mask_edges(0b1111), 4);
        assert_eq!(p.induced_mask_edges(0b0111), 2);
        assert_eq!(p.induced_mask_edges(0b0101), 0);
    }
}
