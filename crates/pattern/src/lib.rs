//! Pattern-graph machinery for BENU.
//!
//! The pattern graph `P` is small (`n ≪ N`), connected, undirected and
//! unlabeled. This crate provides:
//!
//! * [`Pattern`] — a bitset-based small-graph type with the operations the
//!   plan compiler needs (induced subgraphs, connectivity, components).
//! * [`automorphism`] — exact enumeration of `Aut(P)`.
//! * [`canonical`] — automorphism-canonical forms and hashes, the
//!   plan-cache key of the serving layer (isomorphic submissions share
//!   one compiled plan).
//! * [`symmetry`] — the symmetry-breaking partial order of Grochow–Kellis
//!   \[15\], which makes match enumeration report each subgraph exactly once.
//! * [`se`] — the syntactic-equivalence relation of Ren & Wang \[17\] used by
//!   the dual pruning in the best-plan search.
//! * [`cover`] — vertex-cover utilities used by VCBC compression.
//! * [`queries`] — the paper's pattern catalogue: the running example of
//!   Fig. 1a, q1–q9 (reconstructed; see DESIGN.md §3), and stock motifs.

pub mod automorphism;
pub mod canonical;
pub mod cover;
pub mod pattern;
pub mod queries;
pub mod se;
pub mod symmetry;

pub use canonical::CanonicalForm;
pub use pattern::{Pattern, PatternVertex};
pub use symmetry::SymmetryBreaking;
