//! Syntactic equivalence (Ren & Wang \[17\]).
//!
//! Two pattern vertices are syntactically equivalent (`u_i ≃ u_j`) iff
//! `Γ_P(u_i) − {u_j} = Γ_P(u_j) − {u_i}` — they can be swapped in any
//! matching order without changing the plan's cost. The best-plan search
//! uses this for *dual pruning*: only the matching orders in which
//! SE-equivalent vertices appear in ascending index order are explored.

use crate::pattern::{Pattern, PatternVertex};

/// Pairwise syntactic-equivalence relation over `V(P)`.
#[derive(Clone, Debug)]
pub struct SyntacticEquivalence {
    n: usize,
    /// `rows[u]` has bit `v` set iff `u ≃ v` (including `u ≃ u`).
    rows: Vec<u64>,
}

impl SyntacticEquivalence {
    /// Computes the relation in `O(n²)` bitmask operations.
    pub fn compute(p: &Pattern) -> Self {
        let n = p.num_vertices();
        let mut rows = vec![0u64; n];
        for u in 0..n {
            rows[u] |= 1 << u;
            for v in (u + 1)..n {
                if p.label(u) != p.label(v) {
                    continue;
                }
                let gu = p.neighbor_mask(u) & !(1 << v);
                let gv = p.neighbor_mask(v) & !(1 << u);
                if gu == gv {
                    rows[u] |= 1 << v;
                    rows[v] |= 1 << u;
                }
            }
        }
        SyntacticEquivalence { n, rows }
    }

    /// True iff `u ≃ v`.
    pub fn equivalent(&self, u: PatternVertex, v: PatternVertex) -> bool {
        (self.rows[u] >> v) & 1 == 1
    }

    /// Bitmask of vertices equivalent to `u` (including `u`).
    pub fn class_mask(&self, u: PatternVertex) -> u64 {
        self.rows[u]
    }

    /// Number of pattern vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the relation covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The dual-pruning admissibility test of Algorithm 3 line 11: vertex
    /// `u` may be appended to the matching order only if no SE-equivalent
    /// vertex with a smaller index is still unused (`unused` is a bitmask
    /// over `V(P)` including `u`).
    pub fn passes_dual_condition(&self, u: PatternVertex, unused: u64) -> bool {
        let smaller_equiv = self.rows[u] & unused & ((1u64 << u) - 1);
        smaller_equiv == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries;

    #[test]
    fn square_has_two_se_pairs() {
        // q4-style square 0-1-2-3-0: opposite corners are SE
        // (Γ(0)\{2} = {1,3} = Γ(2)\{0}).
        let p = Pattern::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let se = SyntacticEquivalence::compute(&p);
        assert!(se.equivalent(0, 2));
        assert!(se.equivalent(1, 3));
        assert!(!se.equivalent(0, 1));
    }

    #[test]
    fn clique_vertices_all_equivalent() {
        let p = queries::clique(4);
        let se = SyntacticEquivalence::compute(&p);
        for u in 0..4 {
            for v in 0..4 {
                assert!(se.equivalent(u, v));
            }
        }
    }

    #[test]
    fn adjacent_twins_are_equivalent() {
        // 0 and 1 adjacent, both adjacent to 2: Γ(0)\{1} = {2} = Γ(1)\{0}.
        let p = Pattern::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        let se = SyntacticEquivalence::compute(&p);
        assert!(se.equivalent(0, 1));
    }

    #[test]
    fn path_endpoints_not_equivalent() {
        let p = Pattern::from_edges(3, &[(0, 1), (1, 2)]);
        let se = SyntacticEquivalence::compute(&p);
        assert!(!se.equivalent(0, 1));
        assert!(se.equivalent(0, 2)); // both have Γ = {1}
    }

    #[test]
    fn dual_condition_rejects_out_of_order_equivalents() {
        let p = queries::clique(3);
        let se = SyntacticEquivalence::compute(&p);
        let all_unused = 0b111;
        assert!(se.passes_dual_condition(0, all_unused));
        assert!(!se.passes_dual_condition(1, all_unused)); // 0 ≃ 1 still unused
        assert!(!se.passes_dual_condition(2, all_unused));
        // Once 0 is used, 1 becomes admissible.
        assert!(se.passes_dual_condition(1, 0b110));
    }

    #[test]
    fn se_is_reflexive_and_symmetric_on_catalogue() {
        for (_, p) in queries::catalogue() {
            let se = SyntacticEquivalence::compute(&p);
            for u in 0..p.num_vertices() {
                assert!(se.equivalent(u, u));
                for v in 0..p.num_vertices() {
                    assert_eq!(se.equivalent(u, v), se.equivalent(v, u));
                }
            }
        }
    }
}
