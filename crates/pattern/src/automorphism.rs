//! Exact automorphism enumeration for pattern graphs.
//!
//! Patterns are tiny, so a plain backtracking search with degree and
//! consistency pruning enumerates `Aut(P)` quickly even for the worst case
//! (`K_10` has `10! = 3 628 800` automorphisms, found in well under a
//! second). The automorphism group feeds the symmetry-breaking partial
//! order computation.

use crate::pattern::{Pattern, PatternVertex};

/// Enumerates every automorphism of `p` as a permutation vector
/// (`perm[u] = image of u`). The identity is always included and is always
/// the first element returned.
pub fn automorphisms(p: &Pattern) -> Vec<Vec<PatternVertex>> {
    let n = p.num_vertices();
    let mut result = Vec::new();
    let mut perm = Vec::with_capacity(n);
    search(p, &mut perm, &mut result);
    // Backtracking tries candidates in ascending order, so the identity is
    // found first; assert the invariant cheaply.
    debug_assert!(result[0].iter().enumerate().all(|(i, &v)| i == v));
    result
}

fn search(p: &Pattern, perm: &mut Vec<PatternVertex>, out: &mut Vec<Vec<PatternVertex>>) {
    let u = perm.len();
    if u == p.num_vertices() {
        out.push(perm.clone());
        return;
    }
    let used: u64 = perm.iter().fold(0, |acc, &v| acc | (1 << v));
    for cand in p.vertices() {
        if used & (1 << cand) != 0 || p.degree(cand) != p.degree(u) || p.label(cand) != p.label(u) {
            continue;
        }
        if (0..u).all(|w| p.has_edge(u, w) == p.has_edge(cand, perm[w])) {
            perm.push(cand);
            search(p, perm, out);
            perm.pop();
        }
    }
}

/// The number of automorphisms `|Aut(P)|`.
pub fn automorphism_count(p: &Pattern) -> usize {
    automorphisms(p).len()
}

/// Orbit partition of `V(P)` under a set of permutations: `orbit[u]` is the
/// smallest vertex reachable from `u` by applying group elements, acting as
/// the orbit representative.
pub fn orbits(n: usize, perms: &[Vec<PatternVertex>]) -> Vec<PatternVertex> {
    // Union-find over vertices.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    for perm in perms {
        for (u, &image) in perm.iter().enumerate().take(n) {
            let (a, b) = (find(&mut parent, u), find(&mut parent, image));
            if a != b {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                parent[hi] = lo;
            }
        }
    }
    (0..n).map(|u| find(&mut parent, u)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries;

    #[test]
    fn triangle_has_six_automorphisms() {
        let p = Pattern::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(automorphism_count(&p), 6);
    }

    #[test]
    fn square_has_eight() {
        let p = Pattern::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(automorphism_count(&p), 8); // dihedral group D4
    }

    #[test]
    fn path_has_two() {
        let p = Pattern::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(automorphism_count(&p), 2);
    }

    #[test]
    fn clique_has_factorial() {
        let p = queries::clique(5);
        assert_eq!(automorphism_count(&p), 120);
    }

    #[test]
    fn asymmetric_graph_is_rigid() {
        // Smallest asymmetric graphs have 6 vertices; this is one of them:
        // a triangle with pendant paths of lengths 1, 2 hanging off two
        // distinct corners.
        let p = Pattern::from_edges(6, &[(0, 1), (1, 2), (2, 0), (0, 3), (1, 4), (4, 5)]);
        assert_eq!(automorphism_count(&p), 1);
    }

    #[test]
    fn demo_pattern_group_is_the_stated_one() {
        // Fig. 1a pattern: Aut = {id, (u2 u6)(u3 u5)} (1-based), i.e.
        // 0-based fixes 0 and 3 and swaps 1<->5, 2<->4.
        let p = queries::demo_pattern();
        let auts = automorphisms(&p);
        assert_eq!(auts.len(), 2);
        assert_eq!(auts[1], vec![0, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn orbits_of_star() {
        // Star S3: centre 0, leaves 1..3 form one orbit.
        let p = Pattern::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let auts = automorphisms(&p);
        let orb = orbits(4, &auts);
        assert_eq!(orb[0], 0);
        assert_eq!(orb[1], 1);
        assert_eq!(orb[2], 1);
        assert_eq!(orb[3], 1);
    }

    #[test]
    fn identity_always_first() {
        for p in [queries::clique(4), queries::q5(), queries::demo_pattern()] {
            let auts = automorphisms(&p);
            assert!(auts[0].iter().enumerate().all(|(i, &v)| i == v));
        }
    }
}
