//! Automorphism-canonical pattern forms.
//!
//! Two submissions of the *same* pattern under different vertex
//! numberings (a relabeling, or an automorphic image) must compile to
//! the same execution plan — the serving layer's plan cache keys on
//! that. This module computes a canonical representative of a pattern's
//! isomorphism class: the vertex ordering whose incremental adjacency
//! code is lexicographically smallest, found by the same pruned
//! backtracking style as [`crate::automorphism`] (orbit representatives
//! prune the root level; only locally minimal codes are extended).
//!
//! Patterns are tiny (`n ≤ 10` in the paper), so the exact search is
//! cheap; the worst case (`K_n`, where every ordering ties) is the same
//! factorial frontier `automorphisms` already handles well under a
//! second for the catalogue sizes.
//!
//! The canonical *hash* is an FNV-1a digest of the canonical form. The
//! plan cache still verifies the canonical [`Pattern`] on a hash hit,
//! so a (astronomically unlikely) collision can never serve a wrong
//! plan.

use crate::automorphism;
use crate::pattern::{Pattern, PatternVertex};

/// A pattern reduced to its isomorphism-class representative.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanonicalForm {
    /// The canonical representative (isomorphic to the input).
    pub pattern: Pattern,
    /// `placement[i]` is the input vertex placed at canonical position
    /// `i` — an isomorphism from the canonical form onto the input, so
    /// an embedding `f` of the canonical form maps back to the input's
    /// numbering as `f_input[placement[i]] = f[i]`.
    pub placement: Vec<PatternVertex>,
}

/// One step of the incremental ordering code: the candidate's adjacency
/// to the already-placed prefix (bit `j` ⇔ edge to position `j`), then
/// its label. Minimising `(code, label)` per level minimises the whole
/// adjacency matrix read row by row.
type Code = (u64, u32);

struct Search<'a> {
    p: &'a Pattern,
    placed: Vec<PatternVertex>,
    key: Vec<Code>,
    best_key: Vec<Code>,
    best_placed: Vec<PatternVertex>,
}

impl Search<'_> {
    fn label(&self, v: PatternVertex) -> u32 {
        self.p.label(v).unwrap_or(0)
    }

    /// The candidate's code against the current prefix.
    fn code_of(&self, v: PatternVertex) -> Code {
        let mut code = 0u64;
        for (j, &w) in self.placed.iter().enumerate() {
            if self.p.has_edge(v, w) {
                code |= 1 << j;
            }
        }
        (code, self.label(v))
    }

    /// `tight` is true while the current prefix key equals the best
    /// complete key's prefix — only then can the best key prune, and a
    /// tie at this level keeps the child tight.
    fn descend(&mut self, used: u64, tight: bool) {
        let level = self.placed.len();
        if level == self.p.num_vertices() {
            if self.best_placed.is_empty() || self.key < self.best_key {
                self.best_key = self.key.clone();
                self.best_placed = self.placed.clone();
            }
            return;
        }
        // Only candidates achieving the level's minimal code can open a
        // lexicographically minimal completion; ties all branch.
        let mut min: Option<Code> = None;
        for v in self.p.vertices() {
            if used & (1 << v) != 0 {
                continue;
            }
            let code = self.code_of(v);
            // `Option::is_none_or` needs rust 1.82; the MSRV is 1.75.
            #[allow(clippy::unnecessary_map_or)]
            if min.map_or(true, |m| code < m) {
                min = Some(code);
            }
        }
        let min = min.expect("a free vertex exists below n");
        let tight = tight && !self.best_placed.is_empty();
        if tight && min > self.best_key[level] {
            return;
        }
        let child_tight = tight && min == self.best_key[level];
        for v in self.p.vertices() {
            if used & (1 << v) != 0 || self.code_of(v) != min {
                continue;
            }
            self.placed.push(v);
            self.key.push(min);
            self.descend(used | (1 << v), child_tight);
            self.key.pop();
            self.placed.pop();
        }
    }
}

/// Computes the canonical form of `p`: the isomorphism-class
/// representative plus the placement mapping canonical positions back
/// to input vertices. Isomorphic inputs (any relabeling, any
/// automorphic image) produce byte-identical canonical patterns.
pub fn canonical_form(p: &Pattern) -> CanonicalForm {
    let mut search = Search {
        p,
        placed: Vec::with_capacity(p.num_vertices()),
        key: Vec::with_capacity(p.num_vertices()),
        best_key: Vec::new(),
        best_placed: Vec::new(),
    };
    // Root-level pruning through the automorphism machinery: vertices in
    // the same orbit of Aut(P) open identical canonical completions, so
    // one representative per orbit suffices at level 0.
    let orbit = automorphism::orbits(p.num_vertices(), &automorphism::automorphisms(p));
    let mut roots: Vec<PatternVertex> = p.vertices().filter(|&v| orbit[v] == v).collect();
    // Same local-minimality restriction as deeper levels: the root code
    // is `(0, label)`, so only minimal-label orbit representatives open.
    let min_label = roots
        .iter()
        .map(|&v| search.label(v))
        .min()
        .expect("patterns are non-empty");
    roots.retain(|&v| search.label(v) == min_label);
    for v in roots {
        search.placed.push(v);
        search.key.push((0, min_label));
        search.descend(1 << v, true);
        search.key.pop();
        search.placed.pop();
    }
    let placement = search.best_placed;
    let mut edges = Vec::with_capacity(p.num_edges());
    for i in 0..placement.len() {
        for j in (i + 1)..placement.len() {
            if p.has_edge(placement[i], placement[j]) {
                edges.push((i, j));
            }
        }
    }
    let mut pattern = Pattern::from_edges(p.num_vertices(), &edges);
    if p.is_labeled() {
        pattern = pattern.with_labels(
            placement
                .iter()
                .map(|&v| p.label(v).expect("labeled pattern"))
                .collect(),
        );
    }
    CanonicalForm { pattern, placement }
}

/// FNV-1a over a pattern's *exact* bytes (adjacency rows and labels,
/// numbering-sensitive). Only canonical forms should be fingerprinted
/// for cache keying — [`canonical_hash`] composes the two; the plan
/// cache calls this directly on an already-computed canonical form.
pub fn fingerprint(p: &Pattern) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(PRIME);
    };
    eat(p.num_vertices() as u8);
    for u in p.vertices() {
        for byte in p.neighbor_mask(u).to_le_bytes() {
            eat(byte);
        }
    }
    eat(u8::from(p.is_labeled()));
    if let Some(labels) = p.labels() {
        for &l in labels {
            for byte in l.to_le_bytes() {
                eat(byte);
            }
        }
    }
    h
}

/// FNV-1a over the canonical form: equal for every member of an
/// isomorphism class, and (collision aside — which the plan cache
/// verifies away) distinct across classes.
pub fn canonical_hash(p: &Pattern) -> u64 {
    fingerprint(&canonical_form(p).pattern)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries;

    #[test]
    fn canonical_form_is_isomorphic_via_placement() {
        for p in [queries::q5(), queries::clique(4), queries::star(5)] {
            let canon = canonical_form(&p);
            assert!(
                canon.pattern.is_isomorphism_to(&p, &canon.placement),
                "placement must be an isomorphism onto the input"
            );
        }
    }

    #[test]
    fn relabeled_square_matches() {
        let a = queries::square();
        let b = Pattern::from_edges(4, &[(0, 2), (2, 1), (1, 3), (3, 0)]);
        assert_eq!(canonical_form(&a).pattern, canonical_form(&b).pattern);
        assert_eq!(canonical_hash(&a), canonical_hash(&b));
    }

    #[test]
    fn non_isomorphic_pairs_differ() {
        let square = queries::square();
        let chordal = queries::chordal_square();
        assert_ne!(canonical_hash(&square), canonical_hash(&chordal));
        assert_ne!(
            canonical_hash(&queries::path(4)),
            canonical_hash(&queries::star(4))
        );
    }

    #[test]
    fn labels_participate_in_the_form() {
        let plain = queries::triangle();
        let labeled = queries::triangle().with_labels(vec![1, 1, 2]);
        let relabeled = queries::triangle().with_labels(vec![1, 2, 1]);
        assert_ne!(canonical_hash(&plain), canonical_hash(&labeled));
        // The two labeled triangles are isomorphic (swap the vertices).
        assert_eq!(canonical_hash(&labeled), canonical_hash(&relabeled));
        let different = queries::triangle().with_labels(vec![2, 2, 1]);
        assert_ne!(canonical_hash(&labeled), canonical_hash(&different));
    }

    #[test]
    fn clique_canonicalises_fast() {
        // Worst case for the search (every ordering ties); must still be
        // instant at catalogue sizes.
        let canon = canonical_form(&queries::clique(7));
        assert_eq!(canon.pattern.num_edges(), 21);
    }
}
