//! Symmetry breaking (Grochow–Kellis \[15\]).
//!
//! Enumerating all matches of `P` reports each isomorphic subgraph
//! `|Aut(P)|` times. Symmetry breaking computes a partial order `<` on
//! `V(P)` such that, for any total order `≺` on `V(G)`, every subgraph has
//! *exactly one* match satisfying `u_i < u_j ⇒ f(u_i) ≺ f(u_j)`.
//!
//! The construction iteratively picks a vertex lying in a non-trivial orbit
//! of the (remaining) automorphism group, constrains it to be the
//! `≺`-minimum of its orbit, and descends into the stabilizer. Vertices are
//! picked by highest degree first (ties broken by lowest index) — the
//! choice that reproduces the paper's running example, where the
//! Fig. 1a pattern yields the single constraint `u3 < u5`.

use crate::automorphism::{automorphisms, orbits};
use crate::pattern::{Pattern, PatternVertex};

/// The symmetry-breaking partial order: a set of `(a, b)` pairs meaning
/// `f(a) ≺ f(b)` must hold in every reported match.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SymmetryBreaking {
    constraints: Vec<(PatternVertex, PatternVertex)>,
}

impl SymmetryBreaking {
    /// Computes the partial order for `p`.
    pub fn compute(p: &Pattern) -> Self {
        let n = p.num_vertices();
        let mut group = automorphisms(p);
        let mut constraints = Vec::new();
        loop {
            let orbit_repr = orbits(n, &group);
            // Group members of non-trivial orbits.
            let mut orbit_members: Vec<Vec<PatternVertex>> = vec![Vec::new(); n];
            for u in 0..n {
                orbit_members[orbit_repr[u]].push(u);
            }
            // Pick the anchor vertex: highest degree in a non-trivial
            // orbit, ties by lowest index.
            let anchor = (0..n)
                .filter(|&u| orbit_members[orbit_repr[u]].len() > 1)
                .max_by(|&a, &b| {
                    p.degree(a).cmp(&p.degree(b)).then_with(|| b.cmp(&a)) // lower index wins ties
                });
            let Some(anchor) = anchor else { break };
            for &w in &orbit_members[orbit_repr[anchor]] {
                if w != anchor {
                    constraints.push((anchor, w));
                }
            }
            // Descend into the stabilizer of the anchor.
            group.retain(|perm| perm[anchor] == anchor);
        }
        constraints.sort_unstable();
        SymmetryBreaking { constraints }
    }

    /// An empty order (used when enumerating raw matches without
    /// deduplication).
    pub fn none() -> Self {
        SymmetryBreaking::default()
    }

    /// The `(a, b)` pairs with `f(a) ≺ f(b)` required, sorted.
    pub fn constraints(&self) -> &[(PatternVertex, PatternVertex)] {
        &self.constraints
    }

    /// True if `a < b` is directly required.
    pub fn requires_less(&self, a: PatternVertex, b: PatternVertex) -> bool {
        self.constraints.binary_search(&(a, b)).is_ok()
    }

    /// The constraint between a pair, if any: `Some(true)` if `a < b`,
    /// `Some(false)` if `b < a`, `None` if unconstrained.
    pub fn between(&self, a: PatternVertex, b: PatternVertex) -> Option<bool> {
        if self.requires_less(a, b) {
            Some(true)
        } else if self.requires_less(b, a) {
            Some(false)
        } else {
            None
        }
    }

    /// Applies a vertex relabeling `perm` (old index → new index) to every
    /// constraint. Used by the dual-plan construction in the best-plan
    /// search.
    pub fn relabeled(&self, perm: &[PatternVertex]) -> Self {
        let mut constraints: Vec<_> = self
            .constraints
            .iter()
            .map(|&(a, b)| (perm[a], perm[b]))
            .collect();
        constraints.sort_unstable();
        SymmetryBreaking { constraints }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries;

    /// Counts automorphisms of `p` compatible with the constraints under
    /// the identity total order on `V(P)`; symmetry breaking is correct
    /// iff exactly one survives (this is the `G = P` special case of the
    /// Grochow–Kellis theorem).
    fn surviving_automorphisms(p: &Pattern, sb: &SymmetryBreaking) -> usize {
        automorphisms(p)
            .iter()
            .filter(|perm| sb.constraints().iter().all(|&(a, b)| perm[a] < perm[b]))
            .count()
    }

    #[test]
    fn demo_pattern_matches_paper() {
        let p = queries::demo_pattern();
        let sb = SymmetryBreaking::compute(&p);
        // Paper: the only constraint is u3 < u5, i.e. 0-based (2, 4).
        assert_eq!(sb.constraints(), &[(2, 4)]);
        assert_eq!(surviving_automorphisms(&p, &sb), 1);
    }

    #[test]
    fn triangle_is_fully_ordered() {
        let p = queries::clique(3);
        let sb = SymmetryBreaking::compute(&p);
        assert_eq!(surviving_automorphisms(&p, &sb), 1);
        // K3: first anchor constrains both others, stabilizer still swaps
        // the remaining two, so a second round adds one more constraint.
        assert_eq!(sb.constraints().len(), 3);
    }

    #[test]
    fn exactly_one_automorphism_survives_for_catalogue() {
        for (name, p) in queries::catalogue() {
            let sb = SymmetryBreaking::compute(&p);
            assert_eq!(
                surviving_automorphisms(&p, &sb),
                1,
                "pattern {name} keeps a unique representative"
            );
        }
    }

    #[test]
    fn rigid_graph_needs_no_constraints() {
        let p = Pattern::from_edges(6, &[(0, 1), (1, 2), (2, 0), (0, 3), (1, 4), (4, 5)]);
        let sb = SymmetryBreaking::compute(&p);
        assert!(sb.constraints().is_empty());
    }

    #[test]
    fn between_reports_direction() {
        let p = queries::demo_pattern();
        let sb = SymmetryBreaking::compute(&p);
        assert_eq!(sb.between(2, 4), Some(true));
        assert_eq!(sb.between(4, 2), Some(false));
        assert_eq!(sb.between(0, 3), None);
    }

    #[test]
    fn relabeled_constraints_follow_permutation() {
        let p = queries::clique(3);
        let sb = SymmetryBreaking::compute(&p);
        let relabeled = sb.relabeled(&[2, 0, 1]);
        for &(a, b) in sb.constraints() {
            let mapped = ([2, 0, 1][a], [2, 0, 1][b]);
            assert!(relabeled.constraints().contains(&mapped));
        }
    }
}
