//! The pattern catalogue used throughout the paper's evaluation.
//!
//! Fig. 6 of the paper (which depicts q1–q9) is not reproducible from the
//! text, so the queries are reconstructed from the paper's own constraints
//! (q1–q4 have five vertices, q5 behaves like a triangle-free cycle,
//! q2/q4 carry a 4-clique core, q6–q9 have six vertices and q7–q9 share the
//! chordal-square core). See DESIGN.md §3 for the full rationale.

use crate::pattern::Pattern;

/// The running-example pattern of Fig. 1a, reconstructed exactly from the
/// text: two triangles (`u1 u2 u3`, `u1 u5 u6`) sharing `u1`, joined by the
/// path `u3 – u4 – u5`, plus the edge `u1 – u4` (required for the paper's
/// Optimization-1 walkthrough, where `Intersect(A1, A3)` is a *common*
/// subexpression of `T2` and `T4 := Intersect(A1, A3, A5)`, and for the
/// instruction numbering of Fig. 3b). Its automorphism group is
/// `{id, (u2 u6)(u3 u5)}` and symmetry breaking yields the single
/// constraint `u3 < u5`.
pub fn demo_pattern() -> Pattern {
    Pattern::from_edges(
        6,
        &[
            (0, 1),
            (0, 2),
            (1, 2),
            (0, 4),
            (0, 5),
            (4, 5),
            (2, 3),
            (3, 4),
            (0, 3),
        ],
    )
}

/// The demo *data* graph of Fig. 1b, reconstructed to satisfy every claim
/// the paper makes about it: `f' = (v1,v2,v3,v4,v5,v8)` is a match of the
/// demo pattern, and `Γ(v1) ∩ Γ(v2) − {v1,v2} = {v3, v7}`. Returned as an
/// edge list over 0-based ids (`v1 → 0`, …, `v9 → 8`).
pub fn demo_data_edges() -> Vec<(u32, u32)> {
    vec![
        (0, 1), // v1 v2
        (0, 2), // v1 v3
        (1, 2), // v2 v3
        (0, 4), // v1 v5
        (0, 7), // v1 v8
        (4, 7), // v5 v8
        (2, 3), // v3 v4
        (3, 4), // v4 v5
        (0, 3), // v1 v4
        (0, 6), // v1 v7
        (1, 6), // v2 v7
        (5, 8), // v6 v9 — filler so the demo graph has 9 vertices
        (4, 8), // v5 v9
    ]
}

/// The complete graph `K_k` as a pattern.
pub fn clique(k: usize) -> Pattern {
    let mut p = Pattern::empty(k);
    for u in 0..k {
        for v in (u + 1)..k {
            p.add_edge(u, v);
        }
    }
    p
}

/// The triangle `K_3` (Table I's Δ column; Table VI row 1).
pub fn triangle() -> Pattern {
    clique(3)
}

/// The 4-cycle.
pub fn square() -> Pattern {
    Pattern::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])
}

/// The chordal square (4-cycle plus one chord): the shared core of q7–q9
/// and the third motif column of Table I.
pub fn chordal_square() -> Pattern {
    Pattern::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
}

/// The path with `k` vertices.
pub fn path(k: usize) -> Pattern {
    assert!(k >= 2);
    let edges: Vec<_> = (0..k - 1).map(|i| (i, i + 1)).collect();
    Pattern::from_edges(k, &edges)
}

/// The cycle with `k` vertices.
pub fn cycle(k: usize) -> Pattern {
    assert!(k >= 3);
    let mut edges: Vec<_> = (0..k - 1).map(|i| (i, i + 1)).collect();
    edges.push((k - 1, 0));
    Pattern::from_edges(k, &edges)
}

/// The star with `k` leaves (centre is vertex 0).
pub fn star(k: usize) -> Pattern {
    assert!(k >= 1);
    let edges: Vec<_> = (1..=k).map(|i| (0, i)).collect();
    Pattern::from_edges(k + 1, &edges)
}

/// q1 — the house: a 4-cycle with a triangle roof (5 vertices, 6 edges).
pub fn q1() -> Pattern {
    Pattern::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)])
}

/// q2 — the tailed 4-clique: `K_4` plus a pendant vertex (5 vertices,
/// 7 edges). Carries the 4-clique core responsible for CBF's large shuffle
/// volumes in Table V.
pub fn q2() -> Pattern {
    let mut p = Pattern::empty(5);
    for u in 0..4 {
        for v in (u + 1)..4 {
            p.add_edge(u, v);
        }
    }
    p.add_edge(0, 4);
    p
}

/// q3 — the gem: a 4-path dominated by an apex vertex (5 vertices,
/// 7 edges).
pub fn q3() -> Pattern {
    Pattern::from_edges(5, &[(0, 1), (1, 2), (2, 3), (0, 4), (1, 4), (2, 4), (3, 4)])
}

/// q4 — `K_4` plus a vertex adjacent to two clique vertices (5 vertices,
/// 8 edges). The densest 5-vertex query; BiGJoin ships a specially
/// optimized plan for it (Table VI).
pub fn q4() -> Pattern {
    let mut p = Pattern::empty(5);
    for u in 0..4 {
        for v in (u + 1)..4 {
            p.add_edge(u, v);
        }
    }
    p.add_edge(0, 4);
    p.add_edge(1, 4);
    p
}

/// q5 — the 5-cycle: triangle-free, the one query where join-based
/// baselines stay competitive (Table V, fs row) and where the triangle
/// cache is useless by construction (Exp-3).
pub fn q5() -> Pattern {
    cycle(5)
}

/// q6 — the dumbbell: two triangles joined by an edge (6 vertices,
/// 7 edges).
pub fn q6() -> Pattern {
    Pattern::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
}

/// q7 — chordal square with a length-2 pendant path (6 vertices, 7 edges).
pub fn q7() -> Pattern {
    Pattern::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (0, 4), (4, 5)])
}

/// q8 — chordal square with pendant vertices on both degree-2 corners
/// (6 vertices, 7 edges). The hardest of the chordal-square family in
/// Table V.
pub fn q8() -> Pattern {
    Pattern::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 4), (3, 5)])
}

/// q9 — chordal square with a second triangle on the chord plus a pendant
/// (6 vertices, 8 edges).
pub fn q9() -> Pattern {
    Pattern::from_edges(
        6,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0),
            (0, 2),
            (0, 4),
            (2, 4),
            (0, 5),
        ],
    )
}

/// The nine evaluation queries in paper order.
pub fn evaluation_queries() -> Vec<(&'static str, Pattern)> {
    vec![
        ("q1", q1()),
        ("q2", q2()),
        ("q3", q3()),
        ("q4", q4()),
        ("q5", q5()),
        ("q6", q6()),
        ("q7", q7()),
        ("q8", q8()),
        ("q9", q9()),
    ]
}

/// Looks up an evaluation query by name (`"q1"` … `"q9"`).
pub fn by_name(name: &str) -> Option<Pattern> {
    evaluation_queries()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, p)| p)
}

/// The full named catalogue: evaluation queries plus the stock motifs used
/// by Table I, Table VI and the tests.
pub fn catalogue() -> Vec<(&'static str, Pattern)> {
    let mut all = evaluation_queries();
    all.push(("demo", demo_pattern()));
    all.push(("triangle", triangle()));
    all.push(("square", square()));
    all.push(("chordal_square", chordal_square()));
    all.push(("clique4", clique(4)));
    all.push(("clique5", clique(5)));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_design_table() {
        let expect = [
            ("q1", 5, 6),
            ("q2", 5, 7),
            ("q3", 5, 7),
            ("q4", 5, 8),
            ("q5", 5, 5),
            ("q6", 6, 7),
            ("q7", 6, 7),
            ("q8", 6, 7),
            ("q9", 6, 8),
        ];
        for (name, n, m) in expect {
            let p = by_name(name).unwrap();
            assert_eq!(p.num_vertices(), n, "{name} vertices");
            assert_eq!(p.num_edges(), m, "{name} edges");
        }
    }

    #[test]
    fn all_catalogue_patterns_are_connected() {
        for (name, p) in catalogue() {
            assert!(p.is_connected(), "{name} must be connected");
        }
    }

    #[test]
    fn demo_pattern_shape() {
        let p = demo_pattern();
        assert_eq!(p.num_vertices(), 6);
        assert_eq!(p.num_edges(), 9);
        assert_eq!(p.degree(0), 5); // u1 dominates the pattern
    }

    #[test]
    fn chordal_square_core_is_present_in_q7_q8_q9() {
        let core = chordal_square();
        for q in [q7(), q8(), q9()] {
            // The first four vertices induce the chordal square.
            let sub = q.induced(&[0, 1, 2, 3]);
            assert!(sub.is_isomorphic(&core));
        }
    }

    #[test]
    fn q2_and_q4_contain_k4() {
        for q in [q2(), q4()] {
            let sub = q.induced(&[0, 1, 2, 3]);
            assert!(sub.is_isomorphic(&clique(4)));
        }
    }

    #[test]
    fn q5_is_triangle_free() {
        let p = q5();
        let mut tri = false;
        for u in 0..5 {
            for v in (u + 1)..5 {
                for w in (v + 1)..5 {
                    if p.has_edge(u, v) && p.has_edge(v, w) && p.has_edge(u, w) {
                        tri = true;
                    }
                }
            }
        }
        assert!(!tri);
    }

    #[test]
    fn by_name_rejects_unknown() {
        assert!(by_name("q10").is_none());
    }

    #[test]
    fn demo_data_graph_hosts_f_prime() {
        // f' = (v1,v2,v3,v4,v5,v8) must be a match of the demo pattern.
        let p = demo_pattern();
        let edges = demo_data_edges();
        let has = |a: u32, b: u32| {
            edges.contains(&(a.min(b), a.max(b))) || edges.contains(&(a.max(b), a.min(b)))
        };
        let f = [0u32, 1, 2, 3, 4, 7];
        for (u, v) in p.edges() {
            assert!(has(f[u], f[v]), "pattern edge ({u},{v}) missing in data");
        }
    }
}
