//! Vertex-cover utilities for VCBC compression.
//!
//! VCBC compresses matching results around a vertex cover `V_c` of `P`:
//! matches of the induced core are "helves", and each non-cover vertex is
//! represented by its conditional image set. The plan compiler needs two
//! queries: the size of a minimum vertex cover (to judge matching orders)
//! and, for a concrete matching order, the shortest prefix that covers
//! every pattern edge.

use crate::pattern::{BitIter, Pattern, PatternVertex};

/// True iff the vertex set `mask` covers every edge of `p`.
pub fn is_vertex_cover(p: &Pattern, mask: u64) -> bool {
    p.edges()
        .all(|(u, v)| mask & (1 << u) != 0 || mask & (1 << v) != 0)
}

/// A minimum vertex cover of `p`, returned as a bitmask. Exhaustive search
/// by increasing cover size — exponential, but patterns are ≤ 10 vertices.
pub fn minimum_vertex_cover(p: &Pattern) -> u64 {
    let n = p.num_vertices();
    if p.num_edges() == 0 {
        return 0;
    }
    for k in 1..=n {
        if let Some(mask) = find_cover_of_size(p, k) {
            return mask;
        }
    }
    unreachable!("V(P) itself always covers E(P)")
}

fn find_cover_of_size(p: &Pattern, k: usize) -> Option<u64> {
    fn rec(p: &Pattern, mask: u64, next: usize, remaining: usize) -> Option<u64> {
        if is_vertex_cover(p, mask) {
            return Some(mask);
        }
        if remaining == 0 || next >= p.num_vertices() {
            return None;
        }
        // Branch: include `next` or not.
        if let Some(m) = rec(p, mask | (1 << next), next + 1, remaining - 1) {
            return Some(m);
        }
        rec(p, mask, next + 1, remaining)
    }
    rec(p, 0, 0, k)
}

/// Size of a minimum vertex cover.
pub fn min_cover_size(p: &Pattern) -> usize {
    minimum_vertex_cover(p).count_ones() as usize
}

/// For a matching order, the length `k` of the shortest prefix whose
/// vertices form a vertex cover of `p` (VCBC helve boundary, §IV-B).
/// Returns `order.len()` when only the full order covers (e.g. an
/// edgeless tail never happens because `P` is connected).
pub fn cover_prefix_len(p: &Pattern, order: &[PatternVertex]) -> usize {
    let mut mask = 0u64;
    for (i, &u) in order.iter().enumerate() {
        mask |= 1 << u;
        if is_vertex_cover(p, mask) {
            return i + 1;
        }
    }
    order.len()
}

/// The non-cover vertices of a prefix cover, in matching-order position.
pub fn non_cover_vertices(order: &[PatternVertex], cover_len: usize) -> Vec<PatternVertex> {
    order[cover_len..].to_vec()
}

/// Iterates the vertices of a cover mask.
pub fn cover_vertices(mask: u64) -> impl Iterator<Item = PatternVertex> {
    BitIter(mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries;

    #[test]
    fn star_cover_is_centre() {
        let p = Pattern::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(minimum_vertex_cover(&p), 0b0001);
        assert_eq!(min_cover_size(&p), 1);
    }

    #[test]
    fn triangle_needs_two() {
        assert_eq!(min_cover_size(&queries::clique(3)), 2);
    }

    #[test]
    fn clique_needs_n_minus_one() {
        assert_eq!(min_cover_size(&queries::clique(5)), 4);
    }

    #[test]
    fn cycle5_needs_three() {
        assert_eq!(min_cover_size(&queries::q5()), 3);
    }

    #[test]
    fn demo_pattern_cover_prefix_matches_paper() {
        // Paper: matching order u1,u3,u5,u2,u6,u4 (0-based 0,2,4,1,5,3)
        // has its first three vertices {u1,u3,u5} as the vertex cover.
        let p = queries::demo_pattern();
        let order = [0, 2, 4, 1, 5, 3];
        assert_eq!(cover_prefix_len(&p, &order), 3);
        assert!(is_vertex_cover(&p, 0b010101));
        assert_eq!(non_cover_vertices(&order, 3), vec![1, 5, 3]);
    }

    #[test]
    fn cover_check_rejects_uncovered_edge() {
        let p = queries::clique(3);
        assert!(!is_vertex_cover(&p, 0b001));
        assert!(is_vertex_cover(&p, 0b011));
    }

    #[test]
    fn minimum_cover_is_actually_a_cover() {
        for (name, p) in queries::catalogue() {
            let mask = minimum_vertex_cover(&p);
            assert!(is_vertex_cover(&p, mask), "cover invalid for {name}");
        }
    }
}
