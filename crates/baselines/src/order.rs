//! Vertex orders for the baselines.

use benu_pattern::Pattern;

/// A greedy connected order: start at the highest-degree vertex, then
/// repeatedly pick the unordered vertex with the most already-ordered
/// pattern neighbours (ties by degree, then index). Every vertex after the
/// first has at least one ordered neighbour (patterns are connected), so
/// each extension step intersects real adjacency sets.
pub fn greedy_connected_order(p: &Pattern) -> Vec<usize> {
    let n = p.num_vertices();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let first = (0..n)
        .max_by_key(|&u| (p.degree(u), std::cmp::Reverse(u)))
        .unwrap();
    order.push(first);
    used[first] = true;
    while order.len() < n {
        let next = (0..n)
            .filter(|&u| !used[u])
            .max_by_key(|&u| {
                let bound = order.iter().filter(|&&v| p.has_edge(u, v)).count();
                (bound, p.degree(u), std::cmp::Reverse(u))
            })
            .unwrap();
        order.push(next);
        used[next] = true;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use benu_pattern::queries;

    #[test]
    fn order_is_a_permutation() {
        for (name, p) in queries::catalogue() {
            let order = greedy_connected_order(&p);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..p.num_vertices()).collect::<Vec<_>>(), "{name}");
        }
    }

    #[test]
    fn every_vertex_connects_to_prefix() {
        for (name, p) in queries::catalogue() {
            let order = greedy_connected_order(&p);
            for (i, &u) in order.iter().enumerate().skip(1) {
                assert!(
                    order[..i].iter().any(|&v| p.has_edge(u, v)),
                    "{name}: vertex {u} disconnected from prefix"
                );
            }
        }
    }

    #[test]
    fn starts_at_max_degree() {
        let p = queries::q3(); // the gem's apex has degree 4
        let order = greedy_connected_order(&p);
        assert_eq!(order[0], 4);
    }
}
