//! Baseline distributed subgraph-enumeration algorithms.
//!
//! The paper compares BENU against two state-of-the-art systems. Both are
//! closed or platform-bound, so this crate implements faithful class
//! representatives (see DESIGN.md §2 for the substitution rationale):
//!
//! * [`starjoin`] — the BFS-style join-based family (TwinTwig/SEED/CBF):
//!   the pattern is decomposed into star join units, unit matches are
//!   materialised and assembled by left-deep hash joins, and every
//!   intermediate relation is "shuffled" — its bytes are the communication
//!   cost the paper's Table V attributes to CBF.
//! * [`wcoj`] — the worst-case-optimal join of BiGJoin: embeddings are
//!   extended one vertex at a time over the whole frontier, either fully
//!   materialised per level (shared-memory mode, OOM-prone) or in fixed
//!   batches (distributed mode, where each round's extended prefixes are
//!   the shuffle volume).
//!
//! Both baselines apply the same symmetry-breaking technique as BENU, so
//! their match counts are directly comparable (and are cross-checked
//! against the brute-force reference in the tests).

pub mod order;
pub mod starjoin;
pub mod wcoj;

use std::time::Duration;

/// The outcome of one baseline run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BaselineOutcome {
    /// Matches found (meaningless when `completed` is false).
    pub matches: u64,
    /// Bytes of intermediate results shuffled between rounds.
    pub shuffled_bytes: u64,
    /// Peak bytes of materialised intermediate state.
    pub peak_memory_bytes: u64,
    /// Number of join/extension rounds executed.
    pub rounds: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// False when the configured memory cap was exceeded (the paper's
    /// OOM / CRASH cells).
    pub completed: bool,
    /// True when the run stopped because the work budget ran out (the
    /// paper's `>7200s` cells) rather than memory.
    pub budget_exceeded: bool,
}

impl BaselineOutcome {
    /// Formats like the paper's Table V cells: `time/bytes` or `CRASH`.
    pub fn cell(&self) -> String {
        if self.completed {
            format!(
                "{:.2}s/{}",
                self.elapsed.as_secs_f64(),
                human_bytes(self.shuffled_bytes)
            )
        } else {
            "CRASH".to_string()
        }
    }
}

/// Human-readable byte count (paper style: `26G`, `512M`).
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "K", "M", "G", "T"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes}B")
    } else {
        format!("{value:.1}{}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(2048), "2.0K");
        assert_eq!(human_bytes(3 << 30), "3.0G");
    }

    #[test]
    fn cell_reports_crash() {
        let oom = BaselineOutcome {
            completed: false,
            ..Default::default()
        };
        assert_eq!(oom.cell(), "CRASH");
        let ok = BaselineOutcome {
            completed: true,
            shuffled_bytes: 1024,
            elapsed: Duration::from_millis(1500),
            ..Default::default()
        };
        assert_eq!(ok.cell(), "1.50s/1.0K");
    }
}
