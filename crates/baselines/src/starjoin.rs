//! A BFS-style join-based enumerator (the TwinTwig/SEED/CBF family).
//!
//! The pattern is decomposed into *star join units* (a centre plus its
//! still-uncovered incident edges, largest star first). Unit match
//! relations are materialised directly from adjacency lists and assembled
//! left-deep with hash joins. Every join round "shuffles" both input
//! relations — the partial matching results whose volume the BENU paper
//! identifies as the Achilles' heel of this family (Table V's CBF
//! communication column, 10–100× the data graph).
//!
//! Symmetry breaking is applied as in BENU: constraints inside a star are
//! checked during unit enumeration, cross-unit constraints (order and
//! injectivity) during the joins, so the final count equals BENU's.

use crate::BaselineOutcome;
use benu_graph::{Graph, TotalOrder, VertexId};
use benu_pattern::{Pattern, SymmetryBreaking};
use std::collections::HashMap;
use std::time::Instant;

/// Tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct StarJoinConfig {
    /// Abort (reporting `completed = false`) when materialised relations
    /// exceed this many bytes — the paper's CRASH cells.
    pub memory_cap_bytes: u64,
}

impl Default for StarJoinConfig {
    fn default() -> Self {
        StarJoinConfig {
            memory_cap_bytes: 2 << 30,
        }
    }
}

/// A star join unit: `center` plus the leaves its uncovered edges reach.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Star {
    /// The star's centre pattern vertex.
    pub center: usize,
    /// Leaf pattern vertices (each edge `center–leaf` belongs to this
    /// unit).
    pub leaves: Vec<usize>,
}

/// Decomposes `pattern` into star units covering every edge exactly once:
/// repeatedly take the vertex with the most uncovered incident edges.
pub fn decompose(pattern: &Pattern) -> Vec<Star> {
    let n = pattern.num_vertices();
    let mut covered = vec![vec![false; n]; n];
    let mut stars = Vec::new();
    loop {
        let center = (0..n)
            .max_by_key(|&u| {
                let uncovered = pattern.neighbors(u).filter(|&v| !covered[u][v]).count();
                (uncovered, std::cmp::Reverse(u))
            })
            .unwrap();
        let leaves: Vec<usize> = pattern
            .neighbors(center)
            .filter(|&v| !covered[center][v])
            .collect();
        if leaves.is_empty() {
            break;
        }
        for &l in &leaves {
            covered[center][l] = true;
            covered[l][center] = true;
        }
        stars.push(Star { center, leaves });
    }
    stars
}

/// A materialised match relation over a set of pattern vertices.
struct Relation {
    /// Bound pattern vertices, in tuple-column order.
    vars: Vec<usize>,
    /// Flat tuples, stride `vars.len()`.
    tuples: Vec<VertexId>,
}

impl Relation {
    fn stride(&self) -> usize {
        self.vars.len()
    }

    fn len(&self) -> usize {
        if self.vars.is_empty() {
            0
        } else {
            self.tuples.len() / self.vars.len()
        }
    }

    fn bytes(&self) -> u64 {
        (self.tuples.len() * 4) as u64
    }
}

/// Runs the join-based baseline.
pub fn run(g: &Graph, pattern: &Pattern, config: &StarJoinConfig) -> BaselineOutcome {
    let started = Instant::now();
    let symmetry = SymmetryBreaking::compute(pattern);
    let total_order = TotalOrder::new(g);
    let mut outcome = BaselineOutcome {
        completed: true,
        ..Default::default()
    };

    let stars = decompose(pattern);
    debug_assert!(!stars.is_empty());

    // Join order: keep picking a star sharing a variable with the
    // accumulated relation (exists because the pattern is connected).
    let mut remaining = stars;
    let mut acc = match enumerate_star(
        g,
        &remaining.remove(0),
        &symmetry,
        &total_order,
        config,
        &mut outcome,
    ) {
        Some(rel) => rel,
        None => return abort(outcome, started),
    };
    outcome.shuffled_bytes += acc.bytes(); // the first unit is shuffled too
    outcome.peak_memory_bytes = outcome.peak_memory_bytes.max(acc.bytes());

    while !remaining.is_empty() {
        let idx = remaining
            .iter()
            .position(|s| {
                acc.vars.contains(&s.center) || s.leaves.iter().any(|l| acc.vars.contains(l))
            })
            .expect("connected pattern always has a joinable star");
        let star = remaining.remove(idx);
        let Some(unit) = enumerate_star(g, &star, &symmetry, &total_order, config, &mut outcome)
        else {
            return abort(outcome, started);
        };
        outcome.rounds += 1;
        // Both join inputs are shuffled by key in a MapReduce round.
        outcome.shuffled_bytes += acc.bytes() + unit.bytes();
        let Some(joined) = hash_join(&acc, &unit, &symmetry, &total_order, config, &mut outcome)
        else {
            return abort(outcome, started);
        };
        acc = joined;
        if acc.len() == 0 {
            break;
        }
    }

    outcome.matches = acc.len() as u64;
    outcome.elapsed = started.elapsed();
    outcome
}

fn abort(mut outcome: BaselineOutcome, started: Instant) -> BaselineOutcome {
    outcome.completed = false;
    outcome.elapsed = started.elapsed();
    outcome
}

/// Checks the symmetry constraint between pattern vertices `a` (mapped to
/// `va`) and `b` (mapped to `vb`), plus injectivity.
fn pair_ok(
    symmetry: &SymmetryBreaking,
    order: &TotalOrder,
    a: usize,
    va: VertexId,
    b: usize,
    vb: VertexId,
) -> bool {
    if va == vb {
        return false;
    }
    match symmetry.between(a, b) {
        Some(true) => order.less(va, vb),
        Some(false) => order.less(vb, va),
        None => true,
    }
}

/// Materialises a star unit's match relation. Returns `None` on memory
/// overrun.
fn enumerate_star(
    g: &Graph,
    star: &Star,
    symmetry: &SymmetryBreaking,
    order: &TotalOrder,
    config: &StarJoinConfig,
    outcome: &mut BaselineOutcome,
) -> Option<Relation> {
    let mut vars = vec![star.center];
    vars.extend_from_slice(&star.leaves);
    let mut rel = Relation {
        vars,
        tuples: Vec::new(),
    };
    let k = star.leaves.len();
    let mut assignment: Vec<VertexId> = Vec::with_capacity(k);
    // The cap must be enforced *inside* the per-centre recursion: a
    // single hub can emit billions of tuples before returning.
    let cap_entries = (config.memory_cap_bytes / 4) as usize;
    for center in g.vertices() {
        if g.degree(center) < k {
            continue;
        }
        let ok = assign_leaves(
            g,
            star,
            symmetry,
            order,
            center,
            &mut assignment,
            &mut rel.tuples,
            cap_entries,
        );
        if !ok {
            outcome.peak_memory_bytes = outcome.peak_memory_bytes.max(rel.bytes());
            return None;
        }
    }
    outcome.peak_memory_bytes = outcome.peak_memory_bytes.max(rel.bytes());
    Some(rel)
}

/// Returns false when the entry cap was hit (memory overrun).
#[allow(clippy::too_many_arguments)]
fn assign_leaves(
    g: &Graph,
    star: &Star,
    symmetry: &SymmetryBreaking,
    order: &TotalOrder,
    center: VertexId,
    assignment: &mut Vec<VertexId>,
    out: &mut Vec<VertexId>,
    cap_entries: usize,
) -> bool {
    let depth = assignment.len();
    if depth == star.leaves.len() {
        if out.len() + depth + 1 > cap_entries {
            return false;
        }
        out.push(center);
        out.extend_from_slice(assignment);
        return true;
    }
    let leaf = star.leaves[depth];
    'cand: for &w in g.neighbors(center) {
        if !pair_ok(symmetry, order, star.center, center, leaf, w) {
            continue;
        }
        for (d, &prev) in assignment.iter().enumerate() {
            if !pair_ok(symmetry, order, star.leaves[d], prev, leaf, w) {
                continue 'cand;
            }
        }
        assignment.push(w);
        let ok = assign_leaves(
            g,
            star,
            symmetry,
            order,
            center,
            assignment,
            out,
            cap_entries,
        );
        assignment.pop();
        if !ok {
            return false;
        }
    }
    true
}

/// Approximate per-entry overhead of the probe hash table (key vector,
/// map slot, index list) charged against the memory cap in addition to
/// raw tuple bytes — without this, small-stride relations OOM the host
/// long before their tuple bytes reach the cap.
const HASH_ENTRY_OVERHEAD: u64 = 96;

/// Left-deep hash join with cross-unit injectivity and symmetry filters.
fn hash_join(
    left: &Relation,
    right: &Relation,
    symmetry: &SymmetryBreaking,
    order: &TotalOrder,
    config: &StarJoinConfig,
    outcome: &mut BaselineOutcome,
) -> Option<Relation> {
    // Key = shared pattern vertices; output = left vars ++ right-only vars.
    let key_vars: Vec<usize> = left
        .vars
        .iter()
        .copied()
        .filter(|v| right.vars.contains(v))
        .collect();
    let right_only: Vec<usize> = right
        .vars
        .iter()
        .copied()
        .filter(|v| !left.vars.contains(v))
        .collect();
    let left_key_pos: Vec<usize> = key_vars
        .iter()
        .map(|v| left.vars.iter().position(|x| x == v).unwrap())
        .collect();
    let right_key_pos: Vec<usize> = key_vars
        .iter()
        .map(|v| right.vars.iter().position(|x| x == v).unwrap())
        .collect();
    let right_only_pos: Vec<usize> = right_only
        .iter()
        .map(|v| right.vars.iter().position(|x| x == v).unwrap())
        .collect();

    // Build on the right relation; charge the table overhead first.
    let build_cost = right.bytes() + (right.len() as u64) * HASH_ENTRY_OVERHEAD;
    outcome.peak_memory_bytes = outcome.peak_memory_bytes.max(build_cost);
    if build_cost > config.memory_cap_bytes {
        return None;
    }
    let mut table: HashMap<Vec<VertexId>, Vec<usize>> = HashMap::new();
    for (i, tuple) in right.tuples.chunks(right.stride()).enumerate() {
        let key: Vec<VertexId> = right_key_pos.iter().map(|&p| tuple[p]).collect();
        table.entry(key).or_default().push(i);
    }

    let mut vars = left.vars.clone();
    vars.extend_from_slice(&right_only);
    let mut out = Relation {
        vars,
        tuples: Vec::new(),
    };
    let mut key = Vec::with_capacity(key_vars.len());
    for ltuple in left.tuples.chunks(left.stride()) {
        key.clear();
        key.extend(left_key_pos.iter().map(|&p| ltuple[p]));
        let Some(matches) = table.get(&key) else {
            continue;
        };
        'probe: for &ri in matches {
            let rtuple = &right.tuples[ri * right.stride()..(ri + 1) * right.stride()];
            // Cross filters between left-only and right-only vertices.
            for (lp, &lv) in left.vars.iter().enumerate() {
                if key_vars.contains(&lv) {
                    continue;
                }
                for (ro_idx, &rv) in right_only.iter().enumerate() {
                    let rw = rtuple[right_only_pos[ro_idx]];
                    if !pair_ok(symmetry, order, lv, ltuple[lp], rv, rw) {
                        continue 'probe;
                    }
                }
            }
            out.tuples.extend_from_slice(ltuple);
            out.tuples.extend(right_only_pos.iter().map(|&p| rtuple[p]));
            if out.bytes() > config.memory_cap_bytes {
                outcome.peak_memory_bytes = outcome.peak_memory_bytes.max(out.bytes());
                return None;
            }
        }
    }
    outcome.peak_memory_bytes = outcome.peak_memory_bytes.max(out.bytes());
    Some(out)
}

/// Reorders a counted relation into per-pattern-vertex layout and counts
/// matches — exposed for tests that need the actual match set.
pub fn enumerate_matches(
    g: &Graph,
    pattern: &Pattern,
    config: &StarJoinConfig,
) -> Option<Vec<Vec<VertexId>>> {
    let symmetry = SymmetryBreaking::compute(pattern);
    let total_order = TotalOrder::new(g);
    let mut outcome = BaselineOutcome {
        completed: true,
        ..Default::default()
    };
    let stars = decompose(pattern);
    let mut remaining = stars;
    let mut acc = enumerate_star(
        g,
        &remaining.remove(0),
        &symmetry,
        &total_order,
        config,
        &mut outcome,
    )?;
    while !remaining.is_empty() {
        let idx = remaining
            .iter()
            .position(|s| {
                acc.vars.contains(&s.center) || s.leaves.iter().any(|l| acc.vars.contains(l))
            })
            .expect("joinable star exists");
        let star = remaining.remove(idx);
        let unit = enumerate_star(g, &star, &symmetry, &total_order, config, &mut outcome)?;
        acc = hash_join(&acc, &unit, &symmetry, &total_order, config, &mut outcome)?;
    }
    let n = pattern.num_vertices();
    let mut result = Vec::with_capacity(acc.len());
    for tuple in acc.tuples.chunks(acc.stride()) {
        let mut m = vec![0 as VertexId; n];
        for (pos, &var) in acc.vars.iter().enumerate() {
            m[var] = tuple[pos];
        }
        result.push(m);
    }
    result.sort_unstable();
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use benu_engine::reference;
    use benu_graph::gen;
    use benu_pattern::queries;

    #[test]
    fn decomposition_covers_every_edge_once() {
        for (name, p) in queries::catalogue() {
            let stars = decompose(&p);
            let mut covered = std::collections::HashSet::new();
            for s in &stars {
                for &l in &s.leaves {
                    let e = (s.center.min(l), s.center.max(l));
                    assert!(covered.insert(e), "{name}: edge {e:?} covered twice");
                }
            }
            assert_eq!(covered.len(), p.num_edges(), "{name}: all edges covered");
        }
    }

    #[test]
    fn first_star_is_the_largest() {
        let stars = decompose(&queries::q3());
        assert_eq!(stars[0].center, 4); // the gem's apex
        assert_eq!(stars[0].leaves.len(), 4);
    }

    #[test]
    fn counts_match_reference_on_catalogue() {
        let g = gen::erdos_renyi_gnm(35, 140, 23);
        for (name, p) in queries::catalogue() {
            let expected = reference::count_subgraphs(&g, &p);
            let outcome = run(&g, &p, &StarJoinConfig::default());
            assert!(outcome.completed, "{name}");
            assert_eq!(outcome.matches, expected, "{name}: join vs brute force");
        }
    }

    #[test]
    fn match_sets_equal_reference() {
        let g = gen::erdos_renyi_gnm(25, 90, 31);
        for (name, p) in [("q1", queries::q1()), ("q6", queries::q6())] {
            let sb = SymmetryBreaking::compute(&p);
            let expected = reference::enumerate(&g, &p, &sb);
            let got = enumerate_matches(&g, &p, &StarJoinConfig::default()).unwrap();
            assert_eq!(got, expected, "{name}");
        }
    }

    #[test]
    fn memory_cap_aborts_like_the_papers_crash_cells() {
        let g = gen::complete(50);
        let outcome = run(
            &g,
            &queries::q8(),
            &StarJoinConfig {
                memory_cap_bytes: 50_000,
            },
        );
        assert!(!outcome.completed);
    }

    #[test]
    fn join_shuffles_intermediate_results() {
        let g = gen::barabasi_albert(200, 5, 7);
        let outcome = run(&g, &queries::q1(), &StarJoinConfig::default());
        assert!(outcome.completed);
        // The shuffle volume exceeds the data graph — the paper's core
        // observation about join-based methods.
        assert!(
            outcome.shuffled_bytes > g.adjacency_bytes() as u64,
            "shuffled {} vs graph {}",
            outcome.shuffled_bytes,
            g.adjacency_bytes()
        );
        assert!(outcome.rounds >= 1);
    }

    #[test]
    fn triangle_free_graph_yields_zero() {
        let g = gen::grid(6, 6);
        let outcome = run(&g, &queries::triangle(), &StarJoinConfig::default());
        assert!(outcome.completed);
        assert_eq!(outcome.matches, 0);
    }
}
