//! A BiGJoin-style worst-case-optimal join (Ammar et al. \[13\]).
//!
//! Embeddings are extended one pattern vertex at a time along a connected
//! order. The candidate set of each extension is the intersection of the
//! adjacency sets of the already-bound pattern neighbours (the generic
//! join's `∩`-extension), filtered by injectivity and the same
//! symmetry-breaking order BENU uses.
//!
//! Two execution modes mirror the paper's two BiGJoin configurations:
//!
//! * [`WcojMode::SharedMemory`] — classic BFS: each level's frontier is
//!   fully materialised. Fast, but the frontier of a dense pattern can
//!   exceed memory (the OOM cells of Table VI).
//! * [`WcojMode::Distributed`] — BiGJoin's batching: prefixes are
//!   processed in fixed-size batches (default 100 000, the paper's
//!   setting), bounding memory; every extended batch is accounted as
//!   shuffled bytes (prefixes move between dataflow workers each round).

use crate::order::greedy_connected_order;
use crate::BaselineOutcome;
use benu_graph::view::{self, GraphViews};
use benu_graph::{Graph, TotalOrder, VertexId};
use benu_pattern::{Pattern, SymmetryBreaking};
use std::time::Instant;

/// Execution mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WcojMode {
    /// Full per-level frontier (BiGJoin(S)).
    SharedMemory,
    /// Fixed-size prefix batches (BiGJoin(D)).
    Distributed,
}

/// Tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct WcojConfig {
    /// Execution mode.
    pub mode: WcojMode,
    /// Batch size in prefixes (distributed mode; the paper uses 100 000).
    pub batch_size: usize,
    /// Memory cap in bytes for materialised frontiers; exceeding it aborts
    /// with `completed = false`.
    pub memory_cap_bytes: u64,
    /// Total extension budget (candidate vertices appended across the
    /// whole run); exceeding it aborts with `budget_exceeded = true` —
    /// the deterministic analogue of the paper's `>7200s` timeouts.
    pub work_budget: u64,
}

impl Default for WcojConfig {
    fn default() -> Self {
        WcojConfig {
            mode: WcojMode::Distributed,
            batch_size: 100_000,
            memory_cap_bytes: 4 << 30,
            work_budget: u64::MAX,
        }
    }
}

/// Runs the WCOJ baseline, counting matches of `pattern` in `g`.
pub fn run(g: &Graph, pattern: &Pattern, config: &WcojConfig) -> BaselineOutcome {
    let started = Instant::now();
    let order = greedy_connected_order(pattern);
    let symmetry = SymmetryBreaking::compute(pattern);
    let total_order = TotalOrder::new(g);
    // Same per-vertex representation decision the BENU store makes:
    // dense vertices get bitset blocks, so the ∩-extension shares the
    // engine's block kernels.
    let views = GraphViews::build(g);
    let ctx = Ctx {
        g,
        pattern,
        order: &order,
        symmetry: &symmetry,
        total_order: &total_order,
        views: &views,
        config,
    };

    // Level-0 frontier: every data vertex as a 1-tuple.
    let first: Vec<VertexId> = g.vertices().collect();
    let mut outcome = BaselineOutcome {
        completed: true,
        ..Default::default()
    };
    match config.mode {
        WcojMode::SharedMemory => run_bfs(&ctx, first, &mut outcome),
        WcojMode::Distributed => {
            let mut scratch = Scratch::default();
            // Seed batches of 1-tuples.
            for chunk in first.chunks(config.batch_size.max(1)) {
                if !extend_batch(&ctx, chunk, 1, &mut outcome, &mut scratch) {
                    break;
                }
            }
        }
    }
    outcome.elapsed = started.elapsed();
    outcome
}

struct Ctx<'a> {
    g: &'a Graph,
    pattern: &'a Pattern,
    order: &'a [usize],
    symmetry: &'a SymmetryBreaking,
    total_order: &'a TotalOrder,
    views: &'a GraphViews,
    config: &'a WcojConfig,
}

#[derive(Default)]
struct Scratch {
    candidates: Vec<VertexId>,
    tmp: Vec<VertexId>,
    sources: Vec<VertexId>,
    order_buf: Vec<usize>,
    work: u64,
}

/// Extends the tuples of one level fully before moving to the next
/// (shared-memory BFS).
fn run_bfs(ctx: &Ctx, first: Vec<VertexId>, outcome: &mut BaselineOutcome) {
    let n = ctx.order.len();
    let mut frontier: Vec<VertexId> = first; // stride 1
    let mut scratch = Scratch::default();
    let mut work: u64 = 0;
    for level in 1..n {
        let stride = level;
        let mut next: Vec<VertexId> = Vec::new();
        outcome.rounds += 1;
        for tuple in frontier.chunks(stride) {
            candidates_for(ctx, tuple, level, &mut scratch);
            work += scratch.candidates.len() as u64 + 1;
            if work > ctx.config.work_budget {
                outcome.completed = false;
                outcome.budget_exceeded = true;
                return;
            }
            for &cand in &scratch.candidates {
                next.extend_from_slice(tuple);
                next.push(cand);
            }
            let bytes = (next.len() * 4) as u64;
            if bytes > ctx.config.memory_cap_bytes {
                outcome.completed = false;
                outcome.peak_memory_bytes = outcome.peak_memory_bytes.max(bytes);
                return;
            }
        }
        let bytes = (next.len() * 4) as u64;
        outcome.peak_memory_bytes = outcome.peak_memory_bytes.max(bytes);
        outcome.shuffled_bytes += bytes;
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    outcome.matches = (frontier.len() / n) as u64;
}

/// Distributed mode: recursively extend one batch through the remaining
/// levels, keeping at most `batch_size` prefixes materialised per level.
/// Returns false when the memory cap is exceeded.
fn extend_batch(
    ctx: &Ctx,
    batch: &[VertexId],
    level: usize,
    outcome: &mut BaselineOutcome,
    scratch: &mut Scratch,
) -> bool {
    let n = ctx.order.len();
    if level == n {
        outcome.matches += (batch.len() / n) as u64;
        return true;
    }
    let stride = level;
    outcome.rounds += 1;
    let mut extended: Vec<VertexId> = Vec::new();
    for tuple in batch.chunks(stride) {
        candidates_for(ctx, tuple, level, scratch);
        scratch.work += scratch.candidates.len() as u64 + 1;
        if scratch.work > ctx.config.work_budget {
            outcome.completed = false;
            outcome.budget_exceeded = true;
            return false;
        }
        // Split borrows: candidates computed into scratch.candidates.
        let cands = std::mem::take(&mut scratch.candidates);
        for &cand in &cands {
            extended.extend_from_slice(tuple);
            extended.push(cand);
        }
        scratch.candidates = cands;
    }
    let bytes = (extended.len() * 4) as u64;
    // Each extension round ships the new prefixes between workers.
    outcome.shuffled_bytes += bytes;
    let live = bytes + (batch.len() * 4) as u64;
    outcome.peak_memory_bytes = outcome.peak_memory_bytes.max(live);
    if live > ctx.config.memory_cap_bytes {
        outcome.completed = false;
        return false;
    }
    let next_stride = level + 1;
    let chunk_tuples = ctx.config.batch_size.max(1) * next_stride;
    for chunk in extended.chunks(chunk_tuples) {
        if !extend_batch(ctx, chunk, next_stride, outcome, scratch) {
            return false;
        }
    }
    true
}

/// Candidate set for extending `tuple` (bindings of `order[..level]`) with
/// `order[level]`.
fn candidates_for(ctx: &Ctx, tuple: &[VertexId], level: usize, scratch: &mut Scratch) {
    let u = ctx.order[level];
    scratch.sources.clear();
    scratch.sources.extend(
        ctx.order[..level]
            .iter()
            .enumerate()
            .filter(|&(_, &v)| ctx.pattern.has_edge(u, v))
            .map(|(i, _)| tuple[i]),
    );
    debug_assert!(
        !scratch.sources.is_empty(),
        "connected order guarantees a bound neighbour"
    );
    let mut candidates = std::mem::take(&mut scratch.candidates);
    let sources = &scratch.sources;
    view::intersect_many_by(
        sources.len(),
        |i| ctx.views.view(ctx.g, sources[i]),
        &mut scratch.order_buf,
        &mut candidates,
        &mut scratch.tmp,
    );
    // Injectivity and symmetry filters.
    candidates.retain(|&cand| {
        for (i, &v) in ctx.order[..level].iter().enumerate() {
            if tuple[i] == cand {
                return false;
            }
            match ctx.symmetry.between(v, u) {
                Some(true) if !ctx.total_order.less(tuple[i], cand) => return false,
                Some(false) if !ctx.total_order.less(cand, tuple[i]) => return false,
                _ => {}
            }
        }
        true
    });
    scratch.candidates = candidates;
}

#[cfg(test)]
mod tests {
    use super::*;
    use benu_engine::reference;
    use benu_graph::gen;
    use benu_pattern::queries;

    fn check_counts(g: &Graph, pattern: &Pattern, name: &str) {
        let expected = reference::count_subgraphs(g, pattern);
        for mode in [WcojMode::SharedMemory, WcojMode::Distributed] {
            let outcome = run(
                g,
                pattern,
                &WcojConfig {
                    mode,
                    batch_size: 64,
                    ..Default::default()
                },
            );
            assert!(outcome.completed);
            assert_eq!(outcome.matches, expected, "{name} {mode:?}");
        }
    }

    #[test]
    fn counts_match_reference_on_catalogue() {
        let g = gen::erdos_renyi_gnm(40, 160, 17);
        for (name, p) in queries::catalogue() {
            check_counts(&g, &p, name);
        }
    }

    #[test]
    fn counts_match_on_clustered_graph() {
        let g = gen::chung_lu_power_law(benu_graph::gen::PowerLawConfig {
            n: 50,
            m: 200,
            gamma: 2.3,
            clustering: 0.5,
            seed: 2,
        });
        for (name, p) in [("triangle", queries::triangle()), ("q4", queries::q4())] {
            check_counts(&g, &p, name);
        }
    }

    #[test]
    fn shared_memory_mode_can_oom() {
        let g = gen::complete(40);
        let outcome = run(
            &g,
            &queries::clique(5),
            &WcojConfig {
                mode: WcojMode::SharedMemory,
                batch_size: 1000,
                memory_cap_bytes: 10_000,
                ..Default::default()
            },
        );
        assert!(!outcome.completed, "tiny cap must trip on K40 frontiers");
        assert!(outcome.peak_memory_bytes > 10_000);
    }

    #[test]
    fn distributed_mode_bounds_memory() {
        let g = gen::complete(25);
        let shared = run(
            &g,
            &queries::clique(4),
            &WcojConfig {
                mode: WcojMode::SharedMemory,
                ..Default::default()
            },
        );
        let dist = run(
            &g,
            &queries::clique(4),
            &WcojConfig {
                mode: WcojMode::Distributed,
                batch_size: 100,
                ..Default::default()
            },
        );
        assert_eq!(shared.matches, dist.matches);
        assert!(
            dist.peak_memory_bytes < shared.peak_memory_bytes,
            "batching must cap the frontier ({} vs {})",
            dist.peak_memory_bytes,
            shared.peak_memory_bytes
        );
    }

    #[test]
    fn shuffle_volume_grows_with_pattern_density() {
        let g = gen::barabasi_albert(150, 6, 3);
        let tri = run(&g, &queries::triangle(), &WcojConfig::default());
        let q4 = run(&g, &queries::q4(), &WcojConfig::default());
        assert!(tri.completed && q4.completed);
        assert!(q4.shuffled_bytes > tri.shuffled_bytes);
    }

    #[test]
    fn empty_frontier_terminates_early() {
        // A triangle-free graph has no K3 matches.
        let g = gen::grid(5, 5);
        let outcome = run(&g, &queries::triangle(), &WcojConfig::default());
        assert!(outcome.completed);
        assert_eq!(outcome.matches, 0);
    }
}
