//! Caching layers of BENU's efficient implementation (paper §V-A).
//!
//! * [`DbCache`] — the per-machine in-memory *database cache* holding
//!   adjacency sets fetched from the distributed store. Shared by all
//!   worker threads of a machine, byte-budgeted, LRU-evicted; it exploits
//!   both intra-task locality (backtracking revisits the same
//!   neighbourhood) and inter-task locality (hot high-degree vertices are
//!   queried by many tasks) to trade memory for communication.
//! * [`TriangleCache`] — the per-thread cache behind TRC instructions,
//!   keyed by a data edge `[f_i, f_j]` and holding the triangle set
//!   `Γ(f_i) ∩ Γ(f_j)`.
//! * [`lru::Lru`] — the shared LRU core, cost-budgeted with per-entry
//!   costs (bytes for adjacency sets, entry counts for triangles).

pub mod lru;

use benu_graph::{AdjSet, VertexId};
use benu_obs::{safe_ratio, Counter, Registry};
use lru::Lru;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fixed per-entry bookkeeping overhead charged against the byte budget
/// (key + pointers + map slot), so a cache full of tiny sets cannot hold
/// an unbounded number of entries.
pub const ENTRY_OVERHEAD_BYTES: usize = 48;

/// Snapshot of cache effectiveness counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the key.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when the cache was never queried (the
    /// workspace-wide [`safe_ratio`] convention — never NaN or ∞).
    pub fn hit_rate(&self) -> f64 {
        safe_ratio(self.hits as f64, (self.hits + self.misses) as f64)
    }
}

/// Registry handles for one cache tier (`cache.{tier}.hits` / `.misses`
/// / `.evictions`). Shared caches record on the hot path; per-thread
/// caches record their [`CacheStats`] in bulk at merge time via
/// [`CacheObs::record_stats`].
#[derive(Clone, Debug)]
pub struct CacheObs {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
}

impl CacheObs {
    /// Registers the three counters of `tier` (e.g. `"db"`,
    /// `"triangle"`, `"clique"`).
    pub fn register(registry: &Registry, tier: &str) -> Self {
        CacheObs {
            hits: registry.counter(&format!("cache.{tier}.hits")),
            misses: registry.counter(&format!("cache.{tier}.misses")),
            evictions: registry.counter(&format!("cache.{tier}.evictions")),
        }
    }

    /// Adds a whole [`CacheStats`] delta at once (per-thread caches are
    /// merged at thread exit, not per lookup).
    pub fn record_stats(&self, stats: &CacheStats) {
        self.hits.add(stats.hits);
        self.misses.add(stats.misses);
        self.evictions.add(stats.evictions);
    }
}

/// The per-machine database cache: a sharded, byte-budgeted LRU over
/// adjacency sets, safe to share across worker threads.
#[derive(Debug)]
pub struct DbCache {
    shards: Vec<Mutex<Lru<VertexId, Arc<AdjSet>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    obs: Option<CacheObs>,
}

impl DbCache {
    /// Creates a cache with a total byte budget split evenly across
    /// `num_shards` internal shards (shard count only affects lock
    /// contention, not semantics). A zero budget disables caching: every
    /// lookup misses and nothing is retained.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero.
    pub fn new(capacity_bytes: usize, num_shards: usize) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        let per_shard = capacity_bytes / num_shards;
        DbCache {
            shards: (0..num_shards)
                .map(|_| Mutex::new(Lru::new(per_shard as u64)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            obs: None,
        }
    }

    /// Attaches registry handles (tier counters) recorded alongside the
    /// cache's own stats. Must be called before the cache is shared.
    /// Unlike [`DbCache::clear`]-reset local stats, the registry
    /// counters are monotonic for the registry's lifetime.
    pub fn attach_obs(&mut self, obs: CacheObs) {
        self.obs = Some(obs);
    }

    fn shard_of(&self, v: VertexId) -> usize {
        // Multiplicative hash spreads consecutive ids across shards.
        (v.wrapping_mul(0x9E37_79B9) as usize >> 16) % self.shards.len()
    }

    /// Looks up `v`, counting a hit or miss.
    pub fn get(&self, v: VertexId) -> Option<Arc<AdjSet>> {
        let mut shard = self.shards[self.shard_of(v)].lock();
        match shard.get(&v) {
            Some(adj) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                let adj = Arc::clone(adj);
                drop(shard);
                if let Some(obs) = &self.obs {
                    obs.hits.inc();
                }
                Some(adj)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                drop(shard);
                if let Some(obs) = &self.obs {
                    obs.misses.inc();
                }
                None
            }
        }
    }

    /// True when `v` is currently cached. Unlike [`DbCache::get`] this
    /// does not count a hit or miss and does not touch recency — it is a
    /// pure peek, used by prefetchers deciding what to fetch without
    /// distorting the effectiveness statistics.
    pub fn contains(&self, v: VertexId) -> bool {
        self.shards[self.shard_of(v)].lock().peek(&v).is_some()
    }

    /// Inserts the adjacency set of `v`, evicting LRU entries as needed.
    pub fn insert(&self, v: VertexId, adj: Arc<AdjSet>) {
        let cost = (adj.size_bytes() + ENTRY_OVERHEAD_BYTES) as u64;
        let mut shard = self.shards[self.shard_of(v)].lock();
        let evicted = shard.insert(v, adj, cost);
        drop(shard);
        if evicted > 0 {
            self.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
            if let Some(obs) = &self.obs {
                obs.evictions.add(evicted as u64);
            }
        }
    }

    /// Fetches via the cache, calling `fetch` on a miss and caching its
    /// result. This is the DBQ fast path: `fetch` runs without holding
    /// the shard lock, so a slow store query does not serialise unrelated
    /// threads.
    pub fn get_or_fetch<E>(
        &self,
        v: VertexId,
        fetch: impl FnOnce() -> Result<Arc<AdjSet>, E>,
    ) -> Result<Arc<AdjSet>, E> {
        if let Some(adj) = self.get(v) {
            return Ok(adj);
        }
        let adj = fetch()?;
        self.insert(v, Arc::clone(&adj));
        Ok(adj)
    }

    /// Effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Bytes currently held (cost units including entry overhead).
    pub fn used_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().used_cost()).sum()
    }

    /// Number of cached adjacency sets.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and resets the counters.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

/// The per-thread triangle cache behind TRC instructions: maps a data
/// edge (endpoints normalised to `min, max`) to the shared triangle set
/// `Γ(a) ∩ Γ(b)`. Entry-count budgeted.
#[derive(Debug)]
pub struct TriangleCache {
    lru: Lru<(VertexId, VertexId), Arc<Vec<VertexId>>>,
    hits: u64,
    misses: u64,
}

impl TriangleCache {
    /// Creates a cache holding at most `max_entries` triangle sets.
    pub fn new(max_entries: usize) -> Self {
        TriangleCache {
            lru: Lru::new(max_entries as u64),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up the triangle set of edge `(a, b)` or computes and caches
    /// it.
    pub fn get_or_compute(
        &mut self,
        a: VertexId,
        b: VertexId,
        compute: impl FnOnce() -> Vec<VertexId>,
    ) -> Arc<Vec<VertexId>> {
        let key = (a.min(b), a.max(b));
        if let Some(v) = self.lru.get(&key) {
            self.hits += 1;
            return Arc::clone(v);
        }
        self.misses += 1;
        let value = Arc::new(compute());
        self.lru.insert(key, Arc::clone(&value), 1);
        value
    }

    /// Like [`TriangleCache::get_or_compute`] but hands the triangle set
    /// to `use_set` by borrow instead of returning an `Arc` clone — the
    /// zero-refcount-traffic path for callers that only read the set
    /// (e.g. the engine's filtered TRC arm). Works at capacity 0 too:
    /// the computed set is used before the (rejected) insert.
    pub fn with_or_compute<R>(
        &mut self,
        a: VertexId,
        b: VertexId,
        compute: impl FnOnce() -> Vec<VertexId>,
        use_set: impl FnOnce(&[VertexId]) -> R,
    ) -> R {
        let key = (a.min(b), a.max(b));
        if let Some(v) = self.lru.get(&key) {
            self.hits += 1;
            return use_set(v);
        }
        self.misses += 1;
        let value = compute();
        let r = use_set(&value);
        self.lru.insert(key, Arc::new(value), 1);
        r
    }

    /// Effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: 0,
        }
    }

    /// Number of cached triangle sets.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.lru.len() == 0
    }

    /// Drops all entries (counters are kept; they are per-run metrics).
    pub fn clear(&mut self) {
        self.lru.clear();
    }
}

/// The per-thread *clique cache* — the paper's proposed generalization of
/// the triangle cache (§IV-B: "The triangle cache technique could be
/// extended to other kinds of frequent motifs, like cliques"). Maps a
/// sorted k-tuple of data vertices (a k-clique instance) to the shared
/// common-neighbour set `∩_i Γ(v_i)`, i.e. the vertices completing a
/// (k+1)-clique. Entry-count budgeted, since clique sets are far more
/// numerous than triangle sets.
#[derive(Debug)]
pub struct CliqueCache {
    lru: Lru<Vec<VertexId>, Arc<Vec<VertexId>>>,
    hits: u64,
    misses: u64,
}

impl CliqueCache {
    /// Creates a cache holding at most `max_entries` clique sets.
    pub fn new(max_entries: usize) -> Self {
        CliqueCache {
            lru: Lru::new(max_entries as u64),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up the common-neighbour set of the clique `key` (must be
    /// sorted ascending) or computes and caches it.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `key` is not sorted.
    pub fn get_or_compute(
        &mut self,
        key: &[VertexId],
        compute: impl FnOnce() -> Vec<VertexId>,
    ) -> Arc<Vec<VertexId>> {
        debug_assert!(
            key.windows(2).all(|w| w[0] < w[1]),
            "clique key must be sorted"
        );
        // Borrow-generic LRU lookup: probing with the slice key directly
        // avoids allocating an owned `Vec` per lookup (the owned key is
        // only materialised on the miss path, where it must be stored).
        if let Some(v) = self.lru.get(key) {
            self.hits += 1;
            return Arc::clone(v);
        }
        self.misses += 1;
        let value = Arc::new(compute());
        self.lru.insert(key.to_vec(), Arc::clone(&value), 1);
        value
    }

    /// Like [`CliqueCache::get_or_compute`] but hands the clique set to
    /// `use_set` by borrow instead of returning an `Arc` clone. The hit
    /// path performs no allocation at all (slice-keyed lookup, no
    /// refcount traffic); the owned key is cloned only on a miss.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `key` is not sorted.
    pub fn with_or_compute<R>(
        &mut self,
        key: &[VertexId],
        compute: impl FnOnce() -> Vec<VertexId>,
        use_set: impl FnOnce(&[VertexId]) -> R,
    ) -> R {
        debug_assert!(
            key.windows(2).all(|w| w[0] < w[1]),
            "clique key must be sorted"
        );
        if let Some(v) = self.lru.get(key) {
            self.hits += 1;
            return use_set(v);
        }
        self.misses += 1;
        let value = compute();
        let r = use_set(&value);
        self.lru.insert(key.to_vec(), Arc::new(value), 1);
        r
    }

    /// Effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: 0,
        }
    }

    /// Number of cached clique sets.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.lru.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adj(ids: &[u32]) -> Arc<AdjSet> {
        Arc::new(AdjSet::from_unsorted(ids.to_vec()))
    }

    #[test]
    fn db_cache_hits_after_insert() {
        let cache = DbCache::new(1 << 20, 4);
        assert!(cache.get(7).is_none());
        cache.insert(7, adj(&[1, 2, 3]));
        assert_eq!(cache.get(7).unwrap().as_slice(), &[1, 2, 3]);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = DbCache::new(0, 2);
        cache.insert(1, adj(&[2]));
        assert!(cache.get(1).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn byte_budget_is_respected_under_pressure() {
        let capacity = 4096;
        let cache = DbCache::new(capacity, 1);
        for v in 0..200u32 {
            cache.insert(v, adj(&[v, v + 1, v + 2, v + 3]));
        }
        assert!(cache.used_bytes() <= capacity as u64);
        assert!(cache.stats().evictions > 0);
        assert!(cache.len() < 200);
    }

    #[test]
    fn get_or_fetch_fetches_once() {
        let cache = DbCache::new(1 << 16, 2);
        let mut calls = 0;
        for _ in 0..3 {
            let got: Result<_, ()> = cache.get_or_fetch(9, || {
                calls += 1;
                Ok(adj(&[4, 5]))
            });
            assert_eq!(got.unwrap().as_slice(), &[4, 5]);
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn get_or_fetch_propagates_errors_without_caching() {
        let cache = DbCache::new(1 << 16, 1);
        let got: Result<Arc<AdjSet>, &str> = cache.get_or_fetch(3, || Err("db down"));
        assert_eq!(got.unwrap_err(), "db down");
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_resets_everything() {
        let cache = DbCache::new(1 << 16, 2);
        cache.insert(1, adj(&[9]));
        cache.get(1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn triangle_cache_normalises_edge_order() {
        let mut tc = TriangleCache::new(16);
        let first = tc.get_or_compute(5, 2, || vec![10, 11]);
        let second = tc.get_or_compute(2, 5, || panic!("must hit"));
        assert_eq!(first, second);
        assert_eq!(tc.stats().hits, 1);
        assert_eq!(tc.len(), 1);
    }

    #[test]
    fn triangle_cache_evicts_at_capacity() {
        let mut tc = TriangleCache::new(2);
        tc.get_or_compute(0, 1, || vec![1]);
        tc.get_or_compute(0, 2, || vec![2]);
        tc.get_or_compute(0, 3, || vec![3]); // evicts (0,1)
        assert_eq!(tc.len(), 2);
        let mut recomputed = false;
        tc.get_or_compute(0, 1, || {
            recomputed = true;
            vec![1]
        });
        assert!(recomputed);
    }

    #[test]
    fn clique_cache_hits_on_repeated_key() {
        let mut cc = CliqueCache::new(8);
        let a = cc.get_or_compute(&[1, 5, 9], || vec![10, 20]);
        let b = cc.get_or_compute(&[1, 5, 9], || panic!("must hit"));
        assert_eq!(a, b);
        assert_eq!(cc.stats().hits, 1);
        assert_eq!(cc.len(), 1);
    }

    #[test]
    fn clique_cache_distinguishes_arity() {
        let mut cc = CliqueCache::new(8);
        cc.get_or_compute(&[1, 2], || vec![3]);
        let three = cc.get_or_compute(&[1, 2, 3], || vec![4]);
        assert_eq!(*three, vec![4]);
        assert_eq!(cc.len(), 2);
    }

    #[test]
    fn clique_cache_evicts_at_capacity() {
        let mut cc = CliqueCache::new(2);
        cc.get_or_compute(&[0, 1, 2], || vec![9]);
        cc.get_or_compute(&[0, 1, 3], || vec![9]);
        cc.get_or_compute(&[0, 1, 4], || vec![9]);
        assert_eq!(cc.len(), 2);
        let mut recomputed = false;
        cc.get_or_compute(&[0, 1, 2], || {
            recomputed = true;
            vec![9]
        });
        assert!(recomputed);
    }

    #[test]
    fn triangle_with_or_compute_borrows_without_arc_clone() {
        let mut tc = TriangleCache::new(4);
        let arc = tc.get_or_compute(1, 2, || vec![7, 8]);
        assert_eq!(Arc::strong_count(&arc), 2); // caller + cache
        let sum: u32 = tc.with_or_compute(2, 1, || panic!("must hit"), |s| s.iter().sum());
        assert_eq!(sum, 15);
        assert_eq!(Arc::strong_count(&arc), 2, "borrow path clones no Arc");
        assert_eq!(tc.stats().hits, 1);
    }

    #[test]
    fn triangle_with_or_compute_works_at_zero_capacity() {
        let mut tc = TriangleCache::new(0);
        let len = tc.with_or_compute(3, 4, || vec![1, 2, 3], |s| s.len());
        assert_eq!(len, 3);
        assert!(tc.is_empty(), "oversized entry is not retained");
        // Second call recomputes (nothing was cached).
        let mut recomputed = false;
        tc.with_or_compute(
            3,
            4,
            || {
                recomputed = true;
                vec![1, 2, 3]
            },
            |_| (),
        );
        assert!(recomputed);
    }

    #[test]
    fn clique_with_or_compute_hits_via_slice_key() {
        let mut cc = CliqueCache::new(8);
        cc.get_or_compute(&[2, 4, 6], || vec![9, 10]);
        let n = cc.with_or_compute(&[2, 4, 6], || panic!("must hit"), |s| s.len());
        assert_eq!(n, 2);
        assert_eq!(cc.stats().hits, 1);
        // A miss through the borrow API still populates the cache.
        let n = cc.with_or_compute(&[1, 3], || vec![5], |s| s.len());
        assert_eq!(n, 1);
        assert_eq!(cc.len(), 2);
        cc.get_or_compute(&[1, 3], || panic!("cached by with_or_compute"));
    }

    #[test]
    fn hit_rate_uses_safe_ratio_zero_on_idle_cache() {
        // Regression for the unified ratio convention: an unqueried cache
        // reports 0.0, never NaN.
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert!(stats.hit_rate().is_finite());
    }

    #[test]
    fn attached_obs_mirrors_db_cache_counters() {
        let registry = benu_obs::Registry::new();
        let mut cache = DbCache::new(1 << 16, 2);
        cache.attach_obs(CacheObs::register(&registry, "db"));
        cache.get(7); // miss
        cache.insert(7, adj(&[1, 2]));
        cache.get(7); // hit
        assert_eq!(registry.counter("cache.db.hits").get(), 1);
        assert_eq!(registry.counter("cache.db.misses").get(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn per_thread_tiers_record_stats_in_bulk() {
        let registry = benu_obs::Registry::new();
        let obs = CacheObs::register(&registry, "triangle");
        let mut tc = TriangleCache::new(4);
        tc.get_or_compute(1, 2, || vec![3]);
        tc.get_or_compute(2, 1, || unreachable!());
        obs.record_stats(&tc.stats());
        assert_eq!(registry.counter("cache.triangle.hits").get(), 1);
        assert_eq!(registry.counter("cache.triangle.misses").get(), 1);
    }

    #[test]
    fn db_cache_is_shareable_across_threads() {
        let cache = Arc::new(DbCache::new(1 << 20, 8));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u32 {
                    let v = (t * 500 + i) % 700;
                    if cache.get(v).is_none() {
                        cache.insert(v, Arc::new(AdjSet::from_sorted(vec![v])));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 2000);
    }
}
