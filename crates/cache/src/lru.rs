//! A cost-budgeted LRU core.
//!
//! Classic intrusive doubly-linked list over a slab, indexed by a hash
//! map, with caller-supplied per-entry costs. Used with byte costs by the
//! database cache and entry counts by the triangle cache.
//!
//! An entry whose cost alone exceeds the whole budget is rejected at
//! insert (never cached) — matching the intuition that a single adjacency
//! set larger than the configured cache should not wipe the cache.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    cost: u64,
    prev: usize,
    next: usize,
}

/// A least-recently-used cache with a total cost budget.
#[derive(Debug)]
pub struct Lru<K: Eq + Hash + Clone, V> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: u64,
    used: u64,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// Creates a cache with the given total cost budget.
    pub fn new(capacity: u64) -> Self {
        Lru {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            used: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Sum of entry costs currently held.
    pub fn used_cost(&self) -> u64 {
        self.used
    }

    /// The configured budget.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up a key, promoting it to most-recently-used on a hit.
    ///
    /// Borrow-generic like `HashMap::get`, so a `Lru<Vec<T>, V>` can be
    /// probed with a `&[T]` — the clique cache relies on this to look up
    /// slice keys without allocating an owned key per probe.
    pub fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        let idx = *self.map.get(key)?;
        if idx != self.head {
            self.detach(idx);
            self.push_front(idx);
        }
        Some(&self.nodes[idx].value)
    }

    /// Peeks without promoting (borrow-generic like [`Lru::get`]).
    pub fn peek<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.map.get(key).map(|&idx| &self.nodes[idx].value)
    }

    /// Inserts (or replaces) an entry with the given cost, evicting from
    /// the LRU end until the budget holds. Returns the number of entries
    /// evicted. Oversized entries (cost > capacity) are not cached.
    pub fn insert(&mut self, key: K, value: V, cost: u64) -> usize {
        if let Some(&idx) = self.map.get(&key) {
            // Replace in place; adjust cost accounting.
            self.used = self.used - self.nodes[idx].cost + cost;
            self.nodes[idx].value = value;
            self.nodes[idx].cost = cost;
            if idx != self.head {
                self.detach(idx);
                self.push_front(idx);
            }
            return self.evict_to_budget();
        }
        if cost > self.capacity {
            return 0;
        }
        let idx = if let Some(idx) = self.free.pop() {
            self.nodes[idx] = Node {
                key: key.clone(),
                value,
                cost,
                prev: NIL,
                next: NIL,
            };
            idx
        } else {
            self.nodes.push(Node {
                key: key.clone(),
                value,
                cost,
                prev: NIL,
                next: NIL,
            });
            self.nodes.len() - 1
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        self.used += cost;
        self.evict_to_budget()
    }

    fn evict_to_budget(&mut self) -> usize {
        let mut evicted = 0;
        while self.used > self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "cost accounting out of sync");
            self.detach(victim);
            self.used -= self.nodes[victim].cost;
            self.map.remove(&self.nodes[victim].key);
            self.free.push(victim);
            evicted += 1;
        }
        evicted
    }

    /// Removes a specific key; returns true if it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        let Some(idx) = self.map.remove(key) else {
            return false;
        };
        self.detach(idx);
        self.used -= self.nodes[idx].cost;
        self.free.push(idx);
        true
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.used = 0;
    }

    /// The least-recently-used key, if any (test/diagnostic hook).
    pub fn lru_key(&self) -> Option<&K> {
        (self.tail != NIL).then(|| &self.nodes[self.tail].key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used_first() {
        let mut lru: Lru<u32, u32> = Lru::new(3);
        lru.insert(1, 10, 1);
        lru.insert(2, 20, 1);
        lru.insert(3, 30, 1);
        // Touch 1 so 2 becomes LRU.
        assert_eq!(lru.get(&1), Some(&10));
        let evicted = lru.insert(4, 40, 1);
        assert_eq!(evicted, 1);
        assert!(lru.peek(&2).is_none());
        assert_eq!(lru.peek(&1), Some(&10));
    }

    #[test]
    fn cost_accounting_with_mixed_sizes() {
        let mut lru: Lru<u32, ()> = Lru::new(10);
        lru.insert(1, (), 4);
        lru.insert(2, (), 4);
        assert_eq!(lru.used_cost(), 8);
        // Inserting cost 6 evicts both 1 and 2 (LRU order).
        let evicted = lru.insert(3, (), 6);
        assert_eq!(evicted, 1); // 8 + 6 = 14 > 10 → evict 1 (cost 4) → 10 ok
        assert_eq!(lru.used_cost(), 10);
        assert!(lru.peek(&1).is_none());
        assert!(lru.peek(&2).is_some());
    }

    #[test]
    fn oversized_entries_are_rejected() {
        let mut lru: Lru<u32, ()> = Lru::new(5);
        lru.insert(1, (), 2);
        lru.insert(2, (), 9); // larger than the whole budget
        assert!(lru.peek(&2).is_none());
        assert!(lru.peek(&1).is_some());
        assert_eq!(lru.used_cost(), 2);
    }

    #[test]
    fn replace_updates_cost() {
        let mut lru: Lru<u32, u32> = Lru::new(10);
        lru.insert(1, 10, 3);
        lru.insert(1, 11, 7);
        assert_eq!(lru.used_cost(), 7);
        assert_eq!(lru.get(&1), Some(&11));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn remove_and_reuse_slots() {
        let mut lru: Lru<u32, u32> = Lru::new(100);
        lru.insert(1, 1, 1);
        lru.insert(2, 2, 1);
        assert!(lru.remove(&1));
        assert!(!lru.remove(&1));
        lru.insert(3, 3, 1);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.used_cost(), 2);
        assert_eq!(lru.get(&2), Some(&2));
        assert_eq!(lru.get(&3), Some(&3));
    }

    #[test]
    fn lru_key_tracks_tail() {
        let mut lru: Lru<u32, ()> = Lru::new(10);
        assert!(lru.lru_key().is_none());
        lru.insert(1, (), 1);
        lru.insert(2, (), 1);
        assert_eq!(lru.lru_key(), Some(&1));
        lru.get(&1);
        assert_eq!(lru.lru_key(), Some(&2));
    }

    #[test]
    fn borrowed_key_lookup_matches_owned_key() {
        let mut lru: Lru<Vec<u32>, u32> = Lru::new(10);
        lru.insert(vec![1, 2, 3], 42, 1);
        // Probe with a slice — no owned Vec key needed.
        let key: &[u32] = &[1, 2, 3];
        assert_eq!(lru.peek(key), Some(&42));
        assert_eq!(lru.get(key), Some(&42));
        let missing: &[u32] = &[1, 2];
        assert_eq!(lru.get(missing), None);
    }

    #[test]
    fn clear_empties_cache() {
        let mut lru: Lru<u32, ()> = Lru::new(10);
        lru.insert(1, (), 1);
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.used_cost(), 0);
        assert!(lru.get(&1).is_none());
    }

    #[test]
    fn stress_random_ops_stay_within_budget() {
        // Deterministic pseudo-random workload.
        let mut lru: Lru<u32, u32> = Lru::new(64);
        let mut state = 0x12345678u32;
        for _ in 0..10_000 {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            let key = state % 97;
            let cost = 1 + (state >> 8) % 9;
            if state % 3 == 0 {
                lru.get(&key);
            } else {
                lru.insert(key, state, cost as u64);
            }
            assert!(lru.used_cost() <= 64);
        }
    }
}
