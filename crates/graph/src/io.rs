//! SNAP-style edge-list IO.
//!
//! The paper's datasets ship as whitespace-separated edge lists with `#`
//! comment lines (the SNAP convention). [`read_edge_list`] parses that
//! format from any reader; [`write_edge_list`] emits it. Vertex ids are
//! renumbered densely in first-appearance order when `renumber` is set,
//! matching the paper's assumption of consecutively numbered vertices.

use crate::{Graph, GraphBuilder, VertexId};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors produced while parsing an edge list.
#[derive(Debug)]
pub enum IoError {
    /// Underlying IO failure.
    Io(io::Error),
    /// A data line did not contain two integer ids.
    Parse { line_no: usize, line: String },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line_no, line } => {
                write!(f, "cannot parse edge on line {line_no}: {line:?}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads a SNAP-style edge list. Lines starting with `#` or `%` and blank
/// lines are skipped. If `renumber` is true, ids are remapped densely in
/// first-appearance order; otherwise raw ids are used directly.
pub fn read_edge_list<R: Read>(reader: R, renumber: bool) -> Result<Graph, IoError> {
    let reader = BufReader::new(reader);
    let mut builder = GraphBuilder::new();
    let mut remap: HashMap<u64, VertexId> = HashMap::new();
    let mut next_id: VertexId = 0;
    let mut map = |raw: u64, remap: &mut HashMap<u64, VertexId>| -> VertexId {
        if renumber {
            *remap.entry(raw).or_insert_with(|| {
                let id = next_id;
                next_id += 1;
                id
            })
        } else {
            raw as VertexId
        }
    };
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| tok.and_then(|t| t.parse::<u64>().ok());
        match (parse(it.next()), parse(it.next())) {
            (Some(u), Some(v)) => {
                let u = map(u, &mut remap);
                let v = map(v, &mut remap);
                builder.add_edge(u, v);
            }
            _ => {
                return Err(IoError::Parse {
                    line_no: line_no + 1,
                    line: trimmed.to_string(),
                })
            }
        }
    }
    Ok(builder.build())
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file(path: impl AsRef<Path>, renumber: bool) -> Result<Graph, IoError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file, renumber)
}

/// Writes the graph as a SNAP-style edge list (one `u v` pair per line,
/// `u < v`).
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> io::Result<()> {
    writeln!(
        writer,
        "# benu edge list: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(writer, "{u}\t{v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_snap_format_with_comments() {
        let text = "# comment\n% also comment\n0 1\n1\t2\n\n2 0\n";
        let g = read_edge_list(text.as_bytes(), false).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn renumbers_sparse_ids() {
        let text = "1000 42\n42 7\n";
        let g = read_edge_list(text.as_bytes(), true).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        // 1000 -> 0, 42 -> 1, 7 -> 2
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn reports_parse_error_with_line_number() {
        let text = "0 1\noops\n";
        let err = read_edge_list(text.as_bytes(), false).unwrap_err();
        match err {
            IoError::Parse { line_no, .. } => assert_eq!(line_no, 2),
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn roundtrip() {
        let g = crate::gen::erdos_renyi_gnm(50, 120, 3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), false).unwrap();
        assert_eq!(g, g2);
    }
}
