//! The data graph `G` in compressed sparse row (CSR) form.
//!
//! The paper assumes undirected, unlabeled *simple* graphs with vertices
//! numbered consecutively. [`GraphBuilder`] normalises arbitrary edge input
//! (drops self-loops and duplicate edges) and produces a [`Graph`] whose
//! adjacency sets are sorted — the exact value layout stored in the
//! distributed key-value store.

use crate::{AdjSet, Edge, VertexId};

/// An immutable undirected simple graph in CSR form.
///
/// Adjacency of vertex `v` occupies `adj[offsets[v] .. offsets[v + 1]]` and
/// is sorted ascending. Vertices are `0 .. num_vertices()`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    adj: Vec<VertexId>,
    num_edges: usize,
}

impl Graph {
    /// Builds a graph from an edge list; convenience wrapper over
    /// [`GraphBuilder`]. The vertex count is inferred as `max id + 1`.
    pub fn from_edges(edges: impl IntoIterator<Item = Edge>) -> Self {
        let mut b = GraphBuilder::new();
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Number of vertices `N = |V(G)|` (isolated vertices included).
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `M = |E(G)|`.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// The sorted adjacency set `Γ_G(v)` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The degree `d_G(v)`.
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(v as VertexId))
            .max()
            .unwrap_or(0)
    }

    /// Edge membership test (binary search in the smaller endpoint's set).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u as usize >= self.num_vertices() || v as usize >= self.num_vertices() {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over undirected edges with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Clones `Γ_G(v)` into an owned [`AdjSet`] (the KV-store value).
    pub fn adj_set(&self, v: VertexId) -> AdjSet {
        AdjSet::from_sorted(self.neighbors(v).to_vec())
    }

    /// Total size of all adjacency sets in bytes — the "size of the data
    /// graph" used for relative cache-capacity accounting in Exp-3.
    pub fn adjacency_bytes(&self) -> usize {
        self.adj.len() * std::mem::size_of::<VertexId>()
    }
}

/// Incremental builder that normalises input into a simple graph.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    edges: Vec<Edge>,
    num_vertices: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures the graph has at least `n` vertices even if some are
    /// isolated.
    pub fn reserve_vertices(&mut self, n: usize) -> &mut Self {
        self.num_vertices = self.num_vertices.max(n);
        self
    }

    /// Adds an undirected edge. Self-loops are ignored; duplicates are
    /// removed at build time.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        if u == v {
            return self;
        }
        let e = if u < v { (u, v) } else { (v, u) };
        self.num_vertices = self.num_vertices.max(e.1 as usize + 1);
        self.edges.push(e);
        self
    }

    /// Number of (not yet deduplicated) edges added so far.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalises into a CSR [`Graph`].
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.num_vertices;
        let mut degrees = vec![0usize; n];
        for &(u, v) in &self.edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![0 as VertexId; acc];
        for &(u, v) in &self.edges {
            adj[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Edges were processed in sorted order, so each vertex's neighbour
        // run is already sorted for the second endpoints but the first
        // endpoints interleave; sort each run to restore the invariant.
        for v in 0..n {
            adj[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph {
            offsets,
            adj,
            num_edges: self.edges.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Graph {
        // 0-1-2 triangle, 2-3 tail.
        Graph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn basic_counts() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = triangle_plus_tail();
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    fn self_loops_and_duplicates_removed() {
        let g = Graph::from_edges([(0, 1), (1, 0), (1, 1), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(0, 99));
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn reserve_vertices_keeps_isolated() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1).reserve_vertices(5);
        let g = b.build();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.degree(4), 0);
        assert!(g.neighbors(4).is_empty());
    }

    #[test]
    fn adjacency_bytes_counts_both_directions() {
        let g = Graph::from_edges([(0, 1)]);
        assert_eq!(g.adjacency_bytes(), 8); // two directed entries × 4 bytes
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edges().count(), 0);
    }
}
