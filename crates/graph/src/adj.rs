//! Sorted adjacency sets.
//!
//! An [`AdjSet`] is the value type of the distributed key-value store: the
//! neighbours of one data vertex, sorted ascending by vertex id. Keeping the
//! sets sorted lets every `Intersect` instruction run as a linear merge (or
//! a galloping search when operand sizes are skewed) without hashing or
//! allocation beyond the output buffer.
//!
//! A set may additionally carry the bitset-block representation of
//! [`crate::view`] (see [`AdjSet::with_blocks`]); [`AdjSet::view`] hands
//! both to the intersection kernels, which dispatch to block-wise code
//! when a dense operand is present.

use crate::view::{AdjView, BlockSet};
use crate::VertexId;

/// A sorted, duplicate-free set of vertex ids — the adjacency set
/// `Γ_G(v)` of one data vertex.
///
/// Invariant: `self.ids` is strictly increasing, and `self.blocks` (when
/// present) encodes exactly the same membership. Equality and hashing
/// look at the ids only, so building blocks never changes observable
/// identity.
#[derive(Clone, Debug, Default)]
pub struct AdjSet {
    ids: Vec<VertexId>,
    blocks: Option<BlockSet>,
}

impl PartialEq for AdjSet {
    fn eq(&self, other: &Self) -> bool {
        self.ids == other.ids
    }
}

impl Eq for AdjSet {}

impl std::hash::Hash for AdjSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.ids.hash(state);
    }
}

impl AdjSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        AdjSet {
            ids: Vec::new(),
            blocks: None,
        }
    }

    /// Creates a set from a vector that is already sorted and
    /// duplicate-free.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the invariant does not hold.
    pub fn from_sorted(v: Vec<VertexId>) -> Self {
        debug_assert!(v.windows(2).all(|w| w[0] < w[1]), "AdjSet not sorted");
        AdjSet {
            ids: v,
            blocks: None,
        }
    }

    /// Creates a set from arbitrary input, sorting and deduplicating it.
    pub fn from_unsorted(mut v: Vec<VertexId>) -> Self {
        v.sort_unstable();
        v.dedup();
        AdjSet {
            ids: v,
            blocks: None,
        }
    }

    /// Builds the bitset-block representation when the degree reaches
    /// `threshold` (see [`crate::view::DENSE_BLOCK_THRESHOLD`]); a
    /// no-op below it. Store loaders call this once per decoded value
    /// so the per-vertex representation decision is made at build time,
    /// not in the enumeration hot loop.
    pub fn with_blocks(mut self, threshold: usize) -> Self {
        if self.ids.len() >= threshold.max(1) {
            self.blocks = Some(BlockSet::from_sorted(&self.ids));
        }
        self
    }

    /// The dual-representation borrow handed to the intersection
    /// kernels.
    pub fn view(&self) -> AdjView<'_> {
        AdjView {
            ids: &self.ids,
            blocks: self.blocks.as_ref(),
        }
    }

    /// True when the set carries the block representation.
    pub fn has_blocks(&self) -> bool {
        self.blocks.is_some()
    }

    /// Number of vertices in the set (the degree, when this is `Γ_G(v)`).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The sorted ids as a slice.
    pub fn as_slice(&self) -> &[VertexId] {
        &self.ids
    }

    /// Membership test via binary search.
    pub fn contains(&self, v: VertexId) -> bool {
        self.ids.binary_search(&v).is_ok()
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> std::slice::Iter<'_, VertexId> {
        self.ids.iter()
    }

    /// Approximate heap footprint in bytes; used for cache budgeting and
    /// frontier accounting (4 bytes per neighbour id; the optional block
    /// sidecar is excluded so budgets stay representation-independent).
    pub fn size_bytes(&self) -> usize {
        self.ids.len() * std::mem::size_of::<VertexId>()
    }

    /// Consumes the set, returning the underlying sorted vector.
    #[deprecated(
        since = "0.8.0",
        note = "borrow with `as_slice` or `view` instead; owned extraction \
                defeats the shared dual-representation sets"
    )]
    pub fn into_vec(self) -> Vec<VertexId> {
        self.ids
    }
}

impl From<Vec<VertexId>> for AdjSet {
    fn from(v: Vec<VertexId>) -> Self {
        AdjSet::from_unsorted(v)
    }
}

impl<'a> IntoIterator for &'a AdjSet {
    type Item = &'a VertexId;
    type IntoIter = std::slice::Iter<'a, VertexId>;
    fn into_iter(self) -> Self::IntoIter {
        self.ids.iter()
    }
}

impl FromIterator<VertexId> for AdjSet {
    fn from_iter<T: IntoIterator<Item = VertexId>>(iter: T) -> Self {
        AdjSet::from_unsorted(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_unsorted_sorts_and_dedups() {
        let s = AdjSet::from_unsorted(vec![5, 1, 3, 3, 1]);
        assert_eq!(s.as_slice(), &[1, 3, 5]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn contains_uses_binary_search() {
        let s = AdjSet::from_sorted(vec![2, 4, 8, 16]);
        assert!(s.contains(8));
        assert!(!s.contains(9));
        assert!(!s.contains(0));
        assert!(!s.contains(17));
    }

    #[test]
    fn size_bytes_counts_ids() {
        let s = AdjSet::from_sorted(vec![1, 2, 3]);
        assert_eq!(s.size_bytes(), 12);
    }

    #[test]
    fn empty_set() {
        let s = AdjSet::new();
        assert!(s.is_empty());
        assert_eq!(s.size_bytes(), 0);
        assert!(!s.contains(0));
    }

    #[test]
    fn collect_from_iterator() {
        let s: AdjSet = [9u32, 1, 9, 4].into_iter().collect();
        assert_eq!(s.as_slice(), &[1, 4, 9]);
    }

    #[test]
    fn with_blocks_respects_threshold_and_preserves_identity() {
        let small = AdjSet::from_sorted(vec![1, 2, 3]).with_blocks(4);
        assert!(!small.has_blocks(), "below threshold stays slice-only");
        let ids: Vec<u32> = (0..8).map(|x| x * 10).collect();
        let dense = AdjSet::from_sorted(ids.clone()).with_blocks(4);
        assert!(dense.has_blocks());
        assert_eq!(dense.view().blocks.map(|b| b.num_blocks()), Some(2));
        // Blocks never change observable identity: equality, hash
        // input, size and slice all ignore the sidecar.
        let plain = AdjSet::from_sorted(ids);
        assert_eq!(dense, plain);
        assert_eq!(dense.size_bytes(), plain.size_bytes());
        assert_eq!(dense.as_slice(), plain.as_slice());
    }
}
