//! Sorted adjacency sets.
//!
//! An [`AdjSet`] is the value type of the distributed key-value store: the
//! neighbours of one data vertex, sorted ascending by vertex id. Keeping the
//! sets sorted lets every `Intersect` instruction run as a linear merge (or
//! a galloping search when operand sizes are skewed) without hashing or
//! allocation beyond the output buffer.

use crate::VertexId;

/// A sorted, duplicate-free set of vertex ids — the adjacency set
/// `Γ_G(v)` of one data vertex.
///
/// Invariant: `self.0` is strictly increasing.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct AdjSet(Vec<VertexId>);

impl AdjSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        AdjSet(Vec::new())
    }

    /// Creates a set from a vector that is already sorted and
    /// duplicate-free.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the invariant does not hold.
    pub fn from_sorted(v: Vec<VertexId>) -> Self {
        debug_assert!(v.windows(2).all(|w| w[0] < w[1]), "AdjSet not sorted");
        AdjSet(v)
    }

    /// Creates a set from arbitrary input, sorting and deduplicating it.
    pub fn from_unsorted(mut v: Vec<VertexId>) -> Self {
        v.sort_unstable();
        v.dedup();
        AdjSet(v)
    }

    /// Number of vertices in the set (the degree, when this is `Γ_G(v)`).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The sorted ids as a slice.
    pub fn as_slice(&self) -> &[VertexId] {
        &self.0
    }

    /// Membership test via binary search.
    pub fn contains(&self, v: VertexId) -> bool {
        self.0.binary_search(&v).is_ok()
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> std::slice::Iter<'_, VertexId> {
        self.0.iter()
    }

    /// Approximate heap footprint in bytes; used for cache budgeting and
    /// communication accounting (4 bytes per neighbour id).
    pub fn size_bytes(&self) -> usize {
        self.0.len() * std::mem::size_of::<VertexId>()
    }

    /// Consumes the set, returning the underlying sorted vector.
    pub fn into_vec(self) -> Vec<VertexId> {
        self.0
    }
}

impl From<Vec<VertexId>> for AdjSet {
    fn from(v: Vec<VertexId>) -> Self {
        AdjSet::from_unsorted(v)
    }
}

impl<'a> IntoIterator for &'a AdjSet {
    type Item = &'a VertexId;
    type IntoIter = std::slice::Iter<'a, VertexId>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl FromIterator<VertexId> for AdjSet {
    fn from_iter<T: IntoIterator<Item = VertexId>>(iter: T) -> Self {
        AdjSet::from_unsorted(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_unsorted_sorts_and_dedups() {
        let s = AdjSet::from_unsorted(vec![5, 1, 3, 3, 1]);
        assert_eq!(s.as_slice(), &[1, 3, 5]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn contains_uses_binary_search() {
        let s = AdjSet::from_sorted(vec![2, 4, 8, 16]);
        assert!(s.contains(8));
        assert!(!s.contains(9));
        assert!(!s.contains(0));
        assert!(!s.contains(17));
    }

    #[test]
    fn size_bytes_counts_ids() {
        let s = AdjSet::from_sorted(vec![1, 2, 3]);
        assert_eq!(s.size_bytes(), 12);
    }

    #[test]
    fn empty_set() {
        let s = AdjSet::new();
        assert!(s.is_empty());
        assert_eq!(s.size_bytes(), 0);
        assert!(!s.contains(0));
    }

    #[test]
    fn collect_from_iterator() {
        let s: AdjSet = [9u32, 1, 9, 4].into_iter().collect();
        assert_eq!(s.as_slice(), &[1, 4, 9]);
    }
}
