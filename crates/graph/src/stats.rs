//! Graph statistics used by cost models, workload characterisation, and the
//! Table I harness.

use crate::ops::intersect_count;
use crate::{Graph, VertexId};

/// Summary statistics of a data graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// `N = |V(G)|`.
    pub num_vertices: usize,
    /// `M = |E(G)|`.
    pub num_edges: usize,
    /// Average degree `2M / N`.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Global clustering coefficient `3·triangles / wedges` (0 when there
    /// are no wedges).
    pub global_clustering: f64,
    /// Exact triangle count.
    pub triangles: u64,
}

/// Computes summary statistics (exact triangle count via the node-iterator
/// algorithm, `O(Σ d(v)²)` worst case but fast on the evaluation presets).
pub fn graph_stats(g: &Graph) -> GraphStats {
    let n = g.num_vertices();
    let m = g.num_edges();
    let triangles = count_triangles(g);
    let wedges: u64 = (0..n)
        .map(|v| {
            let d = g.degree(v as VertexId) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    GraphStats {
        num_vertices: n,
        num_edges: m,
        avg_degree: if n == 0 {
            0.0
        } else {
            2.0 * m as f64 / n as f64
        },
        max_degree: g.max_degree(),
        global_clustering: if wedges == 0 {
            0.0
        } else {
            3.0 * triangles as f64 / wedges as f64
        },
        triangles,
    }
}

/// Exact triangle count: for each edge `(u, v)` with `u < v`, counts common
/// neighbours greater than `v` (each triangle counted once).
pub fn count_triangles(g: &Graph) -> u64 {
    let mut total = 0u64;
    for u in g.vertices() {
        let nu = g.neighbors(u);
        for &v in nu.iter().filter(|&&v| v > u) {
            let nv = g.neighbors(v);
            // Common neighbours above v close a triangle counted at its
            // smallest vertex u.
            let above_v_u = upper_slice(nu, v);
            let above_v_v = upper_slice(nv, v);
            total += intersect_count(above_v_u, above_v_v) as u64;
        }
    }
    total
}

/// Sub-slice of a sorted slice containing elements strictly greater than
/// `bound`.
fn upper_slice(sorted: &[VertexId], bound: VertexId) -> &[VertexId] {
    let idx = sorted.partition_point(|&x| x <= bound);
    &sorted[idx..]
}

/// Degree histogram: `hist[d]` = number of vertices with degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn triangle_count_on_known_graphs() {
        assert_eq!(count_triangles(&gen::complete(4)), 4);
        assert_eq!(count_triangles(&gen::complete(5)), 10);
        assert_eq!(count_triangles(&gen::cycle(5)), 0);
        assert_eq!(count_triangles(&gen::star(6)), 0);
        // Two triangles sharing an edge (chordal square).
        let g = Graph::from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        assert_eq!(count_triangles(&g), 2);
    }

    #[test]
    fn stats_on_complete_graph() {
        let s = graph_stats(&gen::complete(5));
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_edges, 10);
        assert_eq!(s.max_degree, 4);
        assert!((s.global_clustering - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_zero_on_bipartite() {
        let s = graph_stats(&gen::grid(3, 3));
        assert_eq!(s.triangles, 0);
        assert_eq!(s.global_clustering, 0.0);
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = gen::erdos_renyi_gnm(200, 500, 11);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 200);
        let via_hist: usize = hist.iter().enumerate().map(|(d, c)| d * c).sum();
        assert_eq!(via_hist, 2 * g.num_edges());
    }

    #[test]
    fn empty_graph_stats() {
        let s = graph_stats(&crate::GraphBuilder::new().build());
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.triangles, 0);
    }
}
