//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on five SNAP/LAW graphs that cannot be redistributed
//! here, so the benchmark harness builds seeded synthetic stand-ins from
//! these generators (see `datasets`). All generators take an explicit seed
//! and are reproducible across runs and platforms.

use crate::{Graph, GraphBuilder, VertexId};
use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges sampled uniformly.
///
/// # Panics
///
/// Panics if `m` exceeds the number of possible edges `n(n-1)/2`.
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> Graph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= max_edges, "G(n,m): m={m} exceeds max {max_edges}");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    let dist = Uniform::new(0, n as VertexId);
    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);
    while chosen.len() < m {
        let u = dist.sample(&mut rng);
        let v = dist.sample(&mut rng);
        if u == v {
            continue;
        }
        let e = if u < v { (u, v) } else { (v, u) };
        if chosen.insert(e) {
            b.add_edge(e.0, e.1);
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new vertex to `k` existing vertices chosen proportional to
/// degree. Produces a power-law degree distribution with heavy hubs.
pub fn barabasi_albert(n: usize, k: usize, seed: u64) -> Graph {
    assert!(k >= 1 && n > k, "BA requires n > k >= 1");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);
    // Repeated-endpoints list: sampling uniformly from it is sampling
    // proportional to degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * k);
    // Seed clique over the first k+1 vertices.
    for u in 0..=(k as VertexId) {
        for v in (u + 1)..=(k as VertexId) {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in (k + 1)..n {
        let v = v as VertexId;
        // Draw-ordered, not a HashSet: the targets feed back into
        // `endpoints`, so their iteration order shapes every later
        // degree-proportional draw — hash order would make the same
        // seed yield a different graph on every run.
        let mut targets: Vec<VertexId> = Vec::with_capacity(k);
        while targets.len() < k {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Parameters of the power-law stand-in generator used for dataset presets.
#[derive(Clone, Copy, Debug)]
pub struct PowerLawConfig {
    /// Number of vertices.
    pub n: usize,
    /// Target number of undirected edges (approximate; duplicates are
    /// dropped).
    pub m: usize,
    /// Power-law exponent of the expected-degree sequence (typically
    /// 2.0–3.0; lower = heavier hubs).
    pub gamma: f64,
    /// Fraction of edge budget spent on triangle-closing edges (0.0–1.0).
    /// Raises the clustering coefficient so motif-dense datasets like
    /// Orkut can be imitated.
    pub clustering: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Chung-Lu style power-law generator with an optional triangle-closing
/// pass.
///
/// Expected degrees follow `w_i ∝ (i + i0)^(-1/(gamma-1))`; edges are
/// sampled endpoint-by-endpoint proportional to weight. A `clustering`
/// fraction of the edge budget is then spent closing wedges (connecting two
/// neighbours of a random vertex), which mimics the high triangle/clique
/// density of social networks — the property every BENU experiment leans
/// on.
pub fn chung_lu_power_law(cfg: PowerLawConfig) -> Graph {
    let PowerLawConfig {
        n,
        m,
        gamma,
        clustering,
        seed,
    } = cfg;
    assert!(n >= 2, "need at least two vertices");
    assert!((0.0..=1.0).contains(&clustering), "clustering in [0,1]");
    assert!(gamma > 1.0, "gamma must exceed 1");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let alpha = 1.0 / (gamma - 1.0);
    // Expected-degree weights; i0 damps the largest hub so the max degree
    // stays below n.
    let i0 = 5.0_f64;
    let weights: Vec<f64> = (0..n).map(|i| (i as f64 + i0).powf(-alpha)).collect();
    // Cumulative distribution for endpoint sampling.
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cdf.push(acc);
    }
    let total = acc;
    let sample_vertex = |rng: &mut ChaCha8Rng, cdf: &[f64]| -> VertexId {
        let x = rng.gen::<f64>() * total;
        match cdf.binary_search_by(|p| p.partial_cmp(&x).unwrap()) {
            Ok(i) | Err(i) => (i.min(cdf.len() - 1)) as VertexId,
        }
    };

    let m_rand = ((m as f64) * (1.0 - clustering)) as usize;
    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);
    let mut edges = std::collections::HashSet::with_capacity(m * 2);
    let mut attempts = 0usize;
    let max_attempts = m_rand.saturating_mul(20).max(1000);
    while edges.len() < m_rand && attempts < max_attempts {
        attempts += 1;
        let u = sample_vertex(&mut rng, &cdf);
        let v = sample_vertex(&mut rng, &cdf);
        if u == v {
            continue;
        }
        let e = if u < v { (u, v) } else { (v, u) };
        if edges.insert(e) {
            b.add_edge(e.0, e.1);
        }
    }
    // Triangle-closing pass over the random skeleton.
    if clustering > 0.0 {
        let skeleton = b.clone().build();
        let m_close = m.saturating_sub(edges.len());
        let mut closed = 0usize;
        let mut attempts = 0usize;
        let max_attempts = m_close.saturating_mul(30).max(1000);
        while closed < m_close && attempts < max_attempts {
            attempts += 1;
            let c = sample_vertex(&mut rng, &cdf);
            let nbrs = skeleton.neighbors(c);
            if nbrs.len() < 2 {
                continue;
            }
            let a = nbrs[rng.gen_range(0..nbrs.len())];
            let bv = nbrs[rng.gen_range(0..nbrs.len())];
            if a == bv {
                continue;
            }
            let e = if a < bv { (a, bv) } else { (bv, a) };
            if edges.insert(e) {
                b.add_edge(e.0, e.1);
                closed += 1;
            }
        }
    }
    b.build()
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Cycle `C_n` (n ≥ 3).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut b = GraphBuilder::new();
    for v in 0..n as VertexId {
        b.add_edge(v, ((v as usize + 1) % n) as VertexId);
    }
    b.build()
}

/// Path `P_n` with `n` vertices (n ≥ 2).
pub fn path(n: usize) -> Graph {
    assert!(n >= 2, "path needs at least 2 vertices");
    let mut b = GraphBuilder::new();
    for v in 0..(n - 1) as VertexId {
        b.add_edge(v, v + 1);
    }
    b.build()
}

/// Star `S_k`: centre 0 with `k` leaves.
pub fn star(k: usize) -> Graph {
    assert!(k >= 1, "star needs at least one leaf");
    let mut b = GraphBuilder::new();
    for v in 1..=k as VertexId {
        b.add_edge(0, v);
    }
    b.build()
}

/// 2-D grid graph `rows × cols`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut b = GraphBuilder::new();
    b.reserve_vertices(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// R-MAT (recursive matrix) generator — the classic Graph500-style
/// power-law generator: each edge recursively descends into one of four
/// adjacency-matrix quadrants with probabilities `(a, b, c, d)`.
/// Self-loops and duplicates are dropped, so the edge count is
/// approximate.
pub fn rmat(scale_log2: u32, edges: usize, probs: (f64, f64, f64, f64), seed: u64) -> Graph {
    let (a, b, c, d) = probs;
    assert!(
        (a + b + c + d - 1.0).abs() < 1e-9,
        "quadrant probabilities must sum to 1"
    );
    let n = 1usize << scale_log2;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new();
    builder.reserve_vertices(n);
    for _ in 0..edges {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale_log2 {
            let x: f64 = rng.gen();
            let (du, dv) = if x < a {
                (0, 0)
            } else if x < a + b {
                (0, 1)
            } else if x < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        builder.add_edge(u as VertexId, v as VertexId);
    }
    builder.build()
}

/// Uniformly random *connected* simple graph on `n` vertices: a random
/// spanning tree plus `extra` random additional edges. Used by Exp-1's
/// "random pattern graphs" workload.
pub fn random_connected(n: usize, extra: usize, seed: u64) -> Graph {
    assert!(n >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    b.reserve_vertices(n);
    // Random attachment tree keeps connectivity.
    for v in 1..n as VertexId {
        let t = rng.gen_range(0..v);
        b.add_edge(v, t);
    }
    let max_edges = n * (n - 1) / 2;
    let target = (n - 1 + extra).min(max_edges);
    let mut edges: std::collections::HashSet<(VertexId, VertexId)> =
        b.clone().build().edges().collect();
    while edges.len() < target {
        let u = rng.gen_range(0..n as VertexId);
        let v = rng.gen_range(0..n as VertexId);
        if u == v {
            continue;
        }
        let e = if u < v { (u, v) } else { (v, u) };
        if edges.insert(e) {
            b.add_edge(e.0, e.1);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_has_exact_edge_count_and_is_deterministic() {
        let g1 = erdos_renyi_gnm(100, 300, 7);
        let g2 = erdos_renyi_gnm(100, 300, 7);
        assert_eq!(g1.num_edges(), 300);
        assert_eq!(g1, g2);
        let g3 = erdos_renyi_gnm(100, 300, 8);
        assert_ne!(g1, g3);
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn gnm_rejects_impossible_m() {
        erdos_renyi_gnm(3, 4, 0);
    }

    #[test]
    fn ba_is_connected_with_heavy_hub() {
        let g = barabasi_albert(500, 3, 42);
        assert_eq!(g.num_vertices(), 500);
        // Every non-seed vertex attached k edges, so min degree >= 3.
        assert!(g.vertices().all(|v| g.degree(v) >= 3));
        // Preferential attachment concentrates degree.
        assert!(g.max_degree() > 20);
    }

    #[test]
    fn chung_lu_respects_budget_and_boosts_triangles() {
        let base = chung_lu_power_law(PowerLawConfig {
            n: 2000,
            m: 8000,
            gamma: 2.5,
            clustering: 0.0,
            seed: 1,
        });
        let boosted = chung_lu_power_law(PowerLawConfig {
            n: 2000,
            m: 8000,
            gamma: 2.5,
            clustering: 0.4,
            seed: 1,
        });
        assert!(base.num_edges() <= 8000);
        assert!(boosted.num_edges() <= 8000);
        let tri = |g: &Graph| {
            let mut t = 0usize;
            for u in g.vertices() {
                for &v in g.neighbors(u) {
                    if v > u {
                        t += crate::ops::intersect_count(g.neighbors(u), g.neighbors(v));
                    }
                }
            }
            t / 3
        };
        assert!(tri(&boosted) > tri(&base) * 2, "triangle closing works");
    }

    #[test]
    fn fixed_motifs() {
        assert_eq!(complete(5).num_edges(), 10);
        assert_eq!(cycle(6).num_edges(), 6);
        assert_eq!(path(4).num_edges(), 3);
        assert_eq!(star(7).num_edges(), 7);
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
    }

    #[test]
    fn rmat_is_skewed_and_deterministic() {
        let g1 = rmat(10, 4000, (0.57, 0.19, 0.19, 0.05), 3);
        let g2 = rmat(10, 4000, (0.57, 0.19, 0.19, 0.05), 3);
        assert_eq!(g1, g2);
        assert_eq!(g1.num_vertices(), 1024);
        assert!(g1.num_edges() > 2000, "most samples survive dedup");
        // The (0,0)-biased quadrant concentrates degree on low ids.
        let low: usize = (0..64u32).map(|v| g1.degree(v)).sum();
        let high: usize = (960..1024u32).map(|v| g1.degree(v)).sum();
        assert!(low > high * 4, "low {low} vs high {high}");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rmat_rejects_bad_probabilities() {
        rmat(4, 10, (0.5, 0.5, 0.5, 0.5), 0);
    }

    #[test]
    fn random_connected_is_connected() {
        for seed in 0..5 {
            let g = random_connected(12, 6, seed);
            // BFS from 0 reaches everything.
            let mut seen = vec![false; g.num_vertices()];
            let mut stack = vec![0u32];
            seen[0] = true;
            while let Some(v) = stack.pop() {
                for &w in g.neighbors(v) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        stack.push(w);
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "seed {seed} disconnected");
            assert_eq!(g.num_edges(), 12 - 1 + 6);
        }
    }
}
