//! r-hop neighborhood machinery (paper §V-A, complexity analysis).
//!
//! The cache-capacity analysis of the paper is phrased in terms of the
//! r-hop neighborhood `γ_g^r(v)` (all vertices within `r` hops of `v`),
//! its size `S_g^r(v) = Σ_{w ∈ γ^r(v)} d(w)` (the bytes needed to cache
//! every adjacency set in the neighborhood), and the graph-wide maximum
//! `H_g^r = max_v S_g^r(v)`.

use crate::{Graph, VertexId};

/// The vertices at most `r` hops from `v` (including `v`), sorted.
pub fn r_hop_neighborhood(g: &Graph, v: VertexId, r: usize) -> Vec<VertexId> {
    let mut visited = vec![false; g.num_vertices()];
    let mut frontier = vec![v];
    visited[v as usize] = true;
    let mut all = vec![v];
    for _ in 0..r {
        let mut next = Vec::new();
        for &u in &frontier {
            for &w in g.neighbors(u) {
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    next.push(w);
                    all.push(w);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    all.sort_unstable();
    all
}

/// `S_g^r(v)` — the total degree (≈ cached bytes / 4) of the r-hop
/// neighborhood of `v`.
pub fn r_hop_size(g: &Graph, v: VertexId, r: usize) -> usize {
    r_hop_neighborhood(g, v, r)
        .into_iter()
        .map(|w| g.degree(w))
        .sum()
}

/// `|γ_g^r(v)|` — the number of vertices within `r` hops.
pub fn r_hop_vertex_count(g: &Graph, v: VertexId, r: usize) -> usize {
    r_hop_neighborhood(g, v, r).len()
}

/// `H_g^r = max_v S_g^r(v)` — the size of the largest r-hop neighborhood.
/// For `r ≥ 1` this is exact but `O(N · BFS)`; `sample` limits the scan to
/// the given number of highest-degree vertices (the maximizer is almost
/// always a hub), `0` meaning all vertices.
pub fn max_r_hop_size(g: &Graph, r: usize, sample: usize) -> usize {
    let mut vertices: Vec<VertexId> = g.vertices().collect();
    if sample > 0 && sample < vertices.len() {
        vertices.sort_unstable_by_key(|&v| std::cmp::Reverse(g.degree(v)));
        vertices.truncate(sample);
    }
    vertices
        .into_iter()
        .map(|v| r_hop_size(g, v, r))
        .max()
        .unwrap_or(0)
}

/// The largest `R` such that a cache of `capacity_bytes` can hold the
/// R-hop neighborhood of any vertex for each of `threads` working threads
/// (the paper's condition `C ≥ w · H_G^R`), capped at `max_r`. Returns 0
/// when even 0-hop neighborhoods (single adjacency sets per thread) do not
/// fit.
pub fn cacheable_radius(
    g: &Graph,
    capacity_bytes: usize,
    threads: usize,
    max_r: usize,
    sample: usize,
) -> usize {
    let bytes_per_entry = std::mem::size_of::<VertexId>();
    let mut best = 0;
    for r in 0..=max_r {
        let h = max_r_hop_size(g, r, sample) * bytes_per_entry * threads.max(1);
        if h <= capacity_bytes {
            best = r;
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn zero_hop_is_the_vertex_itself() {
        let g = gen::path(5);
        assert_eq!(r_hop_neighborhood(&g, 2, 0), vec![2]);
        assert_eq!(r_hop_size(&g, 2, 0), 2);
    }

    #[test]
    fn hops_expand_along_the_path() {
        let g = gen::path(7); // 0-1-2-3-4-5-6
        assert_eq!(r_hop_neighborhood(&g, 3, 1), vec![2, 3, 4]);
        assert_eq!(r_hop_neighborhood(&g, 3, 2), vec![1, 2, 3, 4, 5]);
        assert_eq!(r_hop_vertex_count(&g, 0, 3), 4);
    }

    #[test]
    fn neighborhood_saturates_at_graph_diameter() {
        let g = gen::cycle(6);
        let all = r_hop_neighborhood(&g, 0, 10);
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn max_r_hop_dominated_by_hub() {
        let g = gen::star(20);
        // 1 hop from the centre covers everything: S = sum of all degrees.
        assert_eq!(max_r_hop_size(&g, 1, 0), 2 * g.num_edges());
        // Sampling only the top-degree vertex finds the same maximum.
        assert_eq!(max_r_hop_size(&g, 1, 1), 2 * g.num_edges());
    }

    #[test]
    fn cacheable_radius_monotone_in_capacity() {
        let g = gen::barabasi_albert(300, 3, 6);
        let small = cacheable_radius(&g, 1 << 10, 2, 4, 16);
        let large = cacheable_radius(&g, 64 << 20, 2, 4, 16);
        assert!(large >= small);
        assert!(large >= 2, "a giant cache covers multi-hop neighborhoods");
    }

    #[test]
    fn disconnected_component_not_reached() {
        let g = crate::Graph::from_edges([(0, 1), (2, 3)]);
        assert_eq!(r_hop_neighborhood(&g, 0, 5), vec![0, 1]);
    }
}
