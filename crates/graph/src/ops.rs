//! Sorted-set kernels backing the `Intersect` instructions.
//!
//! All kernels operate on strictly increasing `&[VertexId]` slices and write
//! into a caller-supplied output buffer so the hot enumeration loop performs
//! no allocation. Two strategies are used:
//!
//! * **merge scan** — linear two-pointer walk, best when the operands have
//!   comparable sizes;
//! * **galloping** — for each element of the small side, exponential +
//!   binary search in the large side; best when `|small| ≪ |large|`.
//!
//! [`intersect_into`] picks between them with the classical `len ratio`
//! heuristic (switch to galloping when one side is 32× larger), following
//! the adaptive designs used by high-performance set-intersection code.

use crate::VertexId;

/// Size ratio beyond which galloping beats the linear merge.
const GALLOP_RATIO: usize = 32;

/// Intersects two sorted slices into `out` (cleared first).
///
/// Chooses merge vs galloping automatically.
pub fn intersect_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    out.clear();
    if a.is_empty() || b.is_empty() {
        return;
    }
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if large.len() / small.len() >= GALLOP_RATIO {
        gallop_intersect_into(small, large, out);
    } else {
        merge_intersect_into(a, b, out);
    }
}

/// Two-pointer merge intersection.
pub fn merge_intersect_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x < y {
            i += 1;
        } else if y < x {
            j += 1;
        } else {
            out.push(x);
            i += 1;
            j += 1;
        }
    }
}

/// Galloping intersection: for each element of the (small) `a`, gallop in
/// `b`. Requires `a.len() <= b.len()` for the intended complexity but is
/// correct regardless.
pub fn gallop_intersect_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    out.clear();
    let mut lo = 0usize;
    for &x in a {
        // Exponential probe from the last position.
        let mut step = 1usize;
        let mut hi = lo;
        while hi < b.len() && b[hi] < x {
            lo = hi;
            hi += step;
            step <<= 1;
        }
        // `hi` now sits on the first probed element `>= x` (or past the
        // end); include it in the search window.
        let hi = (hi + 1).min(b.len());
        match b[lo..hi].binary_search(&x) {
            Ok(off) => {
                out.push(x);
                lo += off + 1;
            }
            Err(off) => {
                lo += off;
            }
        }
        if lo >= b.len() {
            break;
        }
    }
}

/// Counts `|a ∩ b|` without materialising the result.
pub fn intersect_count(a: &[VertexId], b: &[VertexId]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x < y {
            i += 1;
        } else if y < x {
            j += 1;
        } else {
            n += 1;
            i += 1;
            j += 1;
        }
    }
    n
}

/// Intersects `k ≥ 1` sorted slices into `out`, smallest-first to keep the
/// running intermediate minimal. `scratch` is a reusable temporary.
pub fn intersect_many_into(
    sets: &[&[VertexId]],
    out: &mut Vec<VertexId>,
    scratch: &mut Vec<VertexId>,
) {
    let mut order = Vec::new();
    intersect_many_by(sets.len(), |i| sets[i], &mut order, out, scratch);
}

/// Intersects `k` sorted slices, addressed by index through `get`, into
/// `out`. The index indirection lets callers keep operands in a slot
/// file (or any other owner) without materialising a `Vec<&[VertexId]>`
/// per call, and `order` is a caller-owned index buffer reused across
/// calls, so a steady-state caller performs no allocation at all.
/// Operands are visited smallest-first; the loop short-circuits as soon
/// as the running intermediate is empty.
pub fn intersect_many_by<'a>(
    k: usize,
    get: impl Fn(usize) -> &'a [VertexId],
    order: &mut Vec<usize>,
    out: &mut Vec<VertexId>,
    scratch: &mut Vec<VertexId>,
) {
    out.clear();
    match k {
        0 => {}
        1 => out.extend_from_slice(get(0)),
        _ => {
            order.clear();
            order.extend(0..k);
            order.sort_unstable_by_key(|&i| get(i).len());
            intersect_into(get(order[0]), get(order[1]), out);
            for &i in &order[2..] {
                if out.is_empty() {
                    return;
                }
                std::mem::swap(out, scratch);
                intersect_into(scratch, get(i), out);
            }
        }
    }
}

/// Sorted-set difference `a \ b` into `out`.
pub fn difference_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() {
        if j >= b.len() || a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else if a[i] > b[j] {
            j += 1;
        } else {
            i += 1;
            j += 1;
        }
    }
}

/// Sorted-set union of two slices into `out`.
pub fn union_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        if j >= b.len() || (i < a.len() && a[i] < b[j]) {
            out.push(a[i]);
            i += 1;
        } else if i >= a.len() || b[j] < a[i] {
            out.push(b[j]);
            j += 1;
        } else {
            out.push(a[i]);
            i += 1;
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[u32], b: &[u32]) -> Vec<u32> {
        a.iter().filter(|x| b.contains(x)).copied().collect()
    }

    #[test]
    fn merge_matches_naive() {
        let a = vec![1, 3, 5, 7, 9];
        let b = vec![2, 3, 5, 8, 9, 10];
        let mut out = Vec::new();
        merge_intersect_into(&a, &b, &mut out);
        assert_eq!(out, naive(&a, &b));
    }

    #[test]
    fn gallop_matches_naive_on_skewed_input() {
        let big: Vec<u32> = (0..10_000).map(|x| x * 3).collect();
        let small = vec![0, 3, 7, 9_999, 12_000, 29_997];
        let mut out = Vec::new();
        gallop_intersect_into(&small, &big, &mut out);
        assert_eq!(out, naive(&small, &big));
    }

    #[test]
    fn adaptive_picks_correct_result_both_ways() {
        let big: Vec<u32> = (0..5_000).collect();
        let small = vec![10, 4_999, 6_000];
        let mut out = Vec::new();
        intersect_into(&small, &big, &mut out);
        assert_eq!(out, vec![10, 4_999]);
        intersect_into(&big, &small, &mut out);
        assert_eq!(out, vec![10, 4_999]);
    }

    #[test]
    fn count_matches_materialised_len() {
        let a = vec![1, 2, 3, 10, 20];
        let b = vec![2, 3, 4, 20, 21];
        assert_eq!(intersect_count(&a, &b), 3);
    }

    #[test]
    fn many_way_intersection() {
        let a = vec![1, 2, 3, 4, 5, 6];
        let b = vec![2, 4, 6, 8];
        let c = vec![4, 5, 6, 7];
        let sets: Vec<&[u32]> = vec![&a, &b, &c];
        let (mut out, mut scratch) = (Vec::new(), Vec::new());
        intersect_many_into(&sets, &mut out, &mut scratch);
        assert_eq!(out, vec![4, 6]);
    }

    #[test]
    fn many_way_single_and_empty() {
        let a = vec![3, 9];
        let (mut out, mut scratch) = (Vec::new(), Vec::new());
        intersect_many_into(&[&a], &mut out, &mut scratch);
        assert_eq!(out, vec![3, 9]);
        intersect_many_into(&[], &mut out, &mut scratch);
        assert!(out.is_empty());
    }

    #[test]
    fn many_way_short_circuits_on_empty_intermediate() {
        let a = vec![1, 2];
        let b = vec![3, 4];
        let c = vec![1, 3];
        let sets: Vec<&[u32]> = vec![&a, &b, &c];
        let (mut out, mut scratch) = (Vec::new(), Vec::new());
        intersect_many_into(&sets, &mut out, &mut scratch);
        assert!(out.is_empty());
    }

    /// Deterministic xorshift so the adversarial fan needs no external
    /// RNG crate.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_sorted_set(seed: &mut u64, len: usize, universe: u64) -> Vec<u32> {
        let mut v: Vec<u32> = (0..len)
            .map(|_| (xorshift(seed) % universe.max(1)) as u32)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Property fan: the adaptive dispatch must agree with the naive
    /// intersection on size ratios that straddle `GALLOP_RATIO` (the
    /// merge→gallop switchover), where a bug in either kernel or in the
    /// dispatch predicate would show as a divergence.
    #[test]
    fn adaptive_dispatch_matches_naive_across_the_gallop_boundary() {
        let mut seed = 0x5eed_cafe_u64;
        let small_lens = [1usize, 2, 3, 7, 16];
        // Ratios just below, at, and above the switchover, plus extremes.
        let ratios = [
            GALLOP_RATIO - 1,
            GALLOP_RATIO,
            GALLOP_RATIO + 1,
            2 * GALLOP_RATIO,
            1,
        ];
        let mut out = Vec::new();
        for &small_len in &small_lens {
            for &ratio in &ratios {
                for universe_scale in [1u64, 4, 64] {
                    let large_len = small_len * ratio;
                    let universe = (large_len as u64 * universe_scale).max(2);
                    let a = random_sorted_set(&mut seed, small_len, universe);
                    let b = random_sorted_set(&mut seed, large_len, universe);
                    let expect = naive(&a, &b);
                    intersect_into(&a, &b, &mut out);
                    assert_eq!(out, expect, "a={a:?} b={b:?}");
                    intersect_into(&b, &a, &mut out);
                    assert_eq!(out, expect, "operand order must not matter");
                    assert_eq!(intersect_count(&a, &b), expect.len());
                }
            }
        }
    }

    #[test]
    fn adaptive_dispatch_handles_empty_and_disjoint_operands() {
        let mut out = vec![99];
        intersect_into(&[], &[1, 2, 3], &mut out);
        assert!(out.is_empty(), "empty small side");
        let big: Vec<u32> = (0..1_000).map(|x| x * 2).collect();
        intersect_into(&[1, 3, 5], &big, &mut out);
        assert!(out.is_empty(), "disjoint skewed operands");
    }

    #[test]
    fn intersect_many_by_matches_slice_api_and_reuses_order_buffer() {
        let a = vec![1u32, 2, 3, 4, 5, 6];
        let b = vec![2, 4, 6, 8];
        let c = vec![4, 5, 6, 7];
        let slots = [a.clone(), b.clone(), c.clone()];
        let (mut out, mut scratch, mut order) = (Vec::new(), Vec::new(), Vec::new());
        intersect_many_by(3, |i| &slots[i], &mut order, &mut out, &mut scratch);
        assert_eq!(out, vec![4, 6]);
        let order_cap = order.capacity();
        // A second call reuses the order buffer's capacity.
        intersect_many_by(3, |i| &slots[i], &mut order, &mut out, &mut scratch);
        assert_eq!(out, vec![4, 6]);
        assert_eq!(order.capacity(), order_cap);
        // And the slice-based API is a thin wrapper over the same code.
        let sets: Vec<&[u32]> = vec![&a, &b, &c];
        intersect_many_into(&sets, &mut out, &mut scratch);
        assert_eq!(out, vec![4, 6]);
    }

    #[test]
    fn difference_basic() {
        let mut out = Vec::new();
        difference_into(&[1, 2, 3, 4], &[2, 4, 6], &mut out);
        assert_eq!(out, vec![1, 3]);
        difference_into(&[1, 2], &[], &mut out);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn union_basic() {
        let mut out = Vec::new();
        union_into(&[1, 3, 5], &[2, 3, 6], &mut out);
        assert_eq!(out, vec![1, 2, 3, 5, 6]);
        union_into(&[], &[7], &mut out);
        assert_eq!(out, vec![7]);
    }
}
