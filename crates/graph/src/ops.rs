//! Sorted-set kernels backing the `Intersect` instructions.
//!
//! All kernels operate on strictly increasing `&[VertexId]` slices and write
//! into a caller-supplied output buffer so the hot enumeration loop performs
//! no allocation. Two strategies are used:
//!
//! * **merge scan** — linear two-pointer walk, best when the operands have
//!   comparable sizes;
//! * **galloping** — for each element of the small side, exponential +
//!   binary search in the large side; best when `|small| ≪ |large|`.
//!
//! [`intersect_into`] picks between them with the classical `len ratio`
//! heuristic (switch to galloping when one side is 32× larger), following
//! the adaptive designs used by high-performance set-intersection code.

use crate::VertexId;

/// Size ratio beyond which galloping beats the linear merge.
const GALLOP_RATIO: usize = 32;

/// Intersects two sorted slices into `out` (cleared first).
///
/// Chooses merge vs galloping automatically.
pub fn intersect_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    out.clear();
    if a.is_empty() || b.is_empty() {
        return;
    }
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if large.len() / small.len() >= GALLOP_RATIO {
        gallop_intersect_into(small, large, out);
    } else {
        merge_intersect_into(a, b, out);
    }
}

/// Two-pointer merge intersection.
pub fn merge_intersect_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x < y {
            i += 1;
        } else if y < x {
            j += 1;
        } else {
            out.push(x);
            i += 1;
            j += 1;
        }
    }
}

/// Galloping intersection: for each element of the (small) `a`, gallop in
/// `b`. Requires `a.len() <= b.len()` for the intended complexity but is
/// correct regardless.
pub fn gallop_intersect_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    out.clear();
    let mut lo = 0usize;
    for &x in a {
        // Exponential probe from the last position.
        let mut step = 1usize;
        let mut hi = lo;
        while hi < b.len() && b[hi] < x {
            lo = hi;
            hi += step;
            step <<= 1;
        }
        // `hi` now sits on the first probed element `>= x` (or past the
        // end); include it in the search window.
        let hi = (hi + 1).min(b.len());
        match b[lo..hi].binary_search(&x) {
            Ok(off) => {
                out.push(x);
                lo += off + 1;
            }
            Err(off) => {
                lo += off;
            }
        }
        if lo >= b.len() {
            break;
        }
    }
}

/// Counts `|a ∩ b|` without materialising the result.
pub fn intersect_count(a: &[VertexId], b: &[VertexId]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x < y {
            i += 1;
        } else if y < x {
            j += 1;
        } else {
            n += 1;
            i += 1;
            j += 1;
        }
    }
    n
}

/// Intersects `k ≥ 1` sorted slices into `out`, smallest-first to keep the
/// running intermediate minimal. `scratch` is a reusable temporary.
pub fn intersect_many_into(
    sets: &[&[VertexId]],
    out: &mut Vec<VertexId>,
    scratch: &mut Vec<VertexId>,
) {
    out.clear();
    match sets.len() {
        0 => {}
        1 => out.extend_from_slice(sets[0]),
        _ => {
            let mut order: Vec<usize> = (0..sets.len()).collect();
            order.sort_unstable_by_key(|&i| sets[i].len());
            intersect_into(sets[order[0]], sets[order[1]], out);
            for &i in &order[2..] {
                if out.is_empty() {
                    return;
                }
                std::mem::swap(out, scratch);
                intersect_into(scratch, sets[i], out);
            }
        }
    }
}

/// Sorted-set difference `a \ b` into `out`.
pub fn difference_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() {
        if j >= b.len() || a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else if a[i] > b[j] {
            j += 1;
        } else {
            i += 1;
            j += 1;
        }
    }
}

/// Sorted-set union of two slices into `out`.
pub fn union_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        if j >= b.len() || (i < a.len() && a[i] < b[j]) {
            out.push(a[i]);
            i += 1;
        } else if i >= a.len() || b[j] < a[i] {
            out.push(b[j]);
            j += 1;
        } else {
            out.push(a[i]);
            i += 1;
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[u32], b: &[u32]) -> Vec<u32> {
        a.iter().filter(|x| b.contains(x)).copied().collect()
    }

    #[test]
    fn merge_matches_naive() {
        let a = vec![1, 3, 5, 7, 9];
        let b = vec![2, 3, 5, 8, 9, 10];
        let mut out = Vec::new();
        merge_intersect_into(&a, &b, &mut out);
        assert_eq!(out, naive(&a, &b));
    }

    #[test]
    fn gallop_matches_naive_on_skewed_input() {
        let big: Vec<u32> = (0..10_000).map(|x| x * 3).collect();
        let small = vec![0, 3, 7, 9_999, 12_000, 29_997];
        let mut out = Vec::new();
        gallop_intersect_into(&small, &big, &mut out);
        assert_eq!(out, naive(&small, &big));
    }

    #[test]
    fn adaptive_picks_correct_result_both_ways() {
        let big: Vec<u32> = (0..5_000).collect();
        let small = vec![10, 4_999, 6_000];
        let mut out = Vec::new();
        intersect_into(&small, &big, &mut out);
        assert_eq!(out, vec![10, 4_999]);
        intersect_into(&big, &small, &mut out);
        assert_eq!(out, vec![10, 4_999]);
    }

    #[test]
    fn count_matches_materialised_len() {
        let a = vec![1, 2, 3, 10, 20];
        let b = vec![2, 3, 4, 20, 21];
        assert_eq!(intersect_count(&a, &b), 3);
    }

    #[test]
    fn many_way_intersection() {
        let a = vec![1, 2, 3, 4, 5, 6];
        let b = vec![2, 4, 6, 8];
        let c = vec![4, 5, 6, 7];
        let sets: Vec<&[u32]> = vec![&a, &b, &c];
        let (mut out, mut scratch) = (Vec::new(), Vec::new());
        intersect_many_into(&sets, &mut out, &mut scratch);
        assert_eq!(out, vec![4, 6]);
    }

    #[test]
    fn many_way_single_and_empty() {
        let a = vec![3, 9];
        let (mut out, mut scratch) = (Vec::new(), Vec::new());
        intersect_many_into(&[&a], &mut out, &mut scratch);
        assert_eq!(out, vec![3, 9]);
        intersect_many_into(&[], &mut out, &mut scratch);
        assert!(out.is_empty());
    }

    #[test]
    fn many_way_short_circuits_on_empty_intermediate() {
        let a = vec![1, 2];
        let b = vec![3, 4];
        let c = vec![1, 3];
        let sets: Vec<&[u32]> = vec![&a, &b, &c];
        let (mut out, mut scratch) = (Vec::new(), Vec::new());
        intersect_many_into(&sets, &mut out, &mut scratch);
        assert!(out.is_empty());
    }

    #[test]
    fn difference_basic() {
        let mut out = Vec::new();
        difference_into(&[1, 2, 3, 4], &[2, 4, 6], &mut out);
        assert_eq!(out, vec![1, 3]);
        difference_into(&[1, 2], &[], &mut out);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn union_basic() {
        let mut out = Vec::new();
        union_into(&[1, 3, 5], &[2, 3, 6], &mut out);
        assert_eq!(out, vec![1, 2, 3, 5, 6]);
        union_into(&[], &[7], &mut out);
        assert_eq!(out, vec![7]);
    }
}
