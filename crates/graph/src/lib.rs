//! Data-graph substrate for the BENU subgraph-enumeration system.
//!
//! This crate provides everything BENU needs to know about the *data graph*
//! `G`:
//!
//! * [`Graph`] — an undirected, unlabeled simple graph in CSR form with
//!   sorted adjacency sets (the representation stored in the distributed
//!   key-value store and queried by `GetAdj` instructions).
//! * [`AdjSet`] and the intersection kernels in [`ops`] — the sorted-set
//!   arithmetic that powers the `Intersect` instructions of a BENU
//!   execution plan.
//! * [`view`] — dual-representation adjacency: [`AdjView`] pairs the
//!   sorted ids with optional bitset blocks for dense vertices, and its
//!   kernels dispatch to block-wise (u64-word) intersection when a dense
//!   operand is present.
//! * [`TotalOrder`] — the degree-based total order `≺` on `V(G)` required
//!   by the symmetry-breaking technique (the same order used by SEED).
//! * [`gen`] — deterministic synthetic graph generators (Erdős–Rényi,
//!   Chung-Lu power-law, Barabási–Albert, and fixed motifs) used to stand
//!   in for the SNAP/LAW datasets of the paper.
//! * [`io`] — SNAP-style edge-list reading/writing.
//! * [`datasets`] — seeded scale-down presets of the paper's five data
//!   graphs (`as`, `lj`, `ok`, `uk`, `fs`).

pub mod adj;
pub mod datasets;
pub mod gen;
pub mod graph;
pub mod io;
pub mod neighborhood;
pub mod ops;
pub mod order;
pub mod stats;
pub mod view;

pub use adj::AdjSet;
pub use graph::{Graph, GraphBuilder};
pub use order::TotalOrder;
pub use view::{AdjView, BlockSet, GraphViews, DENSE_BLOCK_THRESHOLD};

/// Identifier of a data-graph vertex. Graphs are limited to `u32::MAX`
/// vertices, which matches the paper's datasets (≤ 65M vertices) while
/// halving the memory footprint of adjacency sets compared to `u64`.
pub type VertexId = u32;

/// An undirected edge, stored with `min ≤ max` endpoint order.
pub type Edge = (VertexId, VertexId);
