//! The total order `≺` on `V(G)` used by symmetry breaking.
//!
//! The paper adopts the order of SEED (Lai et al., PVLDB 2016): `u ≺ v` iff
//! `d(u) < d(v)`, or the degrees are equal and `id(u) < id(v)`. Ordering by
//! degree first concentrates the "smallest" vertices on the sparse side,
//! which keeps the candidate sets filtered by symmetry-breaking conditions
//! small in power-law graphs.
//!
//! [`TotalOrder`] precomputes a rank per vertex so each symmetry-breaking
//! filter check is a single integer comparison in the hot loop.

use crate::{Graph, VertexId};

/// Precomputed degree-then-id total order `≺` over the vertices of a data
/// graph.
#[derive(Clone, Debug)]
pub struct TotalOrder {
    /// `rank[v]` is the position of vertex `v` in `≺`-ascending order.
    rank: Vec<u32>,
}

impl TotalOrder {
    /// Computes the order for `g` in `O(N log N)`.
    pub fn new(g: &Graph) -> Self {
        let mut by_order: Vec<VertexId> = g.vertices().collect();
        by_order.sort_unstable_by_key(|&v| (g.degree(v), v));
        let mut rank = vec![0u32; g.num_vertices()];
        for (r, &v) in by_order.iter().enumerate() {
            rank[v as usize] = r as u32;
        }
        TotalOrder { rank }
    }

    /// An identity order (rank = vertex id); handy for tests and for graphs
    /// whose ids are already degree-sorted.
    pub fn identity(n: usize) -> Self {
        TotalOrder {
            rank: (0..n as u32).collect(),
        }
    }

    /// A degeneracy (k-core) order: vertices are repeatedly removed in
    /// order of minimum *remaining* degree. An alternative `≺` that ranks
    /// hub-adjacent low-core vertices early; any total order yields the
    /// same match counts (symmetry breaking only picks which
    /// representative match survives), so this is a drop-in tuning knob.
    pub fn degeneracy(g: &Graph) -> Self {
        let n = g.num_vertices();
        let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v as VertexId)).collect();
        let mut removed = vec![false; n];
        // Bucket queue over remaining degrees.
        let max_d = degree.iter().copied().max().unwrap_or(0);
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_d + 1];
        for v in 0..n {
            buckets[degree[v]].push(v as u32);
        }
        let mut rank = vec![0u32; n];
        let mut next_rank = 0u32;
        let mut cursor = 0usize;
        while next_rank < n as u32 {
            // Find the lowest non-empty bucket (cursor may need to back
            // up by one after neighbour updates).
            while cursor > 0 && !buckets[cursor - 1].is_empty() {
                cursor -= 1;
            }
            while cursor <= max_d && buckets[cursor].is_empty() {
                cursor += 1;
            }
            let Some(&v) = buckets[cursor].last() else {
                break;
            };
            buckets[cursor].pop();
            if removed[v as usize] || degree[v as usize] != cursor {
                // Stale entry: the vertex moved buckets.
                if !removed[v as usize] {
                    buckets[degree[v as usize]].push(v);
                }
                continue;
            }
            removed[v as usize] = true;
            rank[v as usize] = next_rank;
            next_rank += 1;
            for &w in g.neighbors(v) {
                if !removed[w as usize] {
                    degree[w as usize] -= 1;
                    buckets[degree[w as usize]].push(w);
                }
            }
        }
        TotalOrder { rank }
    }

    /// The rank of `v` under `≺` (0 = smallest).
    #[inline]
    pub fn rank(&self, v: VertexId) -> u32 {
        self.rank[v as usize]
    }

    /// True iff `a ≺ b`.
    #[inline]
    pub fn less(&self, a: VertexId, b: VertexId) -> bool {
        self.rank[a as usize] < self.rank[b as usize]
    }

    /// Number of vertices covered by the order.
    pub fn len(&self) -> usize {
        self.rank.len()
    }

    /// True if the order covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.rank.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_dominates_id() {
        // 0 has degree 3; 1,2,3 have degree 1 each plus edges among
        // themselves: make 3 have degree 2.
        let g = Graph::from_edges([(0, 1), (0, 2), (0, 3), (2, 3)]);
        let ord = TotalOrder::new(&g);
        // degrees: 0->3, 1->1, 2->2, 3->2
        assert!(ord.less(1, 2)); // lower degree first
        assert!(ord.less(2, 3)); // tie broken by id
        assert!(ord.less(3, 0));
        assert!(!ord.less(0, 1));
    }

    #[test]
    fn order_is_total_and_antisymmetric() {
        let g = Graph::from_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
        let ord = TotalOrder::new(&g);
        for a in g.vertices() {
            assert!(!ord.less(a, a));
            for b in g.vertices() {
                if a != b {
                    assert!(ord.less(a, b) ^ ord.less(b, a));
                }
            }
        }
    }

    #[test]
    fn identity_order() {
        let ord = TotalOrder::identity(4);
        assert!(ord.less(0, 3));
        assert!(!ord.less(3, 0));
        assert_eq!(ord.len(), 4);
    }

    #[test]
    fn degeneracy_order_is_a_permutation() {
        let g = crate::gen::barabasi_albert(100, 3, 7);
        let ord = TotalOrder::degeneracy(&g);
        let mut ranks: Vec<u32> = (0..100u32).map(|v| ord.rank(v)).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn degeneracy_removes_leaves_first() {
        // Star: peeling removes degree-1 leaves until the centre itself
        // drops to degree 1, so at least 9 of 10 leaves rank before it
        // (the last leaf ties with the centre; tie order is free).
        let g = crate::gen::star(10);
        let ord = TotalOrder::degeneracy(&g);
        let before = (1..=10u32).filter(|&leaf| ord.less(leaf, 0)).count();
        assert!(before >= 9, "only {before} leaves before the hub");
    }

    #[test]
    fn ranks_are_a_permutation() {
        let g = Graph::from_edges([(0, 3), (1, 3), (2, 3)]);
        let ord = TotalOrder::new(&g);
        let mut ranks: Vec<u32> = (0..g.num_vertices() as u32).map(|v| ord.rank(v)).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2, 3]);
    }
}
