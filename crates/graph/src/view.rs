//! Dual-representation adjacency views and block intersection kernels.
//!
//! High-degree ("hub") vertices dominate intersection cost: a scalar
//! merge over a hub's neighbour list touches every id even when the
//! other operand is tiny. This module adds a second representation —
//! fixed-width **bitset blocks** — built once per vertex at store-build
//! time when the degree reaches [`DENSE_BLOCK_THRESHOLD`], alongside the
//! sorted id slice that every consumer already understands.
//!
//! An [`AdjView`] borrows both: the sorted ids (always present) and the
//! optional [`BlockSet`]. The kernels here mirror the scalar API of
//! [`crate::ops`] but dispatch per operand pair:
//!
//! * **block × block** — two-pointer merge over block bases with a
//!   single `u64` AND per common base; the word loop auto-vectorises
//!   and the result expands back to sorted ids via `trailing_zeros`;
//! * **slice × block** — walk the sorted slice while advancing a block
//!   cursor, one shift-and-mask membership test per candidate;
//! * **slice × slice** — delegates to the adaptive scalar kernels in
//!   [`crate::ops`], the reference implementation.
//!
//! Every kernel writes the same strictly-increasing id sequence the
//! scalar reference produces, so representation choice can never change
//! results — only speed. The equivalence tests below cross {slice,
//! bitset, mixed} operand shapes against [`crate::ops`] directly.

use crate::{ops, VertexId};

/// Degree at and above which a vertex gets a [`BlockSet`] beside its
/// sorted ids. Below this the slice walk wins: blocks pay one 12-byte
/// entry (base + word) per populated 64-id span, which only amortises
/// once enough bits share a word, and tiny sets fit in cache either
/// way. At 64+ neighbours hubs are exactly the vertices whose scalar
/// merges dominate profile time, and real-world skew puts most ids in
/// few blocks.
pub const DENSE_BLOCK_THRESHOLD: usize = 64;

/// Bits per block word.
const BLOCK_BITS: u32 = 64;

/// A sorted run of 64-id bitset blocks: `words[i]` holds membership for
/// ids `bases[i] * 64 ..= bases[i] * 64 + 63`. Only populated blocks are
/// stored, and `bases` is strictly increasing, so intersection is a
/// two-pointer base merge with one word AND per common base.
#[derive(Clone, Debug, Default)]
pub struct BlockSet {
    bases: Vec<u32>,
    words: Vec<u64>,
}

impl BlockSet {
    /// Builds the block representation of a strictly increasing id run.
    pub fn from_sorted(ids: &[VertexId]) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids not sorted");
        let mut bases: Vec<u32> = Vec::new();
        let mut words: Vec<u64> = Vec::new();
        for &id in ids {
            let base = id / BLOCK_BITS;
            let bit = 1u64 << (id % BLOCK_BITS);
            match bases.last() {
                Some(&last) if last == base => *words.last_mut().expect("parallel") |= bit,
                _ => {
                    bases.push(base);
                    words.push(bit);
                }
            }
        }
        BlockSet { bases, words }
    }

    /// Number of populated 64-id blocks.
    pub fn num_blocks(&self) -> usize {
        self.bases.len()
    }

    /// Heap footprint of the block representation in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bases.len() * std::mem::size_of::<u32>()
            + self.words.len() * std::mem::size_of::<u64>()
    }

    /// Membership test: one binary search plus a shift-and-mask.
    pub fn contains(&self, v: VertexId) -> bool {
        match self.bases.binary_search(&(v / BLOCK_BITS)) {
            Ok(i) => self.words[i] & (1u64 << (v % BLOCK_BITS)) != 0,
            Err(_) => false,
        }
    }
}

/// A borrowed adjacency set in both representations: the sorted ids
/// (always) and the optional bitset blocks a dense vertex carries.
/// Kernels inspect `blocks` to pick the fastest pairing; results are
/// byte-identical regardless.
#[derive(Clone, Copy, Debug)]
pub struct AdjView<'a> {
    /// The sorted, strictly increasing ids.
    pub ids: &'a [VertexId],
    /// Bitset blocks, present when the owner crossed
    /// [`DENSE_BLOCK_THRESHOLD`] at build time.
    pub blocks: Option<&'a BlockSet>,
}

impl<'a> AdjView<'a> {
    /// A slice-only view (no block representation).
    pub fn from_slice(ids: &'a [VertexId]) -> Self {
        AdjView { ids, blocks: None }
    }

    /// Number of ids.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the view holds no ids.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Expands `word` (bits of block `base`) into sorted ids appended to
/// `out`.
#[inline]
fn expand_word(base: u32, mut word: u64, out: &mut Vec<VertexId>) {
    while word != 0 {
        out.push(base * BLOCK_BITS + word.trailing_zeros());
        word &= word - 1;
    }
}

/// Block × block intersection: merge the base runs, AND common words.
fn block_block_into(a: &BlockSet, b: &BlockSet, out: &mut Vec<VertexId>) {
    let (mut i, mut j) = (0, 0);
    while i < a.bases.len() && j < b.bases.len() {
        let (x, y) = (a.bases[i], b.bases[j]);
        if x < y {
            i += 1;
        } else if y < x {
            j += 1;
        } else {
            let word = a.words[i] & b.words[j];
            if word != 0 {
                expand_word(x, word, out);
            }
            i += 1;
            j += 1;
        }
    }
}

/// Block × block intersection cardinality via popcount.
fn block_block_count(a: &BlockSet, b: &BlockSet) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0usize);
    while i < a.bases.len() && j < b.bases.len() {
        let (x, y) = (a.bases[i], b.bases[j]);
        if x < y {
            i += 1;
        } else if y < x {
            j += 1;
        } else {
            n += (a.words[i] & b.words[j]).count_ones() as usize;
            i += 1;
            j += 1;
        }
    }
    n
}

/// Slice × block intersection: walk the sorted slice, advancing a block
/// cursor in lockstep; one shift-and-mask test per surviving candidate.
fn slice_block_into(ids: &[VertexId], b: &BlockSet, out: &mut Vec<VertexId>) {
    let mut j = 0;
    for &x in ids {
        let base = x / BLOCK_BITS;
        while j < b.bases.len() && b.bases[j] < base {
            j += 1;
        }
        if j >= b.bases.len() {
            return;
        }
        if b.bases[j] == base && b.words[j] & (1u64 << (x % BLOCK_BITS)) != 0 {
            out.push(x);
        }
    }
}

/// Slice × block intersection cardinality.
fn slice_block_count(ids: &[VertexId], b: &BlockSet) -> usize {
    let (mut j, mut n) = (0, 0usize);
    for &x in ids {
        let base = x / BLOCK_BITS;
        while j < b.bases.len() && b.bases[j] < base {
            j += 1;
        }
        if j >= b.bases.len() {
            return n;
        }
        if b.bases[j] == base && b.words[j] & (1u64 << (x % BLOCK_BITS)) != 0 {
            n += 1;
        }
    }
    n
}

/// Intersects two views into `out` (cleared first), dispatching to the
/// block-wise kernels whenever a bitset operand is present. The output
/// is always the sorted id run the scalar reference produces.
pub fn intersect_into(a: AdjView<'_>, b: AdjView<'_>, out: &mut Vec<VertexId>) {
    out.clear();
    if a.is_empty() || b.is_empty() {
        return;
    }
    match (a.blocks, b.blocks) {
        (Some(ba), Some(bb)) => block_block_into(ba, bb, out),
        (Some(ba), None) => slice_block_into(b.ids, ba, out),
        (None, Some(bb)) => slice_block_into(a.ids, bb, out),
        (None, None) => ops::intersect_into(a.ids, b.ids, out),
    }
}

/// Counts `|a ∩ b|` without materialising the result, with the same
/// dispatch as [`intersect_into`].
pub fn intersect_count(a: AdjView<'_>, b: AdjView<'_>) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    match (a.blocks, b.blocks) {
        (Some(ba), Some(bb)) => block_block_count(ba, bb),
        (Some(ba), None) => slice_block_count(b.ids, ba),
        (None, Some(bb)) => slice_block_count(a.ids, bb),
        (None, None) => ops::intersect_count(a.ids, b.ids),
    }
}

/// Intersects `k` views, addressed by index through `get`, into `out` —
/// the view-dispatching twin of [`crate::ops::intersect_many_by`].
/// Operands are visited smallest-first; the first pair may run
/// block × block, and every later round intersects the (slice-shaped)
/// running intermediate against the next view, so dense operands keep
/// their block fast path throughout.
pub fn intersect_many_by<'a>(
    k: usize,
    get: impl Fn(usize) -> AdjView<'a>,
    order: &mut Vec<usize>,
    out: &mut Vec<VertexId>,
    scratch: &mut Vec<VertexId>,
) {
    out.clear();
    match k {
        0 => {}
        1 => out.extend_from_slice(get(0).ids),
        _ => {
            order.clear();
            order.extend(0..k);
            order.sort_unstable_by_key(|&i| get(i).len());
            intersect_into(get(order[0]), get(order[1]), out);
            for &i in &order[2..] {
                if out.is_empty() {
                    return;
                }
                std::mem::swap(out, scratch);
                intersect_into(AdjView::from_slice(scratch), get(i), out);
            }
        }
    }
}

/// Per-graph block index for consumers that read adjacency straight
/// from a [`crate::Graph`] (the in-process baselines): one optional
/// [`BlockSet`] per vertex, built once per run with the same degree
/// threshold the store uses.
#[derive(Clone, Debug, Default)]
pub struct GraphViews {
    blocks: Vec<Option<BlockSet>>,
}

impl GraphViews {
    /// Builds block sets for every vertex of `g` whose degree reaches
    /// [`DENSE_BLOCK_THRESHOLD`].
    pub fn build(g: &crate::Graph) -> Self {
        GraphViews::with_threshold(g, DENSE_BLOCK_THRESHOLD)
    }

    /// Builds block sets with an explicit degree threshold.
    pub fn with_threshold(g: &crate::Graph, threshold: usize) -> Self {
        let blocks = g
            .vertices()
            .map(|v| {
                let ids = g.neighbors(v);
                (ids.len() >= threshold.max(1)).then(|| BlockSet::from_sorted(ids))
            })
            .collect();
        GraphViews { blocks }
    }

    /// The dual-representation view of `v`'s adjacency in `g`.
    pub fn view<'a>(&'a self, g: &'a crate::Graph, v: VertexId) -> AdjView<'a> {
        AdjView {
            ids: g.neighbors(v),
            blocks: self.blocks.get(v as usize).and_then(|b| b.as_ref()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[u32], b: &[u32]) -> Vec<u32> {
        a.iter().filter(|x| b.contains(x)).copied().collect()
    }

    fn blocked(ids: &[u32]) -> BlockSet {
        BlockSet::from_sorted(ids)
    }

    /// Every operand-shape pairing of the same two id runs must agree
    /// with the scalar reference.
    fn assert_all_pairings(a: &[u32], b: &[u32]) {
        let expect = naive(a, b);
        let (ba, bb) = (blocked(a), blocked(b));
        let shapes_a = [
            AdjView::from_slice(a),
            AdjView {
                ids: a,
                blocks: Some(&ba),
            },
        ];
        let shapes_b = [
            AdjView::from_slice(b),
            AdjView {
                ids: b,
                blocks: Some(&bb),
            },
        ];
        let mut out = Vec::new();
        for &va in &shapes_a {
            for &vb in &shapes_b {
                intersect_into(va, vb, &mut out);
                assert_eq!(out, expect, "a={a:?} b={b:?}");
                intersect_into(vb, va, &mut out);
                assert_eq!(out, expect, "operand order must not matter");
                assert_eq!(intersect_count(va, vb), expect.len());
                assert_eq!(intersect_count(vb, va), expect.len());
            }
        }
    }

    #[test]
    fn block_set_round_trips_membership() {
        let ids = [0u32, 1, 63, 64, 65, 500, u32::MAX - 1, u32::MAX];
        let b = blocked(&ids);
        for &id in &ids {
            assert!(b.contains(id), "{id}");
        }
        for miss in [2u32, 62, 66, 499, 501, u32::MAX - 2] {
            assert!(!b.contains(miss), "{miss}");
        }
        assert_eq!(b.num_blocks(), 4, "0..63, 64..127, 448..511, MAX block");
    }

    #[test]
    fn kernels_agree_with_scalar_on_fixed_cases() {
        assert_all_pairings(&[1, 3, 5, 7, 9], &[2, 3, 5, 8, 9, 10]);
        assert_all_pairings(&[], &[1, 2, 3]);
        assert_all_pairings(&[42], &[42]);
        assert_all_pairings(&[41], &[42]);
        // Dense runs sharing words, crossing block boundaries.
        let dense: Vec<u32> = (60..200).collect();
        let sparse: Vec<u32> = (0..300).step_by(7).collect();
        assert_all_pairings(&dense, &sparse);
        // Extreme ids: the top block must not overflow.
        assert_all_pairings(&[0, u32::MAX - 1, u32::MAX], &[u32::MAX]);
    }

    /// Deterministic xorshift mirror of the `ops` property fan.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_sorted_set(seed: &mut u64, len: usize, universe: u64) -> Vec<u32> {
        let mut v: Vec<u32> = (0..len)
            .map(|_| (xorshift(seed) % universe.max(1)) as u32)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn kernel_equivalence_fan_across_densities() {
        let mut seed = 0xb10c_cafe_u64;
        for &len_a in &[1usize, 7, 64, 200] {
            for &len_b in &[1usize, 31, 150] {
                for &universe in &[64u64, 256, 4096, 1 << 20] {
                    let a = random_sorted_set(&mut seed, len_a, universe);
                    let b = random_sorted_set(&mut seed, len_b, universe);
                    assert_all_pairings(&a, &b);
                }
            }
        }
    }

    #[test]
    fn many_by_matches_scalar_reference_on_mixed_shapes() {
        let a: Vec<u32> = (0..256).step_by(2).collect();
        let b: Vec<u32> = (0..256).step_by(3).collect();
        let c = vec![0u32, 6, 12, 90, 102, 240, 255];
        let (ba, bb) = (blocked(&a), blocked(&b));
        let views = [
            AdjView {
                ids: &a,
                blocks: Some(&ba),
            },
            AdjView {
                ids: &b,
                blocks: Some(&bb),
            },
            AdjView::from_slice(&c),
        ];
        let sets: Vec<&[u32]> = vec![&a, &b, &c];
        let (mut expect, mut out) = (Vec::new(), Vec::new());
        let (mut order, mut scratch) = (Vec::new(), Vec::new());
        ops::intersect_many_into(&sets, &mut expect, &mut scratch);
        intersect_many_by(3, |i| views[i], &mut order, &mut out, &mut scratch);
        assert_eq!(out, expect);
        // Degenerate arities mirror the scalar contract.
        intersect_many_by(1, |i| views[i], &mut order, &mut out, &mut scratch);
        assert_eq!(out, a);
        intersect_many_by(0, |i| views[i], &mut order, &mut out, &mut scratch);
        assert!(out.is_empty());
    }

    #[test]
    fn graph_views_blocks_only_dense_vertices() {
        let mut b = crate::GraphBuilder::new();
        // Vertex 0 is a hub with DENSE_BLOCK_THRESHOLD neighbours; the
        // spokes each have degree 1.
        for v in 1..=DENSE_BLOCK_THRESHOLD as u32 {
            b.add_edge(0, v);
        }
        let g = b.build();
        let views = GraphViews::build(&g);
        assert!(views.view(&g, 0).blocks.is_some(), "hub gets blocks");
        assert!(views.view(&g, 1).blocks.is_none(), "spoke stays a slice");
        let mut out = Vec::new();
        let spokes: Vec<u32> = (1..=DENSE_BLOCK_THRESHOLD as u32).collect();
        intersect_into(views.view(&g, 0), AdjView::from_slice(&spokes), &mut out);
        assert_eq!(out, spokes);
    }
}
