//! Seeded scale-down presets of the paper's five evaluation graphs.
//!
//! The paper evaluates on as-Skitter, LiveJournal, Orkut, uk-2002 and
//! FriendSter (Table I). Those graphs cannot be shipped, so each preset
//! reproduces the *relative* character that drives the experiments —
//! average degree, degree skew, and triangle/clique richness ordering —
//! at a size where the whole evaluation suite runs on one machine. All
//! presets are deterministic (fixed seeds).
//!
//! `scale = 1.0` is the default evaluation size; the bench binaries accept
//! a scale factor to grow or shrink every preset proportionally.

use crate::gen::{chung_lu_power_law, PowerLawConfig};
use crate::Graph;

/// The five data-graph stand-ins, named after the paper's abbreviations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// as-Skitter stand-in: mid-size, moderate clustering.
    AsSkitter,
    /// LiveJournal stand-in: larger, socially clustered.
    LiveJournal,
    /// Orkut stand-in: dense (highest average degree), clique-rich.
    Orkut,
    /// uk-2002 stand-in: web graph with extreme local density.
    Uk2002,
    /// FriendSter stand-in: large but comparatively triangle-sparse.
    FriendSter,
}

impl Dataset {
    /// All presets in the paper's order.
    pub const ALL: [Dataset; 5] = [
        Dataset::AsSkitter,
        Dataset::LiveJournal,
        Dataset::Orkut,
        Dataset::Uk2002,
        Dataset::FriendSter,
    ];

    /// Two-letter abbreviation used in the paper's tables.
    pub fn abbrev(self) -> &'static str {
        match self {
            Dataset::AsSkitter => "as",
            Dataset::LiveJournal => "lj",
            Dataset::Orkut => "ok",
            Dataset::Uk2002 => "uk",
            Dataset::FriendSter => "fs",
        }
    }

    /// Parses the paper abbreviation.
    pub fn from_abbrev(s: &str) -> Option<Dataset> {
        Some(match s {
            "as" => Dataset::AsSkitter,
            "lj" => Dataset::LiveJournal,
            "ok" => Dataset::Orkut,
            "uk" => Dataset::Uk2002,
            "fs" => Dataset::FriendSter,
            _ => return None,
        })
    }

    /// Generator parameters at `scale = 1.0`.
    ///
    /// Average degrees mirror the real graphs (as ≈ 13, lj ≈ 18, ok ≈ 77,
    /// uk ≈ 29, fs ≈ 55); clustering factors are tuned so motif-richness
    /// ordering matches Table I (uk and ok clique-dense, fs triangle-sparse
    /// for its size).
    pub fn config(self, scale: f64) -> PowerLawConfig {
        assert!(scale > 0.0, "scale must be positive");
        let (n, m, gamma, clustering, seed) = match self {
            Dataset::AsSkitter => (6_000, 39_000, 2.3, 0.25, 0xA5_0001),
            Dataset::LiveJournal => (12_000, 108_000, 2.4, 0.30, 0xA5_0002),
            Dataset::Orkut => (4_000, 154_000, 2.5, 0.35, 0xA5_0003),
            Dataset::Uk2002 => (9_000, 130_000, 2.2, 0.50, 0xA5_0004),
            Dataset::FriendSter => (16_000, 220_000, 2.6, 0.10, 0xA5_0005),
        };
        PowerLawConfig {
            n: ((n as f64) * scale).round().max(16.0) as usize,
            m: ((m as f64) * scale).round().max(15.0) as usize,
            gamma,
            clustering,
            seed,
        }
    }

    /// Builds the preset graph at the given scale.
    pub fn build(self, scale: f64) -> Graph {
        chung_lu_power_law(self.config(scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbrev_roundtrip() {
        for d in Dataset::ALL {
            assert_eq!(Dataset::from_abbrev(d.abbrev()), Some(d));
        }
        assert_eq!(Dataset::from_abbrev("zz"), None);
    }

    #[test]
    fn builds_are_deterministic() {
        let a = Dataset::AsSkitter.build(0.1);
        let b = Dataset::AsSkitter.build(0.1);
        assert_eq!(a, b);
    }

    #[test]
    fn orkut_preset_is_densest() {
        let scale = 0.1;
        let avg = |d: Dataset| {
            let g = d.build(scale);
            2.0 * g.num_edges() as f64 / g.num_vertices() as f64
        };
        let ok = avg(Dataset::Orkut);
        for d in [
            Dataset::AsSkitter,
            Dataset::LiveJournal,
            Dataset::FriendSter,
        ] {
            assert!(ok > avg(d), "ok should be densest vs {d:?}");
        }
    }

    #[test]
    fn scale_grows_graph() {
        let small = Dataset::LiveJournal.build(0.05);
        let large = Dataset::LiveJournal.build(0.1);
        assert!(large.num_vertices() > small.num_vertices());
        assert!(large.num_edges() > small.num_edges());
    }
}
