//! Micro-benchmarks of the key-value store query path (encode, decode,
//! sharded get).

use benu_graph::gen;
use benu_kvstore::{codec, CodecKind, KvStore};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_kvstore(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvstore");
    let g = gen::barabasi_albert(10_000, 8, 3);
    let store = KvStore::from_graph(&g, 16);

    group.bench_function("get/accounted", |b| {
        let mut v = 0u32;
        b.iter(|| {
            v = (v + 1) % 10_000;
            black_box(store.get(black_box(v)))
        })
    });
    group.bench_function("get/unaccounted", |b| {
        let mut v = 0u32;
        b.iter(|| {
            v = (v + 1) % 10_000;
            black_box(store.get_unaccounted(black_box(v)))
        })
    });

    // Frontier fetch: a hub's neighbourhood pulled one `get` at a time
    // versus one shard-grouped `get_many` — the batched-transport win.
    let frontier: Vec<u32> = {
        let hub = (0..10_000u32).max_by_key(|&v| g.degree(v)).unwrap();
        g.neighbors(hub).to_vec()
    };
    group.bench_function("frontier/get-loop", |b| {
        b.iter(|| {
            let mut bytes = 0usize;
            for &v in black_box(&frontier) {
                if let Some(adj) = store.get(v) {
                    bytes += adj.size_bytes();
                }
            }
            black_box(bytes)
        })
    });
    group.bench_function("frontier/get_many", |b| {
        b.iter(|| black_box(store.get_many(black_box(&frontier))))
    });

    let adj: Vec<u32> = (0..256).map(|i| i * 7).collect();
    for kind in [CodecKind::RawU32, CodecKind::DeltaVarint] {
        let encoded = codec::encode(kind, &adj);
        group.bench_function(format!("codec/{kind}/encode-256"), |b| {
            b.iter(|| black_box(codec::encode(kind, black_box(&adj))))
        });
        group.bench_function(format!("codec/{kind}/decode-256"), |b| {
            b.iter(|| black_box(codec::decode(black_box(&encoded)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kvstore);
criterion_main!(benches);
