//! Micro-benchmarks of the database cache and triangle cache — the DBQ
//! fast path.

use benu_cache::{DbCache, TriangleCache};
use benu_graph::AdjSet;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn bench_db_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("db-cache");
    let cache = DbCache::new(8 << 20, 8);
    let sets: Vec<Arc<AdjSet>> = (0..1_000u32)
        .map(|v| Arc::new(AdjSet::from_sorted((0..64).map(|i| v + i).collect())))
        .collect();
    for (v, s) in sets.iter().enumerate() {
        cache.insert(v as u32, Arc::clone(s));
    }

    group.bench_function("hit", |bench| {
        let mut v = 0u32;
        bench.iter(|| {
            v = (v + 1) % 1_000;
            black_box(cache.get(black_box(v)))
        })
    });
    group.bench_function("miss", |bench| {
        bench.iter(|| black_box(cache.get(black_box(55_555))))
    });
    group.bench_function("get_or_fetch/hot", |bench| {
        bench.iter(|| {
            let r: Result<_, ()> = cache.get_or_fetch(7, || unreachable!("always hot"));
            black_box(r.unwrap())
        })
    });
    group.bench_function("insert_evict", |bench| {
        let tiny = DbCache::new(64 << 10, 4);
        let mut v = 0u32;
        bench.iter(|| {
            v = v.wrapping_add(1);
            tiny.insert(v, Arc::clone(&sets[(v % 1_000) as usize]));
        })
    });
    group.finish();
}

fn bench_triangle_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("triangle-cache");
    let mut tc = TriangleCache::new(4096);
    for e in 0..2_000u32 {
        tc.get_or_compute(e, e + 1, || (0..32).collect());
    }
    group.bench_function("hot-lookup", |bench| {
        let mut e = 1_000u32;
        bench.iter(|| {
            e = 1_000 + (e + 1) % 900;
            black_box(tc.get_or_compute(e, e + 1, || unreachable!("hot")))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_db_cache, bench_triangle_cache);
criterion_main!(benches);
