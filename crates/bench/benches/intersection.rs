//! Micro-benchmarks of the sorted-set intersection kernels — the inner
//! loop of every INT instruction.

use benu_graph::ops;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn sorted_set(n: usize, stride: usize, offset: u32) -> Vec<u32> {
    (0..n).map(|i| offset + (i * stride) as u32).collect()
}

fn bench_intersections(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersection");
    let a = sorted_set(10_000, 3, 0);
    let b = sorted_set(10_000, 5, 1);
    let small = sorted_set(64, 450, 3);
    let mut out = Vec::with_capacity(10_000);

    group.bench_function("merge/balanced-10k", |bench| {
        bench.iter(|| {
            ops::merge_intersect_into(black_box(&a), black_box(&b), &mut out);
            black_box(out.len())
        })
    });
    group.bench_function("gallop/skewed-64-vs-10k", |bench| {
        bench.iter(|| {
            ops::gallop_intersect_into(black_box(&small), black_box(&a), &mut out);
            black_box(out.len())
        })
    });
    group.bench_function("adaptive/skewed-64-vs-10k", |bench| {
        bench.iter(|| {
            ops::intersect_into(black_box(&small), black_box(&a), &mut out);
            black_box(out.len())
        })
    });
    group.bench_function("count/balanced-10k", |bench| {
        bench.iter(|| black_box(ops::intersect_count(black_box(&a), black_box(&b))))
    });

    let c1 = sorted_set(5_000, 2, 0);
    let c2 = sorted_set(5_000, 3, 0);
    let c3 = sorted_set(5_000, 5, 0);
    let sets: Vec<&[u32]> = vec![&c1, &c2, &c3];
    let mut scratch = Vec::new();
    group.bench_function("many-way/3x5k", |bench| {
        bench.iter(|| {
            ops::intersect_many_into(black_box(&sets), &mut out, &mut scratch);
            black_box(out.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_intersections);
criterion_main!(benches);
