//! Whole-engine micro-benchmarks: enumeration throughput on a clustered
//! power-law graph, compressed vs uncompressed, and the reference
//! comparison point.

use benu_engine::{CompiledPlan, CountingConsumer, InMemorySource, LocalEngine};
use benu_graph::{gen, TotalOrder};
use benu_pattern::queries;
use benu_plan::PlanBuilder;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    let g = gen::chung_lu_power_law(gen::PowerLawConfig {
        n: 1_500,
        m: 9_000,
        gamma: 2.4,
        clustering: 0.3,
        seed: 7,
    });
    let source = InMemorySource::from_graph(&g);
    let order = TotalOrder::new(&g);

    for (name, pattern) in [
        ("triangle", queries::triangle()),
        ("q1", queries::q1()),
        ("q4", queries::q4()),
        ("q5", queries::q5()),
    ] {
        for compressed in [false, true] {
            let plan = PlanBuilder::new(&pattern)
                .graph_stats(g.num_vertices(), g.num_edges())
                .compressed(compressed)
                .best_plan();
            let compiled = CompiledPlan::compile(&plan);
            let label = if compressed { "compressed" } else { "plain" };
            group.bench_function(format!("{name}/{label}"), |b| {
                b.iter(|| {
                    let mut engine = LocalEngine::new(&compiled, &source, &order);
                    let mut consumer = CountingConsumer::default();
                    black_box(engine.run_all_vertices(&mut consumer).matches)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
