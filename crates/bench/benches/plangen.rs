//! Micro-benchmarks of the plan compiler: raw generation, the three
//! optimizations, and the full best-plan search.

use benu_pattern::{queries, SymmetryBreaking};
use benu_plan::generate::raw_plan;
use benu_plan::optimize::{optimize, OptimizeOptions};
use benu_plan::{GraphStatsEstimator, PlanBuilder};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_plangen(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan");
    let demo = queries::demo_pattern();
    let sb = SymmetryBreaking::compute(&demo);
    let order = vec![0usize, 2, 4, 1, 5, 3];

    group.bench_function("raw/demo", |b| {
        b.iter(|| black_box(raw_plan(&demo, &order, &sb)))
    });
    group.bench_function("optimize/demo", |b| {
        let raw = raw_plan(&demo, &order, &sb);
        b.iter(|| {
            let mut plan = raw.clone();
            optimize(&mut plan, OptimizeOptions::all());
            black_box(plan)
        })
    });
    group.bench_function("symmetry/demo", |b| {
        b.iter(|| black_box(SymmetryBreaking::compute(&demo)))
    });

    let est = GraphStatsEstimator::generic();
    for (name, p) in [
        ("q4", queries::q4()),
        ("q9", queries::q9()),
        ("clique6", queries::clique(6)),
    ] {
        group.bench_function(format!("best-plan-search/{name}"), |b| {
            b.iter(|| black_box(benu_plan::search::best_plan(&p, &est)))
        });
    }
    group.bench_function("builder/compressed-q4", |b| {
        let p = queries::q4();
        b.iter(|| black_box(PlanBuilder::new(&p).compressed(true).best_plan()))
    });
    group.finish();
}

criterion_group!(benches, bench_plangen);
criterion_main!(benches);
