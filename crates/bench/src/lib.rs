//! Shared harness utilities for the experiment binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index and EXPERIMENTS.md for recorded
//! results). All binaries accept `--scale <f64>` to grow or shrink the
//! dataset presets and `--json <path>` to additionally dump
//! machine-readable results.

pub mod cells;
pub mod cli;
pub mod json;
pub mod report;

use benu_graph::datasets::Dataset;
use benu_graph::Graph;

/// Builds a dataset preset, printing its size (every experiment logs the
/// workload it actually ran on).
pub fn load_dataset(dataset: Dataset, scale: f64) -> Graph {
    let g = dataset.build(scale);
    eprintln!(
        "[workload] {} at scale {scale}: {} vertices, {} edges, adjacency {} bytes",
        dataset.abbrev(),
        g.num_vertices(),
        g.num_edges(),
        g.adjacency_bytes()
    );
    g
}

/// Formats a `Duration` the way the paper's tables do (seconds).
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

/// Renders a fixed-width text table: a header row plus data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    let rule: String = widths
        .iter()
        .map(|w| format!("+{}", "-".repeat(w + 2)))
        .collect();
    println!("{rule}+");
    line(headers.iter().map(|s| s.to_string()).collect());
    println!("{rule}+");
    for row in rows {
        line(row.clone());
    }
    println!("{rule}+");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_formats() {
        assert_eq!(secs(std::time::Duration::from_millis(1234)), "1.23s");
    }

    #[test]
    fn dataset_loads() {
        let g = load_dataset(Dataset::AsSkitter, 0.02);
        assert!(g.num_vertices() > 0);
    }
}
