//! A minimal JSON writer for the experiment binaries' `--json` dumps.
//!
//! The build environment is offline, so instead of `serde`/`serde_json`
//! the harness uses this hand-rolled value tree plus the
//! [`impl_to_json!`](crate::impl_to_json) macro, which derives
//! [`ToJson`] for the flat record
//! structs each binary defines. Output is pretty-printed,
//! deterministic-order JSON — exactly what the plotting scripts consume.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (kept exact; never rendered in float form).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float (non-finite values render as `null`, as serde_json does).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    out.push_str(&format!("{f}"));
                    // Keep floats visibly float-typed for consumers.
                    if !out.ends_with(|c: char| !c.is_ascii_digit())
                        && !format!("{f}").contains('.')
                    {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value (the `Serialize` stand-in).
pub trait ToJson {
    /// The JSON representation.
    fn to_json(&self) -> Json;
}

macro_rules! impl_to_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}

impl_to_json_uint!(u8, u16, u32, u64, usize);
impl_to_json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl ToJson for benu_obs::Value {
    fn to_json(&self) -> Json {
        use benu_obs::Value;
        match self {
            Value::Bool(b) => Json::Bool(*b),
            Value::UInt(n) => Json::UInt(*n),
            Value::Int(n) => Json::Int(*n),
            Value::Float(f) => Json::Float(*f),
            Value::Str(s) => Json::Str(s.clone()),
            Value::List(items) => Json::Array(items.iter().map(ToJson::to_json).collect()),
            Value::Tree(t) => t.to_json(),
        }
    }
}

impl ToJson for benu_obs::Report {
    fn to_json(&self) -> Json {
        Json::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

/// Derives [`ToJson`] for a struct with `ToJson` fields:
///
/// ```ignore
/// struct Row { name: String, time_s: f64 }
/// impl_to_json!(Row { name, time_s });
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Object(vec![
                    $(
                        (
                            stringify!($field).to_string(),
                            $crate::json::ToJson::to_json(&self.$field),
                        ),
                    )+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Row {
        name: String,
        count: u64,
        ratio: f64,
        busy: Vec<f64>,
    }

    impl_to_json!(Row {
        name,
        count,
        ratio,
        busy
    });

    #[test]
    fn renders_struct_via_macro() {
        let row = Row {
            name: "q1".into(),
            count: 42,
            ratio: 1.5,
            busy: vec![0.25, 0.75],
        };
        let json = row.to_json().render_pretty();
        assert!(json.contains("\"name\": \"q1\""));
        assert!(json.contains("\"count\": 42"));
        assert!(json.contains("\"ratio\": 1.5"));
        assert!(json.contains("0.75"));
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd".into()).render_pretty();
        assert_eq!(j, "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn arrays_of_records_render_as_json_array() {
        let rows = vec![Row {
            name: "x".into(),
            count: 1,
            ratio: 0.5,
            busy: vec![],
        }];
        let json = rows.to_json().render_pretty();
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"busy\": []"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).render_pretty(), "null\n");
    }

    #[test]
    fn integers_stay_exact() {
        let big = u64::MAX;
        assert_eq!(big.to_json().render_pretty().trim(), big.to_string());
    }
}
