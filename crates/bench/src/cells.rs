//! Measurement cells: run one system on one (query, graph) pair and
//! return the quantities the paper's tables report.

use crate::impl_to_json;
use crate::json::ToJson;
use benu_baselines::{starjoin, wcoj, BaselineOutcome};
use benu_cluster::{Cluster, RunOutcome};
use benu_graph::Graph;
use benu_pattern::Pattern;
use benu_plan::PlanBuilder;
use std::time::Duration;

/// One table cell: execution time and cumulative communication.
#[derive(Clone, Copy, Debug)]
pub struct Cell {
    /// Simulated parallel makespan in seconds.
    pub time_s: f64,
    /// Communication bytes.
    pub comm_bytes: u64,
    /// Matches found.
    pub matches: u64,
    /// False for CRASH/OOM cells.
    pub completed: bool,
    /// True when a work budget (not memory) stopped the run.
    pub budget_exceeded: bool,
}

impl_to_json!(Cell {
    time_s,
    comm_bytes,
    matches,
    completed,
    budget_exceeded
});

impl Cell {
    /// Paper-style rendering: `12.3s/45.6M` or `CRASH`.
    pub fn render(&self) -> String {
        if self.completed {
            format!(
                "{:.2}s/{}",
                self.time_s,
                benu_baselines::human_bytes(self.comm_bytes)
            )
        } else {
            "CRASH".to_string()
        }
    }
}

/// Runs BENU (compressed plan, cluster) and reduces the outcome to a
/// cell. Uses the simulated makespan as the time (see
/// `RunOutcome::makespan`); on a multi-core host it coincides with wall
/// time whenever cores ≥ simulated threads.
pub fn benu_cell(cluster: &Cluster, g: &Graph, pattern: &Pattern, compressed: bool) -> Cell {
    let plan = PlanBuilder::new(pattern)
        .graph_stats(g.num_vertices(), g.num_edges())
        .compressed(compressed)
        .best_plan();
    let outcome = cluster.run(&plan).expect("cluster run failed");
    outcome_cell(&outcome)
}

/// Reduces a cluster outcome to a cell.
pub fn outcome_cell(outcome: &RunOutcome) -> Cell {
    Cell {
        time_s: outcome.makespan().as_secs_f64(),
        comm_bytes: outcome.communication_bytes(),
        matches: outcome.total_matches,
        completed: true,
        budget_exceeded: false,
    }
}

/// Reduces a baseline outcome to a cell (shuffled bytes are its
/// communication).
pub fn baseline_cell(outcome: &BaselineOutcome) -> Cell {
    Cell {
        time_s: outcome.elapsed.as_secs_f64(),
        comm_bytes: outcome.shuffled_bytes,
        matches: outcome.matches,
        completed: outcome.completed,
        budget_exceeded: outcome.budget_exceeded,
    }
}

/// Runs the join-based (CBF-style) baseline with an optional time budget:
/// when the budget is exceeded the run is reported as incomplete (the
/// paper's `>7200s` cells).
pub fn starjoin_cell(g: &Graph, pattern: &Pattern, memory_cap: u64) -> Cell {
    let outcome = starjoin::run(
        g,
        pattern,
        &starjoin::StarJoinConfig {
            memory_cap_bytes: memory_cap,
        },
    );
    baseline_cell(&outcome)
}

/// Runs the WCOJ (BiGJoin-style) baseline in the given mode.
pub fn wcoj_cell(g: &Graph, pattern: &Pattern, mode: wcoj::WcojMode, memory_cap: u64) -> Cell {
    let outcome = wcoj::run(
        g,
        pattern,
        &wcoj::WcojConfig {
            mode,
            batch_size: 100_000,
            memory_cap_bytes: memory_cap,
            work_budget: 300_000_000,
        },
    );
    baseline_cell(&outcome)
}

/// Writes a record set as pretty JSON to `path`.
pub fn write_json<T: ToJson + ?Sized>(path: &str, value: &T) -> std::io::Result<()> {
    std::fs::write(path, value.to_json().render_pretty())
}

/// Helper: a `Duration` from fractional seconds.
pub fn duration_s(s: f64) -> Duration {
    Duration::from_secs_f64(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use benu_cluster::ClusterConfig;
    use benu_graph::gen;
    use benu_pattern::queries;

    #[test]
    fn benu_cell_counts_triangles() {
        let g = gen::complete(6);
        let cluster = Cluster::new(&g, ClusterConfig::builder().workers(2).build());
        let cell = benu_cell(&cluster, &g, &queries::triangle(), true);
        assert_eq!(cell.matches, 20);
        assert!(cell.completed);
        assert!(cell.render().contains("s/"));
    }

    #[test]
    fn crash_cell_renders() {
        let c = Cell {
            time_s: 1.0,
            comm_bytes: 0,
            matches: 0,
            completed: false,
            budget_exceeded: false,
        };
        assert_eq!(c.render(), "CRASH");
    }
}
